#!/usr/bin/env python3
"""Reproduce the paper's motivation study (Table I, §II-B/C).

Runs the dApp-traffic analysis pipeline over the synthetic, Torres-
calibrated dataset and prints both halves of Table I: provider traffic
shares among 383 frontend-RPC dApps, and the permissioned-access feature
matrix of the five surveyed providers.

Run:  python examples/provider_analysis.py
"""

from repro.analysis import (
    PROVIDER_PROFILES,
    compare_with_published,
    compute_traffic_shares,
)
from repro.metrics import render_table
from repro.workloads import generate_dataset
from repro.workloads.dapp_traffic import TOTAL_DATASET_DAPPS, TOTAL_RPC_DAPPS


def main() -> None:
    records = generate_dataset(seed=42)
    dapps = {r.dapp_id for r in records}
    print(f"dataset: {len(records)} dApp→provider flows, {len(dapps)} dApps "
          f"(of {TOTAL_RPC_DAPPS} frontend-RPC dApps in a "
          f"{TOTAL_DATASET_DAPPS}-dApp crawl)\n")

    shares = compute_traffic_shares(records)
    rows = [(s.provider, s.format_paper_style()) for s in shares]
    print(render_table(["provider", "dApps (share)"], rows,
                       title="Traffic share by provider"))

    print()
    comparison = compare_with_published(shares)
    print(render_table(
        ["provider", "measured %", "paper %", "diff"],
        comparison, title="Measured vs published (calibration check)",
    ))

    print()
    matrix_rows = []
    for profile in PROVIDER_PROFILES.values():
        matrix_rows.append((
            profile.name,
            "yes" if profile.free_public_no_signup else "no",
            "yes" if profile.login_via_wallet else "no",
            "yes" if profile.signup_email else "no",
            "yes" if profile.call_based_pricing else "no",
            profile.free_usage,
            "yes" if profile.pays_crypto else "no",
        ))
    print(render_table(
        ["provider", "no-signup", "wallet-id", "email-req",
         "call-based", "free tier", "crypto-pay"],
        matrix_rows, title="Registration & pricing features (survey, 2024-12)",
    ))

    centralized = shares[0].share + shares[1].share
    print(f"\ntakeaway: the top two providers alone serve "
          f"{centralized * 100:.0f}% of dApps — the centralization PARP "
          f"is designed to counter.")


if __name__ == "__main__":
    main()
