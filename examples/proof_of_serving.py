#!/usr/bin/env python3
"""Proof of Serving: turning payment receipts into network rewards (§VIII).

Two full nodes serve different numbers of light clients.  At the end of an
epoch each aggregates its channels' payment proofs — the (α, a, σ_a)
triples it already holds — into a claim.  A reward pool validates every
receipt against the *on-chain* channel records (so Sybil receipts backed by
no real locked budget weigh nothing) and splits the epoch reward
proportionally to verified serving volume.

Run:  python examples/proof_of_serving.py
"""

from repro.chain import GenesisConfig
from repro.contracts import CHANNELS_MODULE_ADDRESS, DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.crypto.keys import Address
from repro.lightclient import HeaderSyncer
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
)
from repro.parp.messages import payment_digest
from repro.parp.proof_of_serving import (
    EpochClaim,
    ReceiptValidator,
    RewardPool,
    ServingReceipt,
)

TOKEN = 10 ** 18
EPOCH_REWARD = 5 * TOKEN


def main() -> None:
    operators = [PrivateKey.from_seed(f"pos:fn{i}") for i in range(2)]
    clients = [PrivateKey.from_seed(f"pos:lc{i}") for i in range(3)]
    alice = PrivateKey.from_seed("pos:alice")

    allocations = {op.address: 100 * TOKEN for op in operators}
    allocations.update({c.address: 10 * TOKEN for c in clients})
    allocations[alice.address] = TOKEN
    net = Devnet(GenesisConfig(allocations=allocations))

    servers = []
    for i, op in enumerate(operators):
        net.execute(op, DEPOSIT_MODULE_ADDRESS, "deposit",
                    value=MIN_FULL_NODE_DEPOSIT)
        servers.append(FullNodeServer(
            FullNode(net.chain, key=op, name=f"node-{i}")))

    # node-0 serves two clients heavily; node-1 serves one client lightly
    load = [(servers[0], clients[0], 6), (servers[0], clients[1], 4),
            (servers[1], clients[2], 2)]
    for server, client_key, requests in load:
        session = LightClientSession(
            client_key, server, HeaderSyncer([server]))
        session.connect(budget=10 ** 15)
        for _ in range(requests):
            session.get_balance(alice.address)
        print(f"{server.node.name} served {requests} paid requests for "
              f"{client_key.address.hex()[:10]}…")

    # -- epoch end: aggregate receipts ------------------------------------- #
    claims = []
    for server in servers:
        claim = EpochClaim(server.address)
        for alpha, channel in server.channels.items():
            if channel.latest_sig is None:
                continue
            claim.add(ServingReceipt(
                alpha=alpha, full_node=server.address,
                light_client=channel.light_client,
                amount=channel.latest_amount,
                signature=channel.latest_sig,
            ))
        claims.append(claim)

    # a Sybil node fabricates receipts from a fake client with no channel
    sybil_operator = PrivateKey.from_seed("pos:sybil-fn")
    fake_client = PrivateKey.from_seed("pos:fake-lc")
    fake_alpha = b"\xfa" * 16
    sybil_claim = EpochClaim(sybil_operator.address)
    sybil_claim.add(ServingReceipt(
        alpha=fake_alpha, full_node=sybil_operator.address,
        light_client=fake_client.address, amount=10 ** 18,
        signature=fake_client.sign(
            payment_digest(fake_alpha, 10 ** 18)).to_bytes(),
    ))
    claims.append(sybil_claim)
    print("\na Sybil operator submits a fabricated 1-token receipt…")

    # -- validate against the real CMM and distribute ------------------------ #
    def channel_lookup(alpha):
        lc, fn, budget, _cs, status, _dl = net.call_view(
            CHANNELS_MODULE_ADDRESS, "get_channel", [alpha])
        if status == 0:
            return None
        return Address(lc), Address(fn), budget, status

    pool = RewardPool(epoch_reward=EPOCH_REWARD,
                      validator=ReceiptValidator(channel_lookup))
    payouts = pool.distribute(claims)

    print(f"\nepoch reward: {EPOCH_REWARD / TOKEN:.0f} tokens, split by "
          "verified serving volume:")
    names = {servers[0].address: "node-0", servers[1].address: "node-1",
             sybil_operator.address: "sybil"}
    for address, payout in sorted(payouts.items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {names[address]:7s} {payout / TOKEN:.2f} tokens")
    assert payouts[sybil_operator.address] == 0
    print("\nthe Sybil claim earned nothing: its receipts have no on-chain "
          "channel backing")


if __name__ == "__main__":
    main()
