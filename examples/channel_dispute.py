#!/usr/bin/env python3
"""Payment-channel dispute: a stale-state closure gets challenged.

After many paid requests, the light client tries to settle the channel with
its *first* (cheapest) signed state.  The full node — which retained the
newest cumulative payment signature, its money — challenges within the
dispute window; the CMM acknowledges the higher state, resets the window,
and finally settles at the correct amount (paper §IV-E.4).

Run:  python examples/channel_dispute.py
"""

from repro.chain import GenesisConfig
from repro.contracts import CHANNELS_MODULE_ADDRESS, DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
)
from repro.parp.constants import DISPUTE_WINDOW_BLOCKS
from repro.parp.messages import payment_digest

TOKEN = 10 ** 18


def main() -> None:
    fn_operator = PrivateKey.from_seed("dispute:fn")
    light_client = PrivateKey.from_seed("dispute:lc")
    alice = PrivateKey.from_seed("dispute:alice")

    net = Devnet(GenesisConfig(allocations={
        fn_operator.address: 100 * TOKEN,
        light_client.address: 10 * TOKEN,
        alice.address: 2 * TOKEN,
    }))
    net.execute(fn_operator, DEPOSIT_MODULE_ADDRESS, "deposit",
                value=MIN_FULL_NODE_DEPOSIT)

    server = FullNodeServer(FullNode(net.chain, key=fn_operator))
    session = LightClientSession(light_client, server, HeaderSyncer([server]))
    alpha = session.connect(budget=10 ** 15)

    # several paid requests: the cumulative amount climbs
    for _ in range(5):
        session.get_balance(alice.address)
    newest = session.channel.spent
    stale = session.history[0].amount_paid
    print(f"after 5 requests: newest signed state = {newest / 10**9:.0f} gwei,"
          f" first state = {stale / 10**9:.0f} gwei")

    # the client (dishonestly) closes with its FIRST state
    stale_sig = light_client.sign(payment_digest(alpha, stale)).to_bytes()
    net.execute(light_client, CHANNELS_MODULE_ADDRESS, "close_channel",
                [alpha, stale, stale_sig])
    print(f"\nlight client closed the channel claiming only "
          f"{stale / 10**9:.0f} gwei owed")

    # the server notices and challenges with its retained payment proof
    alpha_b, amount, sig = server.channels[alpha].redeemable_state()
    nonce = net.chain.state.nonce_of(fn_operator.address)
    result = net.execute(fn_operator, CHANNELS_MODULE_ADDRESS, "submit_state",
                         [alpha_b, amount, sig])
    assert result.succeeded
    print(f"full node challenged with the newest state "
          f"({amount / 10**9:.0f} gwei); dispute window reset")

    # after the (reset) window, anyone can settle
    net.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
    fn_before = net.balance_of(fn_operator.address)
    lc_before = net.balance_of(light_client.address)
    settle = net.execute(fn_operator, CHANNELS_MODULE_ADDRESS,
                         "confirm_closure", [alpha])
    assert settle.succeeded

    fn_gain = net.balance_of(fn_operator.address) - fn_before
    gas_paid = settle.gas_used * 12 * 10 ** 9
    print("\n-- settlement --")
    print(f"full node received:  {(fn_gain + gas_paid) / 10**9:.0f} gwei "
          f"(the newest state, not the stale one)")
    print(f"client refunded:     "
          f"{(net.balance_of(light_client.address) - lc_before) / 10**9:.0f}"
          f" gwei of unspent budget")
    print("the stale-state underpayment attempt failed")


if __name__ == "__main__":
    main()
