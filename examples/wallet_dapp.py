#!/usr/bin/env python3
"""A wallet-style dApp on PARP: multi-node fail-over without registration.

Models the paper's motivating scenario (Fig. 1): a wallet front-end that
polls token balances for its user.  Instead of an Infura API key, it holds
PARP channels — and because there is no sign-up, it can fail over between
full nodes instantly when one misbehaves or goes dark, while every balance
it displays is Merkle-proof-verified.

Run:  python examples/wallet_dapp.py
"""

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    InvalidResponse,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
    SessionError,
)
from repro.parp.reputation import (
    EVENT_INVALID_RESPONSE,
    EVENT_SERVED_OK,
    ReputationLedger,
)

TOKEN = 10 ** 18


class Wallet:
    """A tiny wallet that keeps a PARP session to one of several providers
    and rotates on failure, scoring providers with a reputation ledger."""

    def __init__(self, key, servers, header_sources):
        self.key = key
        self.servers = list(servers)
        self.header_sources = header_sources
        self.reputation = ReputationLedger()
        self.session = None
        self.clock = 0.0

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    def connect_best(self, budget: int) -> None:
        ranked = self.reputation.rank(
            [s.address for s in self.servers], now=self.clock)
        by_address = {s.address: s for s in self.servers}
        for address in ranked:
            server = by_address[address]
            if self.reputation.is_banned(address, now=self.clock):
                continue
            try:
                self.session = LightClientSession(
                    self.key, server, HeaderSyncer(self.header_sources),
                )
                self.session.connect(budget=budget)
                print(f"  connected to {server.node.name} "
                      f"({address.hex()[:10]}…)")
                return
            except SessionError:
                continue
        raise SystemExit("no live PARP server found")

    def balance_of(self, address) -> int:
        for attempt in range(len(self.servers)):
            try:
                value = self.session.get_balance(address)
                self.reputation.record(self.session.full_node, EVENT_SERVED_OK,
                                       time=self._tick())
                return value
            except (InvalidResponse, SessionError):
                failed = self.session.full_node
                self.reputation.record(failed, EVENT_INVALID_RESPONSE,
                                       time=self._tick())
                print(f"  provider {failed.hex()[:10]}… failed; rotating")
                self.connect_best(budget=10 ** 14)
        raise SystemExit("all providers failed")


def main() -> None:
    user = PrivateKey.from_seed("wallet:user")
    operators = [PrivateKey.from_seed(f"wallet:fn{i}") for i in range(3)]
    watched = [PrivateKey.from_seed(f"wallet:friend{i}") for i in range(3)]

    allocations = {user.address: 10 * TOKEN}
    allocations.update({op.address: 100 * TOKEN for op in operators})
    allocations.update({w.address: (i + 1) * TOKEN
                        for i, w in enumerate(watched)})
    net = Devnet(GenesisConfig(allocations=allocations))

    servers = []
    for i, operator in enumerate(operators):
        net.execute(operator, DEPOSIT_MODULE_ADDRESS, "deposit",
                    value=MIN_FULL_NODE_DEPOSIT)
        servers.append(FullNodeServer(
            FullNode(net.chain, key=operator, name=f"provider-{i}")))

    print("three pseudonymous PARP providers staked; no API keys anywhere")
    wallet = Wallet(user, servers, header_sources=[s.node for s in servers])
    wallet.connect_best(budget=10 ** 14)

    print("\npolling verified balances:")
    for i, friend in enumerate(watched):
        balance = wallet.balance_of(friend.address)
        print(f"  friend {i}: {balance / TOKEN:.1f} tokens (proof-verified)")

    # the connected provider goes dark mid-session
    current = wallet.session.endpoint
    current.channels.clear()  # simulates the node wiping its channel state
    print("\nprovider drops our channel state (fail-stop)…")
    balance = wallet.balance_of(watched[0].address)
    print(f"  friend 0 after fail-over: {balance / TOKEN:.1f} tokens")

    print("\nreputation after the session:")
    for server in servers:
        score = wallet.reputation.score(server.address, now=wallet.clock)
        print(f"  {server.node.name}: {score:.3f}")


if __name__ == "__main__":
    main()
