#!/usr/bin/env python3
"""Hedged fan-out queries: first valid response wins, frauds get slashed.

A marketplace with two servers, neither of them good in the usual sense:

* **mallory** — fast, cheap, and malicious: forges account balances;
* **turtle** — honest, but throttled to a 500 ms link.

A sequential client would pick mallory (cheapest), detect the fraud, and
only then retry elsewhere.  The hedged client races both: mallory's forged
response arrives first, fails the §V-D checks, and is escalated through the
witness to an on-chain slash — while turtle's honest response is *already
in flight* and wins the race the moment it verifies.

Run:  python examples/hedged_query.py
"""

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.net import PairwiseLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet
from repro.parp import (
    FlatFeeSchedule,
    Marketplace,
    MarketplaceClient,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.fraudproof import WitnessService
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.parp.queries import decode_balance

TOKEN = 10 ** 18


def main() -> None:
    mallory_op = PrivateKey.from_seed("hedge:mallory")
    turtle_op = PrivateKey.from_seed("hedge:turtle")
    lc = PrivateKey.from_seed("hedge:lc")
    wn = PrivateKey.from_seed("hedge:wn")
    alice = PrivateKey.from_seed("hedge:alice")

    net = Devnet(GenesisConfig(allocations={
        mallory_op.address: 100 * TOKEN, turtle_op.address: 100 * TOKEN,
        lc.address: 100 * TOKEN, wn.address: 100 * TOKEN,
        alice.address: 5 * TOKEN,
    }))

    # mallory's link is fast; turtle's is throttled to half a second
    network = SimNetwork(latency=PairwiseLatency(
        {("lc-mallory", "mallory"): 0.02, ("lc-turtle", "turtle"): 0.5},
        default=0.02,
    ))

    mallory = net.attach_server(
        mallory_op, name="mallory", server_cls=MaliciousFullNodeServer,
        attack="inflate_balance",
        fee_schedule=FlatFeeSchedule(flat_price=2 * GWEI))
    turtle = net.attach_server(
        turtle_op, name="turtle",
        fee_schedule=FlatFeeSchedule(flat_price=10 * GWEI))
    net.advance_blocks(2)

    marketplace = Marketplace()
    for name, server in (("mallory", mallory), ("turtle", turtle)):
        SimServerBinding(network, name, server)
        endpoint = SimEndpoint(network, f"lc-{name}", name, server.address,
                               timeout=2.0)
        marketplace.advertise_server(server, name=name, endpoint=endpoint)

    witness = WitnessService(net.attach_server(wn, name="wn", stake=False).node)
    client = MarketplaceClient(lc, marketplace, witness=witness,
                               budget=10 ** 16, clock=network.clock)
    client.connect()
    client.headers.sync()
    print("bonded channels to mallory (2 gwei, fast, *lying*) and "
          "turtle (10 gwei, 500ms link, honest)\n")

    start = network.clock.now()
    outcome = client.query_hedged(
        [RpcCall.create("eth_getBalance", alice.address)], fanout=2)
    elapsed = network.clock.now() - start

    print(f"hedged query settled in {elapsed * 1e3:.0f}ms of simulated time:")
    for attempt in client.last_hedge:
        print(f"  {attempt.label:8s} → {attempt.outcome}"
              + (f" [{attempt.detail}]" if attempt.detail else ""))
    assert all(item.ok for item in outcome.items)
    balance = decode_balance(outcome.items[0].result)
    assert balance == 5 * TOKEN
    print(f"\nverified balance: {balance / TOKEN:.0f} tokens (the honest "
          "answer — mallory's 1000× inflation never reached the dApp)")

    mallory_stake = net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                                  [mallory_op.address])
    print(f"mallory's stake after the fraud proof: {mallory_stake} "
          f"(slashed: {client.stats.frauds_slashed == 1})")
    print(f"still eligible for future races: "
          f"{[ad.label for ad in client.eligible()]}")


if __name__ == "__main__":
    main()
