#!/usr/bin/env python3
"""Fraud detection end to end: catching and slashing a lying full node.

A malicious PARP node returns a doctored account balance (1000x the real
value) while keeping everything else — signatures, payments, proofs —
perfectly honest-looking.  The light client's §V-D checks catch the lie,
build a fraud proof, and hand it to a *witness* full node, which submits it
to the on-chain Fraud Detection Module.  Algorithm 2 re-verifies the
evidence and confiscates the malicious node's deposit: 50% to the serving-
layer treasury, 25% to the defrauded client, 25% to the witness.

Run:  python examples/fraud_detection.py
"""

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS, TREASURY_ADDRESS
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.node import Devnet, FullNode
from repro.parp import (
    FraudDetected,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
    WitnessService,
)
from repro.parp.adversary import MaliciousFullNodeServer

TOKEN = 10 ** 18


def main() -> None:
    evil_operator = PrivateKey.from_seed("fraud:evil-fn")
    light_client = PrivateKey.from_seed("fraud:lc")
    witness_operator = PrivateKey.from_seed("fraud:witness")
    alice = PrivateKey.from_seed("fraud:alice")

    net = Devnet(GenesisConfig(allocations={
        evil_operator.address: 100 * TOKEN,
        light_client.address: 10 * TOKEN,
        witness_operator.address: 10 * TOKEN,
        alice.address: 2 * TOKEN,
    }))

    # the soon-to-be-slashed node stakes like any honest one
    net.execute(evil_operator, DEPOSIT_MODULE_ADDRESS, "deposit",
                value=MIN_FULL_NODE_DEPOSIT)
    print(f"malicious node staked {MIN_FULL_NODE_DEPOSIT / TOKEN:.0f} tokens")

    evil = MaliciousFullNodeServer(
        FullNode(net.chain, key=evil_operator, name="evil"),
        attack="inflate_balance",
    )
    witness_node = FullNode(net.chain, key=witness_operator, name="witness")

    session = LightClientSession(
        light_client, evil, HeaderSyncer([evil, witness_node]),
    )
    session.connect(budget=10 ** 15)
    print("channel open with the malicious node")

    print(f"\nreal balance of alice: {2.0:.1f} tokens")
    print("querying eth_getBalance through the malicious node…")
    try:
        session.get_balance(alice.address)
        raise SystemExit("BUG: the lie was not detected")
    except FraudDetected as fraud:
        print(f"FRAUD detected by the '{fraud.report.check}' check:")
        print(f"  {fraud.report.detail}")

        print("\nhanding the evidence to a witness full node…")
        witness = WitnessService(witness_node)
        lc_before = net.balance_of(light_client.address)
        wn_before = net.balance_of(witness_operator.address)

        tx_hash = witness.submit(fraud.package)
        receipt = net.chain.get_receipt(tx_hash)
        print(f"fraud proof accepted on-chain (gas: {receipt.gas_used:,})")

        deposit_left = net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                                     [evil_operator.address])
        print("\n-- slashing outcome --")
        print(f"malicious node's deposit:   {deposit_left / TOKEN:.0f} tokens"
              f" (was {MIN_FULL_NODE_DEPOSIT / TOKEN:.0f})")
        print(f"light client awarded:       "
              f"{(net.balance_of(light_client.address) - lc_before) / TOKEN:.0f}"
              " tokens")
        wn_gain = net.balance_of(witness_operator.address) - wn_before
        print(f"witness awarded (net gas):  {wn_gain / TOKEN:.2f} tokens")
        print(f"serving-layer treasury:     "
              f"{net.balance_of(TREASURY_ADDRESS) / TOKEN:.0f} tokens")
        eligible = net.call_view(DEPOSIT_MODULE_ADDRESS, "is_eligible",
                                 [evil_operator.address])
        print(f"node still eligible to serve? {eligible}")


if __name__ == "__main__":
    main()
