#!/usr/bin/env python3
"""Quickstart: a light client getting verified, paid RPC service.

Walks the full PARP lifecycle (paper Fig. 4) on an in-process devnet:

1. a full node stakes collateral in the Deposit Module,
2. the light client handshakes and opens a funded payment channel,
3. it makes paid requests — each response carries a Merkle proof the
   client checks against block headers it synced from multiple sources,
4. the channel closes cooperatively and settles on-chain.

Run:  python examples/quickstart.py
"""

from repro.chain import GenesisConfig, UnsignedTransaction
from repro.contracts import CHANNELS_MODULE_ADDRESS, DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
)
from repro.parp.constants import DISPUTE_WINDOW_BLOCKS

TOKEN = 10 ** 18


def main() -> None:
    # -- the cast ---------------------------------------------------------- #
    fn_operator = PrivateKey.from_seed("quickstart:full-node")
    light_client = PrivateKey.from_seed("quickstart:light-client")
    alice = PrivateKey.from_seed("quickstart:alice")

    # -- a devnet with the PARP modules deployed ---------------------------- #
    net = Devnet(GenesisConfig(allocations={
        fn_operator.address: 100 * TOKEN,
        light_client.address: 10 * TOKEN,
        alice.address: 2 * TOKEN,
    }))

    # -- 1. the full node stakes collateral (becomes "available") ----------- #
    result = net.execute(fn_operator, DEPOSIT_MODULE_ADDRESS, "deposit",
                         value=MIN_FULL_NODE_DEPOSIT)
    print(f"full node staked 32 tokens   (gas: {result.gas_used:,})")

    node = FullNode(net.chain, key=fn_operator, name="served-node")
    server = FullNodeServer(node)

    # an independent node provides a second header source (root of trust
    # should never rest on the node you are paying — §IV-D)
    other_node = FullNode(net.chain, name="header-source")

    # -- 2. connect: handshake + on-chain channel (Algorithm 1) ------------- #
    session = LightClientSession(
        light_client, server, HeaderSyncer([server, other_node]),
    )
    alpha = session.connect(budget=10 ** 15)
    print(f"payment channel open         (α = {alpha.hex()})")

    # -- 3. paid, verified requests ------------------------------------------ #
    balance = session.get_balance(alice.address)
    print(f"alice's balance: {balance / TOKEN:.2f} tokens "
          f"(verified against the state root)")

    transfer = UnsignedTransaction(
        nonce=0, gas_price=10 ** 9, gas_limit=21_000,
        to=light_client.address, value=42_000,
    ).sign(alice)
    block, index, tx_hash = session.send_raw_transaction(transfer.encode())
    print(f"alice's transfer mined at block {block}, index {index} "
          f"(inclusion proof verified)")

    receipt = session.get_transaction_receipt(tx_hash)
    print(f"receipt retrieved and proven ({len(receipt)} bytes)")

    status = session.channel_status_verified()
    print(f"channel liveness (storage-proof-verified): status={status}")

    spent = session.channel.spent
    print(f"total paid: {spent / 10**9:.0f} gwei over "
          f"{session.channel.requests_sent} requests")

    # -- 4. cooperative closure ---------------------------------------------- #
    session.close()
    net.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
    session.confirm_close()
    print(f"channel settled: full node earned {spent / 10**9:.0f} gwei, "
          f"client refunded the rest")
    print(f"session state: {session.state.value}")


if __name__ == "__main__":
    main()
