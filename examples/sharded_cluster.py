#!/usr/bin/env python3
"""Sharded serving: scatter-gather multiproofs over a 4-shard cluster.

The world state is partitioned by address-hash prefix across four shards,
each served by two replicas (a fast primary and a slower backup).  No
single server holds the whole state — yet every answer still verifies
against the *global* state root, because a trie slice produces exactly the
proofs the full trie would.

The script scatters one batch across all four shards and stitches the
verified legs back together, then kills shard 2's primary and scatters
again: that leg times out, the hedge machinery replaces it *in-shard* with
the backup, and the other three legs are already settled and paid by the
time it lands.

Run:  python examples/sharded_cluster.py
"""

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey, keccak256
from repro.net import PairwiseLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet
from repro.parp import FlatFeeSchedule, Marketplace, MarketplaceClient
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.parp.queries import decode_balance
from repro.trie import shard_of_key

TOKEN = 10 ** 18
SHARDS, REPLICAS = 4, 2


def user_in_shard(index: int) -> PrivateKey:
    """A funded account whose address hashes into the given shard."""
    for i in range(512):
        key = PrivateKey.from_seed(f"cluster:user{i}")
        if shard_of_key(keccak256(bytes(key.address)), SHARDS) == index:
            return key
    raise AssertionError("no seed found for shard")


def main() -> None:
    lc = PrivateKey.from_seed("cluster:lc")
    ops = [PrivateKey.from_seed(f"cluster:op{i}")
           for i in range(SHARDS * REPLICAS)]
    users = [user_in_shard(s) for s in range(SHARDS)]

    allocations = {k.address: 100 * TOKEN for k in ops + [lc]}
    for s, user in enumerate(users):
        allocations[user.address] = (s + 1) * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))

    # primaries on 20ms links at 5 gwei; backups on 100ms links at 10 gwei
    links = {(f"lc-{s}-{r}", f"srv-{s}-{r}"): (0.02, 0.1)[r]
             for s in range(SHARDS) for r in range(REPLICAS)}
    network = SimNetwork(latency=PairwiseLatency(links, default=0.02))

    marketplace = Marketplace()
    bindings = {}
    for j, server in enumerate(devnet.attach_shard_cluster(
            ops, SHARDS, name_prefix="shard")):
        s, r = j % SHARDS, j // SHARDS
        name = f"srv-{s}-{r}"
        server.fee_schedule = FlatFeeSchedule(flat_price=(5, 10)[r] * GWEI)
        bindings[(s, r)] = SimServerBinding(network, name, server)
        endpoint = SimEndpoint(network, f"lc-{s}-{r}", name, server.address,
                               timeout=2.0)
        marketplace.advertise_server(server, name=name, endpoint=endpoint)
    devnet.advance_blocks(2)

    print(f"{SHARDS}-shard cluster, {REPLICAS} replicas each:")
    for ad in marketplace.advertisements():
        lo, hi, commitment, height = ad.endpoint.shard_info()
        print(f"  {ad.name}: range {ad.shard.label}, "
              f"commitment {commitment.hex()[:16]}… @ height {height}")

    client = MarketplaceClient(lc, marketplace, budget=10 ** 16,
                               clock=network.clock)
    client.connect(min_sessions=SHARDS * REPLICAS)
    client.headers.sync()

    calls = [RpcCall.create("eth_getBalance", u.address) for u in users]
    calls.append(RpcCall.create("eth_blockNumber"))

    start = network.clock.now()
    outcome = client.query_sharded(calls)
    elapsed = network.clock.now() - start
    print(f"\nscatter #1 — {len(calls)} calls over {len(outcome.legs)} legs "
          f"in {elapsed * 1e3:.0f}ms of simulated time:")
    for leg in outcome.legs:
        ad = marketplace.get(leg.winner)
        print(f"  leg {leg.index}: positions {list(leg.positions)} → "
              f"{ad.name} for {leg.cost / GWEI:.0f} gwei")
    for s, item in enumerate(outcome.items[:SHARDS]):
        balance = decode_balance(item.result)
        assert balance == (s + 1) * TOKEN
        print(f"  verified balance of user {s} (shard {s}): "
              f"{balance / TOKEN:.0f} tokens")

    # kill shard 2's primary: its leg times out mid-scatter and the hedge
    # relaunches on the in-shard backup while the other legs settle
    bindings[(2, 0)].offline = True
    print("\nshard 2's primary goes dark; scattering again…")
    start = network.clock.now()
    outcome = client.query_sharded(calls)
    elapsed = network.clock.now() - start
    assert all(leg.ok for leg in outcome.legs)
    survivor = outcome.legs[2]
    print(f"scatter #2 settled in {elapsed * 1e3:.0f}ms "
          f"(shard 2 leg: {survivor.attempts} attempts, winner "
          f"{marketplace.get(survivor.winner).name}):")
    for attempt in client.last_hedge:
        print(f"  {attempt.label:9s} → {attempt.outcome}"
              + (f" [{attempt.detail}]" if attempt.detail else ""))
    balance = decode_balance(outcome.items[2].result)
    assert balance == 3 * TOKEN
    print(f"verified balance of user 2 survived the failover: "
          f"{balance / TOKEN:.0f} tokens; every winner's payment acked on "
          f"its own channel")


if __name__ == "__main__":
    main()
