"""Legacy shim so `pip install -e .` works on toolchains without `wheel`."""
from setuptools import setup

setup()
