"""Property tests for the load→fee curve and load-repriced schedules.

Dynamic repricing routes real payments: the curve must be monotone (more
load never gets cheaper), bounded (the cap is a promise to clients), and
stable at zero load (an idle server quotes exactly its base schedule —
repricing must be invisible until there is congestion to price).  The
fixed-point wire encoding (thousandths) must round-trip these guarantees.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import Address
from repro.parp.messages import RpcCall
from repro.parp.pricing import (
    DEFAULT_FEE_SCHEDULE,
    DEFAULT_PRICING_CAP,
    DEFAULT_PRICING_KNEE,
    MULTIPLIER_SCALE,
    RepricedFeeSchedule,
    load_multiplier,
)

loads = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)
knees = st.floats(min_value=0.0, max_value=0.99,
                  allow_nan=False, allow_infinity=False)
caps = st.floats(min_value=1.0, max_value=100.0,
                 allow_nan=False, allow_infinity=False)
multiplier_millis = st.integers(min_value=MULTIPLIER_SCALE,
                                max_value=100 * MULTIPLIER_SCALE)

CALLS = [
    RpcCall.create("eth_getBalance", Address(b"\x11" * 20)),
    RpcCall.create("eth_blockNumber"),
    RpcCall.create("eth_getTransactionCount", Address(b"\x22" * 20)),
]


class TestLoadMultiplierCurve:
    @given(loads, knees, caps)
    @settings(max_examples=300)
    def test_bounded_between_one_and_cap(self, load, knee, cap):
        m = load_multiplier(load, knee=knee, cap=cap)
        assert 1.0 <= m <= cap + 1e-12

    @given(st.tuples(loads, loads), knees, caps)
    @settings(max_examples=300)
    def test_monotone_in_load(self, pair, knee, cap):
        """More congestion never gets cheaper."""
        lo, hi = sorted(pair)
        assert load_multiplier(lo, knee=knee, cap=cap) <= \
            load_multiplier(hi, knee=knee, cap=cap) + 1e-12

    @given(knees, caps)
    @settings(max_examples=200)
    def test_stable_at_zero_load(self, knee, cap):
        """An idle server reprices nothing — and the whole region below the
        knee is exactly flat, so normal operation sees no fee noise."""
        assert load_multiplier(0.0, knee=knee, cap=cap) == 1.0
        if knee > 0.0:
            assert load_multiplier(knee * 0.999, knee=knee, cap=cap) == 1.0
        assert load_multiplier(knee, knee=knee, cap=cap) == 1.0

    @given(knees, caps)
    @settings(max_examples=200)
    def test_saturation_reaches_the_cap(self, knee, cap):
        assert load_multiplier(1.0, knee=knee, cap=cap) == \
            pytest.approx(cap)

    @given(loads)
    @settings(max_examples=100)
    def test_default_knee_and_cap_are_wired_in(self, load):
        assert load_multiplier(load) == load_multiplier(
            load, knee=DEFAULT_PRICING_KNEE, cap=DEFAULT_PRICING_CAP)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            load_multiplier(0.5, cap=0.9)      # a cap below 1 is a discount
        with pytest.raises(ValueError):
            load_multiplier(0.5, knee=1.0)     # knee must leave a ramp
        with pytest.raises(ValueError):
            load_multiplier(0.5, knee=-0.1)


class TestRepricedSchedule:
    @given(multiplier_millis)
    @settings(max_examples=200)
    def test_never_cheaper_than_the_enforced_base(self, millis):
        """Repricing is quote-only and the base is the floor: a repriced
        quote below base would make stale-quote clients fail the server's
        min_increment check."""
        surge = RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                    multiplier_millis=millis)
        for call in CALLS:
            assert surge.price(call) >= DEFAULT_FEE_SCHEDULE.price(call)
        assert surge.batch_price(CALLS) >= \
            DEFAULT_FEE_SCHEDULE.batch_price(CALLS)

    @given(st.tuples(multiplier_millis, multiplier_millis))
    @settings(max_examples=200)
    def test_monotone_in_multiplier(self, pair):
        lo, hi = sorted(pair)
        cheap = RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                    multiplier_millis=lo)
        dear = RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                   multiplier_millis=hi)
        for call in CALLS:
            assert cheap.price(call) <= dear.price(call)
        assert cheap.reference_price() <= dear.reference_price()

    @given(multiplier_millis)
    @settings(max_examples=100)
    def test_scaling_is_exact_fixed_point(self, millis):
        surge = RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                    multiplier_millis=millis)
        for call in CALLS:
            base = DEFAULT_FEE_SCHEDULE.price(call)
            assert surge.price(call) == base * millis // MULTIPLIER_SCALE

    def test_identity_multiplier_is_the_base_schedule(self):
        same = RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                   multiplier_millis=MULTIPLIER_SCALE)
        for call in CALLS:
            assert same.price(call) == DEFAULT_FEE_SCHEDULE.price(call)
        assert same.reference_price() == DEFAULT_FEE_SCHEDULE.reference_price()

    def test_discount_multipliers_rejected(self):
        with pytest.raises(ValueError):
            RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                multiplier_millis=MULTIPLIER_SCALE - 1)
