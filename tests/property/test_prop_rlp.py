"""Property tests: RLP is a bijection on its value domain."""

from hypothesis import given, settings, strategies as st

from repro.rlp import decode, decode_int, encode, encode_int

# Arbitrary nested structures of byte strings (the full RLP value domain).
rlp_items = st.recursive(
    st.binary(max_size=64),
    lambda children: st.lists(children, max_size=6),
    max_leaves=24,
)


class TestRlpRoundtrip:
    @given(rlp_items)
    @settings(max_examples=300)
    def test_decode_inverts_encode(self, item):
        assert decode(encode(item)) == item

    @given(rlp_items, rlp_items)
    @settings(max_examples=150)
    def test_encoding_is_injective(self, a, b):
        if a != b:
            assert encode(a) != encode(b)

    @given(st.binary(max_size=512))
    @settings(max_examples=200)
    def test_single_string_roundtrip(self, data):
        assert decode(encode(data)) == data

    @given(st.integers(min_value=0, max_value=2 ** 256 - 1))
    @settings(max_examples=300)
    def test_integer_roundtrip(self, value):
        assert decode_int(encode_int(value)) == value

    @given(st.integers(min_value=0, max_value=2 ** 256 - 1))
    def test_integer_encoding_minimal(self, value):
        raw = encode_int(value)
        assert not raw or raw[0] != 0  # no leading zeros

    @given(st.integers(min_value=0, max_value=2 ** 64),
           st.integers(min_value=0, max_value=2 ** 64))
    def test_integer_encoding_order_preserving_on_length(self, a, b):
        """Bigger ints never encode shorter."""
        if a < b:
            assert len(encode_int(a)) <= len(encode_int(b))


class TestRlpRobustness:
    """Random byte soup must decode cleanly or raise RLPError — never crash
    with an arbitrary exception (the FDM decodes untrusted calldata)."""

    @given(st.binary(min_size=1, max_size=256))
    @settings(max_examples=400)
    def test_decode_never_crashes(self, blob):
        from repro.rlp import RLPError

        try:
            item = decode(blob)
        except RLPError:
            return
        # whatever decoded must re-encode to the same canonical bytes
        assert encode(item) == blob
