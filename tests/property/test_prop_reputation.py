"""Property tests for the reputation ledger that drives server selection.

The marketplace routes real money by these scores, so the invariants are
load-bearing: decay must only ever fade history (never resurrect it), the
normalized score must stay in [0, 1], a slash must dominate any plausible
volume of honest service, and scoring must not depend on the order events
were recorded in.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import keccak256
from repro.crypto.keys import Address
from repro.parp.reputation import (
    EVENT_FRAUD_SLASHED,
    EVENT_KINDS,
    EVENT_SERVED_OK,
    EVENT_WEIGHTS,
    SOFT_EVENT_KINDS,
    ReputationLedger,
)

NODE = Address(keccak256(b"prop:rep:node")[-20:])

kinds = st.sampled_from(sorted(EVENT_KINDS))
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
events = st.lists(st.tuples(kinds, times), min_size=0, max_size=60)


def ledger_with(event_list, **kwargs) -> ReputationLedger:
    ledger = ReputationLedger(**kwargs)
    for kind, time in event_list:
        ledger.record(NODE, kind, time=time)
    return ledger


class TestDecayMonotonicity:
    @given(events.filter(lambda evs: len(evs) > 0), times, times)
    @settings(max_examples=200)
    def test_positive_raw_score_never_grows_with_age(self, evs, now_a, now_b):
        """Once every event is in the past, more elapsed time can only fade
        the raw score toward zero (from either sign)."""
        ledger = ledger_with(evs)
        horizon = max(t for _, t in evs)
        early, late = sorted((horizon + now_a, horizon + now_b))
        raw_early = ledger.raw_score(NODE, early)
        raw_late = ledger.raw_score(NODE, late)
        assert abs(raw_late) <= abs(raw_early) + 1e-9
        # decay never flips the sign of the aggregate when all events share it
        if all(EVENT_WEIGHTS[k] > 0 for k, _ in evs):
            assert raw_late >= 0.0
        if all(EVENT_WEIGHTS[k] < 0 for k, _ in evs):
            assert raw_late <= 0.0

    @given(times, times)
    @settings(max_examples=100)
    def test_single_event_decays_monotonically(self, gap_a, gap_b):
        ledger = ledger_with([(EVENT_SERVED_OK, 0.0)])
        early, late = sorted((gap_a, gap_b))
        assert ledger.raw_score(NODE, late) <= ledger.raw_score(NODE, early) + 1e-9


class TestScoreBounds:
    @given(events, times)
    @settings(max_examples=300)
    def test_score_always_in_unit_interval(self, evs, now):
        ledger = ledger_with(evs)
        score = ledger.score(NODE, now)
        assert 0.0 <= score <= 1.0

    @given(times)
    def test_unknown_address_gets_newcomer_score(self, now):
        ledger = ReputationLedger(newcomer_score=0.07)
        assert ledger.score(NODE, now) == 0.07
        assert not ledger.is_banned(NODE, now)


class TestSlashDominance:
    @given(st.integers(min_value=0, max_value=400),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_slash_dominates_any_volume_of_served_ok(self, n_ok, age_frac):
        """One adjudicated fraud within a half-life outweighs hundreds of
        verified responses: weight(-1000) × decay(≥0.5) > 400 × 1.0."""
        ledger = ReputationLedger(half_life=100.0)
        for i in range(n_ok):
            ledger.record(NODE, EVENT_SERVED_OK, time=100.0)
        slash_time = age_frac * 100.0  # at most one half-life before `now`
        ledger.record(NODE, EVENT_FRAUD_SLASHED, time=slash_time)
        now = 100.0
        assert ledger.raw_score(NODE, now) < 0.0
        assert ledger.score(NODE, now) == 0.0
        assert ledger.is_banned(NODE, now)


soft_kinds = st.sampled_from(sorted(SOFT_EVENT_KINDS))
positive_kinds = st.sampled_from(sorted(
    k for k in EVENT_KINDS if EVENT_WEIGHTS[k] > 0))
soft_histories = st.lists(
    st.tuples(st.one_of(soft_kinds, positive_kinds), times),
    min_size=1, max_size=60)


class TestSoftEvents:
    """Overload sheds are *soft* negative evidence: they may sink a server's
    ranking, but with no hard misbehavior on record they must never ban it
    or push its score below the soft floor — the no-death-spiral property
    the admission-control PR depends on."""

    @given(soft_histories, times)
    @settings(max_examples=300)
    def test_soft_only_history_never_bans(self, evs, now):
        ledger = ledger_with(evs)
        assert not ledger.has_hard_negative(NODE)
        assert not ledger.is_banned(NODE, now)

    @given(soft_histories, times)
    @settings(max_examples=300)
    def test_soft_only_score_stays_strictly_positive(self, evs, now):
        """However many sheds pile up, a soft-only history never scores 0
        (which would be indistinguishable from banned); once the sheds
        outweigh the successes, the score pins to exactly the soft floor."""
        ledger = ledger_with(evs)
        score = ledger.score(NODE, now)
        assert 0.0 < score <= 1.0
        if ledger.raw_score(NODE, now) <= 0.0:
            assert score == ledger.soft_floor

    @given(soft_histories, times, kinds)
    @settings(max_examples=200)
    def test_one_hard_negative_restores_bannability(self, evs, now, kind):
        """Softness is per-kind, not per-address: mixing in a single hard
        negative makes the usual ban arithmetic apply again."""
        if EVENT_WEIGHTS[kind] >= 0 or kind in SOFT_EVENT_KINDS:
            return
        ledger = ledger_with(evs)
        ledger.record(NODE, kind, time=now)
        assert ledger.has_hard_negative(NODE)
        if ledger.raw_score(NODE, now) <= 0.0:
            assert ledger.is_banned(NODE, now)
            assert ledger.score(NODE, now) == 0.0

    @given(events, times)
    @settings(max_examples=200)
    def test_ban_implies_hard_evidence(self, evs, now):
        """No history whatsoever can produce a ban without at least one
        hard negative event in it."""
        ledger = ledger_with(evs)
        if ledger.is_banned(NODE, now):
            assert ledger.has_hard_negative(NODE)


class TestOrderInvariance:
    @given(events, times, st.randoms(use_true_random=False))
    @settings(max_examples=200)
    def test_recording_order_is_irrelevant(self, evs, now, rng):
        """The score is a sum over (kind, time) pairs: shuffling the order
        they were recorded in — including ties on the same timestamp — must
        not change any score."""
        shuffled = list(evs)
        rng.shuffle(shuffled)
        a = ledger_with(evs)
        b = ledger_with(shuffled)
        raw_a, raw_b = a.raw_score(NODE, now), b.raw_score(NODE, now)
        # float addition is commutative but not associative: allow rounding
        assert raw_a == pytest.approx(raw_b, rel=1e-9, abs=1e-9)
        assert a.score(NODE, now) == pytest.approx(b.score(NODE, now),
                                                   rel=1e-9, abs=1e-9)
        if abs(raw_a) > 1e-6:  # away from the ban boundary, verdicts agree
            assert a.is_banned(NODE, now) == b.is_banned(NODE, now)

    @given(st.lists(kinds, min_size=1, max_size=20), times, times)
    @settings(max_examples=100)
    def test_equal_timestamps_are_fully_symmetric(self, kind_list, when, now):
        """All events stamped at the same instant: any permutation scores
        identically (no hidden dependence on insertion order)."""
        evs = [(kind, when) for kind in kind_list]
        base = ledger_with(evs)
        perm = list(evs)
        random.Random(0xC0FFEE).shuffle(perm)
        other = ledger_with(perm)
        assert base.raw_score(NODE, now) == pytest.approx(
            other.raw_score(NODE, now), rel=1e-9, abs=1e-9)
        assert base.score(NODE, now) == pytest.approx(
            other.score(NODE, now), rel=1e-9, abs=1e-9)
