"""Differential oracle: sharded scatter-gather ≡ single-node serving.

For random account populations, shard counts in {1, 2, 4, 8}, and random
batch queries (present accounts, absent accounts, storage slots, unsharded
calls), the scatter-gathered result must be *indistinguishable* from one
full-range node's ``serve_batch`` answer:

* per-item status and result bytes identical (same proofs, same absence
  answers — slices prove against the same global root);
* the stitched report is VALID and every item's §V-D report is VALID;
* under a flat fee schedule (additive batch price) the **sum of the legs'
  payment increments equals the oracle's batch increment** — sharding
  must not change what a query costs;
* a 1-shard cluster degenerates to the single-node wire path exactly.

Worlds are cached per shard count (devnet setup dominates runtime); the
randomness lives in the query composition.
"""

from hypothesis import given, settings, strategies as st

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import Address, PrivateKey, keccak256
from repro.lightclient.sync import HeaderSyncer
from repro.node import Devnet
from repro.parp import (
    FlatFeeSchedule,
    LightClientSession,
    Marketplace,
    MarketplaceClient,
)
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI

TOKEN = 10 ** 18
BUDGET = 10 ** 15
FLAT = FlatFeeSchedule(flat_price=10 * GWEI)
N_USERS = 16
SHARD_COUNTS = (1, 2, 4, 8)


class ShardedWorld:
    """One devnet: a full-range oracle server plus an N-shard cluster,
    all serving the same chain in-process."""

    def __init__(self, shard_count: int):
        self.shard_count = shard_count
        self.users = [PrivateKey.from_seed(f"prop:shard:user{i}")
                      for i in range(N_USERS)]
        self.lc = PrivateKey.from_seed("prop:shard:lc")
        self.oracle_lc = PrivateKey.from_seed("prop:shard:oracle-lc")
        oracle_op = PrivateKey.from_seed("prop:shard:oracle-op")
        shard_ops = [PrivateKey.from_seed(f"prop:shard:op{i}")
                     for i in range(shard_count)]
        allocations = {k.address: 100 * TOKEN
                       for k in shard_ops + [oracle_op, self.lc,
                                             self.oracle_lc]}
        for i, user in enumerate(self.users):
            allocations[user.address] = (i + 1) * TOKEN
        self.devnet = Devnet(GenesisConfig(allocations=allocations))

        marketplace = Marketplace()
        for server in self.devnet.attach_shard_cluster(
                shard_ops, shard_count, fee_schedule=FLAT):
            marketplace.advertise_server(server)
        self.oracle_server = self.devnet.attach_server(
            oracle_op, name="oracle", fee_schedule=FLAT)
        self.devnet.advance_blocks(2)

        self.client = MarketplaceClient(self.lc, marketplace, budget=BUDGET)
        self.client.connect(min_sessions=shard_count)
        # the oracle stays out of the marketplace: one plain full-range
        # session is the reference implementation the scatter must match
        self.oracle = LightClientSession(
            self.oracle_lc, self.oracle_server,
            HeaderSyncer([self.oracle_server]), fee_schedule=FLAT)
        self.oracle.connect(budget=BUDGET)
        self.sync()

    def sync(self):
        self.client.headers.sync()
        self.oracle.headers.sync()


_WORLDS: dict[int, ShardedWorld] = {}


def world_for(shard_count: int) -> ShardedWorld:
    if shard_count not in _WORLDS:
        _WORLDS[shard_count] = ShardedWorld(shard_count)
    return _WORLDS[shard_count]


def absent_address(tag: int) -> Address:
    return Address(keccak256(b"prop:shard:absent%d" % tag)[12:])


call_specs = st.lists(
    st.one_of(
        st.integers(0, N_USERS - 1).map(lambda i: ("user", i)),
        st.integers(0, 7).map(lambda i: ("absent", i)),
        st.integers(0, 3).map(lambda i: ("storage", i)),
        st.just(("block_number", 0)),
    ),
    min_size=1, max_size=10,
)


def build_calls(world: ShardedWorld, specs) -> list[RpcCall]:
    calls = []
    for kind, arg in specs:
        if kind == "user":
            calls.append(RpcCall.create("eth_getBalance",
                                        world.users[arg].address))
        elif kind == "absent":
            calls.append(RpcCall.create("eth_getBalance",
                                        absent_address(arg)))
        elif kind == "storage":
            calls.append(RpcCall.create(
                "eth_getStorageAt", DEPOSIT_MODULE_ADDRESS,
                keccak256(b"slot%d" % arg)))
        else:
            calls.append(RpcCall.create("eth_blockNumber"))
    return calls


class TestShardedDifferential:
    @given(st.sampled_from(SHARD_COUNTS), call_specs,
           st.integers(min_value=1, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_scatter_matches_single_node_oracle(self, shard_count, specs,
                                                fanout):
        world = world_for(shard_count)
        world.sync()
        calls = build_calls(world, specs)

        oracle_before = world.oracle.channel.spent
        expected = world.oracle.query_batch(calls)
        oracle_cost = expected.amount_paid - oracle_before

        outcome = world.client.query_sharded(calls, fanout=fanout)

        assert expected.report.valid and outcome.report.valid
        assert len(outcome.items) == len(expected.items) == len(calls)
        for got, want in zip(outcome.items, expected.items):
            assert got.call.encode() == want.call.encode()
            assert got.status == want.status
            assert got.result == want.result     # same proof semantics
            assert got.report.valid
        # flat fees are additive, so splitting the batch must cost exactly
        # what the single node charged
        assert outcome.amount_paid == oracle_cost
        # every winner's payment was acked on its own channel
        for leg in outcome.legs:
            assert leg.ok and leg.winner is not None
            session = world.client.sessions[leg.winner]
            assert session.channel.acked == session.channel.spent

    @given(call_specs)
    @settings(max_examples=10, deadline=None)
    def test_one_shard_degenerates_to_single_node_path(self, specs):
        """N=1: the scatter is one leg carrying the whole batch over the
        plain wire path — same items, one winner, one payment."""
        world = world_for(1)
        world.sync()
        calls = build_calls(world, specs)
        outcome = world.client.query_sharded(calls)
        assert len(outcome.legs) == 1
        leg = outcome.legs[0]
        assert leg.positions == tuple(range(len(calls)))
        assert outcome.amount_paid == leg.cost
        expected = world.oracle.query_batch(calls)
        for got, want in zip(outcome.items, expected.items):
            assert (got.status, got.result) == (want.status, want.result)

    @given(st.sampled_from((2, 4, 8)), call_specs)
    @settings(max_examples=10, deadline=None)
    def test_legs_respect_the_shard_map(self, shard_count, specs):
        """Every state-keyed call sits in the leg of the shard covering its
        hashed key, and positions reassemble the original order."""
        from repro.parp.sharding import shard_key_of_call
        from repro.trie import shard_of_key

        world = world_for(shard_count)
        world.sync()
        calls = build_calls(world, specs)
        outcome = world.client.query_sharded(calls)
        seen = sorted(pos for leg in outcome.legs for pos in leg.positions)
        assert seen == list(range(len(calls)))
        for leg in outcome.legs:
            owners = {shard_of_key(key, shard_count) for key in leg.keys}
            assert len(owners) <= 1   # one shard's keys per leg
            for pos, call in zip(leg.positions, leg.calls):
                assert calls[pos].encode() == call.encode()
                key = shard_key_of_call(call)
                if key is not None:
                    assert key in leg.keys
