"""Property tests: multiproofs subsume single proofs, never fabricate."""

from hypothesis import given, settings, strategies as st

from repro.crypto import keccak256
from repro.trie import (
    MerklePatriciaTrie,
    ProofError,
    generate_multiproof,
    generate_proof,
    proof_size,
    verify_multiproof,
    verify_proof,
)

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=1, max_size=32)
mappings = st.dictionaries(keys, values, max_size=24)
key_lists = st.lists(keys, min_size=1, max_size=8)


class TestMultiproofCompleteness:
    @given(mappings, key_lists)
    @settings(max_examples=120, deadline=None)
    def test_round_trip_matches_dict(self, model, probes):
        """For any trie and any key set (present or not), the multiproof
        verifies and reports exactly the dict's answers."""
        trie = MerklePatriciaTrie()
        trie.update(model)
        proof = generate_multiproof(trie, probes)
        results = verify_multiproof(trie.root_hash, probes, proof)
        for probe in probes:
            assert results[probe] == model.get(probe)

    @given(mappings, key_lists)
    @settings(max_examples=80, deadline=None)
    def test_superset_of_single_proofs(self, model, probes):
        """The pool contains every node of every per-key proof, and each
        key still verifies through the single-proof verifier."""
        trie = MerklePatriciaTrie()
        trie.update(model)
        pool = generate_multiproof(trie, probes)
        pool_hashes = {keccak256(node) for node in pool}
        for probe in probes:
            single = generate_proof(trie, probe)
            assert {keccak256(n) for n in single} <= pool_hashes
            assert verify_proof(trie.root_hash, probe, pool) == model.get(probe)

    @given(mappings, key_lists)
    @settings(max_examples=80, deadline=None)
    def test_batch_of_one_equals_single_proof(self, model, probes):
        trie = MerklePatriciaTrie()
        trie.update(model)
        probe = probes[0]
        assert generate_multiproof(trie, [probe]) == generate_proof(trie, probe)

    @given(mappings, key_lists)
    @settings(max_examples=60, deadline=None)
    def test_never_larger_than_concatenation(self, model, probes):
        trie = MerklePatriciaTrie()
        trie.update(model)
        multi = proof_size(generate_multiproof(trie, probes))
        concat = sum(proof_size(generate_proof(trie, p)) for p in probes)
        assert multi <= concat


class TestMultiproofSoundness:
    @given(mappings, key_lists, st.data())
    @settings(max_examples=80, deadline=None)
    def test_tampered_node_never_misleads(self, model, probes, data):
        """Flipping a bit in any pool node either raises or leaves every
        answer consistent with the real trie (hash misses make the node
        vanish; affected walks fail, unaffected walks still answer right)."""
        trie = MerklePatriciaTrie()
        trie.update(model)
        proof = generate_multiproof(trie, probes)
        if not proof:
            return
        index = data.draw(st.integers(0, len(proof) - 1))
        offset = data.draw(st.integers(0, len(proof[index]) - 1))
        tampered = list(proof)
        tampered[index] = (
            tampered[index][:offset]
            + bytes([tampered[index][offset] ^ 0x01])
            + tampered[index][offset + 1:]
        )
        try:
            results = verify_multiproof(trie.root_hash, probes, tampered)
        except ProofError:
            return  # rejected: perfect
        for probe in probes:
            assert results[probe] == model.get(probe)

    @given(mappings, key_lists)
    @settings(max_examples=60, deadline=None)
    def test_missing_key_soundness(self, model, probes):
        """Keys outside the model always verify to None (proven absent)."""
        trie = MerklePatriciaTrie()
        trie.update(model)
        absent = [p for p in probes if p not in model]
        proof = generate_multiproof(trie, probes)
        results = verify_multiproof(trie.root_hash, probes, proof)
        for probe in absent:
            assert results[probe] is None
