"""Cross-backend differential property suite: memory vs append-only disk.

The overlay :class:`MerklePatriciaTrie` is driven over a
:class:`MemoryNodeStore` and an :class:`AppendOnlyFileStore` (fresh tmp
file per example) side by side through random sequences of
put/delete/update/snapshot/revert — the same operation grammar as
``test_prop_trie_overlay.py``, which pins the *engine*; this suite pins the
*storage layer*: at every step both backends must agree bit-for-bit on the
root hash, and at the end on the full ``items()`` listing and the proof
bytes (single and multi) for present and absent probe keys.

A second property closes the durability loop: after the sequence, the file
store is closed and reopened, and the re-attached trie must still agree
with the in-memory run — commitments survive the round trip through disk,
recovery scan included.
"""

import pathlib
import tempfile

from hypothesis import given, settings, strategies as st

from repro.storage import AppendOnlyFileStore, MemoryNodeStore
from repro.trie import (
    MerklePatriciaTrie,
    generate_multiproof,
    generate_proof,
    verify_multiproof,
    verify_proof,
)

# Narrow keys maximize structural collisions (shared prefixes, branch value
# slots, extension splits) — where a backend divergence would surface.
keys = st.binary(min_size=1, max_size=4)
values = st.binary(min_size=1, max_size=40)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("update"),
                  st.dictionaries(keys, values, min_size=1, max_size=6)),
        st.tuples(st.just("snapshot")),
        st.tuples(st.just("revert"), st.integers(min_value=0, max_value=7)),
    ),
    max_size=24,
)


def _apply(op, engines, model, saved):
    """Apply one operation to every engine and the dict model."""
    tag = op[0]
    if tag == "put":
        _, key, value = op
        for engine in engines:
            engine.put(key, value)
        model[key] = value
    elif tag == "delete":
        _, key = op
        for engine in engines:
            assert engine.delete(key) == (key in model)
        model.pop(key, None)
    elif tag == "update":
        _, batch = op
        for engine in engines:
            engine.update(batch)
        model.update(batch)
    elif tag == "snapshot":
        roots = {engine.snapshot() for engine in engines}
        assert len(roots) == 1
        saved.append((roots.pop(), dict(model)))
    elif tag == "revert":
        if not saved:
            return engines
        root, contents = saved[op[1] % len(saved)]
        engines = [engine.at_root(root) for engine in engines]
        model.clear()
        model.update(contents)
    return engines


def _probe_agreement(engines, model):
    """Roots, items, and proof bytes must be identical across backends."""
    roots = {engine.root_hash for engine in engines}
    assert len(roots) == 1
    root = roots.pop()
    listings = [dict(engine.items()) for engine in engines]
    assert all(listing == model for listing in listings)
    probes = list(model)[:4] + [b"\xff\xff\xff\xee", b"\x00"]
    for probe in probes:
        proofs = [generate_proof(engine, probe) for engine in engines]
        assert all(proof == proofs[0] for proof in proofs)
        assert verify_proof(root, probe, proofs[0]) == model.get(probe)
    pools = [generate_multiproof(engine, probes) for engine in engines]
    assert all(pool == pools[0] for pool in pools)
    answers = verify_multiproof(root, probes, pools[0])
    for probe in probes:
        assert answers[probe] == model.get(probe)


class TestDifferentialBackends:
    @given(ops)
    @settings(max_examples=25, deadline=None)
    def test_roots_items_proofs_identical_at_every_step(self, operations):
        with tempfile.TemporaryDirectory() as tmp:
            store = AppendOnlyFileStore(pathlib.Path(tmp) / "nodes.log")
            try:
                engines = [
                    MerklePatriciaTrie(MemoryNodeStore()),
                    MerklePatriciaTrie(store),
                ]
                model: dict[bytes, bytes] = {}
                saved: list[tuple[bytes, dict[bytes, bytes]]] = []
                for op in operations:
                    engines = _apply(op, engines, model, saved)
                    assert len({e.root_hash for e in engines}) == 1
                _probe_agreement(engines, model)
            finally:
                store.close()

    @given(ops)
    @settings(max_examples=25, deadline=None)
    def test_reopened_file_store_matches_memory_run(self, operations):
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "nodes.log"
            store = AppendOnlyFileStore(path)
            try:
                engines = [
                    MerklePatriciaTrie(MemoryNodeStore()),
                    MerklePatriciaTrie(store),
                ]
                model: dict[bytes, bytes] = {}
                saved: list[tuple[bytes, dict[bytes, bytes]]] = []
                for op in operations:
                    engines = _apply(op, engines, model, saved)
                memory, disk = engines
                # a final write makes the engines dirty, so this commit is
                # the store's newest durable batch and tags last_root with
                # the root we expect back after the reopen (a revert with no
                # writes after it leaves last_root on the newest batch — the
                # store records durable commits, not view switches)
                memory.put(b"\xa5" * 3, b"final")
                disk.put(b"\xa5" * 3, b"final")
                model[b"\xa5" * 3] = b"final"
                final_root = disk.commit()
                assert memory.commit() == final_root
            finally:
                store.close()
            reopened = AppendOnlyFileStore(path)
            try:
                assert reopened.last_root == final_root
                revived = MerklePatriciaTrie(reopened, reopened.last_root)
                _probe_agreement([memory, revived], model)
            finally:
                reopened.close()

    @given(st.dictionaries(keys, values, max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_bulk_update_roots_identical(self, batch):
        with tempfile.TemporaryDirectory() as tmp:
            store = AppendOnlyFileStore(pathlib.Path(tmp) / "nodes.log")
            try:
                memory = MerklePatriciaTrie(MemoryNodeStore())
                disk = MerklePatriciaTrie(store)
                memory.update(batch)
                disk.update(batch)
                assert memory.root_hash == disk.root_hash
                assert store.last_root == disk.root_hash
            finally:
                store.close()
