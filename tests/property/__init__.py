"""Hypothesis property tests."""
