"""Gossip relay invariants under arbitrary topologies and interleavings.

Random meshes, random publishers, random latencies: however messages race
through the overlay, (1) no subscriber ever sees one publication twice,
(2) the hop TTL bounds how far a flood travels, and (3) every node's dedup
cache stays within its configured size.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip import GossipMessage, GossipNode
from repro.net import SimNetwork, UniformLatency


def build_world(n_nodes: int, edges: list[tuple[int, int]], seed: int,
                ttl: int, fanout: int, cache: int):
    network = SimNetwork(latency=UniformLatency(0.001, 0.05, seed=seed))
    nodes = [GossipNode(network, f"g{i}", ttl=ttl, fanout=fanout,
                        seen_cache_size=cache) for i in range(n_nodes)]
    for a, b in edges:
        if a != b:
            nodes[a].add_peer(f"g{b}")
            nodes[b].add_peer(f"g{a}")
    return network, nodes


def bfs_distances(n_nodes: int, edges: list[tuple[int, int]],
                  start: int) -> dict[int, int]:
    adjacency: dict[int, set[int]] = {i: set() for i in range(n_nodes)}
    for a, b in edges:
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)
    dist = {start: 0}
    queue = deque([start])
    while queue:
        here = queue.popleft()
        for peer in adjacency[here]:
            if peer not in dist:
                dist[peer] = dist[here] + 1
                queue.append(peer)
    return dist


@st.composite
def topologies(draw):
    n = draw(st.integers(2, 7))
    possible = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), min_size=1,
                          max_size=len(possible), unique=True))
    return n, edges


@settings(max_examples=60, deadline=None)
@given(
    topo=topologies(),
    publishes=st.lists(
        st.tuples(st.integers(0, 6), st.binary(min_size=0, max_size=12)),
        min_size=1, max_size=12),
    seed=st.integers(0, 2 ** 16),
    ttl=st.integers(0, 5),
    fanout=st.integers(1, 6),
)
def test_no_double_delivery_and_ttl_bound(topo, publishes, seed, ttl, fanout):
    n_nodes, edges = topo
    network, nodes = build_world(n_nodes, edges, seed, ttl, fanout, cache=4096)

    deliveries: dict[int, list[bytes]] = {i: [] for i in range(n_nodes)}
    for i, node in enumerate(nodes):
        node.subscribe("t", lambda m, i=i: deliveries[i].append(m.msg_id))

    published: list[tuple[int, GossipMessage]] = []
    for origin, payload in publishes:
        origin %= n_nodes
        published.append((origin, nodes[origin].publish("t", payload)))
    network.run()

    # (1) at-most-once delivery per (subscriber, publication)
    for i in range(n_nodes):
        assert len(deliveries[i]) == len(set(deliveries[i])), (
            f"node {i} saw a message twice")

    # (2) the TTL bounds propagation distance: a publish with ttl T is
    # relayed at most T times, so only nodes within T+1 hops can hear it
    for origin, message in published:
        dist = bfs_distances(n_nodes, edges, origin)
        for i in range(n_nodes):
            if message.msg_id in deliveries[i]:
                assert i in dist, f"unreachable node {i} was delivered to"
                assert dist[i] <= ttl + 1, (
                    f"node {i} at distance {dist[i]} heard a ttl={ttl} flood")

    # conservation: nothing is delivered that was never published
    all_ids = {m.msg_id for _, m in published}
    for i in range(n_nodes):
        assert set(deliveries[i]) <= all_ids


@settings(max_examples=40, deadline=None)
@given(
    topo=topologies(),
    n_messages=st.integers(1, 60),
    cache=st.integers(1, 16),
    seed=st.integers(0, 2 ** 16),
)
def test_seen_cache_stays_bounded(topo, n_messages, cache, seed):
    n_nodes, edges = topo
    network, nodes = build_world(n_nodes, edges, seed, ttl=4, fanout=6,
                                 cache=cache)
    for k in range(n_messages):
        nodes[k % n_nodes].publish("t", k.to_bytes(2, "big"))
        if k % 5 == 0:
            network.run()
    network.run()
    for node in nodes:
        assert len(node._seen) <= cache


@settings(max_examples=40, deadline=None)
@given(
    duplicates=st.integers(1, 8),
    seed=st.integers(0, 2 ** 16),
)
def test_direct_injection_of_relay_copies_dedups(duplicates, seed):
    """Even raw re-injections of the same wire message (what a buggy or
    hostile peer would send) deliver exactly once."""
    network = SimNetwork(latency=UniformLatency(0.001, 0.02, seed=seed))
    node = GossipNode(network, "victim")
    seen: list[bytes] = []
    node.subscribe("t", lambda m: seen.append(m.msg_id))
    message = GossipMessage(topic="t", payload=b"x", origin="ghost", seq=0,
                            ttl=3)
    for i in range(duplicates):
        # vary the ttl the way relay copies do: identity must not change
        copy = GossipMessage(topic="t", payload=b"x", origin="ghost", seq=0,
                             ttl=max(0, 3 - i))
        network.send(f"peer{i}", "victim", copy, size_bytes=copy.wire_size)
    network.run()
    assert len(seen) == 1
    assert node.stats.duplicates_dropped == duplicates - 1
