"""Differential property suite: overlay engine vs the naive reference.

Random sequences of put/delete/update/snapshot/revert are driven through the
overlay-cached :class:`MerklePatriciaTrie` and the eager
:class:`NaiveMerklePatriciaTrie` side by side.  After every step both engines
must agree — bit for bit — on the root hash, the full ``items()`` listing,
and the proof bytes for present and absent probe keys.  This is the
acceptance oracle for the deferred-hashing refactor: identical commitments,
radically different hashing schedule.
"""

from hypothesis import given, settings, strategies as st

from repro.trie import (
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    NaiveMerklePatriciaTrie,
    generate_multiproof,
    generate_proof,
    verify_multiproof,
    verify_proof,
)

# A narrow key space maximizes structural collisions (shared prefixes,
# branch value slots, extension splits) — where the engines could diverge.
keys = st.binary(min_size=1, max_size=4)
values = st.binary(min_size=1, max_size=40)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("update"),
                  st.dictionaries(keys, values, min_size=1, max_size=6)),
        st.tuples(st.just("snapshot")),
        st.tuples(st.just("revert"), st.integers(min_value=0, max_value=7)),
    ),
    max_size=24,
)


def _apply(op, engines, model, saved):
    """Apply one operation to every engine and the dict model."""
    tag = op[0]
    if tag == "put":
        _, key, value = op
        for engine in engines:
            engine.put(key, value)
        model[key] = value
    elif tag == "delete":
        _, key = op
        for engine in engines:
            assert engine.delete(key) == (key in model)
        model.pop(key, None)
    elif tag == "update":
        _, batch = op
        for engine in engines:
            engine.update(batch)
        model.update(batch)
    elif tag == "snapshot":
        roots = {engine.snapshot() for engine in engines}
        assert len(roots) == 1
        saved.append((roots.pop(), dict(model)))
    elif tag == "revert":
        if not saved:
            return engines
        root, contents = saved[op[1] % len(saved)]
        # a remembered root re-attaches as a full read/write trie
        engines = [engine.at_root(root) for engine in engines]
        model.clear()
        model.update(contents)
    return engines


class TestDifferentialOverlay:
    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_roots_items_proofs_identical_at_every_step(self, operations):
        engines = [MerklePatriciaTrie(), NaiveMerklePatriciaTrie()]
        model: dict[bytes, bytes] = {}
        saved: list[tuple[bytes, dict[bytes, bytes]]] = []
        for op in operations:
            engines = _apply(op, engines, model, saved)
            fast, naive = engines
            assert fast.root_hash == naive.root_hash
        fast, naive = engines
        assert dict(fast.items()) == dict(naive.items()) == model
        probes = list(model)[:4] + [b"\xff\xff\xff\xee", b"\x00"]
        for probe in probes:
            proof_fast = generate_proof(fast, probe)
            proof_naive = generate_proof(naive, probe)
            assert proof_fast == proof_naive
            assert verify_proof(fast.root_hash, probe, proof_fast) == model.get(probe)

    @given(st.dictionaries(keys, values, max_size=24))
    @settings(max_examples=40, deadline=None)
    def test_bulk_update_root_matches_reference(self, batch):
        fast = MerklePatriciaTrie()
        naive = NaiveMerklePatriciaTrie()
        fast.update(batch)
        naive.update(batch)
        assert fast.root_hash == naive.root_hash
        if not batch:
            assert fast.root_hash == EMPTY_TRIE_ROOT

    @given(st.dictionaries(keys, values, min_size=1, max_size=16),
           st.lists(keys, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_multiproof_bytes_identical(self, batch, probes):
        fast = MerklePatriciaTrie()
        naive = NaiveMerklePatriciaTrie()
        fast.update(batch)
        naive.update(batch)
        pool_fast = generate_multiproof(fast, probes)
        pool_naive = generate_multiproof(naive, probes)
        assert pool_fast == pool_naive
        answers = verify_multiproof(fast.root_hash, probes, pool_fast)
        for probe in probes:
            assert answers[probe] == batch.get(probe)

    @given(st.dictionaries(keys, values, min_size=1, max_size=16), ops)
    @settings(max_examples=30, deadline=None)
    def test_interleaved_commits_do_not_change_roots(self, batch, operations):
        """Committing mid-sequence (root reads) never perturbs the outcome."""
        eager = MerklePatriciaTrie()
        lazy = MerklePatriciaTrie()
        eager.update(batch)
        lazy.update(batch)
        model = dict(batch)
        saved: list[tuple[bytes, dict[bytes, bytes]]] = []
        model2 = dict(batch)
        saved2: list[tuple[bytes, dict[bytes, bytes]]] = []
        for op in operations:
            [eager] = _apply(op, [eager], model, saved)
            eager.commit()  # force per-step hashing
            [lazy] = _apply(op, [lazy], model2, saved2)
        assert eager.root_hash == lazy.root_hash
