"""Property tests: the shard partitioner and the slice/recombination laws.

The sharding design stands on three claims, pinned here over random tries,
random keys, and every legal shard count:

* **Routing is a partition.**  Every hashed key belongs to exactly one
  shard, the ranges jointly cover [0, 16) with no overlap, and the three
  views of routing — ``shard_of_key``, ``ShardRange.covers``, and the
  directory's ``ServerAdvertisement.covers`` — can never disagree.
* **Slices prove like the full trie.**  For in-range keys a slice's proofs
  are bit-for-bit the full trie's (so they verify against the *global*
  root); out-of-range walks dead-end on a missing node.
* **Recombination is lossless.**  Masked shard heads over a full partition
  re-hash to exactly the global root, and commitments are deterministic.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import keccak256
from repro.trie import (
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    ProofError,
    ShardError,
    ShardRange,
    TrieError,
    combine_shard_heads,
    extract_shard_nodes,
    generate_proof,
    shard_commitment,
    shard_head,
    shard_of_key,
    verify_proof,
)

SHARD_COUNTS = (1, 2, 4, 8, 16)

# secure-trie-like keys: fixed-width hashes, uniformly spread over nibbles
hashed_keys = st.binary(min_size=32, max_size=32)
values = st.binary(min_size=1, max_size=32)
mappings = st.dictionaries(hashed_keys, values, max_size=40)
counts = st.sampled_from(SHARD_COUNTS)


def build(model):
    trie = MerklePatriciaTrie()
    trie.update(model)
    return trie


class TestPartitioner:
    @given(hashed_keys, counts)
    @settings(max_examples=200, deadline=None)
    def test_every_key_lands_in_exactly_one_shard(self, key, count):
        owners = [i for i in range(count)
                  if ShardRange.of(i, count).covers(key)]
        assert owners == [shard_of_key(key, count)]

    @given(counts)
    @settings(max_examples=20, deadline=None)
    def test_ranges_cover_without_overlap(self, count):
        ranges = [ShardRange.of(i, count) for i in range(count)]
        for nibble in range(16):
            assert sum(r.covers_nibble(nibble) for r in ranges) == 1
        assert ranges[0].lo == 0 and ranges[-1].hi == 16

    @given(hashed_keys, counts)
    @settings(max_examples=200, deadline=None)
    def test_routing_stable_across_views(self, key, count):
        """Client (shard_of_key), server (ShardRange.covers), and directory
        (advertisement.covers) all route a key the same way."""
        from repro.crypto import Address
        from repro.parp import ServerAdvertisement

        index = shard_of_key(key, count)
        shard = ShardRange.of(index, count)
        assert shard.covers(key)
        ad = ServerAdvertisement(address=Address.zero(), endpoint=None,
                                 fee_schedule=None, shard=shard)
        assert ad.covers(key)
        # every other shard's view disagrees symmetrically
        for other in range(count):
            if other != index:
                assert not ShardRange.of(other, count).covers(key)

    @given(st.integers(min_value=-4, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_invalid_counts_rejected(self, count):
        if count in SHARD_COUNTS:
            assert shard_of_key(b"\x00" * 32, count) == 0
            return
        with pytest.raises(ShardError):
            shard_of_key(b"\x00" * 32, count)
        with pytest.raises(ShardError):
            ShardRange.of(0, count)

    def test_invalid_ranges_rejected(self):
        for lo, hi in ((0, 0), (3, 2), (-1, 4), (0, 17)):
            with pytest.raises(ShardError):
                ShardRange(lo, hi)
        with pytest.raises(ShardError):
            ShardRange.of(4, 4)


class TestSliceProofs:
    @given(mappings, counts, st.lists(hashed_keys, min_size=1, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_in_range_proofs_identical_to_full_trie(self, model, count,
                                                    probes):
        """A slice proves its own keys (present or absent) byte-for-byte
        like the full trie — hence against the unchanged global root."""
        trie = build(model)
        root = trie.root_hash
        for index in range(count):
            shard = ShardRange.of(index, count)
            slice_ = extract_shard_nodes(trie, shard)
            sliced = MerklePatriciaTrie(dict(slice_.nodes), root_hash=root)
            for probe in probes:
                if not shard.covers(probe):
                    continue
                proof = generate_proof(sliced, probe)
                assert proof == generate_proof(trie, probe)
                assert verify_proof(root, probe, proof) == model.get(probe)

    @given(mappings, st.sampled_from((2, 4, 8, 16)), hashed_keys)
    @settings(max_examples=80, deadline=None)
    def test_out_of_range_keys_structurally_unprovable(self, model, count,
                                                       probe):
        """A slice cannot even *generate* a proof for an out-of-range key
        whose subtree exists: the walk hits a missing node.  (An absent
        subtree is legitimately provable-absent from the root alone.)"""
        trie = build(model)
        root = trie.root_hash
        index = shard_of_key(probe, count)
        foreign = ShardRange.of((index + 1) % count, count)
        slice_ = extract_shard_nodes(trie, foreign)
        sliced = MerklePatriciaTrie(dict(slice_.nodes), root_hash=root)
        try:
            proof = generate_proof(sliced, probe)
        except (ProofError, TrieError):
            return  # dead-ended on a missing node: enforcement worked
        # a proof that did come out must still be *sound*: it can only
        # show what the full trie would (typically: absence via the root)
        assert verify_proof(root, probe, proof) == model.get(probe)

    @given(mappings, counts)
    @settings(max_examples=60, deadline=None)
    def test_slice_items_partition_the_model(self, model, count):
        """Each key/value lands in exactly one shard's extracted items."""
        trie = build(model)
        seen = {}
        for index in range(count):
            slice_ = extract_shard_nodes(trie, ShardRange.of(index, count))
            for key, value in slice_.items:
                assert key not in seen
                seen[key] = value
        assert seen == model


class TestRecombination:
    @given(mappings, counts)
    @settings(max_examples=80, deadline=None)
    def test_combined_heads_rehash_to_global_root(self, model, count):
        trie = build(model)
        root = trie.root_hash
        heads = [(ShardRange.of(i, count), shard_head(trie, ShardRange.of(i, count)))
                 for i in range(count)]
        if root == EMPTY_TRIE_ROOT:
            assert combine_shard_heads(heads) == EMPTY_TRIE_ROOT
        else:
            assert combine_shard_heads(heads) == root

    @given(mappings, counts)
    @settings(max_examples=60, deadline=None)
    def test_commitments_deterministic_and_range_bound(self, model, count):
        trie = build(model)
        for i in range(count):
            shard = ShardRange.of(i, count)
            commitment = shard_commitment(trie, shard)
            assert commitment == shard_commitment(trie, shard)
            assert len(commitment) == 32
            # the range bounds are part of the preimage: the same head
            # advertised under a different range must not collide
            assert commitment != keccak256(b"")

    @given(mappings)
    @settings(max_examples=40, deadline=None)
    def test_incomplete_partition_rejected(self, model):
        trie = build(model)
        halves = [(ShardRange.of(i, 2), shard_head(trie, ShardRange.of(i, 2)))
                  for i in range(2)]
        with pytest.raises(ShardError):
            combine_shard_heads(halves[:1])          # gap
        with pytest.raises(ShardError):
            combine_shard_heads(halves + halves[1:])  # overlap
        with pytest.raises(ShardError):
            combine_shard_heads([])
