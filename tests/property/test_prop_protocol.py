"""Property tests on protocol data: messages, channels, settlement, HP codes."""

from hypothesis import given, settings, strategies as st

from repro.crypto import PrivateKey, keccak256
from repro.parp.channel import ChannelError, ClientChannel, ServerChannel
from repro.parp.messages import (
    MessageError,
    PARPRequest,
    PARPResponse,
    RpcCall,
)
from repro.trie.nibbles import hp_decode, hp_encode

LC = PrivateKey.from_seed("prop:lc")
FN = PrivateKey.from_seed("prop:fn")
ALPHA = keccak256(b"prop")[:16]
H_B = keccak256(b"prop-h")

nibbles = st.lists(st.integers(0, 15), max_size=24).map(tuple)
amounts = st.integers(min_value=0, max_value=(1 << 128) - 1)
methods = st.sampled_from(["eth_getBalance", "eth_blockNumber", "m"])


class TestHexPrefix:
    @given(nibbles, st.booleans())
    @settings(max_examples=300)
    def test_roundtrip(self, path, is_leaf):
        assert hp_decode(hp_encode(path, is_leaf)) == (path, is_leaf)

    @given(nibbles, nibbles, st.booleans(), st.booleans())
    def test_injective(self, a, b, leaf_a, leaf_b):
        if (a, leaf_a) != (b, leaf_b):
            assert hp_encode(a, leaf_a) != hp_encode(b, leaf_b)


class TestMessageRoundtrips:
    @given(amounts, methods, st.binary(max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_request_wire_roundtrip(self, amount, method, param):
        request = PARPRequest.build(
            ALPHA, H_B, amount, RpcCall.create(method, param), LC,
        )
        decoded = PARPRequest.decode_wire(request.encode_wire())
        assert decoded == request
        assert decoded.verify() == LC.address

    @given(amounts, st.integers(0, 2 ** 64 - 1), st.binary(max_size=64),
           st.lists(st.binary(min_size=1, max_size=64), max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_response_wire_roundtrip(self, amount, m_b, result, proof):
        request = PARPRequest.build(
            ALPHA, H_B, amount, RpcCall.create("eth_blockNumber"), LC,
        )
        response = PARPResponse.build(ALPHA, request, m_b, result, proof, FN)
        decoded = PARPResponse.decode_wire(response.encode_wire())
        assert decoded == response
        assert decoded.signer(ALPHA) == FN.address

    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    def test_request_decode_never_crashes(self, blob):
        try:
            PARPRequest.decode_wire(blob)
        except MessageError:
            pass

    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    def test_response_decode_never_crashes(self, blob):
        try:
            PARPResponse.decode_wire(blob)
        except MessageError:
            pass


class TestChannelInvariants:
    @given(st.integers(1, 10 ** 12), st.lists(st.integers(0, 10 ** 9), max_size=20))
    @settings(max_examples=100)
    def test_client_spend_monotone_and_bounded(self, budget, prices):
        channel = ClientChannel(ALPHA, FN.address, budget=budget)
        previous = 0
        for price in prices:
            try:
                amount = channel.next_amount(price)
            except ChannelError:
                assert channel.spent + price > budget
                continue
            channel.record_request(amount)
            assert amount >= previous
            assert channel.spent <= budget
            previous = amount

    @given(st.integers(1, 10 ** 12), st.integers(0, 10 ** 12))
    @settings(max_examples=100)
    def test_settlement_conserves_budget(self, budget, claimed):
        """CMM math: payout + refund == budget for any claimed amount."""
        payout = min(claimed, budget)
        refund = budget - payout
        assert payout + refund == budget
        assert payout >= 0 and refund >= 0

    @given(st.lists(st.integers(1, 10 ** 9), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_server_retains_maximum(self, increments):
        budget = sum(increments)
        server_channel = ServerChannel(ALPHA, LC.address, budget=budget)
        cumulative = 0
        for inc in increments:
            cumulative += inc
            request = PARPRequest.build(
                ALPHA, H_B, cumulative, RpcCall.create("eth_blockNumber"), LC,
            )
            server_channel.accept_request_payment(request, min_increment=inc)
        assert server_channel.latest_amount == cumulative
        _, amount, sig = server_channel.redeemable_state()
        # the retained proof is on-chain valid for exactly the max amount
        from repro.crypto import Signature, recover_address
        from repro.parp.messages import payment_digest

        assert recover_address(payment_digest(ALPHA, amount),
                               Signature.from_bytes(sig)) == LC.address


class TestPcnConservation:
    @given(st.lists(st.integers(1, 1_000), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_capacity_conserved_across_payments(self, payments):
        from repro.crypto.keys import Address
        from repro.parp.pcn import ChannelGraph, PCNError

        src = Address(b"\x01" * 20)
        mid = Address(b"\x02" * 20)
        dst = Address(b"\x03" * 20)
        graph = ChannelGraph()
        graph.add_channel(src, mid, capacity=100_000, fee_ppm=10_000)
        graph.add_channel(mid, dst, capacity=100_000, fee_ppm=10_000)
        sent_total = 0
        for amount in payments:
            try:
                route = graph.pay(src, dst, amount)
            except PCNError:
                continue
            sent_total += route.total_sent
        assert graph.capacity(src, mid) == 100_000 - sent_total
        assert graph.capacity(src, mid) >= 0
