"""Property tests on the crypto substrate (bounded examples: EC is slow)."""

from hypothesis import given, settings, strategies as st

from repro.crypto import PrivateKey, keccak256, recover_address
from repro.crypto.ecdsa import Signature, SignatureError
from repro.crypto.secp256k1 import N

secrets = st.integers(min_value=1, max_value=N - 1)
payloads = st.binary(min_size=0, max_size=64)


class TestEcdsaProperties:
    @given(secrets, payloads)
    @settings(max_examples=15, deadline=None)
    def test_sign_recover_roundtrip(self, secret, payload):
        key = PrivateKey(secret)
        digest = keccak256(payload)
        signature = key.sign(digest)
        assert recover_address(digest, signature) == key.address
        assert signature.s <= N // 2  # always low-s

    @given(secrets, payloads, payloads)
    @settings(max_examples=10, deadline=None)
    def test_signature_does_not_transfer(self, secret, payload_a, payload_b):
        if keccak256(payload_a) == keccak256(payload_b):
            return
        key = PrivateKey(secret)
        signature = key.sign(keccak256(payload_a))
        try:
            recovered = recover_address(keccak256(payload_b), signature)
        except SignatureError:
            return
        assert recovered != key.address

    @given(st.binary(min_size=65, max_size=65))
    @settings(max_examples=60, deadline=None)
    def test_recover_never_crashes_on_garbage(self, blob):
        digest = keccak256(b"fixed message")
        try:
            signature = Signature.from_bytes(blob)
            recover_address(digest, signature)
        except SignatureError:
            pass


class TestKeccakProperties:
    @given(payloads, payloads)
    @settings(max_examples=150)
    def test_no_accidental_collisions(self, a, b):
        if a != b:
            assert keccak256(a) != keccak256(b)

    @given(st.binary(max_size=500), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_chunking_irrelevant(self, data, chunk):
        from repro.crypto import Keccak256

        hasher = Keccak256()
        for i in range(0, len(data), chunk):
            hasher.update(data[i:i + chunk])
        assert hasher.digest() == keccak256(data)


class TestCommitmentProperties:
    @given(st.integers(0, 2 ** 64), st.integers(1, N - 1))
    @settings(max_examples=10, deadline=None)
    def test_commitments_bind(self, value, blinding):
        from repro.crypto.commitments import commit

        commitment, _ = commit(value, blinding=blinding)
        assert commitment.verify(value, blinding)
        assert not commitment.verify(value + 1, blinding)
