"""Property tests: the MPT behaves like a dict, commits uniquely, proves all."""

from hypothesis import given, settings, strategies as st

from repro.trie import (
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    ProofError,
    generate_proof,
    verify_proof,
)

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=1, max_size=32)
mappings = st.dictionaries(keys, values, max_size=24)


class TestModelConformance:
    @given(mappings)
    @settings(max_examples=120, deadline=None)
    def test_behaves_like_dict(self, model):
        trie = MerklePatriciaTrie()
        trie.update(model)
        for key, value in model.items():
            assert trie.get(key) == value
        assert dict(trie.items()) == model
        assert len(trie) == len(model)

    @given(mappings, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_root_is_insertion_order_independent(self, model, rng):
        ordered = MerklePatriciaTrie()
        ordered.update(model)
        shuffled_keys = list(model)
        rng.shuffle(shuffled_keys)
        shuffled = MerklePatriciaTrie()
        for key in shuffled_keys:
            shuffled.put(key, model[key])
        assert shuffled.root_hash == ordered.root_hash

    @given(mappings, mappings)
    @settings(max_examples=60, deadline=None)
    def test_root_injective_on_contents(self, a, b):
        ta, tb = MerklePatriciaTrie(), MerklePatriciaTrie()
        ta.update(a)
        tb.update(b)
        assert (ta.root_hash == tb.root_hash) == (a == b)

    @given(mappings, st.sets(keys, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_delete_equals_rebuild(self, model, to_delete):
        trie = MerklePatriciaTrie()
        trie.update(model)
        for key in to_delete:
            trie.delete(key)
        remaining = {k: v for k, v in model.items() if k not in to_delete}
        rebuilt = MerklePatriciaTrie()
        rebuilt.update(remaining)
        assert trie.root_hash == rebuilt.root_hash
        if not remaining:
            assert trie.root_hash == EMPTY_TRIE_ROOT


class TestProofCompleteness:
    @given(mappings, keys)
    @settings(max_examples=120, deadline=None)
    def test_every_proof_verifies(self, model, probe):
        """For any trie and any key (present or not), the generated proof
        verifies and reports exactly the dict's answer."""
        trie = MerklePatriciaTrie()
        trie.update(model)
        proof = generate_proof(trie, probe)
        assert verify_proof(trie.root_hash, probe, proof) == model.get(probe)

    @given(mappings, keys, st.integers(0, 2 ** 32))
    @settings(max_examples=80, deadline=None)
    def test_proofs_do_not_transfer_between_roots(self, model, probe, salt):
        """A proof generated for one trie never proves a *different* value
        under another trie's root."""
        if not model:
            return
        trie = MerklePatriciaTrie()
        trie.update(model)
        other = MerklePatriciaTrie()
        other.update(model)
        other.put(b"salt", salt.to_bytes(5, "big") + b"\x01")
        proof = generate_proof(trie, probe)
        try:
            result = verify_proof(other.root_hash, probe, proof)
        except ProofError:
            return  # rejected outright: perfect
        # If it verified structurally, the answer must still be consistent
        # with *other*'s actual content, never a fabrication.
        assert result == dict(other.items()).get(probe)
