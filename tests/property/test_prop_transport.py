"""Concurrency semantics of the futures transport, property-tested.

K requests in flight across M servers under random latencies, loss, and
partitions: every :class:`PendingReply` must resolve **exactly once**
(value, error, or cancel) and a reply must never resolve a future it does
not correlate with — the two invariants everything above the transport
(hedged queries, pipelined sessions, first-valid failover) stands on.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import Address
from repro.net import (
    RemoteError,
    SimEndpoint,
    SimNetwork,
    SimServerBinding,
    UniformLatency,
    as_completed,
)
from repro.parp.server import ServeError


class EchoServer:
    """Echoes (server name, token) — enough to detect cross-correlation."""

    def __init__(self, name: str) -> None:
        self.name = name

    def serve_header(self, token):
        return (self.name, token)

    def serve_head_number(self):
        raise RuntimeError("injected server bug")

    def serve_request(self, wire):
        raise ServeError("injected serve rejection")


#: per-request behavior classes the strategy draws from
KINDS = ("echo", "remote-bug", "serve-error")


@settings(max_examples=40, deadline=None)
@given(
    n_servers=st.integers(2, 4),
    seed=st.integers(0, 2 ** 16),
    drop_rate=st.sampled_from([0.0, 0.0, 0.25, 0.5]),
    requests=st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from(KINDS)),
        min_size=1, max_size=16,
    ),
    partitions=st.sets(st.integers(0, 3), max_size=2),
)
def test_replies_resolve_exactly_once_and_never_cross(
        n_servers, seed, drop_rate, requests, partitions):
    net = SimNetwork(latency=UniformLatency(0.005, 0.25, seed=seed),
                     drop_rate=drop_rate, seed=seed)
    endpoints = []
    for j in range(n_servers):
        SimServerBinding(net, f"srv-{j}", EchoServer(f"srv-{j}"))
        endpoints.append(SimEndpoint(net, f"lc-{j}", f"srv-{j}",
                                     Address.zero(), timeout=5.0))

    resolutions: Counter[int] = Counter()
    issued = []  # (reply, server_index, token, kind)
    half = len(requests) // 2
    for i, (server_pick, kind) in enumerate(requests):
        if i == half:
            # mid-burst, sever some client↔server links: in-flight traffic
            # (either direction) on those links is lost
            for j in partitions:
                if j < n_servers:
                    net.partition(f"lc-{j}", f"srv-{j}")
        j = server_pick % n_servers
        endpoint = endpoints[j]
        if kind == "echo":
            reply = endpoint.submit("serve_header", i)
        elif kind == "remote-bug":
            reply = endpoint.submit("serve_head_number")
        else:
            reply = endpoint.submit("serve_request", b"x")
        reply.add_done_callback(lambda r, i=i: resolutions.update([i]))
        issued.append((reply, j, i, kind))

    net.run()  # drain everything that can still be delivered

    for reply, j, token, kind in issued:
        if reply.ok:
            assert kind == "echo"
            # the value correlates with exactly this request's server+token
            assert reply.result() == (f"srv-{j}", token)
        elif reply.done():
            exc = reply.exception()
            if kind == "remote-bug":
                assert isinstance(exc, RemoteError)
                assert exc.remote_type == "RuntimeError"
            else:
                assert kind == "serve-error"
                assert isinstance(exc, ServeError)
                assert not isinstance(exc, RemoteError)
        else:
            # dropped or partitioned: still pending — cancel resolves it
            assert reply.cancel() is True
            assert reply.cancelled()

    # the exactly-once invariant: every reply resolved one single time
    assert resolutions == Counter({i: 1 for i in range(len(issued))})
    # and no correlation leaked: nothing is left pending on any endpoint
    for endpoint in endpoints:
        assert endpoint.in_flight == 0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    drop_rate=st.sampled_from([0.0, 0.0, 0.3]),
    legs=st.lists(
        st.lists(st.sampled_from(("echo", "remote-bug")),
                 min_size=1, max_size=3),
        min_size=2, max_size=4,
    ),
)
def test_multi_leg_collect_pays_each_leg_exactly_once(seed, drop_rate, legs):
    """The scatter-gather collection pattern over raw futures.

    Each leg races several candidate servers; ``as_completed`` hands replies
    back in resolution order, the first OK reply of a leg wins (one "payment
    ack"), and the leg's losers are cancelled on the spot.  Invariants:

    * at most one payment per leg, and (lossless) exactly one per leg that
      has any honest candidate;
    * a winner's value correlates with its own leg+candidate — cancelling
      siblings never leaks a reply across legs;
    * every reply a loser's server still sends lands as ``late_replies``,
      never resolving a cancelled future;
    * every future resolves exactly once and nothing stays in flight.
    """
    net = SimNetwork(latency=UniformLatency(0.005, 0.25, seed=seed),
                     drop_rate=drop_rate, seed=seed)
    entries = {}   # reply → (leg index, candidate index)
    endpoints = []
    resolutions: Counter[tuple] = Counter()
    for i, kinds in enumerate(legs):
        for c, kind in enumerate(kinds):
            SimServerBinding(net, f"srv-{i}-{c}", EchoServer(f"srv-{i}-{c}"))
            endpoint = SimEndpoint(net, f"lc-{i}-{c}", f"srv-{i}-{c}",
                                   Address.zero(), timeout=5.0)
            endpoints.append(endpoint)
            if kind == "echo":
                reply = endpoint.submit("serve_header", (i, c))
            else:
                reply = endpoint.submit("serve_head_number")
            reply.add_done_callback(
                lambda r, key=(i, c): resolutions.update([key]))
            entries[reply] = (i, c)

    winners: dict[int, object] = {}
    payments = Counter()
    cancelled_in_flight = 0
    for reply in as_completed(list(entries)):
        i, c = entries[reply]
        if i in winners or not reply.ok:
            continue   # a loser that landed before (or without) cancellation
        winners[i] = reply
        payments[i] += 1
        for other, (oi, _) in entries.items():
            if oi == i and other is not reply and not other.done():
                if other.cancel():
                    cancelled_in_flight += 1

    net.run()   # drain the losers' replies still crossing the wire
    for reply in entries:
        if not reply.done():      # an entirely-dropped straggler
            assert reply.cancel() is True

    for i, reply in winners.items():
        i_, c = entries[reply]
        assert i_ == i and payments[i] == 1
        assert reply.result() == (f"srv-{i}-{c}", (i, c))
    assert all(count <= 1 for count in payments.values())
    if drop_rate == 0.0:
        # lossless: every leg with an honest candidate pays exactly once,
        # and every cancelled loser's reply came home late (counted, dropped)
        for i, kinds in enumerate(legs):
            assert payments[i] == (1 if "echo" in kinds else 0)
        assert sum(e.late_replies for e in endpoints) == cancelled_in_flight
    else:
        assert sum(e.late_replies for e in endpoints) <= cancelled_in_flight

    assert resolutions == Counter({key: 1 for key in entries.values()})
    for endpoint in endpoints:
        assert endpoint.in_flight == 0
