"""Channel closure disputes: stale states, challenges, window resets (§IV-E.4)."""

import pytest

from repro.contracts import CHANNELS_MODULE_ADDRESS, CHANNEL_CLOSED
from repro.parp.constants import DISPUTE_WINDOW_BLOCKS
from repro.parp.messages import payment_digest

from ..conftest import make_parp_env


def close_with_state(devnet, closer_key, alpha, amount, sig):
    return devnet.execute(closer_key, CHANNELS_MODULE_ADDRESS,
                          "close_channel", [alpha, amount, sig])


class TestDisputes:
    def test_fn_closes_with_stale_state_lc_wins_dispute(self, devnet, keys):
        """A greedy-but-lazy FN closes with an OLD state; the... wait — the
        stale state favours the LC.  The realistic griefing is the LC (or a
        colluding FN) closing with a stale LOW amount to underpay the FN;
        here the *FN* holds the newest signature and must challenge."""
        env = make_parp_env(devnet, keys)
        session = env.session

        # LC makes several paid requests: FN now holds a = spent.
        session.get_balance(keys.alice.address)
        session.get_balance(keys.bob.address)
        session.get_balance(keys.alice.address)
        latest = env.server.channels[env.alpha].latest_amount
        assert latest == session.channel.spent

        # The LC tries to settle with its FIRST (stale, cheaper) state.
        stale_amount = session.history[0].amount_paid
        stale_sig = keys.lc.sign(
            payment_digest(env.alpha, stale_amount)).to_bytes()
        result = close_with_state(devnet, keys.lc, env.alpha,
                                  stale_amount, stale_sig)
        assert result.succeeded

        # The FN challenges with the newest signed state inside the window.
        alpha_b, amount, sig = env.server.channels[env.alpha].redeemable_state()
        challenge = devnet.execute(keys.fn, CHANNELS_MODULE_ADDRESS,
                                   "submit_state", [alpha_b, amount, sig])
        assert challenge.succeeded

        devnet.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
        fn_before = devnet.balance_of(keys.fn.address)
        settle = devnet.execute(keys.wn, CHANNELS_MODULE_ADDRESS,
                                "confirm_closure", [env.alpha])
        assert settle.succeeded
        # FN received the FULL latest amount, not the stale one.
        assert devnet.balance_of(keys.fn.address) - fn_before == latest

    def test_challenge_resets_the_window(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        session = env.session
        session.get_balance(keys.alice.address)
        session.get_balance(keys.alice.address)

        stale = session.history[0].amount_paid
        sig = keys.lc.sign(payment_digest(env.alpha, stale)).to_bytes()
        close_with_state(devnet, keys.lc, env.alpha, stale, sig)

        # let most of the window pass, then challenge
        devnet.advance_blocks(DISPUTE_WINDOW_BLOCKS - 2)
        alpha_b, amount, newest_sig = env.server.channels[env.alpha].redeemable_state()
        devnet.execute(keys.fn, CHANNELS_MODULE_ADDRESS, "submit_state",
                       [alpha_b, amount, newest_sig])

        # the original deadline has passed, but the reset keeps settlement shut
        devnet.advance_blocks(3)
        early = devnet.execute(keys.wn, CHANNELS_MODULE_ADDRESS,
                               "confirm_closure", [env.alpha])
        assert not early.succeeded

        devnet.advance_blocks(DISPUTE_WINDOW_BLOCKS)
        late = devnet.execute(keys.wn, CHANNELS_MODULE_ADDRESS,
                              "confirm_closure", [env.alpha])
        assert late.succeeded

    def test_zero_state_close_refunds_everything(self, devnet, keys):
        """FN closing immediately with a=0 returns the full budget to LC."""
        env = make_parp_env(devnet, keys, budget=10 ** 14)
        result = close_with_state(devnet, keys.fn, env.alpha, 0, b"")
        assert result.succeeded
        devnet.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
        lc_before = devnet.balance_of(keys.lc.address)
        devnet.execute(keys.wn, CHANNELS_MODULE_ADDRESS,
                       "confirm_closure", [env.alpha])
        assert devnet.balance_of(keys.lc.address) - lc_before == 10 ** 14
        assert devnet.call_view(CHANNELS_MODULE_ADDRESS, "channel_status",
                                [env.alpha]) == CHANNEL_CLOSED

    def test_server_refuses_to_serve_after_marking_closed(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        env.server.mark_closed(env.alpha)
        from repro.parp import InvalidResponse

        with pytest.raises(InvalidResponse):
            env.session.get_balance(keys.alice.address)
