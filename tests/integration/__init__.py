"""End-to-end protocol scenarios."""
