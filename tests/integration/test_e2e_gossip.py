"""The gossip scenario matrix: push heads, partitions, equivocation, poisoning.

The tentpole end to end: staked servers announce every seal on the
``new_heads`` topic, marketplace clients follow the chain without polling,
an equivocating announcer is slashed on-chain from gossip evidence alone,
and shared reputation steers a newcomer away from a known-bad server while
a poisoning minority can demote — but never exile — an honest one.
"""

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.gossip import GossipNode, HeadAnnouncement, TOPIC_NEW_HEADS
from repro.net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet, FullNode
from repro.parp import (
    FlatFeeSchedule,
    FullNodeServer,
    Marketplace,
    MarketplaceClient,
    ServerAdvertisement,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.fraudproof import WitnessService
from repro.parp.pricing import GWEI
from repro.parp.reputation import EVENT_EQUIVOCATION

TOKEN = 10 ** 18
BUDGET = 10 ** 15

CLIENT_SEEDS = ("victim", "newcomer", "newcomer-blind", "watcher",
                "poisoned", "puller", "liar0", "liar1", "liar2")


@dataclass
class GossipWorld:
    devnet: Devnet
    network: SimNetwork
    operators: list[PrivateKey]
    servers: list[FullNodeServer]
    mesh: list[GossipNode]
    marketplace: Marketplace
    witness: WitnessService
    alice: PrivateKey
    bindings: list[SimServerBinding] = field(default_factory=list)
    clients: dict[str, MarketplaceClient] = field(default_factory=dict)
    client_nodes: dict[str, GossipNode] = field(default_factory=dict)

    def add_client(self, seed: str, peer_index: int = 0, join: bool = True,
                   stake: bool = False,
                   staleness: Optional[float] = None) -> MarketplaceClient:
        """A marketplace client, optionally gossip-joined via one mesh peer."""
        key = PrivateKey.from_seed(f"e2e:gsp:{seed}")
        if stake:
            self.devnet.stake_full_node(key)
        client = MarketplaceClient(key, self.marketplace,
                                   witness=self.witness, budget=BUDGET,
                                   clock=self.network.clock.now)
        if join:
            node = GossipNode(self.network, f"lc-gossip-{seed}")
            node.add_peer(self.mesh[peer_index].name)
            self.mesh[peer_index].add_peer(node.name)
            client.join_gossip(node, stake_of=self.devnet.stake_of,
                               staleness=staleness)
            self.client_nodes[seed] = node
        self.clients[seed] = client
        return client

    def settle(self, client: MarketplaceClient) -> None:
        """Flush in-flight gossip and pull the client level with the real
        chain (``connect()`` mines channel-open blocks the client may not
        have polled past yet)."""
        self.network.run()
        client.headers.sync_to(self.devnet.chain.head.header.number)

    def real_tip(self) -> int:
        return self.devnet.chain.head.header.number


def make_gossip_world(n_servers: int = 3, evil_index: Optional[int] = None,
                      prices_gwei: Optional[list[int]] = None) -> GossipWorld:
    operators = [PrivateKey.from_seed(f"e2e:gsp:op{i}")
                 for i in range(n_servers)]
    wn = PrivateKey.from_seed("e2e:gsp:wn")
    alice = PrivateKey.from_seed("e2e:gsp:alice")
    allocations = {k.address: 200 * TOKEN for k in operators + [wn]}
    allocations[alice.address] = 5 * TOKEN
    for seed in CLIENT_SEEDS:
        allocations[PrivateKey.from_seed(f"e2e:gsp:{seed}").address] = \
            100 * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))
    for op in operators:
        devnet.stake_full_node(op)
    devnet.advance_blocks(2)

    network = SimNetwork(latency=FixedLatency(0.02))
    marketplace = Marketplace()
    servers: list[FullNodeServer] = []
    bindings: list[SimServerBinding] = []
    for i, op in enumerate(operators):
        schedule = FlatFeeSchedule(
            flat_price=(prices_gwei[i] if prices_gwei else 10) * GWEI)
        node = FullNode(devnet.chain, key=op, name=f"srv-{i}")
        if i == evil_index:
            server = MaliciousFullNodeServer(node, attack="inflate_balance",
                                             fee_schedule=schedule)
        else:
            server = FullNodeServer(node, fee_schedule=schedule)
        bindings.append(SimServerBinding(network, f"srv-{i}", server))
        endpoint = SimEndpoint(network, f"lc-ep-{i}", f"srv-{i}",
                               server.address, timeout=2.0)
        marketplace.advertise(ServerAdvertisement.for_server(
            server, name=f"srv-{i}", endpoint=endpoint))
        servers.append(server)
    mesh = devnet.attach_gossip_mesh(network, servers)
    witness = WitnessService(FullNode(devnet.chain, key=wn, name="wn"))
    return GossipWorld(devnet=devnet, network=network, operators=operators,
                       servers=servers, mesh=mesh, marketplace=marketplace,
                       witness=witness, alice=alice, bindings=bindings)


class TestPushPropagation:
    def test_subscribed_client_follows_heads_without_polling(self):
        world = make_gossip_world()
        client = world.add_client("watcher")
        client.connect()
        world.settle(client)
        syncer = client.headers
        base_fetched = syncer.headers_fetched
        base_pushed = syncer.headers_pushed
        base_announced = [s.stats.heads_announced for s in world.servers]

        for _ in range(3):
            world.devnet.advance_blocks(1)
            world.network.run()
            assert syncer.chain.tip_number == world.real_tip()

        # every new head arrived over gossip: zero additional pulls
        assert syncer.headers_pushed == base_pushed + 3
        assert syncer.headers_fetched == base_fetched
        # and a sync() poll is satisfied from push freshness (no sources hit)
        skipped_before = syncer.push_syncs_skipped
        syncer.sync()
        assert syncer.push_syncs_skipped == skipped_before + 1
        # each server announced each seal exactly once
        for server, base in zip(world.servers, base_announced):
            assert server.stats.heads_announced == base + 3

    def test_quorum_of_distinct_announcers_is_required(self):
        world = make_gossip_world()
        client = world.add_client("watcher")
        client.connect()
        world.settle(client)
        syncer = client.headers
        assert client.head_gossip.quorum == 2   # majority of 3 sources
        base_tip = syncer.chain.tip_number
        base_applied = client.head_gossip.stats.quorum_applied

        # silence two of three announcers: one voice is not enough for the
        # push path (the pull fallback still works when asked)
        world.servers[1].disable_gossip()
        world.servers[2].disable_gossip()
        world.devnet.advance_blocks(1)
        world.network.run()
        assert syncer.chain.tip_number == base_tip           # no quorum
        assert client.head_gossip.stats.quorum_applied == base_applied
        assert syncer.sync_to(world.real_tip()).number == world.real_tip()


class TestPartitionHeal:
    def test_resubscribe_after_heal_catches_up(self):
        world = make_gossip_world()
        client = world.add_client("watcher")
        client.connect()
        world.settle(client)
        syncer = client.headers
        node = world.client_nodes["watcher"]

        world.devnet.advance_blocks(1)
        world.network.run()
        tip_before_partition = syncer.chain.tip_number
        assert tip_before_partition == world.real_tip()

        world.network.partition(node.name, world.mesh[0].name)
        world.devnet.advance_blocks(2)         # two seals the client misses
        world.network.run()
        assert syncer.chain.tip_number == tip_before_partition

        world.network.heal(node.name, world.mesh[0].name)
        client.head_gossip.resubscribe()       # the recovery ritual
        client.rep_share.resubscribe()
        world.devnet.advance_blocks(1)
        world.network.run()
        # the fresh announcement revealed the gap; the pull path filled it
        assert syncer.chain.tip_number == tip_before_partition + 3
        assert client.head_gossip.stats.heads_pulled >= 1


class TestPushPullFallback:
    def test_quiet_topic_falls_back_to_polling(self):
        world = make_gossip_world()
        client = world.add_client("puller", staleness=5.0)
        client.connect()
        world.settle(client)
        syncer = client.headers
        base_pushed = syncer.headers_pushed
        base_fetched = syncer.headers_fetched

        # cut gossip entirely; the chain keeps moving
        world.network.isolate(world.client_nodes["puller"].name)
        world.devnet.advance_blocks(2)
        world.network.run()
        stale_tip = syncer.chain.tip_number
        assert syncer.headers_pushed == base_pushed

        # inside the staleness window sync() trusts the push feed …
        assert syncer.push_fresh()
        syncer.sync()
        assert syncer.chain.tip_number == stale_tip

        # … but past the deadline it polls the sources again
        world.network.run_until(world.network.clock.now() + 6.0)
        assert not syncer.push_fresh()
        syncer.sync()
        assert syncer.chain.tip_number == stale_tip + 2
        assert syncer.headers_fetched == base_fetched + 2


class TestEquivocation:
    def test_equivocating_announcer_is_slashed_on_chain(self):
        world = make_gossip_world()
        client = world.add_client("watcher")
        client.connect()
        world.settle(client)
        evil_op = world.operators[2]
        deposit_before = world.devnet.stake_of(evil_op.address)
        assert deposit_before > 0
        balance_before = world.devnet.balance_of(client.address)

        world.devnet.advance_blocks(1)
        header = world.devnet.chain.head.header
        forged = replace(header, timestamp=header.timestamp + 9)
        # the equivocator signs a second, conflicting head at the height
        world.mesh[2].publish(
            TOPIC_NEW_HEADS, HeadAnnouncement.build(forged, evil_op).encode())
        world.network.run()

        head = client.head_gossip
        assert head.stats.equivocations == 1
        assert evil_op.address in head.equivocators
        # first-hand hard evidence in the client's ledger …
        kinds = [e.kind for e in client.reputation.events_of(evil_op.address)]
        assert EVENT_EQUIVOCATION in kinds
        # … and the on-chain slash went through via the witness
        assert world.witness.confirmed == 1
        assert world.devnet.stake_of(evil_op.address) == 0
        # the client (as reporter) collected the defrauded-party share
        slash_share = deposit_before // 4
        assert (world.devnet.balance_of(client.address)
                == balance_before + slash_share)
        # the caught equivocation was shared onward over the gossip topic
        assert client.rep_share.stats.published >= 1

    def test_slashed_equivocator_loses_announcer_voice(self):
        world = make_gossip_world()
        client = world.add_client("watcher")
        client.connect()
        world.settle(client)
        evil_op = world.operators[2]
        world.devnet.advance_blocks(1)
        header = world.devnet.chain.head.header
        forged = replace(header, timestamp=header.timestamp + 9)
        world.mesh[2].publish(
            TOPIC_NEW_HEADS, HeadAnnouncement.build(forged, evil_op).encode())
        world.network.run()
        assert world.devnet.stake_of(evil_op.address) == 0

        # quorum is still met by the two honest announcers, so heads flow on
        seen_before = client.head_gossip.stats.announced_seen
        tip = client.headers.chain.tip_number
        assert tip == world.real_tip()
        world.devnet.advance_blocks(1)
        world.network.run()
        assert client.headers.chain.tip_number == tip + 1
        # only the two honest voices were counted: the equivocator's
        # announcements are dropped at the door
        assert client.head_gossip.stats.announced_seen == seen_before + 2


class TestSharedReputation:
    def test_newcomer_avoids_known_bad_server_with_zero_paid_queries(self):
        # evil is slightly cheaper (wins a cold ranking) but not so cheap
        # that price outweighs a gossip-floored reputation
        world = make_gossip_world(evil_index=0, prices_gwei=[8, 10, 10])
        evil = world.servers[0]

        # the newcomer subscribes before the victim's report goes out —
        # flood gossip carries no history, only what you are around to hear
        newcomer = world.add_client("newcomer", peer_index=1)

        # the victim (a staked reporter) pays the tuition and shares it
        victim = world.add_client("victim", stake=True)
        victim.connect()
        assert victim.get_balance(world.alice.address) == 5 * TOKEN
        assert victim.stats.frauds_detected == 1
        assert victim.stats.frauds_slashed == 1
        assert victim.rep_share.stats.published >= 1
        world.network.run()                      # let the gossip spread

        # the newcomer has already heard about srv-0, never having met it
        assert newcomer.rep_share.stats.merged >= 1
        remote = [e for e in newcomer.reputation.events_of(evil.address)
                  if e.remote]
        assert remote and remote[0].reporter == victim.address

        ranked = [ad.address for ad in newcomer.eligible()]
        assert ranked[-1] == evil.address        # demoted to last resort
        newcomer.connect()
        for _ in range(4):
            assert newcomer.get_balance(world.alice.address) == 5 * TOKEN
        # zero paid queries to the known-bad server: no channel, no fraud
        assert evil.address not in newcomer.sessions
        assert newcomer.stats.frauds_detected == 0
        # the only channel evil ever saw was the victim's tuition
        victim_session = (victim.sessions.get(evil.address)
                          or dict(victim.retired).get(evil.address))
        evil_alphas = set(evil.channels)
        if victim_session is not None and victim_session.channel is not None:
            evil_alphas.discard(victim_session.channel.alpha)
        assert not evil_alphas

    def test_blind_newcomer_pays_the_tuition(self):
        """The control: without gossip the same newcomer walks straight
        into the cheapest (malicious) server."""
        world = make_gossip_world(evil_index=0, prices_gwei=[8, 10, 10])
        blind = world.add_client("newcomer-blind", join=False)
        blind.connect()
        assert blind.get_balance(world.alice.address) == 5 * TOKEN
        assert blind.stats.frauds_detected == 1  # learned it the hard way

    def test_poisoning_minority_demotes_but_never_bans(self):
        world = make_gossip_world(prices_gwei=[10, 10, 10])
        target = world.servers[0]

        # an honest client builds first-hand history with the target
        honest = world.add_client("poisoned")
        honest.connect()
        for _ in range(5):
            assert honest.get_balance(world.alice.address) == 5 * TOKEN

        # three hostile *staked* reporters smear the target over gossip
        from repro.gossip.repshare import ReputationShare
        from repro.parp.reputation import EVENT_FRAUD_SLASHED, ReputationLedger
        for i in range(3):
            key = PrivateKey.from_seed(f"e2e:gsp:liar{i}")
            world.devnet.stake_full_node(key)
            node = GossipNode(world.network, f"liar-gossip-{i}")
            node.add_peer(world.mesh[i].name)
            world.mesh[i].add_peer(node.name)
            liar = ReputationShare(node, ReputationLedger(), key,
                                   stake_of=world.devnet.stake_of)
            for shot in range(10):               # way past the budget
                liar.publish(target.address, EVENT_FRAUD_SLASHED,
                             f"fabricated-{i}-{shot}".encode())
        world.network.run()

        now = world.network.clock.now()
        ledger = honest.reputation
        assert not ledger.has_hard_negative(target.address)
        assert not ledger.is_banned(target.address, now)
        # the budget capped each liar; the soft floor caught the score
        assert honest.rep_share.stats.budget_capped >= 1
        assert ledger.score(target.address, now) >= ledger.soft_floor
        assert target.address in [ad.address for ad in honest.eligible()]
        # and the client's own good experience keeps completing queries
        assert honest.get_balance(world.alice.address) == 5 * TOKEN
