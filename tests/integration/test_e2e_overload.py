"""Overload survival end to end: the admission/backpressure matrix.

Open-loop load does not wait for responses, so a saturated server must
*shed* — and everything downstream of the shed is what these tests pin:

* a fully saturated cluster answers every request with either a verified
  response or a verified **signed** ``Overloaded`` reply, and the admitted
  requests' latency stays inside the configured queue bound (bounded
  queueing, the no-collapse property);
* a hot shard sheds while the cold shard keeps serving — overload is
  per-server, never contagion;
* a shed server is demoted (backoff + re-rank), recovers when its backlog
  drains, and is ranked back in — with zero reputation slashes for honest
  shedding along the way;
* hedged fan-out honors the server's signed ``retry_after`` instead of
  re-issuing into the saturated window (no retry storms).
"""

import pytest

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey, keccak256
from repro.net import SimEndpoint, SimNetwork, SimServerBinding, UniformLatency
from repro.node import Devnet
from repro.parp import (
    AdmissionConfig,
    AdmissionController,
    FlatFeeSchedule,
    Marketplace,
    MarketplaceClient,
)
from repro.parp.client import ServerOverloaded
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.parp.reputation import EVENT_OVERLOADED
from repro.trie import ShardRange, shard_of_key

TOKEN = 10 ** 18
BUDGET = 10 ** 15
TIMEOUT = 30.0
LATENCY = 0.02          # constant: floods must arrive in send order


def user_in_shard(index: int, count: int) -> PrivateKey:
    for i in range(512):
        key = PrivateKey.from_seed(f"e2e:ovl:u{i}")
        if shard_of_key(keccak256(bytes(key.address)), count) == index:
            return key
    raise AssertionError("no seed found for shard")  # pragma: no cover


class OverloadWorld:
    """N admission-controlled servers on one sim network, one client.

    ``admission[i]`` configures server i's gate (None = unbounded, seed
    behavior); ``shards`` optionally assigns server i a shard range.
    """

    def __init__(self, admission, prices_gwei=None, shards=None):
        n = len(admission)
        prices_gwei = prices_gwei or [10] * n
        self.operators = [PrivateKey.from_seed(f"e2e:ovl:op{i}")
                          for i in range(n)]
        self.lc = PrivateKey.from_seed("e2e:ovl:lc")
        self.alice = PrivateKey.from_seed("e2e:ovl:alice")
        allocations = {k.address: 100 * TOKEN
                       for k in self.operators + [self.lc]}
        allocations[self.alice.address] = 5 * TOKEN
        if shards:
            self.shard_users = [user_in_shard(i, len(shards))
                                for i in range(len(shards))]
            for u in self.shard_users:
                allocations.setdefault(u.address, 1 * TOKEN)
        self.devnet = Devnet(GenesisConfig(allocations=allocations))
        self.network = SimNetwork(
            latency=UniformLatency(LATENCY, LATENCY, seed=11))

        self.marketplace = Marketplace()
        self.servers = []
        self.bindings = []
        for i, op in enumerate(self.operators):
            kwargs = {}
            if admission[i] is not None:
                # the admission clock is the *sim* clock (backlog drains with
                # simulated time); the server's own clock stays on chain
                # timestamps, which is what handshake expiries settle against
                kwargs["admission"] = AdmissionController(
                    admission[i], clock=self.network.clock)
            if shards:
                kwargs["shard_range"] = ShardRange.of(i, len(shards))
            server = self.devnet.attach_server(
                op, name=f"srv-{i}",
                fee_schedule=FlatFeeSchedule(flat_price=prices_gwei[i] * GWEI),
                **kwargs)
            self.servers.append(server)
            self.bindings.append(
                SimServerBinding(self.network, f"srv-{i}", server))
            endpoint = SimEndpoint(self.network, f"lc-{i}", f"srv-{i}",
                                   server.address, timeout=TIMEOUT)
            self.marketplace.advertise_server(server, name=f"srv-{i}",
                                              endpoint=endpoint)
        self.devnet.advance_blocks(2)
        self.client = MarketplaceClient(
            self.lc, self.marketplace, budget=BUDGET,
            clock=self.network.clock)

    def connect(self):
        self.client.connect(min_sessions=len(self.servers))
        self.client.headers.sync()

    def balance_call(self, key=None):
        return RpcCall.create("eth_getBalance", (key or self.alice).address)

    def session_of(self, i):
        return self.client.sessions[self.servers[i].address]

    def flood(self, i, count, call=None):
        """Open-loop: fire ``count`` requests at server i without waiting,
        then run the network just far enough to deliver them all (building
        the backlog); returns the pending replies."""
        session = self.session_of(i)
        pendings = [session.begin_request(call or self.balance_call())
                    for _ in range(count)]
        self.network.run_until(self.network.clock.now() + 2 * LATENCY)
        return pendings

    def collect_all(self, i, pendings):
        """Resolve every pending into ("ok" | "overloaded", value)."""
        session = self.session_of(i)
        results = []
        for pending in pendings:
            try:
                results.append(("ok", session.collect(pending)))
            except ServerOverloaded as exc:
                results.append(("overloaded", exc))
        return results


class TestSaturatedClusterShedsBoundedly:
    def test_every_request_gets_a_verified_answer_within_the_queue_bound(self):
        """Blast 3× the queue budget at both servers at once: admissions
        and sheds partition the load exactly, every shed is signed by the
        right server over the right request, and the whole burst resolves
        within the queue bound + network latency — not the unbounded-queue
        collapse time."""
        cfg = AdmissionConfig(max_queue_cost=4.0, service_time=0.1, seed=1)
        world = OverloadWorld(admission=[cfg, cfg])
        world.connect()
        burst = 12                         # 3× each server's queue budget
        start = world.network.clock.now()

        floods = [world.flood(i, burst) for i in range(2)]
        for i in range(2):
            results = world.collect_all(i, floods[i])
            oks = [r for tag, r in results if tag == "ok"]
            sheds = [r for tag, r in results if tag == "overloaded"]
            assert len(oks) + len(sheds) == burst
            assert len(oks) == 4           # exactly the queue budget
            assert world.servers[i].stats.admitted == 4
            assert world.servers[i].stats.shed == burst - 4
            for outcome in oks:
                assert outcome.report.classification.value == "valid"
            for exc in sheds:              # verified: signed by *this* server
                assert exc.reply.signer() == world.servers[i].address
                assert exc.retry_after > 0.0
                assert exc.load == pytest.approx(1.0, abs=0.05)

        elapsed = world.network.clock.now() - start
        queue_bound = 4.0 * 0.1
        assert elapsed <= queue_bound + 4 * LATENCY + 0.05

    def test_load_info_probe_tracks_the_backlog(self):
        cfg = AdmissionConfig(max_queue_cost=4.0, service_time=0.5, seed=2)
        world = OverloadWorld(admission=[cfg])
        world.connect()
        idle = world.servers[0].load_info()
        assert idle["load"] == 0.0 and idle["fee_multiplier"] == 1.0

        world.flood(0, 4)
        busy = world.servers[0].load_info()
        assert busy["load"] == pytest.approx(1.0, abs=0.1)
        assert busy["fee_multiplier"] > 1.0
        assert busy["admitted"] == 4

        self_drain = world.network.clock.now() + 10.0
        world.network.run_until(self_drain)
        drained = world.servers[0].load_info()
        assert drained["load"] == 0.0
        assert drained["fee_multiplier"] == 1.0

    def test_repriced_ads_are_republished_under_load(self):
        """Under load the server quotes surged fees; republishing pushes the
        new sticker price into the directory, and after drain another
        republish restores the base quote."""
        cfg = AdmissionConfig(max_queue_cost=4.0, service_time=0.5, seed=3)
        world = OverloadWorld(admission=[cfg])
        world.connect()
        server = world.servers[0]
        base_ref = world.marketplace.get(server.address).reference_price

        world.flood(0, 4)
        ad = world.marketplace.republish(server)
        assert ad.reference_price > base_ref
        assert ad.name == "srv-0"          # identity survives the refresh

        world.network.run_until(world.network.clock.now() + 10.0)
        ad = world.marketplace.republish(server)
        assert ad.reference_price == base_ref


class TestHotShardShedsColdServes:
    def test_overload_is_per_server_not_contagion(self):
        cfg = AdmissionConfig(max_queue_cost=2.0, service_time=0.5, seed=4)
        world = OverloadWorld(admission=[cfg, cfg], shards=(0, 1))
        world.connect()
        hot_user, cold_user = world.shard_users

        # hammer the hot shard far past its queue budget…
        floods = world.flood(0, 8, call=world.balance_call(hot_user))
        # …and the cold shard still serves immediately, at base fees
        outcome = world.client.request_call(world.balance_call(cold_user))
        assert outcome.report.classification.value == "valid"
        assert world.servers[1].stats.shed == 0
        assert world.servers[1].current_fee_multiplier() == 1.0

        results = world.collect_all(0, floods)
        tags = [tag for tag, _ in results]
        assert tags.count("overloaded") == 6   # budget 2 of 8 admitted
        assert world.servers[0].stats.shed == 6
        # the hot shard's sheds left no hard reputation damage
        assert not world.client.reputation.is_banned(
            world.servers[0].address, world.client._now())


class TestShedRecoverRerank:
    def test_soft_failover_then_ranked_back_in_after_drain(self):
        """srv-0 (cheap, top-ranked) saturates: the routed query soft-fails
        over to srv-1 with no slash; while backed off, srv-0 ranks last;
        once the backlog drains it is ranked back in and serves again."""
        cfg = AdmissionConfig(max_queue_cost=2.0, service_time=0.5, seed=5)
        world = OverloadWorld(admission=[cfg, None], prices_gwei=[5, 50])
        world.connect()
        client = world.client
        assert [ad.label for ad in client.eligible()][0] == "srv-0"

        world.flood(0, 2)                  # fill srv-0's queue exactly
        outcome = client.request_call(world.balance_call())
        assert outcome.report.classification.value == "valid"
        assert client.stats.soft_failovers >= 1
        kinds = [e.kind for e in
                 client.reputation.events_of(world.servers[0].address)]
        assert EVENT_OVERLOADED in kinds
        assert not client.reputation.is_banned(world.servers[0].address,
                                               client._now())
        # no channel concession for the shed: spent advanced, acked did not
        session = world.session_of(0)
        assert session.channel.spent > session.channel.acked
        # while backed off, the shedder is demoted to last resort
        assert [ad.label for ad in client.eligible()][-1] == "srv-0"

        # drain: backlog and backoff both expire with sim time
        world.network.run_until(world.network.clock.now() + 30.0)
        assert [ad.label for ad in client.eligible()][0] == "srv-0"
        served_before = world.servers[0].stats.requests_served
        outcome = client.request_call(world.balance_call())
        assert outcome.report.classification.value == "valid"
        assert world.servers[0].stats.requests_served == served_before + 1

    def test_repeated_sheds_demote_but_never_ban(self):
        cfg = AdmissionConfig(max_queue_cost=1.0, service_time=5.0, seed=6)
        world = OverloadWorld(admission=[cfg, None], prices_gwei=[5, 50])
        world.connect()
        client = world.client
        for _ in range(4):
            # let the previous round's backlog and backoff expire, then
            # re-saturate: srv-0 is genuinely re-tried (and re-sheds) each time
            world.network.run_until(world.network.clock.now() + 30.0)
            world.flood(0, 2)
            outcome = client.request_call(world.balance_call())
            assert outcome.report.classification.value == "valid"
        address = world.servers[0].address
        assert client.stats.soft_failovers >= 4
        assert not client.reputation.is_banned(address, client._now())
        # demoted to the soft floor, still selectable as last resort
        assert client.trust(address) >= client.selection_threshold
        assert any(ad.address == address for ad in client.eligible())


class TestHedgedFanoutHonorsRetryAfter:
    def test_race_waits_out_the_backoff_instead_of_hammering(self):
        """Both servers saturated: every first-round leg sheds; the race
        defers, waits out the servers' signed retry_after (counted as
        retry storms avoided), re-issues into the drained window, and
        completes — zero reputation slashes end to end."""
        cfg = AdmissionConfig(max_queue_cost=2.0, service_time=0.2, seed=7)
        world = OverloadWorld(admission=[cfg,
                                         AdmissionConfig(max_queue_cost=2.0,
                                                         service_time=0.2,
                                                         seed=8)])
        world.connect()
        client = world.client
        for i in range(2):
            world.flood(i, 2)              # both queues exactly full
        start = world.network.clock.now()

        outcome = client.query_hedged([world.balance_call()], fanout=2)

        assert outcome.report.classification.value == "valid"
        assert all(item.ok for item in outcome.items)
        tags = [a.outcome for a in client.last_hedge]
        assert tags.count("overloaded") >= 1
        assert "won" in tags
        assert client.stats.soft_failovers >= 1
        assert client.stats.retry_storms_avoided >= 1
        # the retry waited for capacity instead of re-arriving instantly
        assert world.network.clock.now() > start
        for server in world.servers:
            assert not client.reputation.is_banned(server.address,
                                                   client._now())

    def test_serial_path_counts_avoided_storms_too(self):
        cfg = AdmissionConfig(max_queue_cost=1.0, service_time=0.2, seed=9)
        world = OverloadWorld(admission=[cfg])
        world.connect()
        world.flood(0, 1)
        outcome = world.client.request_call(world.balance_call())
        assert outcome.report.classification.value == "valid"
        assert world.client.stats.soft_failovers >= 1
        assert world.client.stats.retry_storms_avoided >= 1
        assert world.client.stats.queries == 1
