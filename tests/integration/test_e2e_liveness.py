"""§V-C liveness: catching channels that are closed behind the client's back."""

import pytest

from repro.contracts import CHANNELS_MODULE_ADDRESS
from repro.parp.liveness import LivenessAlert, LivenessMonitor
from repro.parp.states import ChannelStatus

from ..conftest import make_parp_env


class TestLiveness:
    def test_healthy_channel_probes_clean(self, parp_env):
        monitor = LivenessMonitor(parp_env.session, period=30.0)
        observation = monitor.probe(now=0.0)
        assert observation.claimed_status == ChannelStatus.OPEN.value
        # second probe takes the verified path too (verify_every=2)
        observation = monitor.probe(now=30.0)
        assert observation.verified_status == ChannelStatus.OPEN.value
        assert not observation.divergent

    def test_due_schedule(self, parp_env):
        monitor = LivenessMonitor(parp_env.session, period=30.0)
        assert monitor.due(0.0)
        monitor.probe(now=0.0)
        assert not monitor.due(10.0)
        assert monitor.due(31.0)

    def test_secret_close_detected_via_verified_probe(self, devnet, keys):
        """The FN closes the channel on-chain but keeps answering 'open'."""
        env = make_parp_env(devnet, keys)
        # FN secretly closes on-chain (with its latest — here zero — state).
        result = devnet.execute(keys.fn, CHANNELS_MODULE_ADDRESS,
                                "close_channel", [env.alpha, 0, b""])
        assert result.succeeded
        # The malicious server keeps its local record open, so the fast
        # (unverified) probe still says OPEN…
        assert env.session.channel_status_fast() == ChannelStatus.OPEN.value
        # …but the verified storage-proof probe exposes CLOSING.
        verified = env.session.channel_status_verified()
        assert verified == ChannelStatus.CLOSING.value

        monitor = LivenessMonitor(env.session, period=1.0, verify_every=1)
        with pytest.raises(LivenessAlert) as excinfo:
            monitor.probe(now=0.0)
        assert excinfo.value.observation.divergent

    def test_monitor_alerts_when_channel_closing(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        devnet.execute(keys.lc, CHANNELS_MODULE_ADDRESS, "close_channel",
                       [env.alpha, 0, b""])
        env.server.mark_closed(env.alpha)  # honest server updates its view
        monitor = LivenessMonitor(env.session, verify_every=1)
        with pytest.raises(LivenessAlert):
            monitor.probe(now=0.0)

    def test_verified_status_is_proof_backed(self, parp_env):
        """The status read is an eth_getStorageAt with a storage proof — the
        response verification (classification VALID) is what makes it
        trustworthy even from an untrusted node."""
        status = parp_env.session.channel_status_verified()
        assert status == ChannelStatus.OPEN.value
        last = parp_env.session.history[-1]
        assert last.report.valid
        assert last.request.call.method == "eth_getStorageAt"
        assert len(last.response.proof) > 0
