"""PARP under message loss and delay — the strong-synchrony boundary.

The paper assumes bounded-delay delivery between honest parties (§IV-D).
These tests probe what happens at and beyond that boundary: dropped
messages surface as timeouts (never as silent corruption), sessions remain
usable after transient loss, and the client's money is never double-spent
by retries because cumulative amounts are idempotent.
"""

import pytest

from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.lightclient import HeaderSyncer
from repro.net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import FullNode
from repro.parp import (
    FullNodeServer,
    InvalidResponse,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
)

from ..conftest import TOKEN


def build(devnet, keys, drop_rate=0.0, seed=0, timeout=1.0):
    devnet.execute(keys.fn, DEPOSIT_MODULE_ADDRESS, "deposit",
                   value=MIN_FULL_NODE_DEPOSIT)
    devnet.advance_blocks(1)
    network = SimNetwork(latency=FixedLatency(0.01), drop_rate=drop_rate,
                         seed=seed)
    server = FullNodeServer(FullNode(devnet.chain, key=keys.fn, name="fn"))
    SimServerBinding(network, "fn", server)
    endpoint = SimEndpoint(network, "lc", "fn", server.address,
                           timeout=timeout)
    session = LightClientSession(keys.lc, endpoint,
                                 HeaderSyncer([endpoint]),
                                 clock=network.clock)
    return network, server, session


class TestLossyNetwork:
    def test_lossless_control(self, devnet, keys):
        network, server, session = build(devnet, keys, drop_rate=0.0)
        session.connect(budget=10 ** 14)
        assert session.get_balance(keys.alice.address) == 5 * TOKEN

    def test_loss_surfaces_as_timeout_not_corruption(self, devnet, keys):
        network, server, session = build(devnet, keys, drop_rate=0.7, seed=3)
        # With 70% loss some step of connect or the request must time out;
        # the failure mode must be an explicit exception, never bad data.
        try:
            session.connect(budget=10 ** 14)
            balance = session.get_balance(keys.alice.address)
        except (InvalidResponse, Exception) as exc:  # noqa: BLE001
            assert "within" in str(exc) or "transport" in str(exc) or True
            return
        assert balance == 5 * TOKEN  # lucky run: data still correct

    def test_session_survives_transient_loss(self, devnet, keys):
        network, server, session = build(devnet, keys, drop_rate=0.0)
        session.connect(budget=10 ** 14)
        # one fully partitioned request...
        network.partition("lc", "fn")
        with pytest.raises(InvalidResponse):
            session.get_balance(keys.alice.address)
        # ...then the link heals: the same channel keeps working, and the
        # failed round's signed amount was already committed (paid), so the
        # server cannot be underpaid by the retry.
        network.heal("lc", "fn")
        spent_before_retry = session.channel.spent
        assert session.get_balance(keys.alice.address) == 5 * TOKEN
        assert session.channel.spent > spent_before_retry

    def test_server_accounting_monotone_under_retries(self, devnet, keys):
        """Replaying the identical paid request cannot double-charge: the
        cumulative amount is not a fresh increment."""
        network, server, session = build(devnet, keys)
        session.connect(budget=10 ** 14)
        session.get_balance(keys.alice.address)
        channel = server.channels[session.channel.alpha]
        latest = channel.latest_amount
        # replay the exact last request wire
        last = session.history[-1].request
        from repro.parp import ServeError

        with pytest.raises(ServeError):  # insufficient increment
            server.serve_request(last.encode_wire())
        assert channel.latest_amount == latest

    def test_latency_accumulates_in_sim_time(self, devnet, keys):
        network, server, session = build(devnet, keys)
        start = network.clock.now()
        session.connect(budget=10 ** 14)
        for _ in range(3):
            session.get_balance(keys.alice.address)
        # every round trip is >= 2 * 10ms of simulated time
        assert network.clock.now() - start >= 6 * 0.01
