"""The marketplace scenario matrix: routing, death, fraud, partitions.

What Table I motivates (a dApp facing a *market* of providers) and §VIII
sketches (reputation guiding selection), end to end: multiple staked
servers advertise, a marketplace client routes by reputation × price,
and each scenario kills, corrupts, or partitions a server mid-session to
prove the client completes every query anyway — without losing funds to
the failed provider.
"""

from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet, FullNode
from repro.parp import (
    BATCH_PROTOCOL_VERSION,
    DEFAULT_SELECTION_THRESHOLD,
    FlatFeeSchedule,
    FullNodeServer,
    Marketplace,
    MarketplaceClient,
    MarketplaceError,
    ServerAdvertisement,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.fraudproof import WitnessService
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.parp.reputation import EVENT_SERVED_OK

TOKEN = 10 ** 18
BUDGET = 10 ** 15


@dataclass
class MarketWorld:
    """N staked servers + a marketplace client (optionally over SimNetwork)."""

    devnet: Devnet
    operators: list[PrivateKey]
    lc: PrivateKey
    alice: PrivateKey
    servers: list[FullNodeServer]
    marketplace: Marketplace
    witness: WitnessService
    client: MarketplaceClient
    network: Optional[SimNetwork] = None
    bindings: list[SimServerBinding] = field(default_factory=list)
    endpoints: list[SimEndpoint] = field(default_factory=list)

    def server_channel(self, index: int):
        """The single channel our client holds on server ``index`` (or None)."""
        session = self.client.sessions.get(self.servers[index].address)
        if session is None or session.channel is None:
            return None
        return self.servers[index].channels.get(session.channel.alpha)

    def session_of(self, index: int):
        return self.client.sessions.get(self.servers[index].address)


def make_market_world(n_servers: int = 3, evil_index: Optional[int] = None,
                      attack: str = "inflate_balance",
                      over_network: bool = False,
                      prices_gwei: Optional[list[int]] = None) -> MarketWorld:
    operators = [PrivateKey.from_seed(f"e2e:mkt:op{i}") for i in range(n_servers)]
    lc = PrivateKey.from_seed("e2e:mkt:lc")
    wn = PrivateKey.from_seed("e2e:mkt:wn")
    alice = PrivateKey.from_seed("e2e:mkt:alice")
    allocations = {k.address: 100 * TOKEN for k in operators + [lc, wn]}
    allocations[alice.address] = 5 * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))
    for op in operators:
        devnet.stake_full_node(op)
    devnet.advance_blocks(2)

    servers: list[FullNodeServer] = []
    for i, op in enumerate(operators):
        schedule = (FlatFeeSchedule(flat_price=prices_gwei[i] * GWEI)
                    if prices_gwei else FlatFeeSchedule(flat_price=10 * GWEI))
        node = FullNode(devnet.chain, key=op, name=f"srv-{i}")
        if i == evil_index:
            servers.append(MaliciousFullNodeServer(
                node, attack=attack, fee_schedule=schedule))
        else:
            servers.append(FullNodeServer(node, fee_schedule=schedule))

    witness = WitnessService(FullNode(devnet.chain, key=wn, name="wn"))
    marketplace = Marketplace()
    network = None
    bindings: list[SimServerBinding] = []
    endpoints: list[SimEndpoint] = []
    clock = None
    if over_network:
        network = SimNetwork(latency=FixedLatency(0.02))
        clock = network.clock.now
        for i, server in enumerate(servers):
            bindings.append(SimServerBinding(network, f"srv-{i}", server))
            endpoint = SimEndpoint(network, f"lc-{i}", f"srv-{i}",
                                   server.address, timeout=2.0)
            endpoints.append(endpoint)
            marketplace.advertise(ServerAdvertisement.for_server(
                server, name=f"srv-{i}", endpoint=endpoint))
    else:
        for i, server in enumerate(servers):
            marketplace.advertise_server(server, name=f"srv-{i}")

    client = MarketplaceClient(lc, marketplace, witness=witness,
                               budget=BUDGET, clock=clock)
    return MarketWorld(
        devnet=devnet, operators=operators, lc=lc, alice=alice,
        servers=servers, marketplace=marketplace, witness=witness,
        client=client, network=network, bindings=bindings, endpoints=endpoints,
    )


def assert_honest_channels_consistent(world: MarketWorld,
                                      skip: tuple[int, ...] = ()) -> None:
    """No honest channel loses funds: what the server banked is exactly what
    the client's session saw verified responses for."""
    for i, server in enumerate(world.servers):
        if i in skip:
            continue
        session = world.session_of(i)
        if session is None or session.channel is None:
            continue
        banked = world.server_channel(i)
        assert banked is not None
        assert banked.latest_amount == session.channel.acked


class TestHonestRouting:
    def test_multi_server_routing_and_channels(self):
        world = make_market_world(prices_gwei=[10, 5, 20])
        opened = world.client.connect()
        assert len(opened) == 2            # the warm-standby invariant
        # price-aware selection bonds the cheapest servers first
        assert world.servers[1].address in opened

        for _ in range(8):
            assert world.client.get_balance(world.alice.address) == 5 * TOKEN
        balances = world.client.get_balances(
            [world.alice.address, world.lc.address])
        assert balances[0] == 5 * TOKEN

        stats = world.client.stats
        assert stats.queries == 9
        assert stats.failovers == 0
        # all traffic went to the cheapest server, and its books balance
        cheap = world.server_channel(1)
        session = world.session_of(1)
        assert cheap.latest_amount == session.channel.spent > 0
        assert cheap.queries_served == 10   # 8 singles + 2 batched items
        assert_honest_channels_consistent(world)
        # the server that served is the one whose reputation grew
        served = world.client.reputation.events_of(world.servers[1].address)
        assert all(e.kind == EVENT_SERVED_OK for e in served)
        assert len(served) == 9

    def test_budget_exhaustion_fails_over_not_out(self):
        """A drained channel is a local condition: the client rotates to a
        server with budget headroom instead of aborting, and only errors
        once every channel in the market is dry."""
        world = make_market_world(prices_gwei=[10, 10, 10])
        # 25 GWEI per channel at 10 GWEI/call = 2 queries per server
        client = MarketplaceClient(world.lc, world.marketplace,
                                   witness=world.witness, budget=25 * GWEI)
        client.connect()
        for _ in range(6):                    # 3 servers × 2 queries each
            assert client.get_balance(world.alice.address) == 5 * TOKEN
        assert client.stats.queries == 6
        assert client.stats.failovers > 0     # rotated on exhaustion
        # no server was blamed for our empty wallet
        for server in world.servers:
            kinds = {e.kind
                     for e in client.reputation.events_of(server.address)}
            assert kinds <= {"served_ok"}
        with pytest.raises(MarketplaceError):
            client.get_balance(world.alice.address)

    def test_settlement_credits_reputation(self):
        world = make_market_world(prices_gwei=[10, 5, 20])
        world.client.connect()
        world.client.get_balance(world.alice.address)
        hashes = world.client.close_all()
        assert len(hashes) == 2
        for address in hashes:
            kinds = [e.kind for e in world.client.reputation.events_of(address)]
            assert "channel_settled" in kinds
        assert world.client.bonded_sessions() == {}


class TestMidSessionDeath:
    def test_failover_completes_queries_without_lost_payment(self):
        world = make_market_world(over_network=True, prices_gwei=[5, 10, 10])
        client = world.client
        client.connect()

        for _ in range(3):
            assert client.get_balance(world.alice.address) == 5 * TOKEN
        primary = world.server_channel(0)
        assert primary is not None and primary.latest_amount > 0
        banked_before_death = primary.latest_amount
        spent_before_death = world.session_of(0).channel.spent
        assert spent_before_death == banked_before_death

        world.bindings[0].offline = True   # fail-stop mid-session

        for _ in range(5):
            assert client.get_balance(world.alice.address) == 5 * TOKEN
        assert client.stats.queries == 8
        assert client.stats.failovers >= 1

        # the dead server banked nothing for the queries it never answered …
        assert primary.latest_amount == banked_before_death
        dead_session = world.session_of(0)
        assert dead_session.channel.acked == banked_before_death
        # … and the in-flight payment that died with the server was signed
        # but will not be volunteered at closure (close concedes `acked`,
        # not `spent` — the dispute window covers the rest)
        assert dead_session.channel.spent > dead_session.channel.acked
        assert_honest_channels_consistent(world)

    def test_all_servers_dead_is_a_clean_error(self):
        world = make_market_world(over_network=True)
        world.client.connect()
        for binding in world.bindings:
            binding.offline = True
        with pytest.raises(MarketplaceError):
            world.client.get_balance(world.alice.address)


class TestMaliciousServer:
    def test_reputation_collapse_slash_and_reroute(self):
        """The acceptance scenario: one of three servers is malicious and
        priced to win the first pick; the client still completes 100% of its
        queries, the malicious server's score collapses below the selection
        threshold, its stake is slashed, and no honest channel loses funds."""
        world = make_market_world(evil_index=0, attack="inflate_balance",
                                  prices_gwei=[2, 10, 10])
        client = world.client
        client.connect()
        evil = world.servers[0]

        completed = 0
        for _ in range(12):
            assert client.get_balance(world.alice.address) == 5 * TOKEN
            completed += 1
        assert completed == 12             # 100% completion despite the fraud

        assert client.stats.frauds_detected == 1
        assert client.stats.frauds_slashed == 1
        assert client.stats.failovers >= 1

        assert client.trust(evil.address, client._now()) \
            < DEFAULT_SELECTION_THRESHOLD
        assert client.reputation.is_banned(evil.address, client._now())
        assert evil.address not in [ad.address for ad in client.eligible()]

        # on-chain: the fraud proof confiscated the malicious stake
        assert world.devnet.call_view(
            DEPOSIT_MODULE_ADDRESS, "deposit_of",
            [world.operators[0].address]) == 0
        # honest servers' books balance; honest deposits untouched
        assert_honest_channels_consistent(world, skip=(0,))
        for op in world.operators[1:]:
            assert world.devnet.call_view(
                DEPOSIT_MODULE_ADDRESS, "deposit_of", [op.address]) > 0

    def test_unattributable_garbage_drops_server_without_slash(self):
        """wrong_signature is INVALID (not provable fraud): the client fails
        over and penalizes reputation, but no deposit is touched."""
        world = make_market_world(evil_index=0, attack="wrong_signature",
                                  prices_gwei=[2, 10, 10])
        client = world.client
        client.connect()
        for _ in range(6):
            assert client.get_balance(world.alice.address) == 5 * TOKEN
        assert client.stats.frauds_detected == 0
        assert client.stats.failovers >= 1
        kinds = {e.kind
                 for e in client.reputation.events_of(world.servers[0].address)}
        assert "invalid_response" in kinds
        assert world.devnet.call_view(
            DEPOSIT_MODULE_ADDRESS, "deposit_of",
            [world.operators[0].address]) > 0

        # the retired channel's escrow is not abandoned: close_all still
        # issues a closure (through a still-trusted relay) conceding only
        # the acked amount — here zero, since nothing it sent ever verified
        evil_address = world.servers[0].address
        retired = dict(client.retired)
        assert evil_address in retired
        assert retired[evil_address].channel.acked == 0
        hashes = client.close_all()
        assert evil_address in hashes
        receipt = world.devnet.chain.get_receipt(hashes[evil_address])
        assert receipt is not None and receipt.succeeded


class TestPartitionedNetwork:
    def test_partition_reroutes_and_heals(self):
        # equal prices: once timeouts accumulate, ranking actually moves off
        # the partitioned server instead of a price edge pinning it first
        world = make_market_world(over_network=True, prices_gwei=[10, 10, 10])
        client = world.client
        network = world.network
        client.connect()

        for _ in range(5):                  # build honest history on srv-0
            assert client.get_balance(world.alice.address) == 5 * TOKEN
        assert world.server_channel(0).latest_amount > 0

        network.partition("lc-0", "srv-0")  # client ⇹ srv-0, servers stay up
        for _ in range(3):
            assert client.get_balance(world.alice.address) == 5 * TOKEN
        assert client.stats.failovers >= 1
        assert client.stats.queries == 8

        # enough verified history survives the timeouts: srv-0 is routed
        # around, not permanently banned
        primary = world.servers[0].address
        assert not client.reputation.is_banned(primary, client._now())

        network.heal("lc-0", "srv-0")
        assert primary in [ad.address for ad in client.eligible()]
        # and its channel is still bonded and consistent for future use
        assert world.session_of(0).channel is not None
        assert (world.server_channel(0).latest_amount
                == world.session_of(0).channel.acked)

    def test_isolate_rejoin_node_level(self):
        world = make_market_world(over_network=True, prices_gwei=[5, 10, 10])
        client = world.client
        network = world.network
        client.connect()
        for _ in range(4):
            assert client.get_balance(world.alice.address) == 5 * TOKEN

        network.isolate("srv-0")
        assert not network.is_reachable("lc-0", "srv-0")
        for _ in range(2):
            assert client.get_balance(world.alice.address) == 5 * TOKEN
        network.rejoin("srv-0")
        assert network.is_reachable("lc-0", "srv-0")
        assert client.stats.queries == 6


class TestBatchVersionMismatch:
    def test_lying_batch_advertisement_is_recorded_and_survived(self):
        """A server advertising a batch version it does not actually speak:
        the client records the mismatch once, falls back per-key, and the
        batch still completes with full verification."""

        class LegacyServer(FullNodeServer):
            def batch_protocol_version(self) -> int:
                return BATCH_PROTOCOL_VERSION + 7   # speaks something else

        operators = [PrivateKey.from_seed(f"e2e:legacy:op{i}") for i in range(2)]
        lc = PrivateKey.from_seed("e2e:legacy:lc")
        alice = PrivateKey.from_seed("e2e:legacy:alice")
        allocations = {k.address: 100 * TOKEN for k in operators + [lc]}
        allocations[alice.address] = 5 * TOKEN
        devnet = Devnet(GenesisConfig(allocations=allocations))
        for op in operators:
            devnet.stake_full_node(op)
        devnet.advance_blocks(2)

        legacy = LegacyServer(FullNode(devnet.chain, key=operators[0],
                                       name="legacy"),
                              fee_schedule=FlatFeeSchedule(flat_price=2 * GWEI))
        marketplace = Marketplace()
        # the lie: advertised as speaking our batch version
        marketplace.advertise(ServerAdvertisement(
            address=legacy.address, endpoint=legacy,
            fee_schedule=legacy.fee_schedule,
            batch_version=BATCH_PROTOCOL_VERSION, name="legacy"))
        client = MarketplaceClient(lc, marketplace, budget=BUDGET)
        client.connect()

        calls = [RpcCall.create("eth_getBalance", alice.address)] * 2
        outcome = client.query_batch(calls)
        assert not outcome.batched          # served via per-key fallback
        assert all(item.ok for item in outcome.items)
        assert client.stats.version_mismatches == 1
        kinds = [e.kind for e in client.reputation.events_of(legacy.address)]
        assert "version_mismatch" in kinds
        # recorded once, even across repeated batches
        client.query_batch(calls)
        assert client.stats.version_mismatches == 1
