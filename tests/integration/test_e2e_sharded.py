"""Sharded serving end to end: the scatter-gather failure matrix.

A cluster of shard servers jointly covers the state; the client scatters
batches across shard legs and gathers verified multiproofs.  These tests
drive the paths that make the design trustworthy under failure:

* a shard server dying mid-scatter is replaced *in-shard* by the hedge
  machinery while the other legs proceed undisturbed;
* a malicious shard server is rejected by §V-D, its fraud package sticks
  on-chain (slash), and the leg reroutes to an honest replica;
* a network partition isolating one shard's primary degrades only that
  leg;
* a shard with no live servers left turns the query into a *typed*
  partial-failure error — with the winning legs' payments still acked;
* a shard server answers out-of-range keys with a signed, attributable
  error (never an unsigned crash, never a forged absence proof);
* a key no advertised server covers fails before any payment is signed.
"""

import pytest

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey, keccak256
from repro.lightclient.sync import HeaderSyncer
from repro.net import PairwiseLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet
from repro.parp import (
    FlatFeeSchedule,
    FullNodeServer,
    LightClientSession,
    Marketplace,
    MarketplaceClient,
    NoServerForKey,
    ResponseStatus,
    ShardScatterError,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.fraudproof import WitnessService
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.trie import ShardRange, shard_of_key

TOKEN = 10 ** 18
BUDGET = 10 ** 15
TIMEOUT = 2.0


def user_in_shard(index: int, count: int, tag: str = "u") -> PrivateKey:
    """A funded-account key whose address hashes into shard ``index``."""
    for i in range(512):
        key = PrivateKey.from_seed(f"e2e:shard:{tag}{i}")
        if shard_of_key(keccak256(bytes(key.address)), count) == index:
            return key
    raise AssertionError("no seed found for shard")  # pragma: no cover


class ShardWorld:
    """``shard_count`` shards × ``replicas`` servers over a sim network.

    ``evil`` maps ``(shard, replica) -> attack`` to make that server
    malicious; per-replica latency/price come from ``latencies``/``prices``
    (indexed by replica, same across shards).
    """

    def __init__(self, shard_count=2, replicas=1, latencies=(0.02, 0.1),
                 prices_gwei=(5, 10), evil=None):
        self.shard_count = shard_count
        self.users = [user_in_shard(i, shard_count) for i in range(shard_count)]
        self.lc = PrivateKey.from_seed("e2e:shard:lc")
        self.wn = PrivateKey.from_seed("e2e:shard:wn")
        ops = [PrivateKey.from_seed(f"e2e:shard:op{s}-{r}")
               for s in range(shard_count) for r in range(replicas)]
        allocations = {k.address: 100 * TOKEN
                       for k in ops + [self.lc, self.wn]}
        for i, user in enumerate(self.users):
            allocations[user.address] = (i + 1) * TOKEN
        self.devnet = Devnet(GenesisConfig(allocations=allocations))

        links = {}
        for s in range(shard_count):
            for r in range(replicas):
                links[(f"lc-{s}-{r}", f"srv-{s}-{r}")] = \
                    latencies[r % len(latencies)]
        self.network = SimNetwork(latency=PairwiseLatency(links, default=0.02))

        self.marketplace = Marketplace()
        self.servers = {}
        self.bindings = {}
        self.endpoints = {}
        evil = evil or {}
        op_iter = iter(ops)
        for s in range(shard_count):
            for r in range(replicas):
                op = next(op_iter)
                name = f"srv-{s}-{r}"
                attack = evil.get((s, r))
                cls = MaliciousFullNodeServer if attack else FullNodeServer
                kwargs = {"attack": attack} if attack else {}
                server = self.devnet.attach_server(
                    op, name=name, server_cls=cls,
                    shard_range=ShardRange.of(s, shard_count),
                    fee_schedule=FlatFeeSchedule(
                        flat_price=prices_gwei[r % len(prices_gwei)] * GWEI),
                    **kwargs)
                self.servers[(s, r)] = server
                self.bindings[(s, r)] = SimServerBinding(
                    self.network, name, server)
                endpoint = SimEndpoint(self.network, f"lc-{s}-{r}", name,
                                       server.address, timeout=TIMEOUT)
                self.endpoints[(s, r)] = endpoint
                self.marketplace.advertise_server(server, name=name,
                                                  endpoint=endpoint)
        self.devnet.advance_blocks(2)
        self.witness = WitnessService(
            self.devnet.attach_server(self.wn, name="wn", stake=False).node)
        self.client = MarketplaceClient(
            self.lc, self.marketplace, witness=self.witness, budget=BUDGET,
            clock=self.network.clock)

    def connect(self):
        self.client.connect(min_sessions=len(self.servers))
        self.client.headers.sync()

    def balance_calls(self):
        return [RpcCall.create("eth_getBalance", u.address)
                for u in self.users]

    def attempts_by_label(self):
        return {a.label: a for a in self.client.last_hedge}


class TestScatterHappyPath:
    def test_legs_collect_in_completion_order(self):
        """Shard 1's (only) server is slow: the fast legs verify and pay
        while it is still on the wire, and the whole scatter finishes at
        the slowest leg's RTT — no serial chaining across legs."""
        world = ShardWorld(shard_count=4, replicas=1, latencies=(0.02,))
        world.network.latency.links[("lc-1-0", "srv-1-0")] = 0.4
        world.connect()
        start = world.network.clock.now()
        outcome = world.client.query_sharded(world.balance_calls())
        elapsed = world.network.clock.now() - start
        assert all(leg.ok for leg in outcome.legs)
        assert elapsed < 2 * 0.4 + 0.2   # one slow RTT, not a sum of legs
        assert world.client.stats.sharded_queries == 1
        assert world.client.stats.scatter_legs == 4
        assert len({leg.winner for leg in outcome.legs}) == 4


class TestShardDeath:
    def test_dead_primary_replaced_in_shard(self):
        """Shard 0's top-ranked (cheap) server is dead: its leg times out,
        the hedge relaunches on the in-shard replica, and the other shard's
        leg is untouched — exactly one winner and one acked payment per
        leg."""
        world = ShardWorld(shard_count=2, replicas=2,
                           latencies=(0.02, 0.1), prices_gwei=(5, 10))
        world.connect()
        world.bindings[(0, 0)].offline = True

        outcome = world.client.query_sharded(world.balance_calls())

        assert all(leg.ok for leg in outcome.legs)
        attempts = world.attempts_by_label()
        assert attempts["srv-0-0"].outcome == "timeout"
        assert attempts["srv-0-0"].pending.reply.cancelled()
        assert attempts["srv-0-1"].outcome == "won"
        assert attempts["srv-1-0"].outcome == "won"
        # the replacement came from *inside* the shard
        shard0 = next(leg for leg in outcome.legs
                      if world.servers[(0, 1)].address == leg.winner)
        assert shard0.attempts == 2
        for leg in outcome.legs:
            session = world.client.sessions[leg.winner]
            assert session.channel.acked == session.channel.spent

    def test_hedged_legs_race_inside_each_shard(self):
        """fanout=2 launches both replicas of every shard at once; each
        leg's fast replica wins, each slow one is cancelled in flight."""
        world = ShardWorld(shard_count=2, replicas=2,
                           latencies=(0.02, 0.6), prices_gwei=(5, 5))
        world.connect()
        outcome = world.client.query_sharded(world.balance_calls(), fanout=2)
        assert all(leg.ok for leg in outcome.legs)
        attempts = world.attempts_by_label()
        for s in range(2):
            assert attempts[f"srv-{s}-0"].outcome == "won"
            assert attempts[f"srv-{s}-1"].outcome in ("cancelled", "unused")
        assert world.client.stats.hedges_cancelled >= 1


class TestMaliciousShard:
    def test_fraudulent_shard_is_slashed_and_rerouted(self):
        """Shard 0's cheap primary forges a balance.  Its single-call leg
        carries an FDM-decodable fraud package: §V-D rejects the response,
        the witness lands the package on-chain (stake confiscated), and the
        leg reroutes to the shard's honest replica — while shard 1's leg
        never notices."""
        world = ShardWorld(shard_count=2, replicas=2,
                           latencies=(0.02, 0.1), prices_gwei=(2, 10),
                           evil={(0, 0): "inflate_balance"})
        world.connect()
        evil_server = world.servers[(0, 0)]

        outcome = world.client.query_sharded(world.balance_calls())

        assert all(leg.ok for leg in outcome.legs)
        attempts = world.attempts_by_label()
        assert attempts["srv-0-0"].outcome == "fraud"
        assert attempts["srv-0-1"].outcome == "won"
        assert attempts["srv-1-0"].outcome == "won"
        assert world.client.stats.frauds_detected == 1
        assert world.client.stats.frauds_slashed == 1
        # on-chain: the shard server's stake is gone
        assert world.devnet.call_view(
            DEPOSIT_MODULE_ADDRESS, "deposit_of",
            [evil_server.node.key.address]) == 0
        assert world.client.reputation.is_banned(evil_server.address,
                                                 world.client._now())
        # and the gathered result is the honest chain state
        from repro.parp.queries import decode_balance
        for i, item in enumerate(outcome.items):
            assert decode_balance(item.result) == \
                world.devnet.chain.state.balance_of(world.users[i].address)


class TestPartition:
    def test_isolated_primary_only_degrades_its_own_leg(self):
        """A partition cuts shard 1's primary off mid-network; its leg
        times out and fails over to the replica, shard 0's leg is served
        at full speed."""
        world = ShardWorld(shard_count=2, replicas=2,
                           latencies=(0.02, 0.1), prices_gwei=(5, 10))
        world.connect()
        world.network.isolate("srv-1-0")

        start = world.network.clock.now()
        outcome = world.client.query_sharded(world.balance_calls())
        elapsed = world.network.clock.now() - start

        assert all(leg.ok for leg in outcome.legs)
        attempts = world.attempts_by_label()
        assert attempts["srv-1-0"].outcome == "timeout"
        assert attempts["srv-1-1"].outcome == "won"
        assert attempts["srv-0-0"].outcome == "won"
        # one synchrony bound for the dead leg, not one per leg
        assert elapsed == pytest.approx(TIMEOUT, rel=0.2)

    def test_shard_with_no_live_servers_is_a_typed_partial_failure(self):
        """Every server of shard 1 is gone: the scatter raises
        ShardScatterError naming the missing shard — and the legs that *did*
        win keep their verified results and acked payments."""
        world = ShardWorld(shard_count=2, replicas=1)
        world.connect()
        world.bindings[(1, 0)].offline = True

        with pytest.raises(ShardScatterError) as excinfo:
            world.client.query_sharded(world.balance_calls())

        error = excinfo.value
        assert len(error.failed_legs) == 1
        failed = error.failed_legs[0]
        assert failed.error
        key = keccak256(bytes(world.users[1].address))
        assert key in failed.keys
        won = [leg for leg in error.legs if leg.ok]
        assert len(won) == 1
        session = world.client.sessions[won[0].winner]
        assert session.channel.acked == session.channel.spent
        assert session.channel.acked > 0
        # the dead shard's leg never acked anything on its channel
        dead = world.client.sessions[world.servers[(1, 0)].address]
        assert dead.channel.spent > dead.channel.acked


class TestRangeEnforcement:
    def test_out_of_range_key_gets_signed_error_not_crash(self):
        """Asking a shard server for a key outside its slice yields a
        *signed* error response — §V-D 'error-response' VALID, fully
        attributable — never an unsigned transport failure and never a
        forged absence proof."""
        world = ShardWorld(shard_count=2, replicas=1)
        server = world.servers[(0, 0)]
        foreign_user = world.users[1]          # hashes into shard 1
        session = LightClientSession(
            world.lc, world.endpoints[(0, 0)],
            HeaderSyncer([world.endpoints[(0, 0)]]),
            fee_schedule=server.fee_schedule)
        session.connect(budget=BUDGET)
        session.headers.sync()

        outcome = session.request("eth_getBalance", foreign_user.address)
        assert outcome.response.status == ResponseStatus.ERROR
        assert outcome.report.valid
        assert outcome.report.check == "error-response"
        assert b"shard" in outcome.response.result
        assert server.stats.out_of_range_rejected == 1

        # in-range keys on the same session still serve normally
        ok = session.request("eth_getBalance", world.users[0].address)
        assert ok.response.status == ResponseStatus.OK

    def test_scatter_never_routes_to_non_covering_server(self):
        """After a full scatter, every winner's advertised range covers
        every key of its leg (out_of_range_rejected stays 0 everywhere)."""
        world = ShardWorld(shard_count=4, replicas=1, latencies=(0.02,))
        world.connect()
        outcome = world.client.query_sharded(world.balance_calls())
        assert all(leg.ok for leg in outcome.legs)
        for leg in outcome.legs:
            ad = world.marketplace.get(leg.winner)
            for key in leg.keys:
                assert ad.covers(key)
        for server in world.servers.values():
            assert server.stats.out_of_range_rejected == 0


class TestCoverageHoles:
    def test_uncovered_key_raises_before_any_payment(self):
        world = ShardWorld(shard_count=2, replicas=1)
        world.connect()
        victim = world.users[1]
        for ad in list(world.marketplace.advertisements()):
            if ad.covers(keccak256(bytes(victim.address))):
                world.marketplace.withdraw(ad.address)
        spent_before = {a: s.channel.spent
                        for a, s in world.client.sessions.items()}

        call = RpcCall.create("eth_getBalance", victim.address)
        with pytest.raises(NoServerForKey) as excinfo:
            world.client.request_call(call)
        assert excinfo.value.key == keccak256(bytes(victim.address))
        assert excinfo.value.method == "eth_getBalance"
        with pytest.raises(NoServerForKey):
            world.client.query_sharded(world.balance_calls())
        # no payment was signed anywhere
        for address, session in world.client.sessions.items():
            assert session.channel.spent == spent_before[address]
