"""End-to-end batched serving: one payment, one multiproof, N queries.

Covers the happy path (results verified against the shared node pool, a
single channel update for the whole batch), the proof cache, per-item signed
errors, fraud/invalid classification of bad batch responses, and the
per-key fallback for servers that do not speak our batch version.
"""

import pytest

from repro.crypto import keccak256
from repro.parp import (
    BatchRequest,
    BatchResponse,
    FraudDetected,
    InvalidResponse,
    RpcCall,
    SessionError,
)
from repro.parp.constants import BATCH_PROTOCOL_VERSION
from repro.parp.messages import ResponseStatus
from repro.parp.queries import decode_balance, decode_int_result
from repro.parp.states import ResponseClass
from repro.trie.proof import proof_size

from ..conftest import TOKEN, make_parp_env


def balance_calls(keys, *people):
    return [RpcCall.create("eth_getBalance", getattr(keys, p).address)
            for p in people]


class TestHonestBatch:
    def test_batch_round_trip(self, parp_env):
        env = parp_env
        calls = balance_calls(env.keys, "alice", "bob") + [
            RpcCall.create("eth_blockNumber"),
        ]
        outcome = env.session.query_batch(calls)
        assert outcome.batched
        assert outcome.report.classification is ResponseClass.VALID
        assert decode_balance(outcome.items[0].result) == 5 * TOKEN
        assert decode_balance(outcome.items[1].result) == 3 * TOKEN
        assert decode_int_result(outcome.items[2].result) == env.node.head_number()

    def test_one_channel_update_for_the_whole_batch(self, parp_env):
        env = parp_env
        channel = env.server.channels[env.alpha]
        before_updates = channel.requests_served
        calls = balance_calls(env.keys, "alice", "bob", "fn", "wn")
        outcome = env.session.query_batch(calls)
        assert channel.requests_served == before_updates + 1
        assert channel.queries_served >= len(calls)
        assert channel.latest_amount == outcome.amount_paid

    def test_batch_price_matches_schedule(self, parp_env):
        env = parp_env
        calls = balance_calls(env.keys, "alice", "bob")
        spent_before = env.session.channel.spent
        outcome = env.session.query_batch(calls)
        price = env.session.fee_schedule.batch_price(calls)
        assert outcome.amount_paid - spent_before == price

    def test_multiproof_dedups_across_queries(self, parp_env):
        """The batch's shared pool is smaller than N stand-alone proofs."""
        env = parp_env
        people = ("alice", "bob", "fn", "wn", "lc")
        singles = 0
        for person in people:
            outcome = env.session.request(
                "eth_getBalance", getattr(env.keys, person).address)
            singles += proof_size(list(outcome.response.proof))
        batch_outcome = env.session.query_batch(balance_calls(env.keys, *people))
        assert proof_size(list(batch_outcome.response.proof)) < singles

    def test_proof_cache_serves_repeats(self, parp_env):
        env = parp_env
        calls = balance_calls(env.keys, "alice", "bob")
        env.session.query_batch(calls)
        misses = env.server.proof_cache.stats.misses
        env.session.query_batch(calls)  # same keys, same height
        assert env.server.proof_cache.stats.hits >= len(calls)
        assert env.server.proof_cache.stats.misses == misses

    def test_get_balances_convenience(self, parp_env):
        env = parp_env
        balances = env.session.get_balances([
            env.keys.alice.address, env.keys.bob.address,
        ])
        assert balances == [5 * TOKEN, 3 * TOKEN]

    def test_serving_receipt_counts_batched_queries(self, parp_env):
        env = parp_env
        env.session.query_batch(balance_calls(env.keys, "alice", "bob"))
        receipt = env.server.serving_receipt(env.alpha)
        assert receipt.queries == env.server.channels[env.alpha].queries_served
        assert receipt.verify_signature()


class TestBatchErrors:
    def test_write_call_gets_per_item_signed_error(self, parp_env):
        env = parp_env
        calls = balance_calls(env.keys, "alice") + [
            RpcCall.create("eth_sendRawTransaction", b"\x01\x02"),
        ]
        outcome = env.session.query_batch(calls)
        assert outcome.items[0].ok
        assert not outcome.items[1].ok
        assert outcome.items[1].report.is_error_response
        assert b"not batchable" in outcome.items[1].result

    def test_unknown_method_gets_per_item_signed_error(self, parp_env):
        env = parp_env
        calls = [RpcCall.create("eth_noSuchMethod")] + balance_calls(
            env.keys, "bob")
        outcome = env.session.query_batch(calls)
        assert not outcome.items[0].ok
        assert outcome.items[1].ok

    def test_empty_batch_rejected_client_side(self, parp_env):
        with pytest.raises(SessionError, match="at least one call"):
            parp_env.session.query_batch([])


def serve_and_decode(env, calls):
    """Drive the request/serve halves manually so tests can tamper."""
    session = env.session
    price = session.fee_schedule.batch_price(calls)
    request = session.build_batch_request(calls, session.channel.next_amount(price))
    session.channel.record_request(request.a)
    raw = env.server.serve_batch(request.encode_wire())
    return request, BatchResponse.decode_wire(raw)


class TestBatchClassification:
    def test_lying_result_is_fraud(self, parp_env):
        """A server that SIGNS a wrong result is caught by the multiproof
        check and classified FRAUD (attributable), not merely invalid."""
        env = parp_env
        calls = balance_calls(env.keys, "alice", "bob")
        request, response = serve_and_decode(env, calls)
        lying = BatchResponse.build(
            alpha=env.alpha, request=request, m_b=response.m_b,
            statuses=list(response.statuses),
            results=[response.results[1], response.results[1]],  # wrong [0]
            proof=list(response.proof), key=env.keys.fn,
        )
        with pytest.raises(FraudDetected) as excinfo:
            env.session.process_batch_response(request, lying.encode_wire())
        assert excinfo.value.report.check == "merkle-proof"

    def test_short_answer_is_fraud(self, parp_env):
        """Answering fewer items than were signed for is arity fraud."""
        env = parp_env
        calls = balance_calls(env.keys, "alice", "bob")
        request, response = serve_and_decode(env, calls)
        short = BatchResponse.build(
            alpha=env.alpha, request=request, m_b=response.m_b,
            statuses=[response.statuses[0]], results=[response.results[0]],
            proof=list(response.proof), key=env.keys.fn,
        )
        with pytest.raises(FraudDetected) as excinfo:
            env.session.process_batch_response(request, short.encode_wire())
        assert excinfo.value.report.check == "batch-arity"

    def test_transit_tampering_is_invalid(self, parp_env):
        """A third party flipping bytes breaks σ_res: INVALID, not FRAUD."""
        env = parp_env
        calls = balance_calls(env.keys, "alice", "bob")
        request, response = serve_and_decode(env, calls)
        tampered = response.with_result(0, b"garbage")
        with pytest.raises(InvalidResponse) as excinfo:
            env.session.process_batch_response(request, tampered.encode_wire())
        assert excinfo.value.report.check == "response-signature"

    def test_version_downgrade_on_wire_is_rejected(self, parp_env):
        env = parp_env
        calls = balance_calls(env.keys, "alice")
        session = env.session
        price = session.fee_schedule.batch_price(calls)
        request = session.build_batch_request(
            calls, session.channel.next_amount(price))
        wire = bytearray(request.encode_wire())
        wire[0] = BATCH_PROTOCOL_VERSION + 1
        from repro.parp.server import ServeError
        with pytest.raises(ServeError):
            env.server.serve_batch(bytes(wire))


class LegacyEndpoint:
    """A pre-batch server facade: no serve_batch, no version probe."""

    _FORWARDED = (
        "address", "handshake", "open_channel", "serve_request",
        "relay_transaction", "get_transaction_count", "serve_header",
        "serve_head_number",
    )

    def __init__(self, server):
        self._server = server

    def __getattr__(self, name):
        if name not in self._FORWARDED:
            raise AttributeError(name)
        return getattr(self._server, name)


class TestFallback:
    def test_falls_back_when_server_lacks_batch(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        env.session.endpoint = LegacyEndpoint(env.server)
        assert not env.session.batch_supported()
        calls = balance_calls(keys, "alice", "bob")
        before_updates = env.server.channels[env.alpha].requests_served
        outcome = env.session.query_batch(calls)
        assert not outcome.batched
        assert decode_balance(outcome.items[0].result) == 5 * TOKEN
        assert decode_balance(outcome.items[1].result) == 3 * TOKEN
        # fallback pays per key: one channel update per call
        assert (env.server.channels[env.alpha].requests_served
                == before_updates + len(calls))

    def test_falls_back_on_version_mismatch(self, parp_env, monkeypatch):
        env = parp_env
        monkeypatch.setattr(
            env.server, "batch_protocol_version",
            lambda: BATCH_PROTOCOL_VERSION + 1,
        )
        assert not env.session.batch_supported()
        outcome = env.session.query_batch(balance_calls(env.keys, "alice"))
        assert not outcome.batched
        assert decode_balance(outcome.items[0].result) == 5 * TOKEN

    def test_fallback_probe_is_free(self, parp_env, monkeypatch):
        """The version probe must not consume channel budget."""
        env = parp_env
        spent_before = env.session.channel.spent
        assert env.session.batch_supported()
        assert env.session.channel.spent == spent_before
