"""End-to-end accountability: detection → witness → on-chain slash.

This is the paper's central security claim, exercised attack by attack:
attributable lies are detected as FRAUD, packaged, submitted by a witness,
and punished by confiscating the offender's collateral; non-attributable
garbage is INVALID and explicitly *not* slashable.
"""

import pytest

from repro.contracts import (
    CHANNELS_MODULE_ADDRESS,
    DEPOSIT_MODULE_ADDRESS,
    TREASURY_ADDRESS,
)
from repro.parp import FraudDetected, InvalidResponse, MIN_FULL_NODE_DEPOSIT
from repro.parp.adversary import ATTACKS, MaliciousFullNodeServer
from repro.parp.fraudproof import FraudProofError

from ..conftest import make_parp_env

FRAUD_ATTACKS = {
    "inflate_balance": "merkle-proof",
    "bogus_proof": "merkle-proof",
    "overcharge": "payment-amount",
    "stale_height": "timestamp",
}
INVALID_ATTACKS = {
    "wrong_signature": "response-signature",
    "wrong_request_hash": "request-hash",
    "wrong_channel": "response-signature",
}


def evil_env(devnet, keys, attack):
    return make_parp_env(devnet, keys, server_cls=MaliciousFullNodeServer,
                         attack=attack)


class TestFraudPipeline:
    @pytest.mark.parametrize("attack,check", sorted(FRAUD_ATTACKS.items()))
    def test_detect_witness_slash(self, devnet, keys, attack, check):
        env = evil_env(devnet, keys, attack)
        with pytest.raises(FraudDetected) as excinfo:
            env.session.get_balance(keys.alice.address)
        assert excinfo.value.report.check == check
        package = excinfo.value.package
        assert package is not None

        lc_before = devnet.balance_of(keys.lc.address)
        tr_before = devnet.balance_of(TREASURY_ADDRESS)
        env.witness.submit(package)

        assert devnet.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                                [keys.fn.address]) == 0
        assert not devnet.call_view(DEPOSIT_MODULE_ADDRESS, "is_eligible",
                                    [keys.fn.address])
        assert (devnet.balance_of(keys.lc.address) - lc_before
                == MIN_FULL_NODE_DEPOSIT // 4)
        assert (devnet.balance_of(TREASURY_ADDRESS) - tr_before
                == MIN_FULL_NODE_DEPOSIT // 2)

    @pytest.mark.parametrize("attack,check", sorted(INVALID_ATTACKS.items()))
    def test_invalid_not_slashable(self, devnet, keys, attack, check):
        env = evil_env(devnet, keys, attack)
        with pytest.raises(InvalidResponse) as excinfo:
            env.session.get_balance(keys.alice.address)
        assert excinfo.value.report.check == check
        # nothing changed on-chain
        assert devnet.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                                [keys.fn.address]) == MIN_FULL_NODE_DEPOSIT

    def test_session_terminates_on_fraud(self, devnet, keys):
        from repro.parp import LightClientState

        env = evil_env(devnet, keys, "inflate_balance")
        with pytest.raises(FraudDetected):
            env.session.get_balance(keys.alice.address)
        assert env.session.state is LightClientState.UNBONDING

    def test_double_report_fails_gracefully(self, devnet, keys):
        """The second fraud proof finds an empty deposit and reverts."""
        env = evil_env(devnet, keys, "overcharge")
        packages = []
        for _ in range(2):
            try:
                env.session.state = __import__(
                    "repro.parp.states", fromlist=["LightClientState"],
                ).LightClientState.BONDED
                env.session.get_balance(keys.alice.address)
            except FraudDetected as exc:
                packages.append(exc.package)
        assert len(packages) == 2
        env.witness.submit(packages[0])
        with pytest.raises(FraudProofError):
            env.witness.submit(packages[1])

    def test_witness_profits_despite_gas(self, devnet, keys):
        env = evil_env(devnet, keys, "bogus_proof")
        with pytest.raises(FraudDetected) as excinfo:
            env.session.get_balance(keys.alice.address)
        wn_before = devnet.balance_of(keys.wn.address)
        env.witness.submit(excinfo.value.package)
        # the witness's share must exceed its gas outlay by a wide margin
        assert devnet.balance_of(keys.wn.address) > wn_before

    def test_fraud_on_write_workload(self, devnet, keys):
        """Tampering with a send-raw-transaction response is also caught."""
        from repro.chain import UnsignedTransaction

        env = evil_env(devnet, keys, "inflate_balance")
        tx = UnsignedTransaction(
            nonce=0, gas_price=10 ** 9, gas_limit=21_000,
            to=keys.bob.address, value=5,
        ).sign(keys.alice)
        with pytest.raises(FraudDetected) as excinfo:
            env.session.send_raw_transaction(tx.encode())
        env.witness.submit(excinfo.value.package)
        assert devnet.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                                [keys.fn.address]) == 0

    def test_honest_node_unslashable_end_to_end(self, parp_env):
        """Replaying an honest exchange as 'fraud' must revert on-chain."""
        session = parp_env.session
        outcome = session.request("eth_getBalance", parp_env.keys.alice.address)
        from repro.parp.fraudproof import build_fraud_package

        package = build_fraud_package(
            outcome.request, outcome.response, parp_env.alpha,
            session.headers.get_header,
            get_by_hash=session.headers.chain.get_by_hash,
        )
        with pytest.raises(FraudProofError):
            parp_env.witness.submit(package)
        assert parp_env.net.call_view(
            DEPOSIT_MODULE_ADDRESS, "deposit_of", [parp_env.keys.fn.address],
        ) == MIN_FULL_NODE_DEPOSIT
