"""Integration of the §VIII extensions with the live protocol stack."""

import pytest

from repro.contracts import CHANNELS_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.parp.pcn import ChannelGraph
from repro.parp.proof_of_serving import (
    EpochClaim,
    ReceiptValidator,
    RewardPool,
    ServingReceipt,
)
from repro.parp.reputation import ReputationLedger

from ..conftest import TOKEN, make_parp_env


class TestProofOfServingOnChainBacked:
    """Receipts validated against the *real* CMM records."""

    def channel_lookup_factory(self, devnet):
        from repro.crypto.keys import Address

        def lookup(alpha):
            lc, fn, budget, _cs, status, _dl = devnet.call_view(
                CHANNELS_MODULE_ADDRESS, "get_channel", [alpha],
            )
            if status == 0:
                return None
            return Address(lc), Address(fn), budget, status

        return lookup

    def test_real_serving_receipts_score(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        env.session.get_balance(keys.alice.address)
        env.session.get_balance(keys.bob.address)

        channel = env.server.channels[env.alpha]
        receipt = ServingReceipt(
            alpha=env.alpha, full_node=env.server.address,
            light_client=channel.light_client,
            amount=channel.latest_amount, signature=channel.latest_sig,
        )
        validator = ReceiptValidator(self.channel_lookup_factory(devnet))
        assert validator.weigh(receipt) == float(channel.latest_amount)

    def test_fabricated_receipt_scores_zero(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        sybil = PrivateKey.from_seed("sybil-client")
        fake_alpha = b"\x13" * 16
        from repro.parp.messages import payment_digest

        receipt = ServingReceipt(
            alpha=fake_alpha, full_node=env.server.address,
            light_client=sybil.address, amount=10 ** 18,
            signature=sybil.sign(payment_digest(fake_alpha, 10 ** 18)).to_bytes(),
        )
        validator = ReceiptValidator(self.channel_lookup_factory(devnet))
        assert validator.weigh(receipt) == 0.0

    def test_epoch_reward_follows_real_serving(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        for _ in range(3):
            env.session.get_balance(keys.alice.address)
        channel = env.server.channels[env.alpha]
        claim = EpochClaim(env.server.address)
        claim.add(ServingReceipt(
            alpha=env.alpha, full_node=env.server.address,
            light_client=channel.light_client,
            amount=channel.latest_amount, signature=channel.latest_sig,
        ))
        pool = RewardPool(
            epoch_reward=10 ** 18,
            validator=ReceiptValidator(self.channel_lookup_factory(devnet)),
        )
        payouts = pool.distribute([claim])
        assert payouts[env.server.address] == 10 ** 18


class TestReputationIntegration:
    def test_session_outcomes_feed_reputation(self, devnet, keys):
        from repro.parp import FraudDetected
        from repro.parp.adversary import MaliciousFullNodeServer

        ledger = ReputationLedger()
        env = make_parp_env(devnet, keys, server_cls=MaliciousFullNodeServer,
                            attack="inflate_balance")
        try:
            env.session.get_balance(keys.alice.address)
        except FraudDetected as exc:
            env.witness.submit(exc.package)
            ledger.record(env.server.address, "fraud_slashed", time=0.0)
        assert ledger.is_banned(env.server.address, now=1.0)

    def test_honest_service_builds_trust(self, parp_env):
        ledger = ReputationLedger()
        for i in range(5):
            parp_env.session.get_balance(parp_env.keys.alice.address)
            ledger.record(parp_env.server.address, "served_ok", time=float(i))
        score = ledger.score(parp_env.server.address, now=5.0)
        assert score == pytest.approx(5 / ledger.saturation, rel=0.01)
        assert not ledger.is_banned(parp_env.server.address, now=5.0)


class TestPCNEconomics:
    def test_one_channel_many_servers(self, devnet, keys):
        """The §VIII motivation: reach N full nodes with one on-chain channel
        by routing through a hub, vs N on-chain channel opens."""
        graph = ChannelGraph()
        lc = keys.lc.address
        hub = PrivateKey.from_seed("pcn-hub").address
        servers = [PrivateKey.from_seed(f"pcn-fn-{i}").address for i in range(5)]
        graph.add_channel(lc, hub, capacity=10 ** 15, fee_ppm=1_000)
        for server in servers:
            graph.add_channel(hub, server, capacity=10 ** 15, fee_ppm=1_000)

        total_fees = 0
        for server in servers:
            route = graph.pay(lc, server, 10 ** 12)
            total_fees += route.fees
        # every server got paid through ONE client channel
        assert graph.num_channels == 6
        # routed fees are tiny next to an on-chain channel open (~196k gas
        # at 12 gwei ≈ 2.35e15 wei)
        onchain_cost_per_channel = 196_183 * 12 * 10 ** 9
        assert total_fees < onchain_cost_per_channel
