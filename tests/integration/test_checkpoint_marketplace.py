"""Checkpoint onboarding end to end: a fresh marketplace client joins a
long-running chain via Bootstrap + UpdatesByRange instead of syncing from
genesis, then pays for a signed header page.

Covers the acceptance path: O(distance-from-checkpoint) header fetches over
the simulated network, quorum cross-check rejecting an equivocating
checkpoint server, and ``parp_updatesByRange`` billed per the fee catalog
with full client-side verification.
"""

import pytest

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.lightclient import Checkpoint, CheckpointSyncer
from repro.net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    Marketplace,
    MarketplaceClient,
    MarketplaceError,
    ServerAdvertisement,
)
from repro.parp.pricing import GWEI, CallBasedFeeSchedule
from repro.parp.queries import decode_header_range

TOKEN = 10 ** 18
BUDGET = 10 ** 15
CHAIN_LENGTH = 24
CHECKPOINT_HEIGHT = 18


class EquivocatingServer(FullNodeServer):
    """Answers the checkpoint bootstrap with the wrong (genesis) header."""

    def serve_bootstrap(self, checkpoint_hash):
        return self.node.get_header(0)


def make_world(n_servers=3, evil_indexes=(), over_network=False):
    operators = [PrivateKey.from_seed(f"e2e:ckpt:op{i}")
                 for i in range(n_servers)]
    lc = PrivateKey.from_seed("e2e:ckpt:lc")
    alice = PrivateKey.from_seed("e2e:ckpt:alice")
    allocations = {k.address: 100 * TOKEN for k in operators + [lc]}
    allocations[alice.address] = 5 * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))
    for op in operators:
        devnet.stake_full_node(op)
    while devnet.chain.height < CHAIN_LENGTH:
        devnet.advance_blocks(1)

    servers, marketplace = [], Marketplace()
    network = SimNetwork(latency=FixedLatency(0.02)) if over_network else None
    for i, op in enumerate(operators):
        cls = EquivocatingServer if i in evil_indexes else FullNodeServer
        server = cls(FullNode(devnet.chain, key=op, name=f"srv-{i}"),
                     fee_schedule=CallBasedFeeSchedule())
        servers.append(server)
        if over_network:
            SimServerBinding(network, f"srv-{i}", server)
            endpoint = SimEndpoint(network, f"lc-{i}", f"srv-{i}",
                                   server.address, timeout=2.0)
            marketplace.advertise(ServerAdvertisement.for_server(
                server, name=f"srv-{i}", endpoint=endpoint))
        else:
            marketplace.advertise_server(server, name=f"srv-{i}")

    checkpoint = Checkpoint.of(devnet.chain.get_header(CHECKPOINT_HEIGHT))
    client = MarketplaceClient(
        lc, marketplace, budget=BUDGET, checkpoint=checkpoint,
        clock=network.clock.now if over_network else None,
    )
    return devnet, servers, client, checkpoint, alice


class TestCheckpointOnboarding:
    def test_fresh_client_joins_in_o_distance(self):
        devnet, servers, client, checkpoint, alice = make_world()
        client.connect()
        syncer = client.headers
        assert isinstance(syncer, CheckpointSyncer)
        assert syncer.chain.anchor_number == CHECKPOINT_HEIGHT
        # the chain keeps growing during connect (channel-open blocks), so
        # the tip may trail the instantaneous head — but it must be the
        # canonical header at its height and past the pre-connect head
        assert syncer.tip.number >= CHAIN_LENGTH
        assert syncer.tip.hash \
            == devnet.chain.get_header(syncer.tip.number).hash
        # O(distance): every header past the anchor fetched exactly once
        distance = syncer.tip.number - CHECKPOINT_HEIGHT
        assert syncer.headers_fetched == distance + 1
        assert syncer.headers_fetched < devnet.chain.height + 1
        # the checkpoint-anchored chain verifies real proofs
        assert client.get_balance(alice.address) == 5 * TOKEN

    def test_onboarding_over_the_simulated_network(self):
        devnet, servers, client, checkpoint, alice = make_world(
            over_network=True)
        client.connect()
        syncer = client.headers
        assert syncer.chain.anchor_number == CHECKPOINT_HEIGHT
        assert syncer.tip.hash \
            == devnet.chain.get_header(syncer.tip.number).hash
        assert client.get_balance(alice.address) == 5 * TOKEN
        assert not syncer.suspects

    def test_equivocating_checkpoint_server_is_outvoted_and_suspected(self):
        devnet, servers, client, checkpoint, alice = make_world(
            evil_indexes=(0,))
        client.connect()
        syncer = client.headers
        # the quorum (2 of 3) anchored at the trusted header anyway …
        assert syncer.chain.get_header(CHECKPOINT_HEIGHT).hash \
            == checkpoint.hash
        # … and the liar is flagged before any payment goes its way
        assert 0 in syncer.suspects
        assert client.get_balance(alice.address) == 5 * TOKEN

    def test_equivocating_majority_blocks_onboarding(self):
        devnet, servers, client, checkpoint, alice = make_world(
            evil_indexes=(0, 1))
        # 1 of 3 attestations for the trusted header: below quorum, so no
        # session can bond and no channel money ever moves
        with pytest.raises(MarketplaceError):
            client.connect()
        assert client.bonded_sessions() == {}


class TestPaidUpdatesByRange:
    def test_signed_header_page_is_billed_per_catalog(self):
        devnet, servers, client, checkpoint, alice = make_world()
        client.connect()
        session = next(iter(client.bonded_sessions().values()))
        spent_before = session.channel.spent
        start = CHECKPOINT_HEIGHT + 1
        outcome = client.request("parp_updatesByRange", start, 4)
        assert outcome.report.valid
        headers = decode_header_range(outcome.response.result)
        assert [h.number for h in headers] == [start, start + 1,
                                               start + 2, start + 3]
        assert headers[0].hash == devnet.chain.get_header(start).hash
        # billable: one page costs the catalog price, not the free tier
        assert session.channel.spent - spent_before == 25 * GWEI

    def test_page_is_capped_at_the_head(self):
        devnet, servers, client, checkpoint, alice = make_world()
        client.connect()
        start = devnet.chain.height - 1
        outcome = client.request("parp_updatesByRange", start, 50)
        headers = decode_header_range(outcome.response.result)
        assert [h.number for h in headers] \
            == [devnet.chain.height - 1, devnet.chain.height]
