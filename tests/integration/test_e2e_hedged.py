"""Hedged fan-out queries: the failover race, end to end.

The scenario matrix the redesign exists for: issue one batch on k
reputation-ranked sessions at once, accept the first response that survives
§V-D verification, cancel the losers mid-flight, and keep the race wide by
replacing failed legs — racing a slow-but-honest server against a
fast-but-malicious one, dead servers against live ones, and everything
against the timeout chain the serial path would have walked.
"""

import pytest

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.net import (
    PairwiseLatency,
    PendingReply,
    SimEndpoint,
    SimNetwork,
    SimServerBinding,
)
from repro.node import Devnet
from repro.parp import (
    BATCH_PROTOCOL_VERSION,
    FlatFeeSchedule,
    FullNodeServer,
    Marketplace,
    MarketplaceClient,
    MarketplaceError,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.fraudproof import WitnessService
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.parp.reputation import EVENT_TIMEOUT

TOKEN = 10 ** 18
BUDGET = 10 ** 15
TIMEOUT = 2.0


class HedgeWorld:
    """N servers with per-server client-link latencies, one hedging client."""

    def __init__(self, latencies, prices_gwei, evil_index=None,
                 attack="inflate_balance", fast_latency=0.02):
        n = len(latencies)
        self.operators = [PrivateKey.from_seed(f"e2e:hedge:op{i}")
                          for i in range(n)]
        self.lc = PrivateKey.from_seed("e2e:hedge:lc")
        self.wn = PrivateKey.from_seed("e2e:hedge:wn")
        self.alice = PrivateKey.from_seed("e2e:hedge:alice")
        allocations = {k.address: 100 * TOKEN
                       for k in self.operators + [self.lc, self.wn]}
        allocations[self.alice.address] = 5 * TOKEN
        self.devnet = Devnet(GenesisConfig(allocations=allocations))

        links = {}
        for i, latency in enumerate(latencies):
            links[(f"lc-{i}", f"srv-{i}")] = latency
        self.network = SimNetwork(
            latency=PairwiseLatency(links, default=fast_latency))

        self.servers = []
        self.bindings = []
        self.endpoints = []
        self.marketplace = marketplace = Marketplace()
        for i, op in enumerate(self.operators):
            server_cls = (MaliciousFullNodeServer if i == evil_index
                          else FullNodeServer)
            kwargs = {"attack": attack} if i == evil_index else {}
            server = self.devnet.attach_server(
                op, name=f"srv-{i}", server_cls=server_cls,
                fee_schedule=FlatFeeSchedule(flat_price=prices_gwei[i] * GWEI),
                **kwargs)
            self.servers.append(server)
            self.bindings.append(SimServerBinding(self.network, f"srv-{i}",
                                                  server))
            endpoint = SimEndpoint(self.network, f"lc-{i}", f"srv-{i}",
                                   server.address, timeout=TIMEOUT)
            self.endpoints.append(endpoint)
            marketplace.advertise_server(server, name=f"srv-{i}",
                                         endpoint=endpoint)
        self.devnet.advance_blocks(2)
        self.witness = WitnessService(
            self.devnet.attach_server(self.wn, name="wn", stake=False).node)
        self.client = MarketplaceClient(
            self.lc, marketplace, witness=self.witness, budget=BUDGET,
            clock=self.network.clock)

    def connect(self, min_sessions=None):
        opened = self.client.connect(min_sessions=min_sessions)
        # pin the post-connect head: channel opens mined blocks, and syncing
        # now keeps the measured race free of the (free) header fetch
        self.client.headers.sync()
        return opened

    def attempts_by_label(self):
        return {a.label: a for a in self.client.last_hedge}

    def balance_call(self):
        return RpcCall.create("eth_getBalance", self.alice.address)


class TestFirstValidWins:
    def test_winner_completes_while_loser_provably_in_flight(self):
        """The acceptance scenario: fanout=2 races a fast and a throttled
        honest server; the fast response verifies and wins while the
        throttled server's reply is still on the wire — asserted via the
        loser's pending-reply state."""
        world = HedgeWorld(latencies=[0.02, 0.6], prices_gwei=[10, 10])
        client = world.client
        world.connect()
        start = world.network.clock.now()

        outcome = client.query_hedged([world.balance_call()], fanout=2)

        assert outcome.report.classification.value == "valid"
        assert all(item.ok for item in outcome.items)
        elapsed = world.network.clock.now() - start
        # the race returned at the fast server's RTT, not the slow one's
        assert elapsed < 0.6
        attempts = world.attempts_by_label()
        assert attempts["srv-0"].outcome == "won"
        loser = attempts["srv-1"]
        assert loser.outcome == "cancelled"
        # provably still in flight when the winner verified: the cancel
        # landed while the reply was unresolved, and it stayed that way
        assert loser.pending.reply.cancelled()
        assert not loser.pending.reply.ok
        assert client.stats.hedged_queries == 1
        assert client.stats.hedge_launches == 2
        assert client.stats.hedges_cancelled == 1
        # only the winner's payment was acked; the loser's signed payment
        # stays unvolunteered (spent > acked) on its own channel
        win_session = client.sessions[world.servers[0].address]
        lose_session = client.sessions[world.servers[1].address]
        assert win_session.channel.acked == win_session.channel.spent
        assert lose_session.channel.spent > lose_session.channel.acked

    def test_multi_call_batch_race(self):
        """Hedging a real batch (two calls, one multiproof) works the same:
        the fast server's batch wins, the throttled server's is cancelled."""
        world = HedgeWorld(latencies=[0.02, 0.3], prices_gwei=[10, 10])
        client = world.client
        world.connect()
        calls = [world.balance_call(),
                 RpcCall.create("eth_getBalance", world.lc.address)]
        outcome = client.query_hedged(calls, fanout=2)
        assert outcome.batched and all(item.ok for item in outcome.items)
        attempts = world.attempts_by_label()
        assert attempts["srv-0"].outcome == "won"
        assert attempts["srv-1"].outcome in ("cancelled", "unused")

    def test_fanout_one_degenerates_to_single_query(self):
        world = HedgeWorld(latencies=[0.02, 0.02], prices_gwei=[5, 10])
        world.connect()
        outcome = world.client.query_hedged([world.balance_call()], fanout=1)
        assert all(item.ok for item in outcome.items)
        assert world.client.stats.hedge_launches == 1
        assert world.client.stats.hedges_cancelled == 0

    def test_in_process_endpoints_degenerate_gracefully(self):
        """Hedging over in-process endpoints (no network): the first leg
        resolves at submit time and wins; nothing blocks or leaks."""
        operators = [PrivateKey.from_seed(f"e2e:hedge:ip{i}") for i in range(2)]
        lc = PrivateKey.from_seed("e2e:hedge:ip-lc")
        alice = PrivateKey.from_seed("e2e:hedge:ip-alice")
        allocations = {k.address: 100 * TOKEN for k in operators + [lc]}
        allocations[alice.address] = 5 * TOKEN
        devnet = Devnet(GenesisConfig(allocations=allocations))
        marketplace = Marketplace()
        for i, op in enumerate(operators):
            server = devnet.attach_server(op, name=f"ip-{i}")
            marketplace.advertise_server(server, name=f"ip-{i}")
        devnet.advance_blocks(2)
        client = MarketplaceClient(lc, marketplace, budget=BUDGET)
        client.connect()
        outcome = client.query_hedged(
            [RpcCall.create("eth_getBalance", alice.address)], fanout=2)
        assert all(item.ok for item in outcome.items)
        attempts = {a.outcome for a in client.last_hedge}
        assert "won" in attempts


class TestMaliciousRace:
    def test_fast_malicious_loser_is_slashed_and_slow_honest_wins(self):
        """The fast, cheap server is the fraud: its forged response arrives
        first, fails §V-D, gets escalated and slashed — and the race is
        still won by the slow honest server's in-flight response."""
        world = HedgeWorld(latencies=[0.02, 0.5], prices_gwei=[2, 10],
                           evil_index=0)
        client = world.client
        world.connect()

        outcome = client.query_hedged([world.balance_call()], fanout=2)

        assert all(item.ok for item in outcome.items)
        attempts = world.attempts_by_label()
        assert attempts["srv-0"].outcome == "fraud"
        assert attempts["srv-1"].outcome == "won"
        assert client.stats.frauds_detected == 1
        assert client.stats.frauds_slashed == 1
        # on-chain: the fraud proof confiscated the malicious stake
        assert world.devnet.call_view(
            DEPOSIT_MODULE_ADDRESS, "deposit_of",
            [world.operators[0].address]) == 0
        # and the cheat is banned from every later race
        assert client.reputation.is_banned(world.servers[0].address,
                                           client._now())

    def test_replacement_keeps_the_race_wide(self):
        """Two fast legs both return garbage; the race launches the
        next-ranked (honest) server as a replacement and completes."""
        world = HedgeWorld(latencies=[0.02, 0.02, 0.1],
                           prices_gwei=[2, 3, 10], evil_index=0,
                           attack="wrong_signature")
        # make srv-1 malicious too (unattributable garbage, not provable)
        evil = MaliciousFullNodeServer(
            world.servers[1].node, attack="wrong_signature",
            fee_schedule=world.servers[1].fee_schedule)
        world.bindings[1].server = evil
        client = world.client
        world.connect()

        outcome = client.query_hedged([world.balance_call()], fanout=2)

        assert all(item.ok for item in outcome.items)
        attempts = world.attempts_by_label()
        assert attempts["srv-0"].outcome == "invalid"
        assert attempts["srv-1"].outcome == "invalid"
        assert attempts["srv-2"].outcome == "won"
        assert client.stats.hedge_launches == 3
        assert client.stats.failovers == 2

    def test_exhausted_race_falls_back_to_per_key_service(self):
        """When every batch speaker dies mid-race, the query degrades to
        the serial per-key path so a healthy server without batch support
        still gets to answer — hedging must never lose a query the serial
        path would have completed."""

        class LegacyServer(FullNodeServer):
            def batch_protocol_version(self) -> int:
                return BATCH_PROTOCOL_VERSION + 7   # speaks something else

        world = HedgeWorld(latencies=[0.02, 0.02, 0.1],
                           prices_gwei=[2, 3, 10])
        # srv-2 is honest but batch-illiterate — and honestly advertised so
        legacy = LegacyServer(world.servers[2].node,
                              fee_schedule=world.servers[2].fee_schedule)
        world.bindings[2].server = legacy
        world.marketplace.advertise_server(legacy, name="srv-2",
                                           endpoint=world.endpoints[2])
        client = world.client
        # bond all three up front: no channel-open blocks are mined after
        # the fail-stop, so the surviving minority of header sources never
        # has to prove a height the dead majority should have quorum-voted
        world.connect(min_sessions=3)

        calls = [world.balance_call(),
                 RpcCall.create("eth_getBalance", world.lc.address)]
        # a warm race while everyone is alive (also memoizes the batch
        # probes, so the next race's legs launch without re-probing) …
        assert client.query_hedged(calls, fanout=2).batched

        # … then both batch speakers fail-stop mid-session
        world.bindings[0].offline = True
        world.bindings[1].offline = True
        outcome = client.query_hedged(calls, fanout=2)

        assert all(item.ok for item in outcome.items)
        assert not outcome.batched            # served per key by the legacy
        assert {a.outcome for a in client.last_hedge} == {"timeout"}


class TestTimeoutRace:
    def test_both_legs_die_is_one_timeout_not_two(self):
        """With every server dead the hedged query fails — but in ~one
        synchrony bound (the legs timed out racing), not the serial chain's
        sum of bounds; and both legs resolved exactly once, via cancel."""
        world = HedgeWorld(latencies=[0.02, 0.02], prices_gwei=[5, 10])
        client = world.client
        world.connect()
        for binding in world.bindings:
            binding.offline = True
        start = world.network.clock.now()

        with pytest.raises(MarketplaceError):
            client.query_hedged([world.balance_call()], fanout=2)

        elapsed = world.network.clock.now() - start
        assert elapsed == pytest.approx(TIMEOUT, rel=0.1)   # raced, not chained
        for attempt in client.last_hedge:
            assert attempt.outcome == "timeout"
            assert attempt.pending.reply.cancelled()
        for server in world.servers:
            kinds = [e.kind
                     for e in client.reputation.events_of(server.address)]
            assert EVENT_TIMEOUT in kinds
        assert client.stats.failovers >= 2

    def test_hedge_beats_the_serial_timeout_chain(self):
        """srv-0 (cheapest, top-ranked) is dead: the serial path would burn
        a full synchrony bound on it before trying anyone else; the hedge
        completes at the live server's RTT with the dead leg still pending."""
        world = HedgeWorld(latencies=[0.02, 0.1], prices_gwei=[2, 10])
        client = world.client
        world.connect()
        world.bindings[0].offline = True
        start = world.network.clock.now()

        outcome = client.query_hedged([world.balance_call()], fanout=2)

        assert all(item.ok for item in outcome.items)
        elapsed = world.network.clock.now() - start
        assert elapsed < TIMEOUT                   # no timeout was awaited
        attempts = world.attempts_by_label()
        assert attempts["srv-0"].outcome == "cancelled"
        assert attempts["srv-1"].outcome == "won"

    def test_clockless_stuck_transport_terminates(self):
        """A submit-capable endpoint with no sim network and futures nobody
        can drive (the pathological custom transport): the race must time
        its legs out and fail cleanly instead of spinning forever."""

        class StuckTransport:
            """Delegates the free/blocking surface to a real server, but
            every submitted paid request hangs as a driverless future."""

            def __init__(self, server):
                self._server = server

            @property
            def address(self):
                return self._server.address

            def submit(self, method, *args):
                if method in ("serve_request", "serve_batch"):
                    return PendingReply(method=method, target="stuck")
                return PendingReply.completed(
                    getattr(self._server, method)(*args), method=method)

            def __getattr__(self, name):
                return getattr(self._server, name)

        operators = [PrivateKey.from_seed(f"e2e:stuck:op{i}") for i in range(2)]
        lc = PrivateKey.from_seed("e2e:stuck:lc")
        alice = PrivateKey.from_seed("e2e:stuck:alice")
        allocations = {k.address: 100 * TOKEN for k in operators + [lc]}
        allocations[alice.address] = 5 * TOKEN
        devnet = Devnet(GenesisConfig(allocations=allocations))
        marketplace = Marketplace()
        for i, op in enumerate(operators):
            server = devnet.attach_server(op, name=f"stuck-{i}")
            marketplace.advertise_server(server, name=f"stuck-{i}",
                                         endpoint=StuckTransport(server))
        devnet.advance_blocks(2)
        client = MarketplaceClient(lc, marketplace, budget=BUDGET)
        client.connect()

        with pytest.raises(MarketplaceError):
            client.query_hedged(
                [RpcCall.create("eth_getBalance", alice.address)], fanout=2)
        assert {a.outcome for a in client.last_hedge} == {"timeout"}
        for attempt in client.last_hedge:
            assert attempt.pending.reply.cancelled()
