"""Storage-query fraud: the two-stage (account → storage) proof path.

The liveness check (§V-C) rests on verified ``eth_getStorageAt`` reads of
the CMM's status slot.  A full node that forges those would defeat the
defense — unless storage lies are themselves slashable.  This test drives a
forged storage read through detection, witnessing, and Algorithm 2.
"""

import pytest

from repro.contracts import (
    CHANNELS_MODULE_ADDRESS,
    DEPOSIT_MODULE_ADDRESS,
)
from repro.contracts.channels import channel_status_slot
from repro.crypto import PrivateKey
from repro.parp import FraudDetected, MIN_FULL_NODE_DEPOSIT
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.messages import PARPResponse, RpcCall
from repro.parp.queries import QueryFraud, execute_query, verify_query_result
from repro.rlp import decode, encode

from ..conftest import make_parp_env


class StorageLiar(MaliciousFullNodeServer):
    """Forges eth_getStorageAt values (e.g. claims a closed channel open)."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("attack", "inflate_balance")
        super().__init__(*args, **kwargs)

    def _execute_and_sign(self, request):
        self.attacks_launched += 1
        call = request.call
        m_b = self.node.head_number()
        result, proof = execute_query(self.node, call, m_b)
        if call.method == "eth_getStorageAt":
            value, account = decode(result)
            forged_value = b"\x01" if value != b"\x01" else b"\x03"
            result = encode([forged_value, account])
        return PARPResponse.build(
            alpha=request.alpha, request=request, m_b=self.node.head_number(),
            result=result, proof=proof, key=self.key,
        )


class TestStorageFraud:
    def test_forged_storage_value_detected_and_slashed(self, devnet, keys):
        env = make_parp_env(devnet, keys, server_cls=StorageLiar)
        slot = channel_status_slot(env.alpha)
        with pytest.raises(FraudDetected) as excinfo:
            env.session.get_storage_at(CHANNELS_MODULE_ADDRESS, slot)
        assert excinfo.value.report.check == "merkle-proof"
        env.witness.submit(excinfo.value.package)
        assert devnet.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                                [keys.fn.address]) == 0

    def test_liveness_check_cannot_be_spoofed(self, devnet, keys):
        """channel_status_verified either returns the true status or raises
        FraudDetected — a liar can never make it return a false status."""
        env = make_parp_env(devnet, keys, server_cls=StorageLiar)
        with pytest.raises(FraudDetected):
            env.session.channel_status_verified()

    def test_storage_fraud_adjudicates_on_chain_directly(self, devnet, keys):
        """Unit-drive the FDM path: a storage lie fails verify_query_result
        with QueryFraud, under the client AND the contract verifier."""
        env = make_parp_env(devnet, keys, server_cls=StorageLiar)
        session = env.session
        slot = channel_status_slot(env.alpha)
        call = RpcCall.create("eth_getStorageAt", CHANNELS_MODULE_ADDRESS, slot)
        amount = session.channel.next_amount(session.fee_schedule.price(call))
        request = session.build_request(call, amount)
        session.channel.record_request(amount)
        raw = env.server.serve_request(request.encode_wire())
        response = PARPResponse.decode_wire(raw)
        if response.m_b > session.headers.chain.tip_number:
            session.headers.sync_to(response.m_b)
        with pytest.raises(QueryFraud):
            verify_query_result(call, response, session.headers.get_header)


class TestHonestStorageReads:
    def test_verified_storage_roundtrip(self, parp_env):
        """Honest storage reads verify and decode to the stored value."""
        slot = channel_status_slot(parp_env.alpha)
        value = parp_env.session.get_storage_at(CHANNELS_MODULE_ADDRESS, slot)
        assert int.from_bytes(value, "big") == 1  # OPEN

    def test_vacant_slot_reads_empty(self, parp_env):
        vacant = b"\x77" * 32
        value = parp_env.session.get_storage_at(CHANNELS_MODULE_ADDRESS, vacant)
        assert value == b""
