"""PARP over the simulated network: latency, timeouts, fail-over, loss."""

import pytest

from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.lightclient import HeaderSyncer
from repro.net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import FullNode
from repro.parp import (
    FullNodeServer,
    InvalidResponse,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
)

from ..conftest import TOKEN


@pytest.fixture
def sim(devnet, keys):
    """Two PARP servers and one client wired over a simulated network."""
    devnet.execute(keys.fn, DEPOSIT_MODULE_ADDRESS, "deposit",
                   value=MIN_FULL_NODE_DEPOSIT)
    devnet.execute(keys.wn, DEPOSIT_MODULE_ADDRESS, "deposit",
                   value=MIN_FULL_NODE_DEPOSIT)
    devnet.advance_blocks(1)

    network = SimNetwork(latency=FixedLatency(0.02))
    server_a = FullNodeServer(FullNode(devnet.chain, key=keys.fn, name="a"))
    server_b = FullNodeServer(FullNode(devnet.chain, key=keys.wn, name="b"))
    binding_a = SimServerBinding(network, "fn-a", server_a)
    binding_b = SimServerBinding(network, "fn-b", server_b)
    endpoint_a = SimEndpoint(network, "lc-a", "fn-a", server_a.address,
                             timeout=2.0)
    endpoint_b = SimEndpoint(network, "lc-b", "fn-b", server_b.address,
                             timeout=2.0)
    return network, (server_a, server_b), (binding_a, binding_b), \
        (endpoint_a, endpoint_b)


class TestOverSimulatedNetwork:
    def test_lifecycle_with_latency(self, sim, devnet, keys):
        network, servers, bindings, endpoints = sim
        session = LightClientSession(
            keys.lc, endpoints[0],
            HeaderSyncer([endpoints[0], endpoints[1]]),
            clock=network.clock,
        )
        start = network.clock.now()
        session.connect(budget=10 ** 14)
        balance = session.get_balance(keys.alice.address)
        assert balance == 5 * TOKEN
        # simulated time must have advanced by whole round trips
        assert network.clock.now() - start >= 0.04

    def test_timeout_on_silent_server(self, sim, devnet, keys):
        network, servers, bindings, endpoints = sim
        session = LightClientSession(
            keys.lc, endpoints[0],
            HeaderSyncer([endpoints[0], endpoints[1]]),
            clock=network.clock,
        )
        session.connect(budget=10 ** 14)
        bindings[0].offline = True
        with pytest.raises(InvalidResponse) as excinfo:
            session.get_balance(keys.alice.address)
        assert excinfo.value.report.check == "transport"

    def test_failover_to_second_node(self, sim, devnet, keys):
        """Pseudonymity makes switching trivial: open a channel with node B
        after node A stops answering (paper: 'clients can trivially switch
        between different PARP full nodes, e.g., for fail-over')."""
        network, servers, bindings, endpoints = sim
        session_a = LightClientSession(
            keys.lc, endpoints[0], HeaderSyncer([endpoints[0], endpoints[1]]),
            clock=network.clock,
        )
        session_a.connect(budget=10 ** 14)
        bindings[0].offline = True
        with pytest.raises(InvalidResponse):
            session_a.get_balance(keys.alice.address)

        session_b = LightClientSession(
            keys.lc, endpoints[1], HeaderSyncer([endpoints[1]]),
            clock=network.clock,
        )
        session_b.connect(budget=10 ** 14)
        assert session_b.get_balance(keys.alice.address) == 5 * TOKEN
        assert session_b.full_node != session_a.full_node

    def test_partition_heals(self, sim, devnet, keys):
        network, servers, bindings, endpoints = sim
        session = LightClientSession(
            keys.lc, endpoints[0], HeaderSyncer([endpoints[0], endpoints[1]]),
            clock=network.clock,
        )
        session.connect(budget=10 ** 14)
        network.partition("lc-a", "fn-a")
        with pytest.raises(InvalidResponse):
            session.get_balance(keys.alice.address)
        network.heal("lc-a", "fn-a")
        assert session.get_balance(keys.alice.address) == 5 * TOKEN

    def test_traffic_accounting(self, sim, devnet, keys):
        network, servers, bindings, endpoints = sim
        session = LightClientSession(
            keys.lc, endpoints[0], HeaderSyncer([endpoints[0]]),
            clock=network.clock,
        )
        session.connect(budget=10 ** 14)
        before = network.stats.bytes_sent
        session.get_balance(keys.alice.address)
        sent = network.stats.bytes_sent - before
        # one request (>226 B overhead) + one response (>187 B + proof)
        assert sent > 226 + 187
