"""End-to-end honest lifecycle: Fig. 4 happy path with exact settlement."""

import pytest

from repro.chain import UnsignedTransaction
from repro.contracts import CHANNELS_MODULE_ADDRESS
from repro.parp import LightClientState
from repro.parp.constants import DISPUTE_WINDOW_BLOCKS

from ..conftest import TOKEN, make_parp_env


class TestHonestLifecycle:
    def test_full_lifecycle_with_exact_settlement(self, devnet, keys):
        env = make_parp_env(devnet, keys, budget=10 ** 15)
        session, server, net = env.session, env.server, env.net

        # -- request/response phase: a mix of reads and writes ---------- #
        balance = session.get_balance(keys.alice.address)
        assert balance == 5 * TOKEN

        tx = UnsignedTransaction(
            nonce=0, gas_price=10 ** 9, gas_limit=21_000,
            to=keys.bob.address, value=1_234,
        ).sign(keys.alice)
        block, index, tx_hash = session.send_raw_transaction(tx.encode())
        assert block is not None
        assert session.get_balance(keys.bob.address) == 3 * TOKEN + 1_234

        receipt_bytes = session.get_transaction_receipt(tx_hash)
        assert receipt_bytes

        assert session.get_transaction(block, index) == tx.encode()
        assert session.block_number() == net.chain.height

        spent = session.channel.spent
        served = server.stats.requests_served
        assert served == session.channel.requests_sent == 6
        assert spent == session.history[-1].amount_paid

        # -- cooperative closure ------------------------------------------ #
        lc_before = net.balance_of(keys.lc.address)
        fn_before = net.balance_of(keys.fn.address)
        close_hash = session.close()
        assert session.state is LightClientState.UNBONDING
        net.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
        confirm_hash = session.confirm_close()
        assert session.state is LightClientState.IDLE

        lc_gas = sum(
            net.chain.get_receipt(h).gas_used * session.gas_price
            for h in (close_hash, confirm_hash)
        )
        lc_delta = net.balance_of(keys.lc.address) - lc_before
        fn_delta = net.balance_of(keys.fn.address) - fn_before
        # LC got the unspent budget back, minus its gas for close+confirm.
        assert lc_delta == (10 ** 15 - spent) - lc_gas
        # FN earned exactly the cumulative signed amount (it mined its own
        # blocks, so fee income flowed back to itself: payout is clean).
        assert fn_delta >= spent
        assert net.balance_of(CHANNELS_MODULE_ADDRESS) == 0

    def test_every_response_verified(self, parp_env):
        session = parp_env.session
        session.get_balance(parp_env.keys.alice.address)
        session.block_number()
        assert all(o.report.valid for o in session.history)

    def test_payments_cumulative_and_monotone(self, parp_env):
        session = parp_env.session
        for _ in range(5):
            session.get_balance(parp_env.keys.alice.address)
        amounts = [o.amount_paid for o in session.history]
        assert amounts == sorted(amounts)
        assert len(set(amounts)) == len(amounts)
        assert session.channel.spent == amounts[-1]

    def test_server_retains_latest_payment_proof(self, parp_env):
        session, server = parp_env.session, parp_env.server
        session.get_balance(parp_env.keys.alice.address)
        session.get_balance(parp_env.keys.bob.address)
        alpha, amount, sig = server.channels[parp_env.alpha].redeemable_state()
        assert amount == session.channel.spent
        # the payment proof must be on-chain redeemable: validate signature
        from repro.crypto import Signature, recover_address
        from repro.parp.messages import payment_digest

        signer = recover_address(payment_digest(alpha, amount),
                                 Signature.from_bytes(sig))
        assert signer == parp_env.keys.lc.address

    def test_fn_initiated_redemption(self, devnet, keys):
        """The full node closes the channel itself to redeem its earnings."""
        env = make_parp_env(devnet, keys)
        env.session.get_balance(keys.alice.address)
        earned = env.server.channels[env.alpha].earned
        assert earned > 0

        nonce = devnet.chain.state.nonce_of(keys.fn.address)
        close_tx = env.server.build_close_transaction(env.alpha, nonce=nonce)
        tx_hash = env.node.submit_transaction(close_tx.encode())
        env.node.ensure_mined(tx_hash)
        assert devnet.chain.get_receipt(tx_hash).succeeded

        devnet.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
        fn_before = devnet.balance_of(keys.fn.address)
        result = devnet.execute(keys.wn, CHANNELS_MODULE_ADDRESS,
                                "confirm_closure", [env.alpha])
        assert result.succeeded
        assert devnet.balance_of(keys.fn.address) - fn_before == earned

    def test_multiple_clients_isolated(self, devnet, keys):
        """Two bonded clients: payments and channels must not interfere."""
        from repro.crypto import PrivateKey
        from repro.lightclient import HeaderSyncer
        from repro.parp import LightClientSession

        env = make_parp_env(devnet, keys)
        second_key = PrivateKey.from_seed("second-lc")
        devnet.chain.state.add_balance(second_key.address, 10 * TOKEN)
        devnet.advance_blocks(1)

        second = LightClientSession(
            second_key, env.server,
            HeaderSyncer([env.server, env.witness_node]),
        )
        alpha2 = second.connect(budget=10 ** 14)
        assert alpha2 != env.alpha

        env.session.get_balance(keys.alice.address)
        second.get_balance(keys.bob.address)
        second.get_balance(keys.alice.address)

        assert env.server.channels[env.alpha].requests_served == 1
        assert env.server.channels[alpha2].requests_served == 2
        assert env.server.channels[alpha2].light_client == second_key.address

    def test_reconnect_after_settlement(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        env.session.get_balance(keys.alice.address)
        env.session.close()
        devnet.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
        env.session.confirm_close()
        # a fresh connection opens a brand-new channel
        new_alpha = env.session.connect(budget=10 ** 14)
        assert new_alpha != env.alpha
        assert env.session.get_balance(keys.alice.address) == 5 * TOKEN
