"""Concurrent session multiplexing: N clients × M servers, one truth.

The server now serializes channel registration and per-channel payment
accounting, so many clients hammering one server — interleaved over the
simulated network or genuinely parallel on threads — must leave every
channel's (a, σ_a) pair exactly consistent with what its client signed,
and the chain nonces exactly consistent with the on-chain channel opens.
"""

import threading

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet, FullNode
from repro.parp import FullNodeServer, LightClientSession
from repro.parp.messages import RpcCall

TOKEN = 10 ** 18
BUDGET = 10 ** 15


def funded_devnet(client_keys, operator_keys, alice):
    allocations = {k.address: 100 * TOKEN
                   for k in list(client_keys) + list(operator_keys)}
    allocations[alice.address] = 5 * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))
    for op in operator_keys:
        devnet.stake_full_node(op)
    devnet.advance_blocks(2)
    return devnet


class TestInterleavedOverSimNetwork:
    N_CLIENTS = 3
    M_SERVERS = 2
    ROUNDS = 6

    def test_channel_consistency_under_interleaved_traffic(self):
        clients = [PrivateKey.from_seed(f"conc:lc{i}")
                   for i in range(self.N_CLIENTS)]
        operators = [PrivateKey.from_seed(f"conc:op{j}")
                     for j in range(self.M_SERVERS)]
        alice = PrivateKey.from_seed("conc:alice")
        devnet = funded_devnet(clients, operators, alice)

        network = SimNetwork(latency=FixedLatency(0.01))
        servers = []
        for j, op in enumerate(operators):
            server = FullNodeServer(FullNode(devnet.chain, key=op,
                                             name=f"srv-{j}"))
            SimServerBinding(network, f"srv-{j}", server)
            servers.append(server)

        # every client bonds a channel to every server
        sessions: dict[tuple[int, int], LightClientSession] = {}
        for i, key in enumerate(clients):
            endpoints = [SimEndpoint(network, f"c{i}-s{j}", f"srv-{j}",
                                     servers[j].address, timeout=5.0)
                         for j in range(self.M_SERVERS)]
            for j in range(self.M_SERVERS):
                session = LightClientSession(
                    key, endpoints[j], HeaderSyncer(endpoints),
                    clock=network.clock.now,
                )
                session.connect(budget=BUDGET)
                sessions[(i, j)] = session

        # interleaved load: every round each client alternates its server
        # and flips between single queries and batches of two
        singles: dict[tuple[int, int], int] = {}
        batches: dict[tuple[int, int], int] = {}
        for rnd in range(self.ROUNDS):
            for i, key in enumerate(clients):
                j = (i + rnd) % self.M_SERVERS
                session = sessions[(i, j)]
                if rnd % 2 == 0:
                    assert session.get_balance(alice.address) == 5 * TOKEN
                    singles[(i, j)] = singles.get((i, j), 0) + 1
                else:
                    outcome = session.query_batch([
                        RpcCall.create("eth_getBalance", alice.address),
                        RpcCall.create("eth_getBalance", key.address),
                    ])
                    assert outcome.batched and all(x.ok for x in outcome.items)
                    batches[(i, j)] = batches.get((i, j), 0) + 1

        # per-channel truth: the server banked exactly what the client signed
        # and the client saw verified responses for everything it signed
        for (i, j), session in sessions.items():
            channel = servers[j].channels[session.channel.alpha]
            assert channel.latest_amount == session.channel.spent
            assert session.channel.acked == session.channel.spent
            n_single = singles.get((i, j), 0)
            n_batch = batches.get((i, j), 0)
            assert channel.requests_served == n_single + n_batch
            assert channel.queries_served == n_single + 2 * n_batch

        # nonce consistency: exactly one OpenChannel transaction per channel
        for i, key in enumerate(clients):
            assert devnet.chain.state.nonce_of(key.address) == self.M_SERVERS
        for server in servers:
            assert server.open_channel_count == self.N_CLIENTS

        # the fee ledgers add up across the whole marketplace
        total_signed = sum(s.channel.spent for s in sessions.values())
        total_earned = sum(s.stats.fees_earned for s in servers)
        assert total_earned == total_signed


class TestThreadedSingleServer:
    N_CLIENTS = 4
    REQUESTS = 25

    def test_parallel_clients_cannot_corrupt_channel_state(self):
        clients = [PrivateKey.from_seed(f"thr:lc{i}")
                   for i in range(self.N_CLIENTS)]
        operator = PrivateKey.from_seed("thr:op")
        alice = PrivateKey.from_seed("thr:alice")
        devnet = funded_devnet(clients, [operator], alice)
        server = FullNodeServer(FullNode(devnet.chain, key=operator,
                                         name="srv"))

        sessions = []
        for key in clients:
            session = LightClientSession(key, server, HeaderSyncer([server]))
            session.connect(budget=BUDGET)
            sessions.append(session)

        errors: list[Exception] = []

        def hammer(session: LightClientSession) -> None:
            try:
                for _ in range(self.REQUESTS):
                    assert session.get_balance(alice.address) == 5 * TOKEN
            except Exception as exc:  # noqa: BLE001 — surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,))
                   for s in sessions]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        total = self.N_CLIENTS * self.REQUESTS
        assert server.stats.requests_served == total
        assert server.open_channel_count == self.N_CLIENTS
        earned = 0
        for session in sessions:
            channel = server.channels[session.channel.alpha]
            assert channel.latest_amount == session.channel.spent
            assert session.channel.acked == session.channel.spent
            assert channel.requests_served == self.REQUESTS
            earned += channel.latest_amount
        assert server.stats.fees_earned == earned
