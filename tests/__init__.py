"""Test suite package (enables ``from ..conftest import …`` in submodules)."""
