"""Shared fixtures: funded devnets, PARP environments, key material.

Key naming convention across the suite: ``fn`` = full node operator,
``lc`` = light client, ``wn`` = witness node, ``alice``/``bob`` = end-user
accounts the workloads touch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import pytest

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
    WitnessService,
)
from repro.storage import AppendOnlyFileStore, MemoryNodeStore

TOKEN = 10 ** 18

#: Backends the store-parametrized trie/state tests run against.  Defaults
#: to memory only (fast local runs); CI's tier-1 job sets
#: ``REPRO_NODE_STORE=memory,file`` so the same tests also exercise the
#: append-only disk store.
NODE_STORE_BACKENDS = [
    backend.strip()
    for backend in os.environ.get("REPRO_NODE_STORE", "memory").split(",")
    if backend.strip()
]


def pytest_generate_tests(metafunc):
    if "node_store_backend" in metafunc.fixturenames:
        metafunc.parametrize("node_store_backend", NODE_STORE_BACKENDS)


@pytest.fixture
def node_store(node_store_backend, tmp_path):
    """A fresh node store of the selected backend (see REPRO_NODE_STORE)."""
    if node_store_backend == "memory":
        yield MemoryNodeStore()
    elif node_store_backend == "file":
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        yield store
        store.close()
    else:
        raise ValueError(
            f"unknown REPRO_NODE_STORE backend {node_store_backend!r} "
            "(expected 'memory' or 'file')"
        )


@dataclass
class Keys:
    """The cast of characters used by most scenarios."""

    fn: PrivateKey = field(default_factory=lambda: PrivateKey.from_seed("keys:fn"))
    lc: PrivateKey = field(default_factory=lambda: PrivateKey.from_seed("keys:lc"))
    wn: PrivateKey = field(default_factory=lambda: PrivateKey.from_seed("keys:wn"))
    alice: PrivateKey = field(default_factory=lambda: PrivateKey.from_seed("keys:alice"))
    bob: PrivateKey = field(default_factory=lambda: PrivateKey.from_seed("keys:bob"))


@pytest.fixture
def keys() -> Keys:
    return Keys()


@pytest.fixture
def devnet(keys: Keys) -> Devnet:
    """A devnet with everyone funded."""
    return Devnet(GenesisConfig(allocations={
        keys.fn.address: 100 * TOKEN,
        keys.lc.address: 100 * TOKEN,
        keys.wn.address: 100 * TOKEN,
        keys.alice.address: 5 * TOKEN,
        keys.bob.address: 3 * TOKEN,
    }))


@dataclass
class ParpEnv:
    """A staked full node + bonded light client, ready for requests."""

    net: Devnet
    keys: Keys
    node: FullNode
    server: FullNodeServer
    witness_node: FullNode
    witness: WitnessService
    syncer: HeaderSyncer
    session: LightClientSession
    alpha: bytes


def make_parp_env(devnet: Devnet, keys: Keys, server_cls=FullNodeServer,
                  budget: int = 10 ** 15, connect: bool = True,
                  history_blocks: int = 2, **server_kwargs) -> ParpEnv:
    """Assemble the standard scenario; server_cls may be the adversary."""
    devnet.execute(keys.fn, DEPOSIT_MODULE_ADDRESS, "deposit",
                   value=MIN_FULL_NODE_DEPOSIT)
    devnet.advance_blocks(history_blocks)
    node = FullNode(devnet.chain, key=keys.fn, name="fn")
    server = server_cls(node, **server_kwargs)
    witness_node = FullNode(devnet.chain, key=keys.wn, name="wn")
    witness = WitnessService(witness_node)
    syncer = HeaderSyncer([server, witness_node])
    session = LightClientSession(keys.lc, server, syncer)
    alpha = session.connect(budget=budget) if connect else b""
    return ParpEnv(
        net=devnet, keys=keys, node=node, server=server,
        witness_node=witness_node, witness=witness,
        syncer=syncer, session=session, alpha=alpha,
    )


@pytest.fixture
def parp_env(devnet: Devnet, keys: Keys) -> ParpEnv:
    return make_parp_env(devnet, keys)
