"""Channels Management Module: open, close, dispute, settle (§IV-E)."""

import pytest

from repro.chain import GenesisConfig
from repro.contracts import (
    CHANNEL_CLOSED,
    CHANNEL_CLOSING,
    CHANNEL_NONE,
    CHANNEL_OPEN,
    CHANNELS_MODULE_ADDRESS,
    DEPOSIT_MODULE_ADDRESS,
)
from repro.crypto import PrivateKey
from repro.node import Devnet
from repro.parp.constants import DISPUTE_WINDOW_BLOCKS, MIN_FULL_NODE_DEPOSIT
from repro.parp.messages import handshake_digest, payment_digest

FN = PrivateKey.from_seed("cmm:fn")
LC = PrivateKey.from_seed("cmm:lc")
STRANGER = PrivateKey.from_seed("cmm:stranger")
TOKEN = 10 ** 18
BUDGET = TOKEN


@pytest.fixture
def net() -> Devnet:
    net = Devnet(GenesisConfig(allocations={
        FN.address: 100 * TOKEN, LC.address: 10 * TOKEN,
        STRANGER.address: 10 * TOKEN,
    }))
    net.execute(FN, DEPOSIT_MODULE_ADDRESS, "deposit", value=MIN_FULL_NODE_DEPOSIT)
    return net


def confirmation(net, lc=LC, fn=FN, lifetime=1_000):
    expiry = net.chain.head.header.timestamp + lifetime
    sig = fn.sign(handshake_digest(lc.address, expiry)).to_bytes()
    return expiry, sig


def open_channel(net, budget=BUDGET):
    expiry, sig = confirmation(net)
    result = net.execute(LC, CHANNELS_MODULE_ADDRESS, "open_channel",
                         [FN.address, expiry, sig], value=budget)
    assert result.succeeded, result.error
    return result.return_value


def signed_state(alpha, amount, signer=LC):
    return signer.sign(payment_digest(alpha, amount)).to_bytes()


class TestOpen:
    def test_happy_path(self, net):
        alpha = open_channel(net)
        lc, fn, budget, cs, status, deadline = net.call_view(
            CHANNELS_MODULE_ADDRESS, "get_channel", [alpha],
        )
        assert lc == LC.address.to_bytes()
        assert fn == FN.address.to_bytes()
        assert budget == BUDGET and cs == 0
        assert status == CHANNEL_OPEN

    def test_budget_locked_in_contract(self, net):
        open_channel(net)
        assert net.balance_of(CHANNELS_MODULE_ADDRESS) == BUDGET

    def test_alpha_unique_per_reopen(self, net):
        assert open_channel(net) != open_channel(net)

    def test_zero_budget_rejected(self, net):
        expiry, sig = confirmation(net)
        result = net.execute(LC, CHANNELS_MODULE_ADDRESS, "open_channel",
                             [FN.address, expiry, sig], value=0)
        assert not result.succeeded

    def test_expired_confirmation_rejected(self, net):
        expiry, sig = confirmation(net, lifetime=0)
        net.advance_blocks(2)  # chain time passes the expiry
        result = net.execute(LC, CHANNELS_MODULE_ADDRESS, "open_channel",
                             [FN.address, expiry, sig], value=BUDGET)
        assert not result.succeeded

    def test_confirmation_bound_to_light_client(self, net):
        """A stranger cannot reuse LC's confirmation."""
        expiry, sig = confirmation(net)  # signed for LC
        result = net.execute(STRANGER, CHANNELS_MODULE_ADDRESS, "open_channel",
                             [FN.address, expiry, sig], value=BUDGET)
        assert not result.succeeded

    def test_unstaked_full_node_rejected(self, net):
        rogue = PrivateKey.from_seed("cmm:rogue-fn")
        expiry = net.chain.head.header.timestamp + 100
        sig = rogue.sign(handshake_digest(LC.address, expiry)).to_bytes()
        result = net.execute(LC, CHANNELS_MODULE_ADDRESS, "open_channel",
                             [rogue.address, expiry, sig], value=BUDGET)
        assert not result.succeeded

    def test_open_count_tracked(self, net):
        open_channel(net)
        open_channel(net)
        assert net.call_view(CHANNELS_MODULE_ADDRESS, "open_channels_of",
                             [FN.address]) == 2


class TestClose:
    def test_fn_closes_with_signed_state(self, net):
        alpha = open_channel(net)
        amount = 12_345
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                             [alpha, amount, signed_state(alpha, amount)])
        assert result.succeeded
        assert net.call_view(CHANNELS_MODULE_ADDRESS, "channel_status",
                             [alpha]) == CHANNEL_CLOSING

    def test_lc_closes_with_zero_state(self, net):
        alpha = open_channel(net)
        result = net.execute(LC, CHANNELS_MODULE_ADDRESS, "close_channel",
                             [alpha, 0, b""])
        assert result.succeeded

    def test_stranger_cannot_close(self, net):
        alpha = open_channel(net)
        result = net.execute(STRANGER, CHANNELS_MODULE_ADDRESS, "close_channel",
                             [alpha, 0, b""])
        assert not result.succeeded

    def test_forged_state_rejected(self, net):
        alpha = open_channel(net)
        forged = signed_state(alpha, 999, signer=STRANGER)
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                             [alpha, 999, forged])
        assert not result.succeeded

    def test_amount_above_budget_rejected(self, net):
        alpha = open_channel(net)
        too_much = BUDGET + 1
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                             [alpha, too_much, signed_state(alpha, too_much)])
        assert not result.succeeded

    def test_double_close_rejected(self, net):
        alpha = open_channel(net)
        net.execute(LC, CHANNELS_MODULE_ADDRESS, "close_channel", [alpha, 0, b""])
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                             [alpha, 0, b""])
        assert not result.succeeded


class TestDispute:
    def test_higher_state_wins(self, net):
        alpha = open_channel(net)
        stale = 1_000
        net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                    [alpha, stale, signed_state(alpha, stale)])
        newer = 5_000
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "submit_state",
                             [alpha, newer, signed_state(alpha, newer)])
        assert result.succeeded
        channel = net.call_view(CHANNELS_MODULE_ADDRESS, "get_channel", [alpha])
        assert channel[3] == newer

    def test_lower_state_rejected(self, net):
        alpha = open_channel(net)
        net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                    [alpha, 5_000, signed_state(alpha, 5_000)])
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "submit_state",
                             [alpha, 4_000, signed_state(alpha, 4_000)])
        assert not result.succeeded

    def test_dispute_resets_window(self, net):
        alpha = open_channel(net)
        net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                    [alpha, 100, signed_state(alpha, 100)])
        first_deadline = net.call_view(CHANNELS_MODULE_ADDRESS, "get_channel",
                                       [alpha])[5]
        net.advance_blocks(3)
        net.execute(FN, CHANNELS_MODULE_ADDRESS, "submit_state",
                    [alpha, 200, signed_state(alpha, 200)])
        second_deadline = net.call_view(CHANNELS_MODULE_ADDRESS, "get_channel",
                                        [alpha])[5]
        assert second_deadline > first_deadline

    def test_submit_state_requires_closing(self, net):
        alpha = open_channel(net)
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "submit_state",
                             [alpha, 100, signed_state(alpha, 100)])
        assert not result.succeeded

    def test_late_challenge_rejected(self, net):
        """Challenges after the dispute deadline must not land, or the
        window would be meaningless (settlement could be stalled forever)."""
        alpha = open_channel(net)
        net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                    [alpha, 100, signed_state(alpha, 100)])
        net.advance_blocks(DISPUTE_WINDOW_BLOCKS + 2)
        late = net.execute(FN, CHANNELS_MODULE_ADDRESS, "submit_state",
                           [alpha, 200, signed_state(alpha, 200)])
        assert not late.succeeded
        channel = net.call_view(CHANNELS_MODULE_ADDRESS, "get_channel", [alpha])
        assert channel[3] == 100  # the pre-deadline state stands


class TestSettlement:
    def settle(self, net, alpha, amount):
        sig = signed_state(alpha, amount) if amount else b""
        net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                    [alpha, amount, sig])
        net.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
        return net.execute(FN, CHANNELS_MODULE_ADDRESS, "confirm_closure", [alpha])

    def test_payout_and_refund(self, net):
        alpha = open_channel(net)
        spent = BUDGET // 4
        fn_before = net.balance_of(FN.address)
        lc_before = net.balance_of(LC.address)
        result = self.settle(net, alpha, spent)
        assert result.succeeded
        gas_cost = sum(
            r.gas_used * 12 * 10 ** 9
            for r in [result]
        )
        # FN paid gas for close+confirm but received `spent`
        assert net.balance_of(LC.address) - lc_before == BUDGET - spent
        assert net.call_view(CHANNELS_MODULE_ADDRESS, "channel_status",
                             [alpha]) == CHANNEL_CLOSED

    def test_budget_conservation(self, net):
        """refund + payout == locked budget, nothing stuck in the CMM."""
        alpha = open_channel(net)
        self.settle(net, alpha, 777)
        assert net.balance_of(CHANNELS_MODULE_ADDRESS) == 0

    def test_cannot_settle_before_window(self, net):
        alpha = open_channel(net)
        net.execute(FN, CHANNELS_MODULE_ADDRESS, "close_channel",
                    [alpha, 0, b""])
        result = net.execute(FN, CHANNELS_MODULE_ADDRESS, "confirm_closure",
                             [alpha])
        assert not result.succeeded

    def test_open_count_decrements(self, net):
        alpha = open_channel(net)
        self.settle(net, alpha, 0)
        assert net.call_view(CHANNELS_MODULE_ADDRESS, "open_channels_of",
                             [FN.address]) == 0

    def test_unknown_channel_status_none(self, net):
        assert net.call_view(CHANNELS_MODULE_ADDRESS, "channel_status",
                             [b"\x00" * 16]) == CHANNEL_NONE
