"""Overlay engine mechanics: deferred commits, node cache, fast proof path.

The differential suite (``tests/property/test_prop_trie_overlay.py``) pins
*what* the overlay engine computes; these tests pin *how*: writes stay
unhashed until a commit point, the decoded-node LRU is shared across views,
and the serving layer reuses per-snapshot state views.
"""

import pytest

from repro.chain.state import StateDB, _secure_key, _secure_key_memo
from repro.crypto import keccak256
from repro.crypto.keys import PrivateKey
from repro.metrics.cache import LRUCache
from repro.rlp import encode_int
from repro.trie import (
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    NaiveMerklePatriciaTrie,
    ProofError,
    TrieError,
    generate_multiproof,
    generate_proof,
)


def _bulk(n: int) -> dict[bytes, bytes]:
    return {keccak256(encode_int(i + 1)): b"v" * 20 for i in range(n)}


class TestDeferredCommit:
    def test_writes_do_not_touch_the_store(self):
        trie = MerklePatriciaTrie()
        trie.update(_bulk(50))
        assert len(trie.db) == 0  # overlay only
        root = trie.commit()
        assert root != EMPTY_TRIE_ROOT
        assert root in trie.db

    def test_commit_is_idempotent(self):
        trie = MerklePatriciaTrie()
        trie.update(_bulk(20))
        root = trie.commit()
        stored = len(trie.db)
        assert trie.commit() == root
        assert trie.root_hash == root
        assert len(trie.db) == stored

    def test_root_hash_read_commits(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"v")
        root = trie.root_hash  # property forces the commit
        assert root in trie.db

    def test_reads_see_uncommitted_writes(self):
        trie = MerklePatriciaTrie()
        trie.put(b"alpha", b"1")
        assert trie.get(b"alpha") == b"1"
        assert b"alpha" in trie
        assert dict(trie.items()) == {b"alpha": b"1"}
        trie.delete(b"alpha")
        assert trie.get(b"alpha") is None

    def test_bulk_update_skips_intermediate_roots(self):
        """The overlay writes only the final tree's nodes; the eager engine
        also persists every intermediate root path — strictly more entries."""
        items = _bulk(64)
        fast = MerklePatriciaTrie()
        fast.update(items)
        fast.commit()
        naive = NaiveMerklePatriciaTrie()
        naive.update(items)
        assert fast.root_hash == naive.root_hash
        assert len(fast.db) < len(naive.db)

    def test_snapshot_interleaving_matches_eager_roots(self):
        items = _bulk(16)
        fast = MerklePatriciaTrie()
        naive = NaiveMerklePatriciaTrie()
        for key in sorted(items):
            fast.put(key, items[key])
            naive.put(key, items[key])
            assert fast.snapshot() == naive.snapshot()


class TestNodeCache:
    def test_views_share_the_cache(self):
        trie = MerklePatriciaTrie()
        trie.update(_bulk(8))
        view = trie.at_root(trie.root_hash)
        assert view.node_cache is trie.node_cache

    def test_cached_reads_skip_decoding(self):
        trie = MerklePatriciaTrie()
        trie.update(_bulk(32))
        root = trie.root_hash
        # A fresh view over the same cache resolves nodes without touching
        # the store's encodings (hits recorded on the shared cache).
        view = trie.at_root(root)
        before = view.node_cache.stats.hits
        for key in list(_bulk(32))[:8]:
            view.get(key)
        assert view.node_cache.stats.hits > before

    def test_load_node_missing_raises_trie_error(self):
        trie = MerklePatriciaTrie()
        with pytest.raises(TrieError):
            trie.load_node(keccak256(b"no such node"))

    def test_cache_capacity_bounds_entries(self):
        cache = LRUCache(capacity=16)
        trie = MerklePatriciaTrie(node_cache=cache)
        trie.update(_bulk(200))
        trie.commit()
        assert len(cache) <= 16

    def test_get_or_put_runs_factory_once(self):
        cache = LRUCache(capacity=4)
        calls = []

        def factory():
            calls.append(1)
            return "view"

        assert cache.get_or_put("k", factory) == "view"
        assert cache.get_or_put("k", factory) == "view"
        assert len(calls) == 1


class TestFastProofPath:
    def test_proof_bytes_identical_to_reference(self):
        items = _bulk(64)
        fast = MerklePatriciaTrie()
        fast.update(items)
        naive = NaiveMerklePatriciaTrie()
        naive.update(items)
        for probe in list(items)[:8] + [keccak256(b"absent")]:
            assert generate_proof(fast, probe) == generate_proof(naive, probe)

    def test_proving_uncommitted_trie_commits_first(self):
        trie = MerklePatriciaTrie()
        trie.put(b"fresh", b"value")
        proof = generate_proof(trie, b"fresh")  # must not see a stale root
        assert proof
        assert trie.root_hash in trie.db

    def test_missing_node_is_a_proof_error_with_context(self):
        """Satellite bugfix: a corrupt store mid-proving must raise the
        module's ProofError (with root/key/depth context), not a bare
        TrieError."""
        trie = MerklePatriciaTrie()
        items = _bulk(64)
        trie.update(items)
        root = trie.root_hash
        probe = next(iter(items))
        # drop a mid-path node from the store and prove through a fresh
        # (cold-cache) view so the walk actually consults the store
        victim = generate_proof(trie, probe)[1]
        del trie.db[keccak256(victim)]
        cold = MerklePatriciaTrie(trie.db, root)
        with pytest.raises(ProofError) as excinfo:
            generate_proof(cold, probe)
        message = str(excinfo.value)
        assert root.hex() in message
        assert probe.hex() in message
        assert "depth" in message

    def test_missing_node_in_multiproof_also_normalized(self):
        trie = MerklePatriciaTrie()
        items = _bulk(64)
        trie.update(items)
        root = trie.root_hash
        probe = next(iter(items))
        victim = generate_proof(trie, probe)[1]
        del trie.db[keccak256(victim)]
        cold = MerklePatriciaTrie(trie.db, root)
        with pytest.raises(ProofError):
            generate_multiproof(cold, [probe])


class TestStateDBWiring:
    def test_commit_exposes_root(self):
        state = StateDB()
        address = PrivateKey.from_seed("overlay:a").address
        state.add_balance(address, 1000)
        root = state.commit()
        assert root == state.root_hash != EMPTY_TRIE_ROOT

    def test_views_share_node_cache(self):
        state = StateDB()
        address = PrivateKey.from_seed("overlay:b").address
        state.add_balance(address, 5)
        view = state.at_root(state.snapshot())
        assert view.node_cache is state.node_cache
        state.revert(state.snapshot())
        assert state.node_cache is view.node_cache

    def test_secure_key_memoized(self):
        raw = PrivateKey.from_seed("overlay:c").address.to_bytes()
        first = _secure_key(raw)
        assert raw in _secure_key_memo
        assert _secure_key(raw) is first
        assert first == keccak256(raw)

    def test_secure_key_memo_is_bounded_locked_lru(self):
        # the seed's module dict was cleared wholesale at capacity and was
        # not thread-safe under the concurrent-session server; the memo is
        # now the same LRUCache the rest of the hot path uses
        assert isinstance(_secure_key_memo, LRUCache)
        assert _secure_key_memo.capacity == 1 << 17


class TestServerSnapshotViews:
    def test_state_views_reused_per_height(self):
        from repro.chain import GenesisConfig
        from repro.node import FullNode
        from repro.chain.chain import Blockchain
        from repro.parp.server import _SnapshotViewBackend

        key = PrivateKey.from_seed("overlay:server")
        chain = Blockchain(GenesisConfig(
            allocations={key.address: 10 ** 18}))
        node = FullNode(chain, key=key)
        backend = _SnapshotViewBackend(node)
        assert backend.state_at(0) is backend.state_at(0)
        # delegation to the wrapped node still works
        assert backend.head_number() == node.head_number()
        assert backend.chain_id() == chain.config.chain_id
