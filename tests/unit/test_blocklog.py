"""Crash recovery of the append-only block log (blocks.log).

Mirror of ``test_store_recovery.py`` for the chain-metadata sibling: a
reopened log recovers exactly the longest valid prefix of fully appended
blocks — a torn write or a corrupted byte anywhere in a record invalidates
that record and everything after it, and the file is truncated back to the
end of the valid prefix.
"""

import pytest

from repro.chain import GenesisConfig, UnsignedTransaction
from repro.crypto import PrivateKey
from repro.node import Devnet
from repro.storage import BLOCK_LOG_MAGIC, BlockLog, StoreError, open_block_log

ALICE = PrivateKey.from_seed("bl:alice")
BOB = PrivateKey.from_seed("bl:bob")
TOKEN = 10 ** 18

GENESIS = GenesisConfig(allocations={ALICE.address: 10 * TOKEN,
                                     BOB.address: TOKEN})


def _build_log(state_dir, blocks: int = 3):
    """Mine ``blocks`` transfer blocks over a --state-dir; return the sealed
    block list (genesis included) with the devnet closed."""
    net = Devnet(GENESIS, state_dir=state_dir)
    for _ in range(blocks):
        net.send_transaction(ALICE, BOB.address, value=100)
        net.mine()
    sealed = [net.chain.get_block_by_number(n)
              for n in range(net.chain.height + 1)]
    net.close()
    return sealed


class TestAppendReopen:
    def test_round_trip_is_field_identical(self, tmp_path):
        sealed = _build_log(tmp_path / "state")
        log = open_block_log(tmp_path / "state")
        assert log.last_number == sealed[-1].number
        assert log.last_hash == sealed[-1].hash
        for logged, original in zip(log.blocks, sealed):
            assert logged.hash == original.hash
            assert logged.header.encode() == original.header.encode()
            assert [tx.hash for tx in logged.transactions] \
                == [tx.hash for tx in original.transactions]
            # receipts round-trip including the re-derived per-tx gas
            for lr, orig in zip(logged.receipts, original.receipts):
                assert lr.encode() == orig.encode()
                assert lr.gas_used == orig.gas_used
        assert log.stats.blocks_recovered == len(sealed)
        assert log.stats.truncated_bytes == 0
        log.close()

    def test_append_enforces_continuity(self, tmp_path):
        sealed = _build_log(tmp_path / "state", blocks=2)
        log = BlockLog(tmp_path / "fresh.log")
        log.append(sealed[0])
        with pytest.raises(StoreError, match="expected number 1"):
            log.append(sealed[2])
        # a block from a *different* chain at the right height: parent check
        other_dir = tmp_path / "other"
        other = Devnet(GenesisConfig(allocations={BOB.address: TOKEN}),
                       state_dir=other_dir)
        other.advance_blocks(1)
        foreign = other.chain.get_block_by_number(1)
        other.close()
        with pytest.raises(StoreError, match="does not link"):
            log.append(foreign)
        log.append(sealed[1])
        assert log.last_number == 1
        log.close()

    def test_rewind_truncates_records(self, tmp_path):
        sealed = _build_log(tmp_path / "state", blocks=3)
        path = tmp_path / "state" / "blocks.log"
        log = BlockLog(path)
        log.rewind(2)
        assert log.last_number == sealed[-3].number
        log.close()
        reopened = BlockLog(path)
        assert reopened.last_number == sealed[-3].number
        assert reopened.stats.truncated_bytes == 0  # clean cut, no repair
        with pytest.raises(StoreError, match="cannot rewind"):
            reopened.rewind(99)
        reopened.close()

    def test_closed_log_rejects_io(self, tmp_path):
        sealed = _build_log(tmp_path / "state", blocks=1)
        log = BlockLog(tmp_path / "bare.log")
        log.close()
        log.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            log.append(sealed[0])

    def test_wedged_log_refuses_appends(self, tmp_path):
        sealed = _build_log(tmp_path / "state", blocks=1)
        log = BlockLog(tmp_path / "bare.log")
        log._wedged = True  # what a failed truncate-after-failed-append sets
        with pytest.raises(StoreError, match="refused the append"):
            log.append(sealed[0])
        log.close()


class TestTornWrites:
    def test_torn_write_sweep_recovers_a_committed_prefix(self, tmp_path):
        """Sweep every truncation point: recovery only ever yields a prefix
        of the sealed chain (possibly empty), never a torn or forged block."""
        sealed = _build_log(tmp_path / "state", blocks=2)
        path = tmp_path / "state" / "blocks.log"
        full = path.read_bytes()
        hashes = [block.hash for block in sealed]
        scratch = tmp_path / "scratch.log"
        for cut in range(len(BLOCK_LOG_MAGIC), len(full)):
            scratch.write_bytes(full[:cut])
            log = BlockLog(scratch)
            recovered = [block.hash for block in log.blocks]
            assert recovered == hashes[:len(recovered)]
            log.close()
            # the torn suffix is physically gone
            assert scratch.stat().st_size <= cut

    def test_bitflip_drops_record_and_all_later(self, tmp_path):
        sealed = _build_log(tmp_path / "state", blocks=3)
        path = tmp_path / "state" / "blocks.log"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # somewhere inside a middle record
        path.write_bytes(bytes(data))
        log = BlockLog(path)
        hashes = [block.hash for block in sealed]
        recovered = [block.hash for block in log.blocks]
        assert recovered == hashes[:len(recovered)]
        assert len(recovered) < len(sealed)
        assert log.stats.truncated_bytes > 0
        log.close()

    def test_append_after_recovery_is_durable(self, tmp_path):
        sealed = _build_log(tmp_path / "state", blocks=3)
        path = tmp_path / "state" / "blocks.log"
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 5)  # tear the final record
        log = BlockLog(path)
        assert log.last_number == sealed[-2].number
        log.append(sealed[-1])  # re-land the lost block
        log.close()
        reopened = BlockLog(path)
        assert reopened.last_hash == sealed[-1].hash
        reopened.close()

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "blocks.log"
        path.write_bytes(b"NOTABLOCKLOG-of-the-wrong-kind")
        with pytest.raises(StoreError, match="bad magic"):
            BlockLog(path)

    @pytest.mark.parametrize("kept", [1, 4, 7])
    def test_torn_magic_header_reinitializes(self, tmp_path, kept):
        sealed = _build_log(tmp_path / "state", blocks=1)
        path = tmp_path / "blocks.log"
        path.write_bytes(BLOCK_LOG_MAGIC[:kept])
        log = BlockLog(path)
        assert len(log) == 0
        log.append(sealed[0])
        log.close()
        reopened = BlockLog(path)
        assert reopened.last_hash == sealed[0].hash
        reopened.close()


class TestStateDirConvention:
    def test_open_block_log_directory_convention(self, tmp_path):
        log = open_block_log(tmp_path / "state")
        assert log.path == tmp_path / "state" / "blocks.log"
        log.close()

    def test_open_block_log_rejects_file_path(self, tmp_path):
        path = tmp_path / "not-a-dir"
        path.write_bytes(b"x")
        with pytest.raises(StoreError, match="not a directory"):
            open_block_log(path)
