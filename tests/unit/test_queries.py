"""The verifiable-query catalog: execute-and-verify for every method."""

import pytest

from repro.chain import GenesisConfig, UnsignedTransaction
from repro.crypto import PrivateKey, keccak256
from repro.node import Devnet, FullNode
from repro.parp.messages import PARPRequest, PARPResponse, RpcCall
from repro.parp.queries import (
    QueryError,
    QueryFraud,
    Unverifiable,
    decode_balance,
    decode_inclusion,
    decode_int_result,
    execute_query,
    is_verifiable,
    verify_query_result,
)

LC = PrivateKey.from_seed("q:lc")
FN = PrivateKey.from_seed("q:fn")
ALICE = PrivateKey.from_seed("q:alice")
BOB = PrivateKey.from_seed("q:bob")
TOKEN = 10 ** 18
ALPHA = keccak256(b"q-channel")[:16]


@pytest.fixture(scope="module")
def env():
    net = Devnet(GenesisConfig(allocations={
        ALICE.address: 5 * TOKEN, BOB.address: 3 * TOKEN,
        FN.address: TOKEN,
    }))
    node = FullNode(net.chain, key=FN)
    # mine one block with a known transfer for the tx/receipt queries
    tx = UnsignedTransaction(nonce=0, gas_price=10 ** 9, gas_limit=21_000,
                             to=BOB.address, value=111).sign(ALICE)
    net.chain.add_transaction(tx)
    net.mine()
    net.advance_blocks(1)
    return net, node, tx


def run(node, net, call, m_b=None):
    m_b = m_b if m_b is not None else node.head_number()
    result, proof = execute_query(node, call, m_b)
    request = PARPRequest.build(ALPHA, net.chain.head.hash, 10, call, LC)
    response = PARPResponse.build(ALPHA, request, node.head_number(),
                                  result, proof, FN)
    return request, response


def headers(net):
    return lambda n: net.chain.get_header(n)


class TestGetBalance:
    def test_execute_verify_roundtrip(self, env):
        net, node, _ = env
        call = RpcCall.create("eth_getBalance", ALICE.address)
        _, response = run(node, net, call)
        verify_query_result(call, response, headers(net))
        assert decode_balance(response.result) == 5 * TOKEN - 111 - 21_000 * 10 ** 9

    def test_absent_account_balance_zero(self, env):
        net, node, _ = env
        ghost = PrivateKey.from_seed("q:ghost").address
        call = RpcCall.create("eth_getBalance", ghost)
        _, response = run(node, net, call)
        verify_query_result(call, response, headers(net))
        assert decode_balance(response.result) == 0

    def test_tampered_result_is_fraud(self, env):
        net, node, _ = env
        call = RpcCall.create("eth_getBalance", ALICE.address)
        request, response = run(node, net, call)
        forged = PARPResponse.build(ALPHA, request, response.m_b,
                                    b"\x01" + response.result[1:],
                                    list(response.proof), FN)
        with pytest.raises(QueryFraud):
            verify_query_result(call, forged, headers(net))

    def test_missing_header_unverifiable(self, env):
        net, node, _ = env
        call = RpcCall.create("eth_getBalance", ALICE.address)
        _, response = run(node, net, call)
        with pytest.raises(Unverifiable):
            verify_query_result(call, response, lambda n: None)


class TestGetStorageAt:
    def test_contract_slot(self, env):
        net, node, _ = env
        from repro.contracts import DEPOSIT_MODULE_ADDRESS

        slot = b"\x00" * 32
        call = RpcCall.create("eth_getStorageAt", DEPOSIT_MODULE_ADDRESS, slot)
        _, response = run(node, net, call)
        verify_query_result(call, response, headers(net))

    def test_populated_slot_verifies(self, env):
        net, node, _ = env
        from repro.contracts import CHANNELS_MODULE_ADDRESS
        # CMM storage has data after channel tests? Not in this env — write one:
        net.chain.state.set_storage(CHANNELS_MODULE_ADDRESS, b"\x01" * 32, b"\x2a")
        net.advance_blocks(1)
        call = RpcCall.create("eth_getStorageAt", CHANNELS_MODULE_ADDRESS,
                              b"\x01" * 32)
        _, response = run(node, net, call)
        verify_query_result(call, response, headers(net))
        from repro.rlp import decode

        value, _account = decode(response.result)
        assert value == b"\x2a"


class TestTransactionQueries:
    def test_tx_by_index(self, env):
        net, node, tx = env
        location = net.chain.find_transaction(tx.hash)
        block, index = location
        call = RpcCall.create("eth_getTransactionByBlockNumberAndIndex",
                              block.number, index)
        _, response = run(node, net, call)
        verify_query_result(call, response, headers(net))

    def test_tx_by_index_unknown_block(self, env):
        net, node, _ = env
        call = RpcCall.create("eth_getTransactionByBlockNumberAndIndex", 999, 0)
        with pytest.raises(QueryError):
            execute_query(node, call, node.head_number())

    def test_receipt_query(self, env):
        net, node, tx = env
        call = RpcCall.create("eth_getTransactionReceipt", tx.hash)
        _, response = run(node, net, call)
        verify_query_result(call, response, headers(net))
        number, index, receipt = decode_inclusion(response.result)
        assert (number, index) == (1, 0)

    def test_receipt_swap_detected(self, env):
        """Serving tx A's receipt for tx B's hash must be fraud."""
        net, node, tx = env
        other = PrivateKey.from_seed("q:other-tx")
        call = RpcCall.create("eth_getTransactionReceipt", keccak256(b"wrong"))
        honest_call = RpcCall.create("eth_getTransactionReceipt", tx.hash)
        _, response = run(node, net, honest_call)
        with pytest.raises(QueryFraud):
            verify_query_result(call, response, headers(net))


class TestSendRawTransaction:
    def test_write_with_inclusion_proof(self, env):
        net, node, _ = env
        tx = UnsignedTransaction(nonce=1, gas_price=10 ** 9, gas_limit=21_000,
                                 to=BOB.address, value=7).sign(ALICE)
        call = RpcCall.create("eth_sendRawTransaction", tx.encode())
        request, response = run(node, net, call)
        verify_query_result(call, response, headers(net))
        number, index, tx_hash = decode_inclusion(response.result)
        assert tx_hash == tx.hash
        assert net.chain.find_transaction(tx.hash)[0].number == number

    def test_wrong_tx_in_proof_is_fraud(self, env):
        net, node, _ = env
        tx = UnsignedTransaction(nonce=2, gas_price=10 ** 9, gas_limit=21_000,
                                 to=BOB.address, value=8).sign(ALICE)
        call = RpcCall.create("eth_sendRawTransaction", tx.encode())
        request, response = run(node, net, call)
        # present the same response for a *different* submitted transaction
        other = UnsignedTransaction(nonce=3, gas_price=10 ** 9, gas_limit=21_000,
                                    to=BOB.address, value=9).sign(ALICE)
        other_call = RpcCall.create("eth_sendRawTransaction", other.encode())
        with pytest.raises(QueryFraud):
            verify_query_result(other_call, response, headers(net))


class TestUnverifiableQueries:
    def test_block_number(self, env):
        net, node, _ = env
        call = RpcCall.create("eth_blockNumber")
        _, response = run(node, net, call)
        assert decode_int_result(response.result) == node.head_number()
        verify_query_result(call, response, headers(net))  # no-op, no proof

    def test_chain_id(self, env):
        net, node, _ = env
        call = RpcCall.create("eth_chainId")
        _, response = run(node, net, call)
        assert decode_int_result(response.result) == 1337

    def test_catalog_classification(self):
        assert is_verifiable("eth_getBalance")
        assert is_verifiable("eth_sendRawTransaction")
        assert not is_verifiable("eth_blockNumber")
        assert not is_verifiable("method_that_does_not_exist")

    def test_unknown_method_raises(self, env):
        net, node, _ = env
        with pytest.raises(QueryError):
            execute_query(node, RpcCall.create("eth_noSuchThing"), 0)
