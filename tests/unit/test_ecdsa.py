"""Recoverable ECDSA: signing, verification, recovery, malleability."""

import pytest

from repro.crypto import keccak256
from repro.crypto.ecdsa import Signature, SignatureError, recover, sign, verify
from repro.crypto.keys import PrivateKey, recover_address
from repro.crypto.secp256k1 import N

MSG = keccak256(b"a message to sign")
KEY = PrivateKey.from_seed("ecdsa-test")


class TestSignVerify:
    def test_roundtrip(self):
        signature = sign(MSG, KEY.secret)
        assert verify(MSG, signature, KEY.public_key.point)

    def test_wrong_message_fails(self):
        signature = sign(MSG, KEY.secret)
        assert not verify(keccak256(b"other"), signature, KEY.public_key.point)

    def test_wrong_key_fails(self):
        signature = sign(MSG, KEY.secret)
        other = PrivateKey.from_seed("someone-else")
        assert not verify(MSG, signature, other.public_key.point)

    def test_deterministic_rfc6979(self):
        assert sign(MSG, KEY.secret) == sign(MSG, KEY.secret)

    def test_different_messages_different_signatures(self):
        assert sign(MSG, KEY.secret) != sign(keccak256(b"x"), KEY.secret)

    def test_rejects_bad_hash_length(self):
        with pytest.raises(SignatureError):
            sign(b"short", KEY.secret)

    def test_rejects_bad_private_key(self):
        with pytest.raises(SignatureError):
            sign(MSG, 0)
        with pytest.raises(SignatureError):
            sign(MSG, N)


class TestRecovery:
    def test_recover_public_key(self):
        signature = sign(MSG, KEY.secret)
        assert recover(MSG, signature) == KEY.public_key.point

    def test_recover_address(self):
        signature = KEY.sign(MSG)
        assert recover_address(MSG, signature) == KEY.address

    def test_recovery_over_many_keys(self):
        for i in range(8):
            key = PrivateKey.from_seed(f"recovery-{i}")
            msg = keccak256(f"msg-{i}".encode())
            assert recover_address(msg, key.sign(msg)) == key.address

    def test_recover_rejects_bad_hash(self):
        signature = sign(MSG, KEY.secret)
        with pytest.raises(SignatureError):
            recover(b"tiny", signature)


class TestLowS:
    def test_produced_signatures_are_low_s(self):
        for i in range(16):
            msg = keccak256(f"low-s-{i}".encode())
            signature = sign(msg, KEY.secret)
            assert signature.s <= N // 2

    def test_high_s_rejected_on_verify(self):
        signature = sign(MSG, KEY.secret)
        malleated = Signature(signature.r, N - signature.s, signature.v ^ 1)
        assert not verify(MSG, malleated, KEY.public_key.point)

    def test_high_s_rejected_on_recover(self):
        signature = sign(MSG, KEY.secret)
        malleated = Signature(signature.r, N - signature.s, signature.v ^ 1)
        with pytest.raises(SignatureError):
            recover(MSG, malleated)


class TestSerialization:
    def test_65_byte_roundtrip(self):
        signature = sign(MSG, KEY.secret)
        raw = signature.to_bytes()
        assert len(raw) == 65
        assert Signature.from_bytes(raw) == signature

    def test_bad_length_rejected(self):
        with pytest.raises(SignatureError):
            Signature.from_bytes(b"\x00" * 64)

    def test_bad_recovery_id_rejected(self):
        raw = sign(MSG, KEY.secret).to_bytes()
        with pytest.raises(SignatureError):
            Signature.from_bytes(raw[:-1] + b"\x05")

    def test_validate_catches_out_of_range(self):
        with pytest.raises(SignatureError):
            Signature(0, 1, 0).validate()
        with pytest.raises(SignatureError):
            Signature(1, 0, 0).validate()
        with pytest.raises(SignatureError):
            Signature(1, N, 0).validate()

    def test_tampered_signature_recovers_wrong_address(self):
        signature = KEY.sign(MSG)
        tampered = Signature(signature.r, signature.s, signature.v ^ 1)
        try:
            recovered = recover_address(MSG, tampered)
            assert recovered != KEY.address
        except SignatureError:
            pass  # also acceptable: flip makes recovery impossible
