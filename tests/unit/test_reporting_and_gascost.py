"""Benchmark-support modules: gas→USD conversion and report collection."""

import pytest

from repro.contracts.gascost import (
    ARBITRUM_GAS_PRICE_GWEI,
    ETH_PRICE_USD,
    MAINNET_GAS_PRICE_GWEI,
    MEDIAN_TX_FEE_USD,
    cost_row,
    gas_to_usd,
)


class TestGasToUsd:
    def test_paper_conversion_deposit(self):
        """Paper: 45,238 gas -> $2.171 on mainnet at 12 Gwei/$4000."""
        usd = gas_to_usd(45_238, MAINNET_GAS_PRICE_GWEI)
        assert usd == pytest.approx(2.171, abs=0.001)

    def test_paper_conversion_fraud_proof(self):
        """Paper: 762,508 gas -> $36.6 mainnet, $0.305 arbitrum."""
        assert gas_to_usd(762_508, MAINNET_GAS_PRICE_GWEI) == pytest.approx(
            36.6, abs=0.05)
        assert gas_to_usd(762_508, ARBITRUM_GAS_PRICE_GWEI) == pytest.approx(
            0.305, abs=0.001)

    def test_linear_in_gas_and_price(self):
        assert gas_to_usd(2_000, 10) == 2 * gas_to_usd(1_000, 10)
        assert gas_to_usd(1_000, 20) == 2 * gas_to_usd(1_000, 10)

    def test_cost_row(self):
        row = cost_row("Open a channel", 196_183)
        assert row.gas == 196_183
        assert row.mainnet_usd == pytest.approx(9.417, abs=0.001)
        assert row.arbitrum_usd == pytest.approx(0.078, abs=0.001)

    def test_paper_constants(self):
        assert ETH_PRICE_USD == 4_000
        assert MEDIAN_TX_FEE_USD["mainnet"] == 1.606
        assert MEDIAN_TX_FEE_USD["arbitrum"] == 0.350


class TestBenchmarkDiscovery:
    """Each paper artifact must have a bench file that pytest can collect."""

    EXPECTED_BENCHES = [
        "bench_table1_providers.py",
        "bench_table2_message_overhead.py",
        "bench_table3_latency.py",
        "bench_table4_gas.py",
        "bench_fig6_proof_size.py",
        "bench_fig7_scalability.py",
        "bench_ablation_proof_modes.py",
        "bench_ablation_pricing.py",
        "bench_ablation_pcn.py",
        "bench_ablation_dispute.py",
    ]

    def test_all_bench_files_exist(self):
        import pathlib

        bench_dir = pathlib.Path(__file__).parents[2] / "benchmarks"
        present = {p.name for p in bench_dir.glob("bench_*.py")}
        for expected in self.EXPECTED_BENCHES:
            assert expected in present, f"missing {expected}"

    def test_examples_exist_and_are_scripts(self):
        import pathlib

        examples = pathlib.Path(__file__).parents[2] / "examples"
        names = {p.name for p in examples.glob("*.py")}
        for expected in ("quickstart.py", "fraud_detection.py",
                         "channel_dispute.py", "wallet_dapp.py",
                         "proof_of_serving.py", "provider_analysis.py"):
            assert expected in names
            text = (examples / expected).read_text()
            assert "__main__" in text, f"{expected} is not runnable"
