"""JSON-RPC 2.0 codec and the eth_* API baseline."""

import json

import pytest

from repro.chain import GenesisConfig, UnsignedTransaction
from repro.crypto import PrivateKey
from repro.node import Devnet, FullNode
from repro.rpc import (
    JsonRpcError,
    RpcClient,
    RpcRequest,
    RpcServer,
    decode_request,
    decode_response,
    encode_request,
    from_hex_data,
    from_quantity,
    to_hex_data,
    to_quantity,
)

ALICE = PrivateKey.from_seed("rpc:alice")
BOB = PrivateKey.from_seed("rpc:bob")
TOKEN = 10 ** 18


@pytest.fixture
def rpc():
    net = Devnet(GenesisConfig(allocations={ALICE.address: 10 * TOKEN}))
    node = FullNode(net.chain, name="rpc-node")
    server = RpcServer(node)
    client = RpcClient(server.handle_raw)
    return net, node, server, client


class TestCodec:
    def test_request_roundtrip(self):
        request = RpcRequest("eth_getBalance", ("0xabc", "latest"), id=7)
        assert decode_request(encode_request(request)) == request

    def test_parse_error(self):
        with pytest.raises(JsonRpcError):
            decode_request(b"{not json")

    def test_missing_version_rejected(self):
        with pytest.raises(JsonRpcError):
            decode_request(json.dumps({"method": "m", "id": 1}).encode())

    def test_quantity_encoding(self):
        assert to_quantity(0) == "0x0"
        assert to_quantity(255) == "0xff"
        assert from_quantity("0xff") == 255
        with pytest.raises(JsonRpcError):
            from_quantity("255")

    def test_hex_data_encoding(self):
        assert to_hex_data(b"\x01\x02") == "0x0102"
        assert from_hex_data("0x0102") == b"\x01\x02"
        with pytest.raises(JsonRpcError):
            from_hex_data("0102")

    def test_error_response_raises(self):
        response = decode_response(
            b'{"jsonrpc":"2.0","id":1,"error":{"code":-32601,"message":"nope"}}'
        )
        with pytest.raises(JsonRpcError):
            response.raise_for_error()


class TestApi:
    def test_block_number_and_chain_id(self, rpc):
        net, _, _, client = rpc
        assert from_quantity(client.call("eth_blockNumber")) == 0
        assert from_quantity(client.call("eth_chainId")) == 1337
        net.advance_blocks(2)
        assert from_quantity(client.call("eth_blockNumber")) == 2

    def test_get_balance(self, rpc):
        _, _, _, client = rpc
        hex_balance = client.call("eth_getBalance", ALICE.address.hex(), "latest")
        assert from_quantity(hex_balance) == 10 * TOKEN

    def test_balance_at_historical_tag(self, rpc):
        net, _, _, client = rpc
        tx = UnsignedTransaction(nonce=0, gas_price=10 ** 9, gas_limit=21_000,
                                 to=BOB.address, value=500).sign(ALICE)
        client.call("eth_sendRawTransaction", to_hex_data(tx.encode()))
        net.mine()
        latest = from_quantity(client.call("eth_getBalance",
                                           BOB.address.hex(), "latest"))
        genesis = from_quantity(client.call("eth_getBalance",
                                            BOB.address.hex(), "0x0"))
        assert latest == 500 and genesis == 0

    def test_send_and_receipt_flow(self, rpc):
        net, _, _, client = rpc
        tx = UnsignedTransaction(nonce=0, gas_price=10 ** 9, gas_limit=21_000,
                                 to=BOB.address, value=1).sign(ALICE)
        tx_hash = client.call("eth_sendRawTransaction", to_hex_data(tx.encode()))
        assert client.call("eth_getTransactionReceipt", tx_hash) is None
        net.mine()
        receipt = client.call("eth_getTransactionReceipt", tx_hash)
        assert receipt["status"] == "0x1"
        by_hash = client.call("eth_getTransactionByHash", tx_hash)
        assert by_hash["value"] == "0x1"

    def test_get_block_by_number(self, rpc):
        net, _, _, client = rpc
        net.advance_blocks(1)
        block = client.call("eth_getBlockByNumber", "0x1", False)
        assert from_quantity(block["number"]) == 1
        assert block["parentHash"] == to_hex_data(net.chain.get_block_by_number(0).hash)
        assert client.call("eth_getBlockByNumber", "0x63", False) is None

    def test_get_proof_verifies(self, rpc):
        net, _, _, client = rpc
        proof = client.call("eth_getProof", ALICE.address.hex(), [], "latest")
        from repro.crypto import keccak256
        from repro.trie import verify_proof

        nodes = [from_hex_data(n) for n in proof["accountProof"]]
        root = net.chain.head.header.state_root
        proven = verify_proof(root, keccak256(ALICE.address.to_bytes()), nodes)
        assert proven is not None

    def test_unknown_method(self, rpc):
        _, _, _, client = rpc
        with pytest.raises(JsonRpcError) as excinfo:
            client.call("eth_fooBar")
        assert excinfo.value.code == -32601

    def test_invalid_params(self, rpc):
        _, _, _, client = rpc
        with pytest.raises(JsonRpcError):
            client.call("eth_getBalance", "0x1234")  # bad address length


class TestServerShell:
    def test_batch_requests(self, rpc):
        _, _, server, _ = rpc
        batch = json.dumps([
            {"jsonrpc": "2.0", "id": 1, "method": "eth_blockNumber", "params": []},
            {"jsonrpc": "2.0", "id": 2, "method": "eth_chainId", "params": []},
        ]).encode()
        out = json.loads(server.handle_raw(batch))
        assert [r["id"] for r in out] == [1, 2]
        assert all("result" in r for r in out)

    def test_parse_error_response(self, rpc):
        _, _, server, _ = rpc
        out = json.loads(server.handle_raw(b"garbage"))
        assert out["error"]["code"] == -32700

    def test_byte_counters(self, rpc):
        _, _, server, client = rpc
        client.call("eth_blockNumber")
        assert server.bytes_in > 0 and server.bytes_out > 0
        assert client.bytes_sent == server.bytes_in

    def test_paper_baseline_sizes(self, rpc):
        """§VI-C quotes ~118 B for a balance request; ours must be close."""
        _, _, _, client = rpc
        size = client.request_size("eth_getBalance", ALICE.address.hex(), "latest")
        assert 100 <= size <= 140
