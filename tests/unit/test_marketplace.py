"""Marketplace directory, scoring, and selection — unit level.

No chain needed: the selection logic is pure (ledger × price schedules),
so these tests drive it with fabricated advertisements.
"""

import pytest

from repro.crypto import keccak256
from repro.crypto.keys import Address, PrivateKey
from repro.parp.marketplace import (
    Marketplace,
    MarketplaceClient,
    MarketplaceError,
    ServerAdvertisement,
)
from repro.parp.pricing import (
    GWEI,
    CallBasedFeeSchedule,
    FlatFeeSchedule,
    REFERENCE_BASKET,
)
from repro.parp.reputation import (
    EVENT_FRAUD_SLASHED,
    EVENT_INVALID_RESPONSE,
    EVENT_SERVED_OK,
    ReputationLedger,
)

LC = PrivateKey.from_seed("unit:mkt:lc")


def addr(tag: str) -> Address:
    return Address(keccak256(tag.encode())[-20:])


def ad_for(tag: str, price_gwei: int = 10,
           batch_version: int | None = 1) -> ServerAdvertisement:
    return ServerAdvertisement(
        address=addr(tag), endpoint=object(),
        fee_schedule=FlatFeeSchedule(flat_price=price_gwei * GWEI),
        batch_version=batch_version, name=tag,
    )


def client_with(*ads: ServerAdvertisement, **kwargs) -> MarketplaceClient:
    marketplace = Marketplace()
    for ad in ads:
        marketplace.advertise(ad)
    return MarketplaceClient(LC, marketplace, **kwargs)


class TestDirectory:
    def test_advertise_lookup_withdraw(self):
        marketplace = Marketplace()
        ad = ad_for("a")
        marketplace.advertise(ad)
        assert len(marketplace) == 1
        assert ad.address in marketplace
        assert marketplace.get(ad.address) is ad
        marketplace.withdraw(ad.address)
        assert len(marketplace) == 0
        assert marketplace.get(ad.address) is None

    def test_readvertising_replaces(self):
        marketplace = Marketplace()
        marketplace.advertise(ad_for("a", price_gwei=10))
        cheaper = ad_for("a", price_gwei=5)
        marketplace.advertise(cheaper)
        assert len(marketplace) == 1
        assert marketplace.get(cheaper.address).reference_price == 5 * GWEI

    def test_reference_price_is_basket_mean(self):
        schedule = CallBasedFeeSchedule()
        ad = ServerAdvertisement(address=addr("x"), endpoint=object(),
                                 fee_schedule=schedule)
        from repro.parp.messages import RpcCall

        expected = sum(schedule.price(RpcCall.create(m))
                       for m in REFERENCE_BASKET) // len(REFERENCE_BASKET)
        assert ad.reference_price == expected


class TestSelection:
    def test_reputation_dominates_ranking(self):
        good, fresh = ad_for("good"), ad_for("fresh")
        client = client_with(good, fresh)
        for t in range(30):
            client.reputation.record(good.address, EVENT_SERVED_OK,
                                     time=float(t))
        ranked = client.eligible(now=30.0)
        assert [ad.name for ad in ranked] == ["good", "fresh"]

    def test_price_breaks_reputation_ties(self):
        pricey, bargain = ad_for("pricey", 20), ad_for("bargain", 5)
        client = client_with(pricey, bargain)
        ranked = client.eligible(now=0.0)
        assert [ad.name for ad in ranked] == ["bargain", "pricey"]

    def test_bargain_price_cannot_buy_back_burned_reputation(self):
        cheat, honest = ad_for("cheat", 1), ad_for("honest", 20)
        client = client_with(cheat, honest)
        client.reputation.record(cheat.address, EVENT_FRAUD_SLASHED, time=0.0)
        ranked = client.eligible(now=1.0)
        assert [ad.name for ad in ranked] == ["honest"]
        assert client.selection_score(cheat, now=1.0) == 0.0

    def test_threshold_excludes_decayed_servers(self):
        flaky, fine = ad_for("flaky"), ad_for("fine")
        client = client_with(flaky, fine, selection_threshold=0.05)
        for _ in range(3):
            client.reputation.record(flaky.address, EVENT_INVALID_RESPONSE,
                                     time=0.0)
        assert [ad.name for ad in client.eligible(now=1.0)] == ["fine"]

    def test_positive_history_never_ranks_below_a_stranger(self):
        veteran, stranger = ad_for("veteran"), ad_for("stranger")
        client = client_with(veteran, stranger)
        client.reputation.record(veteran.address, EVENT_SERVED_OK, time=0.0)
        now = 1.0
        assert client.trust(veteran.address, now) >= client.trust(
            stranger.address, now)
        assert [ad.name for ad in client.eligible(now=now)][0] == "veteran"

    def test_batch_queries_prefer_batch_speakers(self):
        legacy = ad_for("legacy", 5, batch_version=None)
        modern = ad_for("modern", 10, batch_version=1)
        client = client_with(legacy, modern)
        # legacy ranks first overall (cheaper) but a batch wants `modern`
        assert client._next_candidate(set(), want_batch=False).name == "legacy"
        assert client._next_candidate(set(), want_batch=True).name == "modern"
        # once modern is exhausted the batch falls back to the best remaining
        assert client._next_candidate({modern.address},
                                      want_batch=True).name == "legacy"

    def test_empty_marketplace_cannot_connect(self):
        client = client_with()
        with pytest.raises(MarketplaceError):
            client.connect()


class TestAdvertisementFromServer:
    def test_for_server_pulls_address_schedule_and_version(self, devnet, keys):
        from repro.node import FullNode
        from repro.parp import BATCH_PROTOCOL_VERSION, FullNodeServer

        devnet.stake_full_node(keys.fn)
        server = FullNodeServer(FullNode(devnet.chain, key=keys.fn, name="fn-0"))
        ad = ServerAdvertisement.for_server(server)
        assert ad.address == server.address
        assert ad.fee_schedule is server.fee_schedule
        assert ad.batch_version == BATCH_PROTOCOL_VERSION
        assert ad.speaks_batch
        assert ad.name == "fn-0"
        assert ad.endpoint is server

    def test_stats_start_clean(self):
        client = client_with(ad_for("a"))
        assert client.stats.queries == 0
        assert client.stats.failovers == 0
        assert client.bonded_sessions() == {}


class TestAdStaleness:
    """Ad TTL satellite: a clocked directory stamps ads and sweeps servers
    that stop refreshing."""

    def test_clocked_directory_stamps_published_at(self):
        clock = [100.0]
        marketplace = Marketplace(clock=lambda: clock[0])
        marketplace.advertise(ad_for("a"))
        assert marketplace.get(addr("a")).published_at == 100.0
        clock[0] = 250.0
        marketplace.advertise(ad_for("a"))        # refresh restamps
        assert marketplace.get(addr("a")).published_at == 250.0

    def test_sweep_drops_only_non_refreshing_servers(self):
        clock = [0.0]
        marketplace = Marketplace(clock=lambda: clock[0], ad_ttl=10.0)
        marketplace.advertise(ad_for("fresh"))
        marketplace.advertise(ad_for("stale"))
        clock[0] = 8.0
        marketplace.advertise(ad_for("fresh"))    # one keeps refreshing
        clock[0] = 15.0
        dropped = marketplace.sweep()
        assert dropped == [addr("stale")]
        assert addr("stale") not in marketplace
        assert addr("fresh") in marketplace
        assert marketplace.sweep() == []          # idempotent

    def test_sweep_ttl_override_and_exemptions(self):
        clock = [0.0]
        marketplace = Marketplace(clock=lambda: clock[0])   # no default ttl
        marketplace.advertise(ad_for("a"))
        clock[0] = 1000.0
        assert marketplace.sweep() == []          # ttl=None never sweeps
        assert marketplace.sweep(ttl=10.0) == [addr("a")]

    def test_clockless_directory_never_expires(self):
        marketplace = Marketplace(ad_ttl=5.0)
        marketplace.advertise(ad_for("a"))
        assert marketplace.get(addr("a")).published_at is None
        assert marketplace.sweep(now=10 ** 9) == []   # unstamped ⇒ exempt
        assert addr("a") in marketplace
