"""Batch wire messages: BatchRequest/BatchResponse codecs and signatures."""

import pytest

from repro.crypto import PrivateKey, keccak256
from repro.parp.constants import (
    BATCH_PROTOCOL_VERSION,
    BATCH_REQUEST_OVERHEAD_BYTES,
    BATCH_RESPONSE_OVERHEAD_BYTES,
)
from repro.parp.messages import (
    BatchRequest,
    BatchResponse,
    MessageError,
    ResponseStatus,
    RpcCall,
    batch_request_digest,
)

LC = PrivateKey.from_seed("batch:lc")
FN = PrivateKey.from_seed("batch:fn")
OTHER = PrivateKey.from_seed("batch:other")
ALPHA = keccak256(b"batch-channel")[:16]
H_B = keccak256(b"batch-block")


def make_calls(n=3):
    return [RpcCall.create("eth_getBalance", bytes(range(20)))
            for _ in range(n - 1)] + [RpcCall.create("eth_blockNumber")]


def make_batch(amount=5_000, calls=None, version=BATCH_PROTOCOL_VERSION):
    if calls is None:
        calls = make_calls()
    return BatchRequest.build(ALPHA, H_B, amount, calls, LC, version=version)


def make_batch_response(request, results=None, statuses=None,
                        proof=(b"node-a", b"node-b"), m_b=9):
    n = len(request.calls)
    results = list(results) if results is not None else [b"r%d" % i for i in range(n)]
    statuses = list(statuses) if statuses is not None else [ResponseStatus.OK] * n
    return BatchResponse.build(ALPHA, request, m_b, statuses, results,
                               list(proof), FN)


class TestBatchRequestWire:
    def test_round_trip(self):
        batch = make_batch()
        decoded = BatchRequest.decode_wire(batch.encode_wire())
        assert decoded == batch
        assert decoded.verify() == LC.address

    def test_overhead_is_one_version_byte_over_single(self):
        batch = make_batch()
        calls_bytes = BatchRequest._calls_bytes(batch.calls)
        assert len(batch.encode_wire()) - len(calls_bytes) == 227
        assert batch.wire_overhead == BATCH_REQUEST_OVERHEAD_BYTES == 227

    def test_empty_batch_rejected(self):
        with pytest.raises(MessageError):
            make_batch(calls=[])

    def test_too_short_wire_rejected(self):
        with pytest.raises(MessageError):
            BatchRequest.decode_wire(b"\x01" * 50)

    def test_digest_binds_version(self):
        """A downgraded version byte must invalidate the signed digest."""
        batch = make_batch(version=1)
        wire = bytearray(batch.encode_wire())
        wire[0] = 2
        tampered = BatchRequest.decode_wire(bytes(wire))
        with pytest.raises(MessageError, match="does not match"):
            tampered.verify()

    def test_digest_binds_call_list(self):
        batch = make_batch()
        fewer = BatchRequest(
            version=batch.version, alpha=batch.alpha, h_b=batch.h_b,
            a=batch.a, calls=batch.calls[:-1], h_req=batch.h_req,
            sig_a=batch.sig_a, sig_req=batch.sig_req,
        )
        with pytest.raises(MessageError, match="does not match"):
            fewer.verify()

    def test_verify_rejects_wrong_sender(self):
        batch = make_batch()
        with pytest.raises(MessageError, match="not the channel's"):
            batch.verify(expected_sender=OTHER.address)

    def test_digest_helper_validates_lengths(self):
        with pytest.raises(MessageError):
            batch_request_digest(b"short", H_B, 1, 1, b"calls")
        with pytest.raises(MessageError):
            batch_request_digest(ALPHA, H_B, 1, 999, b"calls")


class TestBatchResponseWire:
    def test_round_trip(self):
        batch = make_batch()
        response = make_batch_response(batch)
        decoded = BatchResponse.decode_wire(response.encode_wire())
        assert decoded == response
        assert decoded.signer(ALPHA) == FN.address
        assert len(decoded) == len(batch.calls)

    def test_metadata_matches_single_response_layout(self):
        batch = make_batch()
        response = make_batch_response(batch, proof=())
        payload = BatchResponse._payload(response.statuses, response.results, ())
        assert len(response.encode_wire()) - len(payload) == 187
        assert BATCH_RESPONSE_OVERHEAD_BYTES == 187

    def test_item_view_shares_pool_and_echoes(self):
        batch = make_batch()
        response = make_batch_response(batch)
        for i in range(len(batch.calls)):
            item = response.item_view(i)
            assert item.result == response.results[i]
            assert item.proof == response.proof
            assert item.h_req == batch.h_req
            assert item.m_b == response.m_b

    def test_mismatched_lengths_rejected(self):
        batch = make_batch()
        with pytest.raises(MessageError, match="disagree"):
            BatchResponse.build(ALPHA, batch, 9, [ResponseStatus.OK],
                                [b"a", b"b"], [], FN)

    def test_tampering_result_breaks_signature(self):
        batch = make_batch()
        response = make_batch_response(batch)
        tampered = response.with_result(0, b"lies")
        assert tampered.signer(ALPHA) != FN.address

    def test_signature_binds_alpha(self):
        batch = make_batch()
        response = make_batch_response(batch)
        other_alpha = keccak256(b"other-channel")[:16]
        assert response.signer(other_alpha) != FN.address
