"""Discrete-event network: clocks, latency, delivery, loss, partitions."""

import pytest

from repro.net import (
    FixedLatency,
    NetworkError,
    PairwiseLatency,
    SimClock,
    SimNetwork,
    UniformLatency,
)


class Recorder:
    def __init__(self):
        self.received = []

    def on_message(self, src, payload):
        self.received.append((src, payload))


class TestSimClock:
    def test_advances(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now() == 1.5
        clock.advance_to(3.0)
        assert clock() == 3.0

    def test_rejects_rewind(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(0.02)
        assert model.delay("a", "b", 100) == 0.02

    def test_fixed_with_bandwidth(self):
        model = FixedLatency(0.01, bytes_per_second=1000)
        assert model.delay("a", "b", 500) == pytest.approx(0.51)

    def test_uniform_bounds_and_determinism(self):
        model = UniformLatency(0.01, 0.05, seed=3)
        samples = [model.delay("a", "b", 0) for _ in range(50)]
        assert all(0.01 <= s <= 0.05 for s in samples)
        again = UniformLatency(0.01, 0.05, seed=3)
        assert samples[0] == again.delay("a", "b", 0)

    def test_pairwise(self):
        model = PairwiseLatency({("eu", "us"): 0.08}, default=0.01)
        assert model.delay("eu", "us", 0) == 0.08
        assert model.delay("us", "eu", 0) == 0.08  # symmetric fallback
        assert model.delay("eu", "asia", 0) == 0.01


class TestDelivery:
    def test_message_arrives_after_latency(self):
        net = SimNetwork(latency=FixedLatency(0.5))
        sink = Recorder()
        net.register("a", Recorder())
        net.register("b", sink)
        net.send("a", "b", "hello")
        net.run_until(0.4)
        assert sink.received == []
        net.run_until(0.6)
        assert sink.received == [("a", "hello")]

    def test_fifo_per_link_with_fixed_latency(self):
        net = SimNetwork(latency=FixedLatency(0.1))
        sink = Recorder()
        net.register("a", Recorder())
        net.register("b", sink)
        for i in range(5):
            net.send("a", "b", i)
        net.run()
        assert [p for _, p in sink.received] == [0, 1, 2, 3, 4]

    def test_unknown_destination_is_dropped_not_fatal(self):
        """A never-registered destination looks like an unreachable host:
        the message is counted and dropped so clients hit their timeout
        path instead of crashing mid-failover."""
        net = SimNetwork()
        net.register("a", Recorder())
        net.send("a", "ghost", "x")
        net.run()
        assert net.stats.messages_sent == 1
        assert net.stats.messages_dropped == 1
        assert net.stats.link("a", "ghost").dropped == 1

    def test_deregistered_destination_drops_in_flight_traffic(self):
        net = SimNetwork(latency=FixedLatency(0.1))
        sink = Recorder()
        net.register("a", Recorder())
        net.register("b", sink)
        net.send("a", "b", "in-flight")   # scheduled before the deregister
        net.deregister("b")
        net.send("a", "b", "post-mortem")
        net.run()
        assert sink.received == []
        assert net.stats.messages_dropped == 2
        assert net.stats.link("a", "b").dropped == 2

    def test_duplicate_registration(self):
        net = SimNetwork()
        net.register("a", Recorder())
        with pytest.raises(NetworkError):
            net.register("a", Recorder())

    def test_stats(self):
        net = SimNetwork(latency=FixedLatency(0.01))
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.send("a", "b", b"x" * 100)
        net.run()
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 1
        assert net.stats.bytes_sent == 100

    def test_per_link_stats(self):
        """Counters are kept per directed (src, dst) link, so the fan-out
        bench can price redundant hedge traffic link by link."""
        net = SimNetwork(latency=FixedLatency(0.01))
        net.register("a", Recorder())
        net.register("b", Recorder())
        net.register("c", Recorder())
        net.partition("a", "c")
        net.send("a", "b", b"x" * 10)
        net.send("a", "b", b"y" * 20)
        net.send("a", "c", b"z" * 30)
        net.run()
        ab = net.stats.link("a", "b")
        assert (ab.sent, ab.delivered, ab.dropped, ab.bytes_sent) == (2, 2, 0, 30)
        ac = net.stats.link("a", "c")
        assert (ac.sent, ac.delivered, ac.dropped, ac.bytes_sent) == (1, 0, 1, 30)
        # the aggregate view is the sum of the links
        assert net.stats.messages_sent == 3
        assert net.stats.messages_dropped == 1


class TestFailures:
    def test_partition_drops(self):
        net = SimNetwork()
        sink = Recorder()
        net.register("a", Recorder())
        net.register("b", sink)
        net.partition("a", "b")
        net.send("a", "b", "lost")
        net.run()
        assert sink.received == []
        assert net.stats.messages_dropped == 1
        net.heal("a", "b")
        net.send("a", "b", "found")
        net.run()
        assert sink.received == [("a", "found")]

    def test_random_loss_is_deterministic_per_seed(self):
        def run(seed):
            net = SimNetwork(drop_rate=0.5, seed=seed)
            sink = Recorder()
            net.register("a", Recorder())
            net.register("b", sink)
            for i in range(100):
                net.send("a", "b", i)
            net.run()
            return len(sink.received)

        assert run(1) == run(1)
        assert 20 < run(1) < 80  # roughly half survive

    def test_run_while_timeout(self):
        net = SimNetwork()
        net.register("a", Recorder())
        done = net.run_while(lambda: True, timeout=0.25)
        assert done is False
        assert net.clock.now() == pytest.approx(0.25)

    def test_scheduled_actions(self):
        net = SimNetwork()
        fired = []
        net.schedule(1.0, lambda: fired.append("late"))
        net.schedule(0.5, lambda: fired.append("early"))
        net.run()
        assert fired == ["early", "late"]
        with pytest.raises(NetworkError):
            net.schedule(-1, lambda: None)
