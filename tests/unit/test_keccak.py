"""Keccak-256 known-answer tests and incremental-hashing behaviour."""

import pytest

from repro.crypto.keccak import (
    KECCAK_EMPTY,
    KECCAK_EMPTY_RLP,
    Keccak256,
    keccak256,
)

# Known-answer vectors for *original* Keccak-256 (not NIST SHA3-256).
VECTORS = {
    b"": "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
    b"abc": "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45",
    b"\x80": "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421",
    b"hello": "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8",
    b"The quick brown fox jumps over the lazy dog":
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
}


class TestKnownAnswers:
    @pytest.mark.parametrize("message,expected", sorted(VECTORS.items()))
    def test_vector(self, message, expected):
        assert keccak256(message).hex() == expected

    def test_empty_constant_matches(self):
        assert keccak256(b"") == KECCAK_EMPTY

    def test_empty_rlp_constant_matches(self):
        assert keccak256(b"\x80") == KECCAK_EMPTY_RLP

    def test_distinguishes_from_sha3(self):
        """NIST SHA3-256('') differs: padding byte 0x06 vs Keccak's 0x01."""
        import hashlib

        assert keccak256(b"") != hashlib.sha3_256(b"").digest()


class TestBlockBoundaries:
    """The sponge absorbs 136-byte blocks; cover lengths around multiples."""

    @pytest.mark.parametrize("length", [0, 1, 135, 136, 137, 271, 272, 273, 1000])
    def test_incremental_equals_oneshot(self, length):
        data = bytes(range(256)) * 4
        data = data[:length]
        hasher = Keccak256()
        for i in range(0, len(data), 13):  # awkward chunk size on purpose
            hasher.update(data[i:i + 13])
        assert hasher.digest() == keccak256(data)

    def test_single_update_equals_constructor(self):
        assert Keccak256(b"xyz").digest() == Keccak256().update(b"xyz").digest()


class TestHasherSemantics:
    def test_digest_is_idempotent(self):
        hasher = Keccak256(b"data")
        assert hasher.digest() == hasher.digest()

    def test_update_after_digest_rejected(self):
        hasher = Keccak256(b"data")
        hasher.digest()
        with pytest.raises(ValueError):
            hasher.update(b"more")

    def test_copy_is_independent(self):
        hasher = Keccak256(b"pre")
        clone = hasher.copy()
        clone.update(b"fix")
        hasher.update(b"fix")
        assert hasher.digest() == clone.digest() == keccak256(b"prefix")

    def test_hexdigest(self):
        assert Keccak256(b"abc").hexdigest() == VECTORS[b"abc"]

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            keccak256("string")  # type: ignore[arg-type]

    def test_digest_is_32_bytes(self):
        assert len(keccak256(b"x")) == 32

    def test_accepts_bytearray_and_memoryview(self):
        assert keccak256(bytearray(b"abc")) == keccak256(b"abc")
        assert keccak256(memoryview(b"abc")) == keccak256(b"abc")
