"""Merkle Patricia Trie: known roots, CRUD, deletion collapsing, snapshots."""

import pytest

from repro.crypto import keccak256
from repro.rlp import encode_int
from repro.trie import EMPTY_TRIE_ROOT, MerklePatriciaTrie, TrieError
from repro.trie.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
    nibbles_to_bytes,
)


class TestNibbles:
    def test_bytes_roundtrip(self):
        data = bytes(range(256))
        assert nibbles_to_bytes(bytes_to_nibbles(data)) == data

    def test_odd_pack_rejected(self):
        with pytest.raises(ValueError):
            nibbles_to_bytes((1, 2, 3))

    @pytest.mark.parametrize("nibbles,is_leaf", [
        ((), False), ((), True),
        ((1,), False), ((1,), True),
        ((1, 2), False), ((1, 2, 3), True),
        (tuple(range(16)), True),
    ])
    def test_hp_roundtrip(self, nibbles, is_leaf):
        assert hp_decode(hp_encode(nibbles, is_leaf)) == (nibbles, is_leaf)

    def test_hp_flag_values(self):
        assert hp_encode((), False)[0] >> 4 == 0
        assert hp_encode((5,), False)[0] >> 4 == 1
        assert hp_encode((), True)[0] >> 4 == 2
        assert hp_encode((5,), True)[0] >> 4 == 3

    def test_hp_decode_rejects_bad_flag(self):
        with pytest.raises(ValueError):
            hp_decode(b"\x40")

    def test_hp_decode_rejects_dirty_padding(self):
        with pytest.raises(ValueError):
            hp_decode(b"\x01\x23"[:1] + b"")  # odd, fine
        with pytest.raises(ValueError):
            hp_decode(b"\x05\x00")  # even flag with nonzero pad nibble

    def test_common_prefix(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 4)) == 2
        assert common_prefix_length((), (1,)) == 0
        assert common_prefix_length((9,), (9,)) == 1


class TestKnownRoots:
    """Roots cross-checked against the canonical Ethereum implementation."""

    def test_empty_trie_root(self):
        assert MerklePatriciaTrie().root_hash == EMPTY_TRIE_ROOT
        assert EMPTY_TRIE_ROOT == keccak256(b"\x80")

    def test_dog_puppy_trie(self):
        trie = MerklePatriciaTrie()
        for k, v in [(b"do", b"verb"), (b"dog", b"puppy"),
                     (b"doge", b"coin"), (b"horse", b"stallion")]:
            trie.put(k, v)
        assert trie.root_hash.hex() == (
            "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
        )

    def test_single_entry_root_changes(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"v")
        first = trie.root_hash
        trie.put(b"k", b"v2")
        assert trie.root_hash != first


class TestCrud:
    def test_get_absent(self):
        assert MerklePatriciaTrie().get(b"nope") is None

    def test_put_get(self):
        trie = MerklePatriciaTrie()
        trie.put(b"alpha", b"1")
        trie.put(b"beta", b"2")
        assert trie.get(b"alpha") == b"1"
        assert trie.get(b"beta") == b"2"

    def test_overwrite(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"old")
        trie.put(b"k", b"new")
        assert trie.get(b"k") == b"new"

    def test_empty_value_rejected(self):
        trie = MerklePatriciaTrie()
        with pytest.raises(ValueError):
            trie.put(b"k", b"")

    def test_non_bytes_value_rejected(self):
        with pytest.raises(TypeError):
            MerklePatriciaTrie().put(b"k", "str")  # type: ignore[arg-type]

    def test_contains_and_len(self):
        trie = MerklePatriciaTrie()
        trie.update({b"a": b"1", b"bb": b"2", b"ccc": b"3"})
        assert b"a" in trie and b"zz" not in trie
        assert len(trie) == 3

    def test_items_sorted(self):
        trie = MerklePatriciaTrie()
        data = {bytes([i]): encode_int(i + 1) for i in range(40)}
        trie.update(data)
        assert list(trie.items()) == sorted(data.items())

    def test_keys_that_are_prefixes(self):
        """'do' is a prefix of 'dog' — exercises branch value slots."""
        trie = MerklePatriciaTrie()
        trie.put(b"do", b"A")
        trie.put(b"dog", b"B")
        trie.put(b"dogs", b"C")
        assert (trie.get(b"do"), trie.get(b"dog"), trie.get(b"dogs")) == (b"A", b"B", b"C")


class TestOrderIndependence:
    def test_root_ignores_insertion_order(self):
        import random

        items = {keccak256(bytes([i]))[:8]: encode_int(i + 1) for i in range(64)}
        keys = list(items)
        roots = set()
        for seed in range(4):
            random.Random(seed).shuffle(keys)
            trie = MerklePatriciaTrie()
            for key in keys:
                trie.put(key, items[key])
            roots.add(trie.root_hash)
        assert len(roots) == 1

    def test_delete_restores_previous_root(self):
        trie = MerklePatriciaTrie()
        trie.put(b"stay", b"1")
        before = trie.root_hash
        trie.put(b"gone", b"2")
        assert trie.delete(b"gone")
        assert trie.root_hash == before


class TestDeletion:
    def test_delete_absent_returns_false(self):
        trie = MerklePatriciaTrie()
        trie.put(b"x", b"1")
        assert not trie.delete(b"nothere")

    def test_delete_to_empty(self):
        trie = MerklePatriciaTrie()
        trie.put(b"only", b"1")
        assert trie.delete(b"only")
        assert trie.root_hash == EMPTY_TRIE_ROOT

    def test_branch_collapses_to_leaf(self):
        trie = MerklePatriciaTrie()
        trie.put(b"a1", b"1")
        trie.put(b"a2", b"2")
        trie.delete(b"a2")
        # equivalent single-key trie must have the identical root
        solo = MerklePatriciaTrie()
        solo.put(b"a1", b"1")
        assert trie.root_hash == solo.root_hash

    def test_branch_value_slot_deletion(self):
        trie = MerklePatriciaTrie()
        trie.put(b"do", b"A")
        trie.put(b"dog", b"B")
        trie.delete(b"do")
        solo = MerklePatriciaTrie()
        solo.put(b"dog", b"B")
        assert trie.root_hash == solo.root_hash

    def test_extension_merge_on_collapse(self):
        trie = MerklePatriciaTrie()
        trie.update({b"abcx": b"1", b"abcy": b"2", b"abcz": b"3"})
        trie.delete(b"abcy")
        trie.delete(b"abcz")
        solo = MerklePatriciaTrie()
        solo.put(b"abcx", b"1")
        assert trie.root_hash == solo.root_hash

    def test_mass_insert_delete_equivalence(self):
        """Insert 60, delete 30 -> root equals direct build of remaining 30."""
        all_items = {bytes([i, i ^ 0x5A]): encode_int(i + 1) for i in range(60)}
        trie = MerklePatriciaTrie()
        trie.update(all_items)
        keep = dict(list(all_items.items())[::2])
        for key in all_items:
            if key not in keep:
                assert trie.delete(key)
        direct = MerklePatriciaTrie()
        direct.update(keep)
        assert trie.root_hash == direct.root_hash


class TestSnapshots:
    def test_historical_view(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"v1")
        old_root = trie.snapshot()
        trie.put(b"k", b"v2")
        old_view = trie.at_root(old_root)
        assert old_view.get(b"k") == b"v1"
        assert trie.get(b"k") == b"v2"

    def test_unknown_root_rejected(self):
        with pytest.raises(TrieError):
            MerklePatriciaTrie(root_hash=keccak256(b"bogus"))

    def test_shared_db_between_views(self):
        trie = MerklePatriciaTrie()
        trie.put(b"shared", b"x")
        view = trie.at_root(trie.root_hash)
        assert view.db is trie.db


class TestBackendMatrix:
    """The same trie semantics over every node-store backend.

    ``node_store`` is parametrized by the ``REPRO_NODE_STORE`` env toggle
    (conftest), so in CI these run against both the in-memory dict store
    and the append-only disk store.
    """

    def test_crud_roundtrip(self, node_store):
        trie = MerklePatriciaTrie(node_store)
        items = {keccak256(encode_int(i)): b"val-%d" % i for i in range(64)}
        trie.update(items)
        assert all(trie.get(k) == v for k, v in items.items())
        victim = next(iter(items))
        assert trie.delete(victim)
        del items[victim]
        assert dict(trie.items()) == items

    def test_roots_identical_across_backends(self, node_store):
        items = {keccak256(encode_int(i)): b"x" * (i % 7 + 1) for i in range(40)}
        reference = MerklePatriciaTrie()
        reference.update(items)
        trie = MerklePatriciaTrie(node_store)
        trie.update(items)
        assert trie.root_hash == reference.root_hash

    def test_snapshot_revert_over_store(self, node_store):
        trie = MerklePatriciaTrie(node_store)
        trie.put(b"k", b"v1")
        old_root = trie.snapshot()
        trie.put(b"k", b"v2")
        trie.commit()
        assert trie.at_root(old_root).get(b"k") == b"v1"
        assert node_store.last_root == trie.root_hash
