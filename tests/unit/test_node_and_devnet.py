"""FullNode backend behaviour and Devnet conveniences."""

import pytest

from repro.chain import ChainError, GenesisConfig, UnsignedTransaction
from repro.crypto import PrivateKey
from repro.node import Devnet, FullNode

ALICE = PrivateKey.from_seed("nd:alice")
BOB = PrivateKey.from_seed("nd:bob")
TOKEN = 10 ** 18


@pytest.fixture
def net() -> Devnet:
    return Devnet(GenesisConfig(allocations={ALICE.address: 10 * TOKEN}))


def transfer(nonce=0, value=1):
    return UnsignedTransaction(nonce=nonce, gas_price=10 ** 9,
                               gas_limit=21_000, to=BOB.address,
                               value=value).sign(ALICE)


class TestFullNodeBackend:
    def test_submit_and_mine(self, net):
        node = FullNode(net.chain, name="n1")
        tx = transfer()
        tx_hash = node.submit_transaction(tx.encode())
        assert tx_hash == tx.hash
        location = node.ensure_mined(tx_hash)
        assert location == (1, 0)

    def test_submit_is_idempotent(self, net):
        node = FullNode(net.chain, name="n1")
        tx = transfer()
        node.submit_transaction(tx.encode())
        assert node.submit_transaction(tx.encode()) == tx.hash  # pending dup
        node.ensure_mined(tx.hash)
        assert node.submit_transaction(tx.encode()) == tx.hash  # mined dup

    def test_submit_rejects_garbage(self, net):
        node = FullNode(net.chain, name="n1")
        with pytest.raises(ChainError):
            node.submit_transaction(b"\x00\x01\x02")

    def test_no_auto_mine(self, net):
        node = FullNode(net.chain, name="n1", auto_mine=False)
        tx_hash = node.submit_transaction(transfer().encode())
        assert node.ensure_mined(tx_hash) is None
        assert len(net.chain.mempool) == 1

    def test_header_service(self, net):
        node = FullNode(net.chain, name="n1")
        net.advance_blocks(3)
        assert node.serve_head_number() == 3
        assert node.serve_header(2).number == 2
        assert node.serve_header(99) is None

    def test_shared_chain_between_nodes(self, net):
        """Multiple full nodes following one chain see the same data."""
        node_a = FullNode(net.chain, name="a")
        node_b = FullNode(net.chain, name="b")
        tx_hash = node_a.submit_transaction(transfer().encode())
        node_a.ensure_mined(tx_hash)
        assert node_b.find_transaction(tx_hash) is not None
        assert node_b.head_number() == node_a.head_number()

    def test_state_at_and_chain_id(self, net):
        node = FullNode(net.chain, name="n1")
        assert node.chain_id() == 1337
        assert node.state_at(0).balance_of(ALICE.address) == 10 * TOKEN

    def test_get_header_by_hash(self, net):
        node = FullNode(net.chain, name="n1")
        net.advance_blocks(1)
        header = net.chain.get_header(1)
        assert node.get_header_by_hash(header.hash) == header
        assert node.get_header_by_hash(b"\x00" * 32) is None


class TestDevnet:
    def test_execute_returns_result(self, net):
        from repro.contracts import DEPOSIT_MODULE_ADDRESS

        result = net.execute(ALICE, DEPOSIT_MODULE_ADDRESS, "deposit",
                             value=TOKEN)
        assert result.succeeded
        assert result.gas_used > 21_000

    def test_call_view_does_not_mutate(self, net):
        from repro.contracts import DEPOSIT_MODULE_ADDRESS

        root_before = net.chain.state.root_hash
        net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of", [ALICE.address])
        assert net.chain.state.root_hash == root_before

    def test_advance_blocks(self, net):
        net.advance_blocks(5)
        assert net.chain.height == 5

    def test_sequential_transactions_same_sender(self, net):
        """Devnet must queue multiple txs from one sender with right nonces."""
        net.send_transaction(ALICE, BOB.address, value=1)
        net.send_transaction(ALICE, BOB.address, value=2)
        block = net.mine()
        assert len(block.transactions) == 2
        assert net.balance_of(BOB.address) == 3

    def test_result_of_unknown(self, net):
        assert net.result_of(b"\x00" * 32) is None

    def test_contract_modules_deployed(self, net):
        from repro.contracts import (
            CHANNELS_MODULE_ADDRESS,
            DEPOSIT_MODULE_ADDRESS,
            FRAUD_MODULE_ADDRESS,
        )

        assert net.registry.get(DEPOSIT_MODULE_ADDRESS) is net.deposit_module
        assert net.registry.get(CHANNELS_MODULE_ADDRESS) is net.channels_module
        assert net.registry.get(FRAUD_MODULE_ADDRESS) is net.fraud_module


class TestDevnetPersistence:
    def test_state_dir_round_trip(self, tmp_path):
        """A disk-backed devnet's state survives close + reopen: the head
        state root re-attaches from the log and resolves every account."""
        from repro.chain.state import StateDB
        from repro.storage import AppendOnlyFileStore, open_node_store

        state_dir = tmp_path / "node-state"
        net = Devnet(GenesisConfig(allocations={ALICE.address: 10 * TOKEN,
                                                BOB.address: TOKEN}),
                     state_dir=state_dir)
        assert isinstance(net.node_store, AppendOnlyFileStore)
        net.send_transaction(ALICE, BOB.address, value=123)
        net.mine()
        head_root = net.chain.head.header.state_root
        bob_balance = net.balance_of(BOB.address)
        net.close()

        store = open_node_store(state_dir)
        assert store.last_root == head_root
        revived = StateDB(store, store.last_root)
        assert revived.balance_of(BOB.address) == bob_balance == TOKEN + 123
        assert revived.balance_of(ALICE.address) < 10 * TOKEN
        store.close()

    def test_state_dir_and_db_are_exclusive(self, tmp_path):
        from repro.storage import MemoryNodeStore

        with pytest.raises(ValueError):
            Devnet(state_dir=tmp_path, db=MemoryNodeStore())

    def test_one_durable_batch_per_sealed_block(self, tmp_path):
        """Per-tx snapshots stage; sealing cuts exactly one fsynced batch,
        tagged with the header's state root — so crash recovery can only
        land on a header-committed state, never a mid-block root."""
        net = Devnet(GenesisConfig(allocations={ALICE.address: 10 * TOKEN}),
                     state_dir=tmp_path / "node-state")
        base = net.node_store.stats.batches_committed
        net.send_transaction(ALICE, BOB.address, value=1)
        net.send_transaction(ALICE, BOB.address, value=2)
        net.mine()
        assert net.node_store.stats.batches_committed == base + 1
        assert net.node_store.last_root == net.chain.head.header.state_root
        net.close()

    def test_reopening_populated_state_dir_reattaches(self, tmp_path):
        """A devnet reopened over its ``state_dir`` resumes at the recovered
        head — identical hash, state root, and tx index — and keeps mining
        (the sibling blocks.log makes the replay refusal obsolete)."""
        genesis = GenesisConfig(allocations={ALICE.address: 10 * TOKEN})
        state_dir = tmp_path / "node-state"
        net = Devnet(genesis, state_dir=state_dir)
        tx = net.send_transaction(ALICE, BOB.address, value=1)
        net.mine()
        head_hash = net.chain.head.hash
        head_root = net.chain.head.header.state_root
        net.close()

        reopened = Devnet(genesis, state_dir=state_dir)
        try:
            assert reopened.chain.reattached
            assert reopened.chain.head.hash == head_hash
            assert reopened.chain.head.header.state_root == head_root
            assert reopened.node_store.last_root == head_root
            block, index = reopened.chain.find_transaction(tx.hash)
            assert (block.number, index) == (1, 0)
            assert reopened.chain.get_receipt(tx.hash).succeeded
            # and the node keeps producing blocks on top of the old head
            reopened.send_transaction(ALICE, BOB.address, value=2)
            assert reopened.mine().number == 2
            assert reopened.balance_of(BOB.address) == 3
        finally:
            reopened.close()

    def test_populated_store_without_block_log_is_refused(self, tmp_path):
        """A bare populated node store (no blocks.log) still refuses:
        without history it could only be replayed into, which would rewind
        store.last_root (the crash-recovery point) to the genesis root."""
        from repro.chain.chain import Blockchain, ChainError
        from repro.storage import open_node_store

        state_dir = tmp_path / "node-state"
        net = Devnet(GenesisConfig(allocations={ALICE.address: TOKEN}),
                     state_dir=state_dir)
        net.send_transaction(ALICE, BOB.address, value=1)
        net.mine()
        head_root = net.chain.head.header.state_root
        net.close()
        with pytest.raises(ChainError, match="already contains committed"):
            Blockchain(GenesisConfig(allocations={ALICE.address: TOKEN}),
                       db=open_node_store(state_dir))
        # the refusal must not have moved the recovery point
        store = open_node_store(state_dir)
        assert store.last_root == head_root
        store.close()
