"""FullNode backend behaviour and Devnet conveniences."""

import pytest

from repro.chain import ChainError, GenesisConfig, UnsignedTransaction
from repro.crypto import PrivateKey
from repro.node import Devnet, FullNode

ALICE = PrivateKey.from_seed("nd:alice")
BOB = PrivateKey.from_seed("nd:bob")
TOKEN = 10 ** 18


@pytest.fixture
def net() -> Devnet:
    return Devnet(GenesisConfig(allocations={ALICE.address: 10 * TOKEN}))


def transfer(nonce=0, value=1):
    return UnsignedTransaction(nonce=nonce, gas_price=10 ** 9,
                               gas_limit=21_000, to=BOB.address,
                               value=value).sign(ALICE)


class TestFullNodeBackend:
    def test_submit_and_mine(self, net):
        node = FullNode(net.chain, name="n1")
        tx = transfer()
        tx_hash = node.submit_transaction(tx.encode())
        assert tx_hash == tx.hash
        location = node.ensure_mined(tx_hash)
        assert location == (1, 0)

    def test_submit_is_idempotent(self, net):
        node = FullNode(net.chain, name="n1")
        tx = transfer()
        node.submit_transaction(tx.encode())
        assert node.submit_transaction(tx.encode()) == tx.hash  # pending dup
        node.ensure_mined(tx.hash)
        assert node.submit_transaction(tx.encode()) == tx.hash  # mined dup

    def test_submit_rejects_garbage(self, net):
        node = FullNode(net.chain, name="n1")
        with pytest.raises(ChainError):
            node.submit_transaction(b"\x00\x01\x02")

    def test_no_auto_mine(self, net):
        node = FullNode(net.chain, name="n1", auto_mine=False)
        tx_hash = node.submit_transaction(transfer().encode())
        assert node.ensure_mined(tx_hash) is None
        assert len(net.chain.mempool) == 1

    def test_header_service(self, net):
        node = FullNode(net.chain, name="n1")
        net.advance_blocks(3)
        assert node.serve_head_number() == 3
        assert node.serve_header(2).number == 2
        assert node.serve_header(99) is None

    def test_shared_chain_between_nodes(self, net):
        """Multiple full nodes following one chain see the same data."""
        node_a = FullNode(net.chain, name="a")
        node_b = FullNode(net.chain, name="b")
        tx_hash = node_a.submit_transaction(transfer().encode())
        node_a.ensure_mined(tx_hash)
        assert node_b.find_transaction(tx_hash) is not None
        assert node_b.head_number() == node_a.head_number()

    def test_state_at_and_chain_id(self, net):
        node = FullNode(net.chain, name="n1")
        assert node.chain_id() == 1337
        assert node.state_at(0).balance_of(ALICE.address) == 10 * TOKEN

    def test_get_header_by_hash(self, net):
        node = FullNode(net.chain, name="n1")
        net.advance_blocks(1)
        header = net.chain.get_header(1)
        assert node.get_header_by_hash(header.hash) == header
        assert node.get_header_by_hash(b"\x00" * 32) is None


class TestDevnet:
    def test_execute_returns_result(self, net):
        from repro.contracts import DEPOSIT_MODULE_ADDRESS

        result = net.execute(ALICE, DEPOSIT_MODULE_ADDRESS, "deposit",
                             value=TOKEN)
        assert result.succeeded
        assert result.gas_used > 21_000

    def test_call_view_does_not_mutate(self, net):
        from repro.contracts import DEPOSIT_MODULE_ADDRESS

        root_before = net.chain.state.root_hash
        net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of", [ALICE.address])
        assert net.chain.state.root_hash == root_before

    def test_advance_blocks(self, net):
        net.advance_blocks(5)
        assert net.chain.height == 5

    def test_sequential_transactions_same_sender(self, net):
        """Devnet must queue multiple txs from one sender with right nonces."""
        net.send_transaction(ALICE, BOB.address, value=1)
        net.send_transaction(ALICE, BOB.address, value=2)
        block = net.mine()
        assert len(block.transactions) == 2
        assert net.balance_of(BOB.address) == 3

    def test_result_of_unknown(self, net):
        assert net.result_of(b"\x00" * 32) is None

    def test_contract_modules_deployed(self, net):
        from repro.contracts import (
            CHANNELS_MODULE_ADDRESS,
            DEPOSIT_MODULE_ADDRESS,
            FRAUD_MODULE_ADDRESS,
        )

        assert net.registry.get(DEPOSIT_MODULE_ADDRESS) is net.deposit_module
        assert net.registry.get(CHANNELS_MODULE_ADDRESS) is net.channels_module
        assert net.registry.get(FRAUD_MODULE_ADDRESS) is net.fraud_module
