"""Dirty storage-trie batching: one storage commit per StateDB.commit().

The seed re-derived an account's ``storage_root`` (a full storage-trie
commit plus an account-trie write) on *every* ``set_storage``.  These tests
pin the batched semantics: slot writes accumulate in a per-address dirty
storage trie, reads see the uncommitted values, ``storage_root`` is
re-derived exactly once per dirty account at :meth:`StateDB.commit`, and
``revert`` drops the dirty map — while the committed roots stay
bit-identical to the per-slot-commit behaviour.
"""

import random

import pytest

from repro.chain import StateDB
from repro.crypto import keccak256
from repro.crypto.keys import Address
from repro.trie import EMPTY_TRIE_ROOT

CONTRACT = Address.from_hex("0x00000000000000000000000000000000000000AA")
OTHER = Address.from_hex("0x00000000000000000000000000000000000000BB")


def _slot(i: int) -> bytes:
    return keccak256(b"slot:%d" % i)


class _SeedStateDB(StateDB):
    """The seed's per-slot-commit behaviour, emulated for differential use:
    every slot write immediately flushes the storage trie and re-derives
    the account's storage_root."""

    def set_storage(self, address, slot, value):
        super().set_storage(address, slot, value)
        self.commit()


class TestBatchedSemantics:
    def test_storage_root_rederived_only_at_commit(self):
        state = StateDB()
        state.set_storage(CONTRACT, _slot(1), b"\x01")
        state.set_storage(CONTRACT, _slot(2), b"\x02")
        # account record untouched pre-commit, but pending storage already
        # makes the account exist (seed parity: gas metering keys off this)
        assert state.account_exists(CONTRACT)
        assert state.get_account(CONTRACT).storage_root == EMPTY_TRIE_ROOT
        state.commit()
        committed = state.get_account(CONTRACT).storage_root
        state.set_storage(CONTRACT, _slot(3), b"\x03")
        assert state.get_account(CONTRACT).storage_root == committed
        state.commit()
        assert state.get_account(CONTRACT).storage_root != committed

    def test_dirty_slots_read_uncommitted_values(self):
        state = StateDB()
        state.set_storage(CONTRACT, _slot(1), b"\x2a")
        assert state.get_storage(CONTRACT, _slot(1)) == b"\x2a"
        state.set_storage(CONTRACT, _slot(1), b"\x2b")  # overwrite pre-commit
        assert state.get_storage(CONTRACT, _slot(1)) == b"\x2b"
        state.set_storage(CONTRACT, _slot(1), b"")  # zeroing pre-commit
        assert state.get_storage(CONTRACT, _slot(1)) == b""
        # zeroed-out pending storage: the account is back to non-existent
        assert not state.account_exists(CONTRACT)

    def test_revert_drops_dirty_map(self):
        state = StateDB()
        state.set_storage(CONTRACT, _slot(1), b"\x07")
        snapshot = state.snapshot()  # flushes: \x07 is now committed
        state.set_storage(CONTRACT, _slot(1), b"\x08")
        state.set_storage(OTHER, _slot(2), b"\x09")
        state.revert(snapshot)
        assert state.get_storage(CONTRACT, _slot(1)) == b"\x07"
        assert state.get_storage(OTHER, _slot(2)) == b""
        # the dropped dirty tries must not resurface at the next commit
        state.commit()
        assert state.get_storage(CONTRACT, _slot(1)) == b"\x07"
        assert not state.account_exists(OTHER)

    def test_zero_net_touch_does_not_drop_pending_storage(self):
        """A zero-net account touch (add_balance(0) & co.) passes an
        empty-reading record through set_account while slot writes are
        pending; the pending storage must survive — the seed's per-slot
        commit kept the account alive via its stamped storage_root."""
        batched, seed = StateDB(), _SeedStateDB()
        for state in (batched, seed):
            state.set_storage(CONTRACT, _slot(1), b"\x01")
            state.add_balance(CONTRACT, 0)  # empty-reading write-back
        assert batched.commit() == seed.commit()
        assert batched.account_exists(CONTRACT)
        assert batched.get_storage(CONTRACT, _slot(1)) == b"\x01"

    def test_zeroed_pending_storage_still_deletes_empty_account(self):
        """...and when the pending storage zeroes back out, the account
        record written by that touch is cleaned up at commit, matching the
        seed's deletion of all-empty accounts."""
        batched, seed = StateDB(), _SeedStateDB()
        for state in (batched, seed):
            state.set_storage(CONTRACT, _slot(1), b"\x01")
            state.add_balance(CONTRACT, 0)
            state.set_storage(CONTRACT, _slot(1), b"")  # zero it back
        assert batched.commit() == seed.commit()
        assert not batched.account_exists(CONTRACT)

    def test_account_with_pending_storage_survives_deletion_attempt(self):
        from repro.chain import Account

        state = StateDB()
        state.set_storage(CONTRACT, _slot(1), b"\x01")
        state.set_account(CONTRACT, Account())  # reads as empty, but…
        state.commit()
        # …pending slot writes make the account non-empty at commit
        assert state.account_exists(CONTRACT)
        assert state.get_storage(CONTRACT, _slot(1)) == b"\x01"
        # zeroing the storage first makes the deletion effective
        state.set_storage(CONTRACT, _slot(1), b"")
        state.set_account(CONTRACT, Account())
        state.commit()
        assert not state.account_exists(CONTRACT)
        assert state.get_storage(CONTRACT, _slot(1)) == b""


class TestCommitCountProbe:
    def test_one_storage_commit_per_statedb_commit(self):
        state = StateDB()
        for i in range(50):
            state.set_storage(CONTRACT, _slot(i), bytes([i + 1]))
        assert state.storage_trie_commits == 0  # nothing flushed yet
        state.commit()
        assert state.storage_trie_commits == 1  # the seed would have paid 50
        state.commit()  # idempotent: clean commit flushes nothing
        assert state.storage_trie_commits == 1

    def test_one_commit_per_dirty_account(self):
        state = StateDB()
        for i in range(10):
            state.set_storage(CONTRACT, _slot(i), b"\x01")
            state.set_storage(OTHER, _slot(i), b"\x02")
        state.commit()
        assert state.storage_trie_commits == 2

    def test_seed_emulation_pays_per_slot(self):
        seed = _SeedStateDB()
        for i in range(10):
            seed.set_storage(CONTRACT, _slot(i), bytes([i + 1]))
        assert seed.storage_trie_commits == 10


class TestDurableBatchAtomicity:
    def test_one_store_batch_per_commit_tagged_with_state_root(self, tmp_path):
        """Storage-trie flushes are staged, not separately committed: one
        StateDB.commit() == one durable batch, tagged with the *state* root
        (crash recovery can never land on a storage-subtree root)."""
        from repro.storage import AppendOnlyFileStore

        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        state = StateDB(store)
        state.add_balance(CONTRACT, 1_000)
        for i in range(20):
            state.set_storage(CONTRACT, _slot(i), bytes([i + 1]))
            state.set_storage(OTHER, _slot(i), bytes([i + 2]))
        root = state.commit()
        assert store.stats.batches_committed == 1
        assert store.last_root == root  # the state root, not a storage root
        store.close()
        reopened = AppendOnlyFileStore(tmp_path / "nodes.log")
        revived = StateDB(reopened, reopened.last_root)
        assert revived.get_storage(CONTRACT, _slot(3)) == b"\x04"
        assert revived.balance_of(CONTRACT) == 1_000
        reopened.close()


class TestSealAfterRevert:
    def test_seal_flushes_nodes_staged_at_reverted_tx_boundary(self, tmp_path):
        """build_block's shape when the last transaction fails: tx 1's
        nodes are staged by the per-tx snapshot, tx 2 reverts (leaving the
        trie clean at the snapshot root), and the seal commit must still
        cut the durable batch — the sealed header's root has to survive a
        restart."""
        from repro.storage import AppendOnlyFileStore

        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        state = StateDB(store)
        state.add_balance(CONTRACT, 7)      # tx 1 writes
        boundary = state.snapshot()         # per-tx commit point: stages
        state.add_balance(OTHER, 1)         # tx 2 writes…
        state.revert(boundary)              # …and fails
        sealed = state.commit()             # seal: trie is already clean
        assert sealed == boundary
        assert store.last_root == sealed
        store.close()
        reopened = AppendOnlyFileStore(tmp_path / "nodes.log")
        assert reopened.last_root == sealed
        assert StateDB(reopened, sealed).balance_of(CONTRACT) == 7
        reopened.close()

    def test_committed_away_state_stays_away_after_reopen(self, tmp_path):
        """Committing back to a previously-stored shape dedups every node,
        but the root transition must still be durable: reopening may not
        resurrect the state that was committed away."""
        from repro.storage import AppendOnlyFileStore

        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        state = StateDB(store)
        r1 = state.commit()
        state.set_storage(CONTRACT, _slot(1), b"\x01")
        r2 = state.commit()
        state.set_storage(CONTRACT, _slot(1), b"")  # zero it back
        r3 = state.commit()  # == r1: zero new nodes, root-only batch
        assert r3 == r1 != r2
        assert store.last_root == r3
        store.close()
        reopened = AppendOnlyFileStore(tmp_path / "nodes.log")
        assert reopened.last_root == r3
        revived = StateDB(reopened, reopened.last_root)
        assert revived.get_storage(CONTRACT, _slot(1)) == b""
        reopened.close()

    def test_read_view_proving_never_moves_the_recovery_root(self, tmp_path):
        from repro.storage import AppendOnlyFileStore

        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        state = StateDB(store)
        state.add_balance(CONTRACT, 5)
        old = state.commit()
        state.add_balance(CONTRACT, 5)
        head = state.commit()
        view = state.at_root(old)
        assert view.prove_account(CONTRACT)  # read path: stages only
        assert view.root_hash == old
        assert store.last_root == head  # recovery root untouched
        store.close()


class TestDifferentialVsSeed:
    def test_sstore_heavy_workload_roots_identical(self):
        """Random interleaved writes/zeroings/commits: batched roots must be
        bit-identical to the seed's per-slot-commit roots at every commit."""
        rng = random.Random(0x5570)
        batched, seed = StateDB(), _SeedStateDB()
        addresses = [CONTRACT, OTHER]
        for step in range(300):
            address = rng.choice(addresses)
            slot = _slot(rng.randrange(40))
            value = b"" if rng.random() < 0.25 else rng.randbytes(
                rng.randrange(1, 16))
            batched.set_storage(address, slot, value)
            seed.set_storage(address, slot, value)
            if rng.random() < 0.15:
                assert batched.commit() == seed.commit()
        assert batched.commit() == seed.commit()
        # and far fewer storage-trie hash passes were paid for it
        assert batched.storage_trie_commits < seed.storage_trie_commits / 3

    def test_mixed_account_and_storage_writes_roots_identical(self):
        batched, seed = StateDB(), _SeedStateDB()
        for i in range(40):
            for state in (batched, seed):
                state.add_balance(CONTRACT, 7)
                state.set_storage(CONTRACT, _slot(i % 8), bytes([i + 1]))
                state.increment_nonce(OTHER)
        assert batched.commit() == seed.commit()

    def test_proofs_identical_after_commit(self):
        from repro.trie import verify_proof
        from repro.rlp import decode

        batched, seed = StateDB(), _SeedStateDB()
        for i in range(20):
            batched.set_storage(CONTRACT, _slot(i), bytes([i + 1]))
            seed.set_storage(CONTRACT, _slot(i), bytes([i + 1]))
        assert (batched.prove_storage(CONTRACT, _slot(3))
                == seed.prove_storage(CONTRACT, _slot(3)))
        account = batched.get_account(CONTRACT)
        raw = verify_proof(account.storage_root, keccak256(_slot(3)),
                           batched.prove_storage(CONTRACT, _slot(3)))
        assert decode(raw) == b"\x04"
