"""secp256k1 curve arithmetic invariants."""

import pytest

from repro.crypto.secp256k1 import (
    INFINITY,
    N,
    P,
    Point,
    Gx,
    Gy,
    generator_mul,
    is_on_curve,
    lift_x,
    point_add,
    point_mul,
)

G = Point(Gx, Gy)


class TestCurveBasics:
    def test_generator_is_on_curve(self):
        assert is_on_curve(G)

    def test_infinity_is_on_curve(self):
        assert is_on_curve(INFINITY)

    def test_off_curve_point_detected(self):
        assert not is_on_curve(Point(Gx, Gy + 1))

    def test_group_order(self):
        """n * G is the point at infinity."""
        assert point_mul(N, G).is_infinity

    def test_n_minus_one_is_negation(self):
        minus_g = point_mul(N - 1, G)
        assert minus_g.x == Gx
        assert minus_g.y == P - Gy


class TestGroupLaws:
    def test_addition_commutes(self):
        p2 = point_mul(2, G)
        p3 = point_mul(3, G)
        assert point_add(p2, p3) == point_add(p3, p2)

    def test_addition_associates(self):
        p2, p3, p5 = (point_mul(k, G) for k in (2, 3, 5))
        assert point_add(point_add(p2, p3), p5) == point_add(p2, point_add(p3, p5))

    def test_identity_element(self):
        p7 = point_mul(7, G)
        assert point_add(p7, INFINITY) == p7
        assert point_add(INFINITY, p7) == p7

    def test_inverse_sums_to_infinity(self):
        p9 = point_mul(9, G)
        neg = Point(p9.x, P - p9.y)
        assert point_add(p9, neg).is_infinity

    def test_doubling_matches_addition(self):
        assert point_add(G, G) == point_mul(2, G)

    def test_scalar_distributes(self):
        """(a + b)G == aG + bG for a few scalar pairs."""
        for a, b in [(5, 7), (123456789, 987654321), (N - 2, 3)]:
            lhs = point_mul((a + b) % N, G)
            rhs = point_add(point_mul(a, G), point_mul(b, G))
            assert lhs == rhs


class TestGeneratorTable:
    @pytest.mark.parametrize("scalar", [1, 2, 3, 255, 256, 2 ** 128, N - 1,
                                        0x123456789ABCDEF])
    def test_fixed_base_matches_generic(self, scalar):
        assert generator_mul(scalar) == point_mul(scalar, G)

    def test_zero_scalar(self):
        assert generator_mul(0).is_infinity
        assert point_mul(0, G).is_infinity

    def test_scalar_reduced_mod_n(self):
        assert generator_mul(N + 5) == generator_mul(5)


class TestLiftX:
    def test_roundtrip_even_and_odd(self):
        for k in (2, 3, 17):
            point = point_mul(k, G)
            lifted = lift_x(point.x, odd_y=bool(point.y & 1))
            assert lifted == point

    def test_parity_selects_y(self):
        even = lift_x(Gx, odd_y=False)
        odd = lift_x(Gx, odd_y=True)
        assert even.x == odd.x == Gx
        assert even.y != odd.y
        assert (even.y + odd.y) % P == 0

    def test_non_residue_returns_none(self):
        # x = 5 has no curve point on secp256k1 (5^3 + 7 is a non-residue).
        assert lift_x(5, odd_y=False) is None

    def test_out_of_range_x(self):
        assert lift_x(P, odd_y=False) is None
        assert lift_x(-1, odd_y=False) is None
