"""Full-node restart: kill, reopen over the persisted store, keep serving.

The durable footprint of a node is two sibling append-only logs —
``nodes.log`` (state trie) and ``blocks.log`` (headers/bodies/receipts).
Reopening over a populated pair must reattach: identical head hash, state
root, tx index, and receipts, and the node keeps sealing blocks and serving
verifiable proofs over both old and new history.
"""

import pytest

from repro.chain import (
    Blockchain,
    ChainError,
    GenesisConfig,
    UnsignedTransaction,
)
from repro.chain.receipt import Receipt
from repro.node import Devnet
from repro.storage import AppendOnlyFileStore, StoreError, open_node_store
from repro.vm import ContractRegistry, TransactionExecutor

from ..conftest import Keys, make_parp_env

TOKEN = 10 ** 18


def _genesis(keys: Keys) -> GenesisConfig:
    return GenesisConfig(allocations={
        keys.fn.address: 100 * TOKEN,
        keys.lc.address: 100 * TOKEN,
        keys.wn.address: 100 * TOKEN,
        keys.alice.address: 5 * TOKEN,
        keys.bob.address: 3 * TOKEN,
    })


def _reopen_store(store):
    """The 'restart' of a node store: file stores get a fresh handle over
    the same log; the memory store *is* the surviving state (same object)."""
    if isinstance(store, AppendOnlyFileStore):
        return AppendOnlyFileStore(store.path)
    return store


class TestKillAndReopen:
    def test_round_trip_is_identical_on_every_backend(
            self, node_store, tmp_path, keys):
        """Kill-and-reopen over both store backends (REPRO_NODE_STORE):
        head hash, state root, tx index, and receipts all survive."""
        genesis = _genesis(keys)
        executor = TransactionExecutor(ContractRegistry())
        log_path = tmp_path / "blocks.log"
        chain = Blockchain(genesis, executor=executor,
                           db=node_store, block_log=log_path)
        tx = UnsignedTransaction(
            nonce=0, gas_price=10 ** 9, gas_limit=21_000,
            to=keys.bob.address, value=777,
        ).sign(keys.alice)
        chain.add_transaction(tx)
        chain.build_block()
        chain.build_block()
        head_hash = chain.head.hash
        state_root = chain.state.root_hash
        receipt = chain.get_receipt(tx.hash)
        chain.close()

        revived = Blockchain(genesis,
                             executor=TransactionExecutor(ContractRegistry()),
                             db=_reopen_store(node_store), block_log=log_path)
        assert revived.reattached
        assert revived.head.hash == head_hash
        assert revived.state.root_hash == state_root
        block, index = revived.find_transaction(tx.hash)
        assert (block.number, index) == (1, 0)
        assert revived.get_receipt(tx.hash).encode() == receipt.encode()
        assert revived.get_receipt(tx.hash).gas_used == receipt.gas_used
        assert revived.state.balance_of(keys.bob.address) == 3 * TOKEN + 777
        # historical state stays provable: the pre-tx balance at genesis
        assert revived.state_at(0).balance_of(keys.bob.address) == 3 * TOKEN
        # and the chain keeps growing from the recovered head
        nxt = revived.build_block()
        assert nxt.number == block.number + 2
        assert nxt.header.parent_hash == head_hash
        revived.close()

    def test_store_ahead_of_log_tail_is_rewound(self, tmp_path, keys):
        """An operator restoring blocks.log from a *newer* copy than
        nodes.log (the one ordering the write path cannot produce) gets the
        unresolvable tail rewound, not served as unprovable history."""
        genesis = _genesis(keys)
        state_dir = tmp_path / "state"

        def _mine_transfers(net, count):
            # fixed values → the two runs below seal state-root-identical
            # prefixes (timestamps never enter the state root)
            for value in range(1, count + 1):
                net.send_transaction(keys.alice, keys.bob.address, value=value)
                net.mine()

        net = Devnet(genesis, state_dir=state_dir)
        _mine_transfers(net, 3)
        blocks_backup = (state_dir / "blocks.log").read_bytes()
        net.close()

        # roll nodes.log back to an earlier run: rebuild it one block
        # shorter (same transfers) while keeping the newer blocks.log
        (state_dir / "nodes.log").unlink()
        (state_dir / "blocks.log").unlink()
        net = Devnet(genesis, state_dir=state_dir)
        _mine_transfers(net, 2)
        net.close()
        (state_dir / "blocks.log").write_bytes(blocks_backup)

        revived = Devnet(genesis, state_dir=state_dir)
        assert revived.chain.reattached
        assert revived.chain.height == 2  # block 3's root is unresolvable
        # the rewind is durable: the log file no longer carries block 3
        assert (state_dir / "blocks.log").stat().st_size \
            < len(blocks_backup)
        revived.close()

    def test_foreign_state_dir_is_refused(self, tmp_path, keys):
        genesis = _genesis(keys)
        net = Devnet(genesis, state_dir=tmp_path / "state")
        net.advance_blocks(1)
        net.close()
        other = GenesisConfig(allocations={keys.alice.address: TOKEN})
        with pytest.raises(ChainError, match="different chain"):
            Devnet(other, state_dir=tmp_path / "state")
        # the refusal must not leak handles: the dir reopens cleanly
        revived = Devnet(genesis, state_dir=tmp_path / "state")
        assert revived.chain.reattached
        revived.close()

    def test_log_without_matching_store_is_refused(self, tmp_path, keys):
        """A state dir holding only one of the paired logs is refused with
        the paired-logs error *before* the missing sibling is recreated —
        silently reinitializing it would desynchronize the recovered state
        root from the logged head and force a surprise rewind."""
        genesis = _genesis(keys)
        state_dir = tmp_path / "state"
        net = Devnet(genesis, state_dir=state_dir)
        net.advance_blocks(1)
        net.close()
        (state_dir / "nodes.log").unlink()  # populated log, missing store
        with pytest.raises(StoreError, match="paired logs"):
            Devnet(genesis, state_dir=state_dir)
        # the refusal left the dir untouched: no nodes.log was created
        assert not (state_dir / "nodes.log").exists()
        # ... and nothing leaked: a clean store pair reopens after wiping
        (state_dir / "blocks.log").unlink()
        fresh = Devnet(genesis, state_dir=state_dir)
        assert not fresh.chain.reattached
        fresh.close()

    def test_store_without_matching_log_is_refused(self, tmp_path, keys):
        """The mirror direction: nodes.log present, blocks.log missing."""
        genesis = _genesis(keys)
        state_dir = tmp_path / "state"
        net = Devnet(genesis, state_dir=state_dir)
        net.advance_blocks(1)
        net.close()
        (state_dir / "blocks.log").unlink()  # populated store, missing log
        with pytest.raises(StoreError, match="paired logs"):
            Devnet(genesis, state_dir=state_dir)
        assert not (state_dir / "blocks.log").exists()


class TestServingAfterRestart:
    def test_reopened_node_serves_verified_proofs(self, tmp_path, keys):
        """The acceptance path: kill a devnet mid-run, reopen from
        --state-dir, and a light client still gets verified (multi)proofs
        over the recovered history."""
        genesis = _genesis(keys)
        state_dir = tmp_path / "state"
        net = Devnet(genesis, state_dir=state_dir)
        tx = net.send_transaction(keys.alice, keys.bob.address, value=321)
        net.mine()
        head_hash = net.chain.head.hash
        net.close()

        revived = Devnet(genesis, state_dir=state_dir)
        try:
            assert revived.chain.reattached
            assert revived.chain.get_block_by_number(1).hash == head_hash
            env = make_parp_env(revived, keys)
            # single verified proof against recovered state
            assert env.session.get_balance(keys.bob.address) \
                == 3 * TOKEN + 321
            # batched multiproof across recovered accounts
            balances = env.session.get_balances(
                [keys.alice.address, keys.bob.address])
            assert balances[1] == 3 * TOKEN + 321
            # receipt of the pre-restart transaction, proof-verified
            receipt_bytes = env.session.get_transaction_receipt(tx.hash)
            assert Receipt.decode(receipt_bytes).succeeded
        finally:
            revived.close()


class TestBareStoreRefusal:
    def test_populated_store_without_log_still_refuses(self, tmp_path, keys):
        genesis = _genesis(keys)
        net = Devnet(genesis, state_dir=tmp_path / "state")
        net.advance_blocks(1)
        root = net.node_store.last_root
        net.close()
        store = open_node_store(tmp_path / "state")
        with pytest.raises(ChainError, match="already contains committed"):
            Blockchain(genesis,
                       executor=TransactionExecutor(ContractRegistry()),
                       db=store)
        assert store.last_root == root
