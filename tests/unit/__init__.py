"""Unit tests for individual modules."""
