"""Off-chain channel accounting on both sides of the connection."""

import pytest

from repro.crypto import PrivateKey, keccak256
from repro.parp.channel import ChannelError, ClientChannel, ServerChannel
from repro.parp.messages import PARPRequest, RpcCall

LC = PrivateKey.from_seed("ch:lc")
FN = PrivateKey.from_seed("ch:fn")
ALPHA = keccak256(b"ch")[:16]
H_B = keccak256(b"blk")


def request_for(amount: int, key=LC) -> PARPRequest:
    return PARPRequest.build(ALPHA, H_B, amount,
                             RpcCall.create("eth_blockNumber"), key)


class TestClientChannel:
    def test_budget_tracking(self):
        channel = ClientChannel(ALPHA, FN.address, budget=100)
        assert channel.next_amount(30) == 30
        channel.record_request(30)
        assert channel.spent == 30 and channel.remaining == 70
        assert channel.next_amount(70) == 100

    def test_budget_exhaustion(self):
        channel = ClientChannel(ALPHA, FN.address, budget=100)
        channel.record_request(95)
        with pytest.raises(ChannelError):
            channel.next_amount(6)

    def test_cumulative_amount_monotone(self):
        channel = ClientChannel(ALPHA, FN.address, budget=100)
        channel.record_request(50)
        with pytest.raises(ChannelError):
            channel.record_request(40)

    def test_cannot_exceed_budget(self):
        channel = ClientChannel(ALPHA, FN.address, budget=100)
        with pytest.raises(ChannelError):
            channel.record_request(101)

    def test_validation_on_construction(self):
        with pytest.raises(ChannelError):
            ClientChannel(b"short", FN.address, budget=100)
        with pytest.raises(ChannelError):
            ClientChannel(ALPHA, FN.address, budget=0)

    def test_negative_price_rejected(self):
        channel = ClientChannel(ALPHA, FN.address, budget=100)
        with pytest.raises(ChannelError):
            channel.next_amount(-1)


class TestServerChannel:
    def make(self, budget=1_000_000) -> ServerChannel:
        return ServerChannel(ALPHA, LC.address, budget=budget)

    def test_accepts_valid_payment(self):
        channel = self.make()
        channel.accept_request_payment(request_for(100), min_increment=100)
        assert channel.latest_amount == 100
        assert channel.earned == 100
        assert channel.requests_served == 1

    def test_retains_highest_state(self):
        channel = self.make()
        channel.accept_request_payment(request_for(100), min_increment=100)
        channel.accept_request_payment(request_for(250), min_increment=100)
        alpha, amount, sig = channel.redeemable_state()
        assert (alpha, amount) == (ALPHA, 250)
        assert sig == request_for(250).sig_a  # deterministic signatures

    def test_rejects_insufficient_increment(self):
        channel = self.make()
        channel.accept_request_payment(request_for(100), min_increment=100)
        with pytest.raises(ChannelError):
            channel.accept_request_payment(request_for(150), min_increment=100)

    def test_rejects_regression(self):
        channel = self.make()
        channel.accept_request_payment(request_for(200), min_increment=100)
        with pytest.raises(ChannelError):
            channel.accept_request_payment(request_for(100), min_increment=0)
        assert channel.latest_amount == 200  # unchanged

    def test_rejects_over_budget(self):
        channel = self.make(budget=150)
        with pytest.raises(ChannelError):
            channel.accept_request_payment(request_for(151), min_increment=1)

    def test_rejects_foreign_channel(self):
        channel = self.make()
        foreign = PARPRequest.build(b"\x99" * 16, H_B, 100,
                                    RpcCall.create("eth_blockNumber"), LC)
        with pytest.raises(ChannelError):
            channel.accept_request_payment(foreign, min_increment=1)

    def test_rejects_wrong_signer(self):
        channel = self.make()
        with pytest.raises(ChannelError):
            channel.accept_request_payment(request_for(100, key=FN),
                                           min_increment=1)
        assert channel.latest_amount == 0

    def test_rejects_when_closed(self):
        channel = self.make()
        channel.closed = True
        with pytest.raises(ChannelError):
            channel.accept_request_payment(request_for(100), min_increment=1)

    def test_empty_redeemable_state(self):
        alpha, amount, sig = self.make().redeemable_state()
        assert (amount, sig) == (0, b"")
