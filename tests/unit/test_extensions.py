"""§VIII extensions: PCN routing, proof-of-serving, reputation, commitments."""

import pytest

from repro.crypto import PrivateKey, keccak256
from repro.crypto.commitments import PedersenCommitment, commit
from repro.crypto.keys import Address
from repro.parp.messages import payment_digest
from repro.parp.pcn import ChannelGraph, PCNError
from repro.parp.proof_of_serving import (
    EpochClaim,
    ReceiptValidator,
    RewardPool,
    ServingReceipt,
)
from repro.parp.reputation import ReputationLedger


def addr(name: str) -> Address:
    return PrivateKey.from_seed(f"ext:{name}").address


class TestChannelGraph:
    def build_line(self) -> ChannelGraph:
        graph = ChannelGraph()
        graph.add_channel(addr("lc"), addr("hub"), capacity=1_000_000,
                          fee_ppm=10_000)  # 1%
        graph.add_channel(addr("hub"), addr("fn"), capacity=1_000_000,
                          fee_ppm=10_000)
        return graph

    def test_direct_route(self):
        graph = ChannelGraph()
        graph.add_channel(addr("lc"), addr("fn"), capacity=1_000)
        route = graph.find_route(addr("lc"), addr("fn"), 500)
        assert route.num_hops == 1
        assert route.total_sent == 500  # no intermediary, no fees

    def test_multi_hop_fees(self):
        graph = self.build_line()
        route = graph.find_route(addr("lc"), addr("fn"), 100_000)
        assert route.num_hops == 2
        assert route.fees == 1_000  # 1% on the hub->fn leg

    def test_pay_moves_capacity(self):
        graph = self.build_line()
        before = graph.capacity(addr("hub"), addr("fn"))
        graph.pay(addr("lc"), addr("fn"), 100_000)
        assert graph.capacity(addr("hub"), addr("fn")) == before - 100_000

    def test_no_route(self):
        graph = self.build_line()
        with pytest.raises(PCNError):
            graph.find_route(addr("fn"), addr("lc"), 10)  # channels are one-way

    def test_insufficient_capacity(self):
        graph = self.build_line()
        with pytest.raises(PCNError):
            graph.find_route(addr("lc"), addr("fn"), 2_000_000)

    def test_reserve_abort_restores(self):
        graph = self.build_line()
        route = graph.find_route(addr("lc"), addr("fn"), 50_000)
        graph.reserve(route)
        assert graph.capacity(addr("lc"), addr("hub")) < 1_000_000
        graph.abort(route)
        assert graph.capacity(addr("lc"), addr("hub")) == 1_000_000

    def test_reservation_is_atomic(self):
        graph = self.build_line()
        # drain the second hop so reservation must fail mid-path
        edge = graph.channel(addr("hub"), addr("fn"))
        edge.reserved = edge.capacity - 10
        route_amount = 50_000
        try:
            route = graph.find_route(addr("lc"), addr("fn"), route_amount)
        except PCNError:
            return  # already infeasible: fine
        with pytest.raises(PCNError):
            graph.reserve(route)
        assert graph.capacity(addr("lc"), addr("hub")) == 1_000_000

    def test_cheapest_route_chosen(self):
        graph = ChannelGraph()
        graph.add_channel(addr("lc"), addr("cheap"), 10 ** 9, fee_ppm=100)
        graph.add_channel(addr("cheap"), addr("fn"), 10 ** 9, fee_ppm=100)
        graph.add_channel(addr("lc"), addr("pricey"), 10 ** 9, fee_ppm=500_000)
        graph.add_channel(addr("pricey"), addr("fn"), 10 ** 9, fee_ppm=500_000)
        route = graph.find_route(addr("lc"), addr("fn"), 1_000_000)
        assert addr("cheap") in route.hops


class TestProofOfServing:
    def make_receipt(self, lc_key: PrivateKey, fn: Address, alpha: bytes,
                     amount: int) -> ServingReceipt:
        sig = lc_key.sign(payment_digest(alpha, amount)).to_bytes()
        return ServingReceipt(alpha, fn, lc_key.address, amount, sig)

    def setup_pool(self, channels: dict, epoch_reward=1_000_000,
                   **validator_kwargs) -> RewardPool:
        validator = ReceiptValidator(
            channel_lookup=lambda a: channels.get(a), **validator_kwargs,
        )
        return RewardPool(epoch_reward=epoch_reward, validator=validator)

    def test_valid_receipt_weighs_amount(self):
        lc = PrivateKey.from_seed("pos:lc")
        fn = addr("pos-fn")
        alpha = keccak256(b"pos")[:16]
        channels = {alpha: (lc.address, fn, 10_000, 1)}
        pool = self.setup_pool(channels)
        receipt = self.make_receipt(lc, fn, alpha, 5_000)
        assert pool.validator.weigh(receipt) == 5_000.0

    def test_forged_signature_rejected(self):
        lc = PrivateKey.from_seed("pos:lc")
        forger = PrivateKey.from_seed("pos:forger")
        fn = addr("pos-fn")
        alpha = keccak256(b"pos2")[:16]
        channels = {alpha: (lc.address, fn, 10_000, 1)}
        pool = self.setup_pool(channels)
        receipt = self.make_receipt(forger, fn, alpha, 5_000)
        forged = ServingReceipt(alpha, fn, lc.address, 5_000, receipt.signature)
        assert pool.validator.weigh(forged) == 0.0

    def test_sybil_unbacked_channel_rejected(self):
        """Receipts without a real on-chain channel weigh nothing."""
        lc = PrivateKey.from_seed("pos:sybil")
        fn = addr("pos-fn")
        alpha = keccak256(b"fake")[:16]
        pool = self.setup_pool(channels={})
        receipt = self.make_receipt(lc, fn, alpha, 999_999)
        assert pool.validator.weigh(receipt) == 0.0

    def test_amount_above_budget_rejected(self):
        lc = PrivateKey.from_seed("pos:lc")
        fn = addr("pos-fn")
        alpha = keccak256(b"pos3")[:16]
        channels = {alpha: (lc.address, fn, 1_000, 1)}
        pool = self.setup_pool(channels)
        assert pool.validator.weigh(self.make_receipt(lc, fn, alpha, 2_000)) == 0.0

    def test_replayed_receipts_not_summed(self):
        lc = PrivateKey.from_seed("pos:lc")
        fn = addr("pos-fn")
        alpha = keccak256(b"pos4")[:16]
        channels = {alpha: (lc.address, fn, 10_000, 1)}
        pool = self.setup_pool(channels)
        claim = EpochClaim(fn)
        for _ in range(5):  # replaying the same client 5 times
            claim.add(self.make_receipt(lc, fn, alpha, 4_000))
        assert pool.score_claim(claim) == 4_000.0

    def test_proportional_distribution_conserves_reward(self):
        lc1, lc2 = PrivateKey.from_seed("pos:l1"), PrivateKey.from_seed("pos:l2")
        fn1, fn2 = addr("pos-f1"), addr("pos-f2")
        a1, a2 = keccak256(b"c1")[:16], keccak256(b"c2")[:16]
        channels = {
            a1: (lc1.address, fn1, 100_000, 1),
            a2: (lc2.address, fn2, 100_000, 1),
        }
        pool = self.setup_pool(channels, epoch_reward=1_000_001)
        claim1, claim2 = EpochClaim(fn1), EpochClaim(fn2)
        claim1.add(self.make_receipt(lc1, fn1, a1, 75_000))
        claim2.add(self.make_receipt(lc2, fn2, a2, 25_000))
        payouts = pool.distribute([claim1, claim2])
        assert sum(payouts.values()) == 1_000_001  # nothing lost to rounding
        assert payouts[fn1] > payouts[fn2]


class TestReputation:
    def test_scores_build_and_decay(self):
        ledger = ReputationLedger(half_life=100.0)
        node = addr("rep-node")
        for t in range(10):
            ledger.record(node, "served_ok", time=float(t))
        fresh = ledger.score(node, now=10.0)
        faded = ledger.score(node, now=1_000.0)
        assert fresh > faded > 0

    def test_slash_destroys_reputation(self):
        ledger = ReputationLedger()
        node = addr("rep-slashed")
        for t in range(50):
            ledger.record(node, "served_ok", time=float(t))
        ledger.record(node, "fraud_slashed", time=50.0)
        assert ledger.score(node, now=51.0) == 0.0
        assert ledger.is_banned(node, now=51.0)

    def test_newcomers_start_low(self):
        ledger = ReputationLedger(newcomer_score=0.1)
        assert ledger.score(addr("rep-unknown"), now=0.0) == 0.1

    def test_ranking(self):
        ledger = ReputationLedger()
        good, bad = addr("rep-good"), addr("rep-bad")
        ledger.record(good, "channel_settled", time=0.0)
        ledger.record(bad, "invalid_response", time=0.0)
        assert ledger.rank([bad, good], now=1.0)[0] == good

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ReputationLedger().record(addr("x"), "weird_event", time=0.0)


class TestPedersenCommitments:
    def test_commit_and_open(self):
        commitment, blinding = commit(42)
        assert commitment.verify(42, blinding)

    def test_wrong_value_fails(self):
        commitment, blinding = commit(42)
        assert not commitment.verify(43, blinding)
        assert not commitment.verify(42, blinding + 1)

    def test_hiding_distinct_blinding(self):
        c1, _ = commit(42, blinding=111)
        c2, _ = commit(42, blinding=222)
        assert c1.point != c2.point

    def test_homomorphic_addition(self):
        c1, r1 = commit(10)
        c2, r2 = commit(32)
        combined = c1 + c2
        assert combined.verify(42, r1 + r2)

    def test_serialization_compressed(self):
        commitment, _ = commit(7)
        raw = commitment.to_bytes()
        assert len(raw) == 33 and raw[0] in (2, 3)
