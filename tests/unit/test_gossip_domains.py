"""The two gossip domains: signed head announcements and shared reputation."""

from dataclasses import replace

import pytest

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.gossip import (
    GossipNode,
    HeadAnnouncement,
    HeadEquivocationProof,
    HeadGossip,
    ReputationGossip,
    ReputationShare,
    TOPIC_NEW_HEADS,
    TOPIC_REPUTATION,
    connect_mesh,
)
from repro.lightclient import HeaderSyncer
from repro.net import FixedLatency, SimNetwork
from repro.node import Devnet, FullNode
from repro.parp.messages import MessageError
from repro.parp.reputation import (
    EVENT_EQUIVOCATION,
    EVENT_FRAUD_SLASHED,
    EVENT_INVALID_RESPONSE,
    EVENT_SERVED_OK,
    ReputationLedger,
)

STAKE = 32 * 10 ** 18


def build_devnet(blocks: int = 4) -> Devnet:
    net = Devnet(GenesisConfig())
    net.advance_blocks(blocks)
    return net


class TestHeadAnnouncement:
    def test_round_trip_and_signer(self):
        net = build_devnet()
        key = PrivateKey.from_seed("ha:op")
        ann = HeadAnnouncement.build(net.chain.head.header, key)
        decoded = HeadAnnouncement.decode(ann.encode())
        assert decoded == ann
        assert decoded.signer() == key.address

    def test_decode_rejects_garbage(self):
        with pytest.raises(MessageError):
            HeadAnnouncement.decode(b"\x01\x02\x03")

    def test_tampered_header_changes_signer(self):
        net = build_devnet()
        key = PrivateKey.from_seed("ha:op")
        ann = HeadAnnouncement.build(net.chain.head.header, key)
        forged = HeadAnnouncement(
            header=replace(ann.header, timestamp=ann.header.timestamp + 1),
            signature=ann.signature)
        # signature no longer binds: recovers to some other address (or fails)
        try:
            assert forged.signer() != key.address
        except MessageError:
            pass


class TestHeadEquivocationProof:
    def _pair(self):
        net = build_devnet()
        key = PrivateKey.from_seed("eq:op")
        h = net.chain.head.header
        h2 = replace(h, timestamp=h.timestamp + 1)
        return (HeadAnnouncement.build(h, key),
                HeadAnnouncement.build(h2, key), key)

    def test_requires_one_height_two_hashes(self):
        a, b, key = self._pair()
        proof = HeadEquivocationProof(first=a, second=b, announcer=key.address)
        assert proof.height == a.header.number
        with pytest.raises(MessageError):
            HeadEquivocationProof(first=a, second=a, announcer=key.address)

    def test_evidence_digest_is_order_free(self):
        a, b, key = self._pair()
        p1 = HeadEquivocationProof(first=a, second=b, announcer=key.address)
        p2 = HeadEquivocationProof(first=b, second=a, announcer=key.address)
        assert p1.evidence_digest() == p2.evidence_digest()


def make_head_world(n_announcers: int = 3, quorum: int = 2,
                    stake_of=None, **head_kwargs):
    """A devnet, a pull-synced client syncer, and a gossip star around it."""
    net = build_devnet(3)
    network = SimNetwork(latency=FixedLatency(0.01))
    source = FullNode(net.chain, key=PrivateKey.from_seed("hw:src"))
    syncer = HeaderSyncer([source])
    syncer.sync()
    announcer_keys = [PrivateKey.from_seed(f"hw:an{i}")
                      for i in range(n_announcers)]
    nodes = [GossipNode(network, f"an-{i}") for i in range(n_announcers)]
    client_node = GossipNode(network, "client")
    connect_mesh(nodes + [client_node])
    head = HeadGossip(client_node, syncer, stake_of=stake_of, quorum=quorum,
                      **head_kwargs)
    return net, network, syncer, announcer_keys, nodes, head


class TestHeadGossip:
    def test_quorum_gates_application(self):
        net, network, syncer, keys, nodes, head = make_head_world(quorum=2)
        base = syncer.chain.tip_number
        net.advance_blocks(1)
        header = net.chain.head.header
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[0]).encode())
        network.run()
        assert syncer.chain.tip_number == base          # one vote < quorum
        nodes[1].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[1]).encode())
        network.run()
        assert syncer.chain.tip_number == base + 1
        assert head.stats.quorum_applied == 1
        assert head.stats.heads_appended == 1
        assert syncer.headers_pushed == 1

    def test_same_announcer_cannot_self_quorum(self):
        net, network, syncer, keys, nodes, head = make_head_world(quorum=2)
        base = syncer.chain.tip_number
        net.advance_blocks(1)
        header = net.chain.head.header
        ann = HeadAnnouncement.build(header, keys[0])
        nodes[0].publish(TOPIC_NEW_HEADS, ann.encode())
        nodes[1].publish(TOPIC_NEW_HEADS, ann.encode())   # same signer, relayed
        network.run()
        assert syncer.chain.tip_number == base            # 1 distinct voter

    def test_understaked_announcers_are_ignored(self):
        staked = PrivateKey.from_seed("hw:an0").address
        stake_of = lambda a: STAKE if a == staked else 0  # noqa: E731
        net, network, syncer, keys, nodes, head = make_head_world(
            quorum=1, stake_of=stake_of)
        base = syncer.chain.tip_number
        net.advance_blocks(1)
        header = net.chain.head.header
        nodes[1].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[1]).encode())
        network.run()
        assert head.stats.understaked == 1
        assert syncer.chain.tip_number == base
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[0]).encode())
        network.run()
        assert syncer.chain.tip_number == base + 1

    def test_gap_triggers_pull(self):
        net, network, syncer, keys, nodes, head = make_head_world(quorum=1)
        base = syncer.chain.tip_number
        net.advance_blocks(3)                  # client missed two seals
        header = net.chain.head.header
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[0]).encode())
        network.run()
        assert syncer.chain.tip_number == base + 3
        assert head.stats.heads_pulled == 1

    def test_equivocation_detected_and_recorded(self):
        ledger = ReputationLedger()
        proofs = []
        net, network, syncer, keys, nodes, head = make_head_world(
            quorum=2, reputation=ledger, on_equivocation=proofs.append)
        net.advance_blocks(1)
        header = net.chain.head.header
        forged = replace(header, timestamp=header.timestamp + 9)
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[0]).encode())
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(forged, keys[0]).encode())
        network.run()
        assert head.stats.equivocations == 1
        assert keys[0].address in head.equivocators
        assert len(proofs) == 1 and proofs[0].announcer == keys[0].address
        kinds = [e.kind for e in ledger.events_of(keys[0].address)]
        assert kinds == [EVENT_EQUIVOCATION]
        assert not ledger.events_of(keys[0].address)[0].remote  # first-hand

    def test_equivocator_votes_are_purged_and_future_ignored(self):
        net, network, syncer, keys, nodes, head = make_head_world(quorum=2)
        base = syncer.chain.tip_number
        net.advance_blocks(1)
        header = net.chain.head.header
        forged = replace(header, timestamp=header.timestamp + 9)
        # announcer 0 votes, then equivocates: its vote must not count
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[0]).encode())
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(forged, keys[0]).encode())
        nodes[1].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[1]).encode())
        network.run()
        assert syncer.chain.tip_number == base          # 1 honest vote < 2
        # equivocator's later announcements are dropped at the door
        nodes[0].publish(TOPIC_NEW_HEADS,
                         HeadAnnouncement.build(header, keys[0]).encode())
        network.run()
        assert syncer.chain.tip_number == base

    def test_vote_books_prune_below_applied_height(self):
        net, network, syncer, keys, nodes, head = make_head_world(quorum=1)
        for _ in range(3):
            net.advance_blocks(1)
            header = net.chain.head.header
            nodes[0].publish(TOPIC_NEW_HEADS,
                             HeadAnnouncement.build(header, keys[0]).encode())
            network.run()
        tip = syncer.chain.tip_number
        assert all(h >= tip for (h, _) in head._votes)
        assert all(h >= tip for (_, h) in head._by_announcer)


class TestServerAnnouncesOnSeal:
    def test_enable_gossip_announces_each_seal(self):
        net = build_devnet(1)
        network = SimNetwork(latency=FixedLatency(0.01))
        op = PrivateKey.from_seed("seal:op")
        server = net.attach_server(op, name="srv", stake=False)
        node = GossipNode(network, "srv-g")
        listener = GossipNode(network, "lc-g")
        connect_mesh([node, listener])
        seen = []
        listener.subscribe(TOPIC_NEW_HEADS, seen.append)
        server.enable_gossip(node)
        net.advance_blocks(2)
        network.run()
        assert server.stats.heads_announced == 2
        assert len(seen) == 2
        ann = HeadAnnouncement.decode(seen[-1].payload)
        assert ann.signer() == op.address
        assert ann.header.hash == net.chain.head.header.hash
        server.disable_gossip()
        net.advance_blocks(1)
        network.run()
        assert server.stats.heads_announced == 2       # listener detached


class TestReputationGossipWire:
    def test_round_trip(self):
        key = PrivateKey.from_seed("rg:rep")
        subject = PrivateKey.from_seed("rg:sub").address
        ev = ReputationGossip.build(subject, EVENT_FRAUD_SLASHED,
                                    b"\x42" * 32, 12.5, key)
        decoded = ReputationGossip.decode(ev.encode())
        assert decoded == ev
        assert decoded.signer() == key.address
        assert decoded.time == pytest.approx(12.5)

    def test_build_rejects_ungossipable_and_bad_evidence(self):
        key = PrivateKey.from_seed("rg:rep")
        subject = PrivateKey.from_seed("rg:sub").address
        with pytest.raises(MessageError):
            ReputationGossip.build(subject, EVENT_SERVED_OK, b"\x42" * 32,
                                   1.0, key)
        with pytest.raises(MessageError):
            ReputationGossip.build(subject, EVENT_FRAUD_SLASHED, b"short",
                                   1.0, key)

    def test_decode_rejects_bad_lengths(self):
        key = PrivateKey.from_seed("rg:rep")
        subject = PrivateKey.from_seed("rg:sub").address
        wire = ReputationGossip.build(subject, EVENT_FRAUD_SLASHED,
                                      b"\x42" * 32, 1.0, key).encode()
        with pytest.raises(MessageError):
            ReputationGossip.decode(wire[:-1])
        with pytest.raises(MessageError):
            ReputationGossip.decode(wire + b"\x00")
        with pytest.raises(MessageError):
            ReputationGossip.decode(b"")


def make_share_world(stakes=None):
    network = SimNetwork(latency=FixedLatency(0.01))
    reporter_key = PrivateKey.from_seed("sw:reporter")
    receiver_key = PrivateKey.from_seed("sw:receiver")
    stakes = stakes if stakes is not None else {reporter_key.address: STAKE}
    stake_of = stakes.get if hasattr(stakes, "get") else stakes
    a = GossipNode(network, "a")
    b = GossipNode(network, "b")
    connect_mesh([a, b])
    reporter = ReputationShare(a, ReputationLedger(), reporter_key,
                               stake_of=lambda addr: stakes.get(addr, 0))
    ledger = ReputationLedger()
    receiver = ReputationShare(b, ledger, receiver_key,
                               stake_of=lambda addr: stakes.get(addr, 0))
    return network, reporter, receiver, ledger, reporter_key


class TestReputationShare:
    def test_merge_is_discounted_and_flagged_remote(self):
        network, reporter, receiver, ledger, rep_key = make_share_world()
        evil = PrivateKey.from_seed("sw:evil").address
        reporter.publish(evil, EVENT_INVALID_RESPONSE, b"ev")
        network.run()
        assert receiver.stats.merged == 1
        (event,) = ledger.events_of(evil)
        assert event.remote and event.reporter == rep_key.address
        # full stake ⇒ foreign_discount × native weight
        assert event.weight == pytest.approx(-10.0 * 0.5)

    def test_partial_stake_scales_weight(self):
        key = PrivateKey.from_seed("sw:reporter")
        network, reporter, receiver, ledger, _ = make_share_world(
            stakes={key.address: STAKE // 4})
        evil = PrivateKey.from_seed("sw:evil").address
        reporter.publish(evil, EVENT_INVALID_RESPONSE, b"ev")
        network.run()
        (event,) = ledger.events_of(evil)
        assert event.weight == pytest.approx(-10.0 * 0.5 * 0.25)

    def test_unstaked_reporter_is_dropped(self):
        network, reporter, receiver, ledger, _ = make_share_world(stakes={})
        evil = PrivateKey.from_seed("sw:evil").address
        reporter.publish(evil, EVENT_FRAUD_SLASHED, b"ev")
        network.run()
        assert receiver.stats.understaked == 1
        assert ledger.events_of(evil) == ()

    def test_replayed_accusation_merges_once(self):
        network, reporter, receiver, ledger, _ = make_share_world()
        evil = PrivateKey.from_seed("sw:evil").address
        reporter.publish(evil, EVENT_INVALID_RESPONSE, b"same-evidence")
        reporter.publish(evil, EVENT_INVALID_RESPONSE, b"same-evidence")
        network.run()
        assert receiver.stats.merged == 1
        assert receiver.stats.duplicates == 1

    def test_own_events_are_not_remerged(self):
        network, reporter, receiver, ledger, _ = make_share_world()
        evil = PrivateKey.from_seed("sw:evil").address
        reporter.publish(evil, EVENT_INVALID_RESPONSE, b"ev")
        network.run()
        # the local delivery of our own publication is recognized and skipped
        assert reporter.stats.own_echoes == 1
        assert reporter.stats.merged == 0
        assert reporter.ledger.events_of(evil) == ()

    def test_non_gossipable_kind_stays_local(self):
        network, reporter, receiver, ledger, _ = make_share_world()
        good = PrivateKey.from_seed("sw:good").address
        assert reporter.publish(good, EVENT_SERVED_OK, b"ev") is None
        network.run()
        assert receiver.stats.received == 0


class TestMergeRemoteLedger:
    def test_budget_caps_one_reporters_influence(self):
        ledger = ReputationLedger(remote_budget=30.0)
        subject = PrivateKey.from_seed("mr:sub").address
        reporter = PrivateKey.from_seed("mr:rep").address
        first = ledger.merge_remote(subject, EVENT_FRAUD_SLASHED, 0.0,
                                    reporter, discount=1.0)
        assert first is not None and first.weight == -30.0   # capped
        second = ledger.merge_remote(subject, EVENT_INVALID_RESPONSE, 1.0,
                                     reporter, discount=1.0)
        assert second is None                                # budget spent
        # a different reporter has its own budget
        other = PrivateKey.from_seed("mr:rep2").address
        third = ledger.merge_remote(subject, EVENT_INVALID_RESPONSE, 2.0,
                                    other, discount=1.0)
        assert third is not None and third.weight == -10.0

    def test_gossip_alone_never_hard_bans(self):
        ledger = ReputationLedger()
        subject = PrivateKey.from_seed("mr:sub").address
        for i in range(40):
            reporter = PrivateKey.from_seed(f"mr:rep{i}").address
            ledger.merge_remote(subject, EVENT_FRAUD_SLASHED, float(i),
                                reporter, discount=1.0)
        now = 50.0
        assert not ledger.has_hard_negative(subject)
        assert not ledger.is_banned(subject, now)
        assert ledger.score(subject, now) == ledger.soft_floor

    def test_first_hand_evidence_still_bans(self):
        ledger = ReputationLedger()
        subject = PrivateKey.from_seed("mr:sub").address
        ledger.record(subject, EVENT_FRAUD_SLASHED, 0.0)
        assert ledger.has_hard_negative(subject)
        assert ledger.is_banned(subject, 1.0)

    def test_zero_discount_and_unknown_kind(self):
        ledger = ReputationLedger()
        subject = PrivateKey.from_seed("mr:sub").address
        reporter = PrivateKey.from_seed("mr:rep").address
        assert ledger.merge_remote(subject, EVENT_INVALID_RESPONSE, 0.0,
                                   reporter, discount=0.0) is None
        with pytest.raises(ValueError):
            ledger.merge_remote(subject, "nonsense", 0.0, reporter)
