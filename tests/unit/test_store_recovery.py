"""Crash recovery of the append-only file store.

The durability contract: a reopened store recovers exactly the state of the
last *fully committed* batch — a torn write (truncated tail) or a corrupted
byte anywhere in a batch invalidates that batch and everything after it,
and the file is physically truncated back to the end of the valid prefix.
These tests crash the store the only way a filesystem can be crashed from
user space: by mangling the log between close and reopen.
"""

import pytest

from repro.crypto import keccak256
from repro.storage import (
    AppendOnlyFileStore,
    MAGIC,
    MemoryNodeStore,
    StoreError,
    as_node_store,
    open_node_store,
)
from repro.trie import EMPTY_TRIE_ROOT, MerklePatriciaTrie


def _items(count: int, tag: bytes = b"") -> dict[bytes, bytes]:
    return {
        keccak256(tag + i.to_bytes(4, "big")): b"value-" + tag + bytes([i % 251])
        for i in range(count)
    }


def _build_batches(path, batches: int = 3, per_batch: int = 40):
    """Commit ``batches`` successive trie states; return (roots, contents)."""
    store = AppendOnlyFileStore(path)
    trie = MerklePatriciaTrie(store)
    roots, contents = [], []
    model: dict[bytes, bytes] = {}
    for b in range(batches):
        batch = _items(per_batch, tag=bytes([b]))
        trie.update(batch)
        model.update(batch)
        roots.append(trie.commit())
        contents.append(dict(model))
    # close footer-free: these tests mangle the file tail surgically, and a
    # root-index footer at EOF would absorb the cuts meant for batch bytes
    store.close(write_index=False)
    return roots, contents


def _build_account_batches(path, commits: int = 3, per_commit: int = 12):
    """Commit ``commits`` account-shaped world states; returns their roots.

    Compaction's live-set walk decodes account-trie leaves as
    :class:`~repro.chain.account.Account` records, so tests that compact
    need real accounts, not the raw key/value tries of ``_build_batches``.
    """
    from repro.chain.state import StateDB
    from repro.crypto.keys import Address

    store = AppendOnlyFileStore(path)
    state = StateDB(store)
    roots = []
    for c in range(commits):
        for i in range(per_commit):
            addr = Address(
                keccak256(b"acct%d" % (c * per_commit + i))[:20])
            state.add_balance(addr, 10 ** 18)
        roots.append(state.commit())
    store.close(write_index=False)
    return roots


class TestTornTail:
    def test_truncated_tail_recovers_last_committed_root(self, tmp_path):
        path = tmp_path / "nodes.log"
        roots, contents = _build_batches(path)
        # tear the final batch: chop bytes off the end of the file
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 11)
        store = AppendOnlyFileStore(path)
        assert store.last_root == roots[1]
        assert store.stats.truncated_bytes > 0
        # the torn suffix is physically gone and the surviving state is whole
        assert path.stat().st_size < size - 11 + 1
        trie = MerklePatriciaTrie(store, store.last_root)
        assert dict(trie.items()) == contents[1]
        store.close()

    def test_torn_write_never_yields_unknown_root(self, tmp_path):
        """Sweep every truncation point: recovery only ever lands on a
        committed root (or the empty trie), never on garbage."""
        path = tmp_path / "nodes.log"
        roots, contents = _build_batches(path, batches=2, per_batch=8)
        full = path.read_bytes()
        valid_roots = {EMPTY_TRIE_ROOT, *roots}
        scratch = tmp_path / "scratch.log"
        for cut in range(len(MAGIC), len(full)):
            scratch.write_bytes(full[:cut])
            store = AppendOnlyFileStore(scratch)
            assert store.last_root in valid_roots
            if store.last_root != EMPTY_TRIE_ROOT:
                trie = MerklePatriciaTrie(store, store.last_root)
                expected = contents[roots.index(store.last_root)]
                assert dict(trie.items()) == expected
            store.close()


class TestCorruption:
    def test_bitflip_in_tail_batch_drops_it(self, tmp_path):
        path = tmp_path / "nodes.log"
        roots, contents = _build_batches(path)
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF  # inside the last batch (value or root region)
        path.write_bytes(bytes(data))
        store = AppendOnlyFileStore(path)
        assert store.last_root == roots[1]
        trie = MerklePatriciaTrie(store, store.last_root)
        assert dict(trie.items()) == contents[1]
        store.close()

    def test_bitflip_in_early_batch_drops_it_and_all_later(self, tmp_path):
        # later batches may reference nodes of the damaged one, so the
        # valid prefix ends where the corruption starts
        path = tmp_path / "nodes.log"
        roots, contents = _build_batches(path)
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 10] ^= 0x01  # inside batch 0
        path.write_bytes(bytes(data))
        store = AppendOnlyFileStore(path)
        assert store.last_root == EMPTY_TRIE_ROOT
        assert len(store) == 0
        store.close()

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "nodes.log"
        path.write_bytes(b"NOTASTORE-file-of-the-wrong-kind")
        with pytest.raises(StoreError, match="bad magic"):
            AppendOnlyFileStore(path)

    @pytest.mark.parametrize("kept", [1, 4, 7])
    def test_torn_magic_header_reinitializes(self, tmp_path, kept):
        """A crash while creating the fresh log (a strict prefix of the
        magic on disk) must not wedge the store forever — nothing was ever
        committed, so reopening re-initializes."""
        path = tmp_path / "nodes.log"
        path.write_bytes(MAGIC[:kept])
        store = AppendOnlyFileStore(path)
        assert store.last_root == EMPTY_TRIE_ROOT
        assert len(store) == 0
        key = keccak256(b"after")
        store[key] = b"recovered"
        store.commit(keccak256(b"r"))
        store.close()
        reopened = AppendOnlyFileStore(path)
        assert reopened.get(key) == b"recovered"
        reopened.close()


class TestReopenAndContinue:
    def test_write_more_after_recovery(self, tmp_path):
        path = tmp_path / "nodes.log"
        roots, contents = _build_batches(path)
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)  # tear batch 3
        store = AppendOnlyFileStore(path)
        assert store.last_root == roots[1]
        trie = MerklePatriciaTrie(store, store.last_root)
        extra = _items(25, tag=b"\x77")
        trie.update(extra)
        new_root = trie.commit()
        store.close()
        # second reopen: the post-recovery batch is durable
        store = AppendOnlyFileStore(path)
        assert store.last_root == new_root
        revived = MerklePatriciaTrie(store, store.last_root)
        expected = dict(contents[1])
        expected.update(extra)
        assert dict(revived.items()) == expected
        store.close()

    def test_reopen_clean_store_is_lossless(self, tmp_path):
        path = tmp_path / "nodes.log"
        roots, contents = _build_batches(path)
        store = AppendOnlyFileStore(path)
        assert store.last_root == roots[-1]
        assert store.stats.truncated_bytes == 0
        trie = MerklePatriciaTrie(store, store.last_root)
        assert dict(trie.items()) == contents[-1]
        # every historical root is still resolvable (append-only store)
        for root, content in zip(roots, contents):
            assert dict(trie.at_root(root).items()) == content
        store.close()


class TestCrashMidCompaction:
    """Compaction promotes ``nodes.log.compact`` by atomic rename: a crash
    at any byte offset of the pass must reopen to either the complete old
    log or the complete new one — never a blend, never data loss."""

    @pytest.fixture(scope="class")
    def compaction_images(self, tmp_path_factory):
        """(old log bytes, new log bytes, old roots, new root)."""
        from repro.storage import RetentionPolicy, compact_node_store

        path = tmp_path_factory.mktemp("images") / "nodes.log"
        roots = _build_account_batches(path, commits=3, per_commit=4)
        old_bytes = path.read_bytes()
        store = AppendOnlyFileStore(path)
        compact_node_store(store, RetentionPolicy.last(1))
        new_root = store.last_root
        store.close(write_index=False)
        new_bytes = path.read_bytes()
        assert new_root == roots[-1]
        return old_bytes, new_bytes, roots, new_root

    def test_every_offset_before_rename_recovers_the_old_log(
            self, tmp_path, compaction_images):
        old_bytes, new_bytes, roots, _ = compaction_images
        log = tmp_path / "nodes.log"
        tmp = tmp_path / "nodes.log.compact"
        for cut in range(len(new_bytes)):
            log.write_bytes(old_bytes)
            tmp.write_bytes(new_bytes[:cut])
            store = AppendOnlyFileStore(log)
            # the half-built replacement was never promoted: it is garbage
            assert not tmp.exists()
            assert store.last_root == roots[-1]
            assert store.stats.truncated_bytes == 0
            # every pre-compaction root is still resolvable — the pass
            # that crashed reclaimed nothing and pruned nothing
            for root in roots:
                assert dict(MerklePatriciaTrie(store, root).items())
            assert store.pruned_roots == frozenset()
            store.close(write_index=False)

    def test_crash_after_rename_recovers_the_new_log(
            self, tmp_path, compaction_images):
        _, new_bytes, roots, new_root = compaction_images
        log = tmp_path / "nodes.log"
        log.write_bytes(new_bytes)  # rename completed, then the crash
        store = AppendOnlyFileStore(log)
        assert store.last_root == new_root
        assert store.stats.truncated_bytes == 0
        assert dict(MerklePatriciaTrie(store, new_root).items())
        # the dropped roots are remembered as pruned, not forgotten
        assert store.pruned_roots == frozenset(roots[:-1])
        store.close()

    def test_leftover_tmp_is_removed_even_when_complete(
            self, tmp_path, compaction_images):
        """A fully-written but never-renamed replacement is still garbage:
        only the rename promotes it."""
        old_bytes, new_bytes, roots, _ = compaction_images
        log = tmp_path / "nodes.log"
        tmp = tmp_path / "nodes.log.compact"
        log.write_bytes(old_bytes)
        tmp.write_bytes(new_bytes)
        store = AppendOnlyFileStore(log)
        assert not tmp.exists()
        assert store.last_root == roots[-1]
        store.close()


class TestTornFooter:
    """The root-index footer is best-effort: any torn byte of it must fall
    back to the scan — same index, same root, nothing served from the
    damaged region."""

    def test_every_footer_truncation_falls_back_to_scan(self, tmp_path):
        path = tmp_path / "nodes.log"
        roots, contents = _build_batches(path, batches=2, per_batch=8)
        batch_log_size = path.stat().st_size  # footer-free by the helper
        store = AppendOnlyFileStore(path)
        reference_index = dict(store._index)
        store.close()  # appends the footer
        full = path.read_bytes()
        assert len(full) > batch_log_size
        scratch = tmp_path / "scratch.log"
        for cut in range(batch_log_size, len(full)):
            scratch.write_bytes(full[:cut])
            store = AppendOnlyFileStore(scratch)
            assert not store.opened_indexed
            assert store.last_root == roots[-1]
            assert dict(store._index) == reference_index
            # the footer fragment was truncated away as torn bytes
            assert store.stats.truncated_bytes == cut - batch_log_size
            assert scratch.stat().st_size == batch_log_size
            store.close(write_index=False)

    def test_bitflip_inside_footer_falls_back_to_scan(self, tmp_path):
        path = tmp_path / "nodes.log"
        roots, _ = _build_batches(path, batches=2, per_batch=8)
        batch_log_size = path.stat().st_size
        AppendOnlyFileStore(path).close()  # append a footer
        data = bytearray(path.read_bytes())
        data[batch_log_size + 3] ^= 0x40  # inside the footer body
        path.write_bytes(bytes(data))
        store = AppendOnlyFileStore(path)
        assert not store.opened_indexed
        assert store.last_root == roots[-1]
        store.close()


class TestReadCacheInvalidation:
    def test_compaction_drops_cached_bytes_of_pruned_nodes(self, tmp_path):
        """A node dropped by compaction must not be served from the read
        cache afterwards — the cache only fronts what the log holds."""
        from repro.storage import (
            RetentionPolicy, compact_node_store, live_state_nodes,
        )

        path = tmp_path / "nodes.log"
        _build_account_batches(path)
        store = AppendOnlyFileStore(path)
        survivors = {h for h, _ in
                     live_state_nodes(store, store.last_root)}
        doomed = [key for key in store._index if key not in survivors]
        assert doomed
        for key in doomed:  # make every doomed node cache-hot
            assert store.get(key) is not None
        compact_node_store(store, RetentionPolicy.last(1))
        for key in doomed:
            assert store.get(key) is None
            assert store._read_cache.get(key) is None
        for key in survivors:  # …while live nodes still resolve
            assert store.get(key) is not None
        store.close()

    def test_failed_append_discards_staged_cache_entries(self, tmp_path):
        """A commit that dies mid-stream truncates the torn record *and*
        evicts the staged keys from the read cache: an acknowledged-failed
        write must never be readable afterwards."""
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        key = keccak256(b"will-fail")
        store[key] = b"torn payload"

        real_stream = store._stream_batch

        def dying_stream(fh, root, base, items, *, sync):
            fh.write(b"\xb1partial")
            fh.flush()
            raise OSError("disk full")

        store._stream_batch = dying_stream
        with pytest.raises(OSError, match="disk full"):
            store.commit(keccak256(b"root"))
        store._stream_batch = real_stream
        assert store.stats.truncated_bytes > 0  # the torn bytes were cut
        assert store._read_cache.get(key) is None
        # the log is back at its pre-commit size and fully usable
        store[key] = b"torn payload"
        store.commit(keccak256(b"root"))
        assert store.get(key) == b"torn payload"
        store.close()
        reopened = AppendOnlyFileStore(store.path)
        assert reopened.get(key) == b"torn payload"
        assert reopened.stats.truncated_bytes == 0
        reopened.close()


class TestStatsCoherence:
    """Every ``FileStoreStats`` counter is per-open (documented on the
    class): reopening yields a handle whose counters describe only the new
    lifecycle, with recovered history appearing in ``batches_recovered``
    and never in ``bytes_appended``."""

    def test_reopen_starts_a_fresh_lifecycle(self, tmp_path):
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        key = keccak256(b"n")
        store[key] = b"v"
        store.commit(keccak256(b"r1"))
        first_open = store.stats
        assert first_open.batches_committed == 1
        assert first_open.entries_written == 1
        assert first_open.bytes_appended > 0
        assert first_open.batches_recovered == 0
        store.close()

        reopened = AppendOnlyFileStore(path)
        stats = reopened.stats
        assert stats.batches_recovered == 1  # found, not written
        assert stats.batches_committed == 0
        assert stats.entries_written == 0
        assert stats.bytes_appended == 0
        assert stats.reads == 0
        # the footer stripped by the indexed open is not data loss
        assert stats.truncated_bytes == 0
        reopened.close()

    def test_compaction_counters(self, tmp_path):
        from repro.storage import RetentionPolicy, compact_node_store

        path = tmp_path / "nodes.log"
        _build_account_batches(path)
        store = AppendOnlyFileStore(path)
        assert store.stats.compactions == 0
        report = compact_node_store(store, RetentionPolicy.last(1))
        assert store.stats.compactions == 1
        assert store.stats.bytes_reclaimed == report.bytes_reclaimed > 0
        # compaction rewrites the log; it does not *append* to it
        assert store.stats.bytes_appended == 0
        store.close()


class TestStoreBasics:
    def test_pending_reads_and_dedup(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        key = keccak256(b"n1")
        store[key] = b"payload"
        assert store.get(key) == b"payload"  # uncommitted reads work
        assert key in store
        before = len(store)
        store[key] = b"payload"  # content-addressed re-put is a no-op
        assert len(store) == before
        store.commit(keccak256(b"root-tag"))
        assert store.get(key) == b"payload"
        assert store.last_root == keccak256(b"root-tag")
        store.close()

    def test_uncommitted_writes_are_dropped_on_close(self, tmp_path):
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        committed, orphan = keccak256(b"keep"), keccak256(b"lose")
        store[committed] = b"kept"
        store.commit(keccak256(b"r1"))
        store[orphan] = b"dropped"
        store.close()
        reopened = AppendOnlyFileStore(path)
        assert reopened.get(committed) == b"kept"
        assert reopened.get(orphan) is None
        reopened.close()

    def test_closed_store_rejects_io(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        key = keccak256(b"x")
        store[key] = b"v"
        store.commit(keccak256(b"r"))
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.get(key)

    def test_wedged_store_refuses_commits(self, tmp_path):
        """After a torn append that could not be truncated away, further
        appends would land behind the torn record and be discarded by the
        next recovery — the store must refuse to acknowledge them."""
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        store[keccak256(b"a")] = b"v"
        store._wedged = True  # what a failed truncate-after-failed-append sets
        with pytest.raises(StoreError, match="refused the commit"):
            store.commit(keccak256(b"r"))
        store.close()

    def test_bad_key_length_rejected(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        with pytest.raises(StoreError, match="32"):
            store[b"short"] = b"v"
        store.close()

    def test_empty_commit_is_skipped(self, tmp_path):
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        store.commit(store.last_root)  # no pending, same root: no batch
        assert store.stats.batches_committed == 0
        assert path.stat().st_size == len(MAGIC)
        store.close()

    def test_open_node_store_directory_convention(self, tmp_path):
        store = open_node_store(tmp_path / "state")
        assert store.path == tmp_path / "state" / "nodes.log"
        store.close()

    def test_as_node_store_normalization(self, tmp_path):
        raw = {keccak256(b"k"): b"v"}
        wrapped = as_node_store(raw)
        assert isinstance(wrapped, MemoryNodeStore)
        assert wrapped.get(keccak256(b"k")) == b"v"
        assert as_node_store(wrapped) is wrapped
        from_path = as_node_store(str(tmp_path / "nodes.log"))
        assert isinstance(from_path, AppendOnlyFileStore)
        from_path.close()
        with pytest.raises(TypeError):
            as_node_store(42)

    def test_as_node_store_follows_state_dir_convention(self, tmp_path):
        """A path to an existing directory means the --state-dir layout:
        StateDB('<state-dir>', root) reattaches what a devnet wrote there."""
        state_dir = tmp_path / "state"
        first = open_node_store(state_dir)
        key = keccak256(b"node")
        first[key] = b"payload"
        first.commit(keccak256(b"root"))
        first.close()
        reattached = as_node_store(str(state_dir))
        assert reattached.path == state_dir / "nodes.log"
        assert reattached.get(key) == b"payload"
        assert reattached.last_root == keccak256(b"root")
        reattached.close()

    def test_as_node_store_extensionless_path_means_state_dir(self, tmp_path):
        """Order independence: naming a not-yet-existing, extension-less
        path creates the directory layout, so a later open_node_store /
        Devnet(state_dir=...) on the same path finds the same store."""
        fresh = as_node_store(str(tmp_path / "fresh-state"))
        assert fresh.path == tmp_path / "fresh-state" / "nodes.log"
        key = keccak256(b"n")
        fresh[key] = b"v"
        fresh.commit(keccak256(b"r"))
        fresh.close()
        again = open_node_store(tmp_path / "fresh-state")
        assert again.get(key) == b"v"
        again.close()
