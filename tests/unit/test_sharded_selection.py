"""Range-aware marketplace selection and the shard-info probe — unit level.

The directory half of sharded serving: advertisements carry a
:class:`~repro.trie.shard.ShardRange`, coverage gates candidate selection
(a shard server is never even a candidate for keys outside its slice), and
a coverage hole surfaces as the typed :class:`NoServerForKey` *before* any
payment is signed.
"""

import pytest

from repro.chain import GenesisConfig
from repro.crypto import keccak256
from repro.crypto.keys import Address, PrivateKey
from repro.net import SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet
from repro.parp import NoServerForKey, shard_key_of_call
from repro.parp.marketplace import (
    Marketplace,
    MarketplaceClient,
    ServerAdvertisement,
)
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI, FlatFeeSchedule
from repro.trie.shard import ShardRange, shard_of_key

LC = PrivateKey.from_seed("unit:shardsel:lc")
TOKEN = 10 ** 18


def addr(tag: str) -> Address:
    return Address(keccak256(tag.encode())[-20:])


def address_in_shard(index: int, count: int) -> Address:
    """An address whose secure-trie key lands in the given shard."""
    for i in range(4096):
        candidate = addr(f"probe{i}")
        if shard_of_key(keccak256(bytes(candidate)), count) == index:
            return candidate
    raise AssertionError("no address found for shard")  # pragma: no cover


def ad_for(tag: str, shard: ShardRange | None = None,
           price_gwei: int = 10) -> ServerAdvertisement:
    return ServerAdvertisement(
        address=addr(tag), endpoint=object(),
        fee_schedule=FlatFeeSchedule(flat_price=price_gwei * GWEI),
        batch_version=1, name=tag, shard=shard,
    )


def client_with(*ads: ServerAdvertisement) -> MarketplaceClient:
    marketplace = Marketplace()
    for ad in ads:
        marketplace.advertise(ad)
    return MarketplaceClient(LC, marketplace)


class TestAdvertisementCoverage:
    def test_full_range_ad_covers_everything(self):
        ad = ad_for("full")
        for tag in range(32):
            assert ad.covers(keccak256(b"%d" % tag))

    def test_shard_ad_covers_exactly_its_slice(self):
        ad = ad_for("half", shard=ShardRange.of(0, 2))
        for tag in range(64):
            key = keccak256(b"%d" % tag)
            assert ad.covers(key) == (shard_of_key(key, 2) == 0)

    def test_full_is_normalized_to_unsharded(self):
        # a full-width range and "no shard" must behave identically
        ad = ad_for("wide", shard=ShardRange.full())
        assert all(ad.covers(keccak256(b"%d" % t)) for t in range(32))

    def test_for_server_picks_up_the_shard_range(self):
        class FakeShardServer:
            address = addr("fake")
            fee_schedule = FlatFeeSchedule(flat_price=GWEI)
            shard_range = ShardRange.of(3, 4)

            def batch_protocol_version(self):
                return 1

        ad = ServerAdvertisement.for_server(FakeShardServer(), name="fake")
        assert ad.shard == ShardRange.of(3, 4)


class TestDirectoryCoverage:
    def test_covering_lists_only_matching_ads(self):
        lo = ad_for("lo", shard=ShardRange.of(0, 2))
        hi = ad_for("hi", shard=ShardRange.of(1, 2))
        full = ad_for("full")
        marketplace = Marketplace()
        for ad in (lo, hi, full):
            marketplace.advertise(ad)
        key = keccak256(bytes(address_in_shard(0, 2)))
        names = {ad.name for ad in marketplace.covering(key)}
        assert names == {"lo", "full"}

    def test_coverage_hole_is_an_empty_list(self):
        marketplace = Marketplace()
        marketplace.advertise(ad_for("lo", shard=ShardRange.of(0, 2)))
        key = keccak256(bytes(address_in_shard(1, 2)))
        assert marketplace.covering(key) == []


class TestRangeAwareSelection:
    def test_keys_filter_out_non_covering_shards(self):
        lo = ad_for("lo", shard=ShardRange.of(0, 2), price_gwei=1)
        hi = ad_for("hi", shard=ShardRange.of(1, 2), price_gwei=1)
        full = ad_for("full", price_gwei=50)
        client = client_with(lo, hi, full)
        key = keccak256(bytes(address_in_shard(1, 2)))
        names = [ad.name for ad in client.eligible(now=0.0, keys=(key,))]
        # the cheap shard-0 server is not even a candidate for a shard-1 key
        assert "lo" not in names
        assert set(names) == {"hi", "full"}

    def test_keys_spanning_shards_leave_only_full_range(self):
        lo = ad_for("lo", shard=ShardRange.of(0, 2))
        hi = ad_for("hi", shard=ShardRange.of(1, 2))
        full = ad_for("full")
        client = client_with(lo, hi, full)
        keys = (keccak256(bytes(address_in_shard(0, 2))),
                keccak256(bytes(address_in_shard(1, 2))))
        assert [ad.name for ad in client.eligible(now=0.0, keys=keys)] \
            == ["full"]

    def test_no_keys_means_no_filtering(self):
        lo = ad_for("lo", shard=ShardRange.of(0, 2), price_gwei=1)
        full = ad_for("full", price_gwei=50)
        client = client_with(lo, full)
        assert [ad.name for ad in client.eligible(now=0.0)] == ["lo", "full"]


class TestCoverageGate:
    def test_request_call_raises_typed_error_on_a_hole(self):
        client = client_with(ad_for("lo", shard=ShardRange.of(0, 2)))
        victim = address_in_shard(1, 2)
        with pytest.raises(NoServerForKey) as err:
            client.request_call(RpcCall.create("eth_getBalance", victim))
        assert err.value.key == keccak256(bytes(victim))
        assert err.value.method == "eth_getBalance"
        assert "coverage hole" in str(err.value)

    def test_batch_with_one_uncovered_key_raises_before_serving(self):
        client = client_with(ad_for("lo", shard=ShardRange.of(0, 2)))
        calls = [
            RpcCall.create("eth_getBalance", address_in_shard(0, 2)),
            RpcCall.create("eth_getBalance", address_in_shard(1, 2)),
        ]
        with pytest.raises(NoServerForKey):
            client.query_batch(calls)

    def test_unsharded_calls_need_no_state_coverage(self):
        assert shard_key_of_call(RpcCall.create("eth_blockNumber")) is None
        assert shard_key_of_call(
            RpcCall.create("eth_getTransactionByHash", b"\x00" * 32)) is None
        # malformed address params also route nowhere (serving rejects them
        # attributably; routing must not pre-judge)
        assert shard_key_of_call(
            RpcCall.create("eth_getBalance", b"short")) is None

    def test_state_keyed_call_routes_by_hashed_address(self):
        owner = addr("someone")
        call = RpcCall.create("eth_getBalance", owner)
        assert shard_key_of_call(call) == keccak256(bytes(owner))


class TestShardInfoProbe:
    def make_cluster(self, shard_count: int, replicas: int = 1):
        ops = [PrivateKey.from_seed(f"unit:shardsel:op{i}")
               for i in range(shard_count * replicas)]
        devnet = Devnet(GenesisConfig(
            allocations={k.address: 100 * TOKEN for k in ops}))
        servers = devnet.attach_shard_cluster(ops, shard_count)
        devnet.advance_blocks(1)
        return devnet, servers

    def test_probe_reports_range_commitment_and_height(self):
        _, servers = self.make_cluster(2)
        for j, server in enumerate(servers):
            lo, hi, commitment, height = server.shard_info()
            assert (lo, hi) == (ShardRange.of(j, 2).lo, ShardRange.of(j, 2).hi)
            assert isinstance(commitment, bytes) and len(commitment) == 32
            assert height == server.serve_head_number()

    def test_replicas_of_one_shard_agree_on_the_commitment(self):
        _, servers = self.make_cluster(2, replicas=2)
        by_shard = {}
        for server in servers:
            lo, hi, commitment, _ = server.shard_info()
            by_shard.setdefault((lo, hi), set()).add(commitment)
        assert len(by_shard) == 2
        assert all(len(seen) == 1 for seen in by_shard.values())
        # distinct shards commit to distinct slices
        (a,), (b,) = (tuple(s) for s in by_shard.values())
        assert a != b

    def test_full_range_server_probes_as_none(self):
        op = PrivateKey.from_seed("unit:shardsel:full-op")
        devnet = Devnet(GenesisConfig(allocations={op.address: 100 * TOKEN}))
        server = devnet.attach_server(op, name="full")
        assert server.shard_info() is None

    def test_probe_travels_over_the_wire(self):
        _, servers = self.make_cluster(2)
        net = SimNetwork()
        SimServerBinding(net, "srv", servers[0])
        endpoint = SimEndpoint(net, "lc", "srv", Address.zero(), timeout=2.0)
        assert endpoint.shard_info() == servers[0].shard_info()
