"""Public-API surface checks: imports, lazy loading, versioning."""

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_subpackages_importable(self):
        import importlib

        for name in ("crypto", "rlp", "trie", "chain", "vm", "contracts",
                     "rpc", "net", "lightclient", "node", "parp",
                     "workloads", "metrics", "analysis"):
            module = importlib.import_module(f"repro.{name}")
            assert module is not None


class TestLazyParpNamespace:
    """repro.parp resolves attributes lazily (PEP 562) to break the
    contracts <-> parp import cycle; the facade must still behave like a
    normal module."""

    def test_exports_resolve(self):
        import repro.parp as parp

        for name in parp.__all__:
            assert getattr(parp, name) is not None, name

    def test_unknown_attribute_raises(self):
        import repro.parp as parp

        with pytest.raises(AttributeError):
            parp.NoSuchThing

    def test_dir_lists_exports(self):
        import repro.parp as parp

        listing = dir(parp)
        assert "LightClientSession" in listing
        assert "FullNodeServer" in listing

    def test_resolution_is_cached(self):
        import repro.parp as parp

        first = parp.LightClientSession
        assert parp.__dict__.get("LightClientSession") is first

    def test_no_circular_import_from_contracts_first(self):
        """Importing contracts before parp must not explode (the original
        cycle trigger)."""
        import importlib
        import sys

        saved = {k: v for k, v in sys.modules.items()
                 if k.startswith("repro")}
        for k in list(sys.modules):
            if k.startswith("repro"):
                del sys.modules[k]
        try:
            contracts = importlib.import_module("repro.contracts")
            parp = importlib.import_module("repro.parp")
            assert contracts.ChannelsModule is not None
            assert parp.LightClientSession is not None
        finally:
            sys.modules.update(saved)


class TestDocstrings:
    """Every public module carries real documentation (deliverable (e))."""

    def test_module_docstrings(self):
        import importlib
        import pathlib

        root = pathlib.Path(__file__).parents[2] / "src" / "repro"
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent)
            module_name = str(rel.with_suffix("")).replace("/", ".")
            if module_name.endswith("__init__"):
                module_name = module_name[: -len(".__init__")]
            module = importlib.import_module(module_name)
            assert module.__doc__ and len(module.__doc__.strip()) > 20, \
                f"{module_name} lacks a docstring"

    def test_key_classes_documented(self):
        from repro.parp.client import LightClientSession
        from repro.parp.server import FullNodeServer
        from repro.trie import MerklePatriciaTrie

        for cls in (LightClientSession, FullNodeServer, MerklePatriciaTrie):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 20
