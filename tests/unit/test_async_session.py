"""Non-blocking session issue/collect: overlap, cancel, adapters, pipelining."""

import pytest

from repro.lightclient import HeaderSyncer
from repro.net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.parp import (
    BATCH_PROTOCOL_VERSION,
    FullNodeServer,
    InvalidResponse,
    LightClientSession,
    SessionError,
)
from repro.parp.messages import RpcCall

from ..conftest import TOKEN, make_parp_env


@pytest.fixture
def sim_session(devnet, keys):
    """One PARP server + one bonded session over the simulated network."""
    env = make_parp_env(devnet, keys, connect=False)
    network = SimNetwork(latency=FixedLatency(0.02))
    binding = SimServerBinding(network, "fn", env.server)
    endpoint = SimEndpoint(network, "lc", "fn", env.server.address,
                           timeout=2.0)
    session = LightClientSession(
        keys.lc, endpoint, HeaderSyncer([endpoint]), clock=network.clock,
    )
    session.connect(budget=10 ** 15)
    return network, env.server, binding, endpoint, session


class TestBeginCollect:
    def test_issue_now_verify_on_collect(self, sim_session, keys):
        network, server, binding, endpoint, session = sim_session
        call = RpcCall.create("eth_getBalance", keys.alice.address)
        pending = session.begin_request(call)
        # issued, paid, in flight — but nothing verified yet
        assert not pending.reply.done()
        assert session.channel.spent > session.channel.acked
        outcome = session.collect(pending)
        assert outcome.report.classification.value == "valid"
        assert session.channel.acked == session.channel.spent

    def test_pipelined_requests_share_the_wire(self, sim_session, keys):
        """K requests issued back-to-back are all in flight at once and
        complete in ~one round trip, not K of them."""
        network, server, binding, endpoint, session = sim_session
        start = network.clock.now()
        call = RpcCall.create("eth_getBalance", keys.alice.address)
        pendings = [session.begin_request(call) for _ in range(3)]
        assert endpoint.in_flight == 3
        assert all(not p.reply.done() for p in pendings)
        outcomes = [session.collect(p) for p in pendings]
        elapsed = network.clock.now() - start
        # one RTT (0.04s) for all three requests, plus one free header
        # round trip (the first verification after the head advanced past
        # the locally synced tip); three sequential RTTs would be ≥ 0.12s
        # before that header fetch
        assert elapsed == pytest.approx(0.08)
        assert server.stats.requests_served == 3
        # the channel's money is exactly consistent after the burst
        banked = server.channels[session.channel.alpha]
        assert banked.latest_amount == session.channel.spent
        assert session.channel.acked == session.channel.spent
        assert outcomes[-1].amount_paid == session.channel.spent

    def test_collect_is_once_only(self, sim_session, keys):
        network, server, binding, endpoint, session = sim_session
        pending = session.begin_request(
            RpcCall.create("eth_getBalance", keys.alice.address))
        session.collect(pending)
        with pytest.raises(SessionError):
            session.collect(pending)

    def test_cancel_leaves_payment_unacked(self, sim_session, keys):
        network, server, binding, endpoint, session = sim_session
        acked_before = session.channel.acked
        pending = session.begin_request(
            RpcCall.create("eth_getBalance", keys.alice.address))
        assert pending.cancel() is True
        with pytest.raises(InvalidResponse) as excinfo:
            session.collect(pending)
        assert excinfo.value.report.check == "transport"
        # the signed payment is spent but never acked (not volunteered at
        # closure; the dispute window covers the server that did serve it)
        assert session.channel.spent > session.channel.acked == acked_before

    def test_begin_batch_and_collect(self, sim_session, keys):
        network, server, binding, endpoint, session = sim_session
        calls = [RpcCall.create("eth_getBalance", keys.alice.address),
                 RpcCall.create("eth_getBalance", keys.bob.address)]
        pending = session.begin_batch(calls)
        assert not pending.reply.done()
        outcome = session.collect(pending)
        assert outcome.batched and all(item.ok for item in outcome.items)
        assert server.stats.batches_served == 1

    def test_begin_batch_requires_batch_support(self, devnet, keys):
        class LegacyServer(FullNodeServer):
            def batch_protocol_version(self) -> int:
                return BATCH_PROTOCOL_VERSION + 1

        env = make_parp_env(devnet, keys, server_cls=LegacyServer)
        with pytest.raises(SessionError):
            env.session.begin_batch(
                [RpcCall.create("eth_getBalance", keys.alice.address)])

    def test_timeout_on_silent_server_surfaces_at_collect(self, sim_session,
                                                          keys):
        network, server, binding, endpoint, session = sim_session
        binding.offline = True
        pending = session.begin_request(
            RpcCall.create("eth_getBalance", keys.alice.address))
        with pytest.raises(InvalidResponse) as excinfo:
            session.collect(pending)
        assert excinfo.value.report.check == "transport"
        assert "no reply within" in excinfo.value.report.detail
        # the correlation is dropped on timeout: nothing leaks in _pending,
        # and a reply limping in later would count as late, not resolve
        assert pending.reply.cancelled()
        assert endpoint.in_flight == 0


class TestBlockingAdapters:
    def test_in_process_endpoint_still_works(self, parp_env, keys):
        """begin/collect against a plain in-process FullNodeServer: the
        future resolves at submit time, collect verifies as usual."""
        session = parp_env.session
        pending = session.begin_request(
            RpcCall.create("eth_getBalance", keys.alice.address))
        assert pending.reply.done()           # resolved synchronously
        outcome = session.collect(pending)
        assert outcome.report.classification.value == "valid"

    def test_blocking_methods_equal_begin_collect(self, sim_session, keys):
        network, server, binding, endpoint, session = sim_session
        blocking = session.get_balance(keys.alice.address)
        collected = session.collect(session.begin_request(
            RpcCall.create("eth_getBalance", keys.alice.address)))
        assert blocking == 5 * TOKEN
        assert collected.report.classification.value == "valid"
        assert session.channel.acked == session.channel.spent
