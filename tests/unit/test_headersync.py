"""Header chain continuity and multi-source sync with quorum checking."""

import pytest

from repro.chain import GenesisConfig
from repro.chain.header import BlockHeader
from repro.crypto import PrivateKey
from repro.crypto.keys import Address
from repro.lightclient import (
    HeaderChain,
    HeaderChainError,
    HeaderSyncer,
    SyncError,
)
from repro.node import Devnet, FullNode


def build_chain(blocks=5) -> Devnet:
    net = Devnet(GenesisConfig())
    net.advance_blocks(blocks)
    return net


class TestHeaderChain:
    def test_append_continuity(self):
        net = build_chain(3)
        chain = HeaderChain()
        for number in range(4):
            chain.append(net.chain.get_header(number))
        assert chain.tip_number == 3
        assert len(chain) == 4

    def test_rejects_gap(self):
        net = build_chain(3)
        chain = HeaderChain(anchor=net.chain.get_header(0))
        with pytest.raises(HeaderChainError):
            chain.append(net.chain.get_header(2))

    def test_rejects_broken_link(self):
        net = build_chain(2)
        chain = HeaderChain(anchor=net.chain.get_header(0))
        good = net.chain.get_header(1)
        from dataclasses import replace

        forged = replace(good, parent_hash=b"\x66" * 32)
        with pytest.raises(HeaderChainError):
            chain.append(forged)

    def test_checkpoint_anchor(self):
        net = build_chain(5)
        chain = HeaderChain(anchor=net.chain.get_header(3))
        chain.append(net.chain.get_header(4))
        assert chain.anchor_number == 3
        assert chain.get_header(2) is None  # below the anchor

    def test_lookup_by_hash(self):
        net = build_chain(2)
        chain = HeaderChain(anchor=net.chain.get_header(0))
        header = net.chain.get_header(1)
        chain.append(header)
        assert chain.get_by_hash(header.hash) == header
        assert chain.height_of(header.hash) == 1
        assert header.hash in chain

    def test_empty_chain_errors(self):
        with pytest.raises(HeaderChainError):
            HeaderChain().tip


class _LyingSource:
    """A header source that forges headers above a given height."""

    def __init__(self, node: FullNode, lie_from: int) -> None:
        self.node = node
        self.lie_from = lie_from

    def serve_head_number(self) -> int:
        return self.node.serve_head_number()

    def serve_header(self, number: int):
        header = self.node.serve_header(number)
        if header is None or number < self.lie_from:
            return header
        from dataclasses import replace

        return replace(header, extra_data=b"FORGED")


class TestHeaderSyncer:
    def test_syncs_to_head(self):
        net = build_chain(6)
        nodes = [FullNode(net.chain, name=f"n{i}") for i in range(3)]
        syncer = HeaderSyncer(nodes)
        tip = syncer.sync()
        assert tip.number == 6
        assert syncer.tip.hash == net.chain.head.hash

    def test_minority_liar_outvoted(self):
        net = build_chain(5)
        honest = [FullNode(net.chain, name=f"h{i}") for i in range(2)]
        liar = _LyingSource(FullNode(net.chain, name="liar"), lie_from=2)
        syncer = HeaderSyncer(honest + [liar])
        tip = syncer.sync()
        assert tip.hash == net.chain.head.hash
        assert 2 in syncer.suspects  # the liar was caught

    def test_no_quorum_fails_closed(self):
        net = build_chain(4)
        honest = FullNode(net.chain, name="h")
        liar = _LyingSource(FullNode(net.chain, name="l"), lie_from=1)
        syncer = HeaderSyncer([honest, liar], quorum=2)
        with pytest.raises(SyncError):
            syncer.sync()

    def test_median_head_target(self):
        net = build_chain(4)

        class Exaggerator:
            def __init__(self, node):
                self.node = node

            def serve_head_number(self):
                return 10_000  # claims a far future head

            def serve_header(self, number):
                return self.node.serve_header(number)

        nodes = [FullNode(net.chain, name=f"m{i}") for i in range(2)]
        syncer = HeaderSyncer(nodes + [Exaggerator(nodes[0])])
        assert syncer.head_target() == 4  # median defeats the exaggerator

    def test_ensure_height_syncs_forward(self):
        net = build_chain(2)
        syncer = HeaderSyncer([FullNode(net.chain, name="x")])
        syncer.sync()
        net.advance_blocks(3)
        header = syncer.ensure_height(5)
        assert header.number == 5

    def test_requires_sources(self):
        with pytest.raises(ValueError):
            HeaderSyncer([])


class TestIdempotentDelivery:
    """Regression: duplicate/redundant header delivery must not re-verify
    or double-count ``headers_fetched``."""

    def test_repeat_sync_to_same_target_is_free(self):
        net = build_chain(4)
        source = FullNode(net.chain, name="x")
        syncer = HeaderSyncer([source])
        syncer.sync()
        assert syncer.headers_fetched == 5       # genesis..4

        class Exploding:
            def serve_head_number(self):
                raise AssertionError("re-verification hit the source")

            def serve_header(self, number):
                raise AssertionError("re-verification hit the source")

        syncer.sources = [Exploding()]           # any fetch would now blow up
        tip = syncer.sync_to(4)                  # redundant delivery
        assert tip.number == 4
        assert syncer.headers_fetched == 5       # unchanged
        assert syncer.duplicates_ignored == 1
        syncer.sync_to(2)                        # below the tip: also free
        assert syncer.duplicates_ignored == 2

    def test_offer_header_replay_is_known_not_recounted(self):
        net = build_chain(3)
        syncer = HeaderSyncer([FullNode(net.chain, name="x")])
        syncer.sync()
        fetched = syncer.headers_fetched
        tip = net.chain.head.header
        assert syncer.offer_header(tip) == "known"
        assert syncer.offer_header(tip) == "known"
        assert syncer.headers_fetched == fetched
        assert syncer.headers_pushed == 0
        assert syncer.duplicates_ignored == 2

    def test_offer_header_appends_then_dedups(self):
        net = build_chain(2)
        syncer = HeaderSyncer([FullNode(net.chain, name="x")])
        syncer.sync()
        net.advance_blocks(1)
        new_tip = net.chain.head.header
        assert syncer.offer_header(new_tip) == "appended"
        assert syncer.offer_header(new_tip) == "known"
        assert syncer.headers_pushed == 1
        assert syncer.chain.tip_number == 3

    def test_offer_header_rejects_conflicts_and_empty_chain(self):
        net = build_chain(2)
        syncer = HeaderSyncer([FullNode(net.chain, name="x")])
        # empty local chain: no anchor to link against
        assert syncer.offer_header(net.chain.head.header) == "ignored"
        syncer.sync()
        from dataclasses import replace

        tip = net.chain.head.header
        conflicting = replace(tip, timestamp=tip.timestamp + 7)
        assert syncer.offer_header(conflicting) == "ignored"
        net.advance_blocks(1)
        broken = replace(net.chain.head.header, parent_hash=b"\x55" * 32)
        assert syncer.offer_header(broken) == "ignored"
        assert syncer.headers_pushed == 0

    def test_push_freshness_skips_polling(self):
        net = build_chain(2)
        source = FullNode(net.chain, name="x")
        syncer = HeaderSyncer([source])
        syncer.sync()
        clock = [0.0]
        syncer.enable_push(lambda: clock[0], staleness=2.0)
        assert syncer.push_enabled and syncer.push_fresh()

        class Exploding:
            def serve_head_number(self):
                raise AssertionError("fresh push must not poll")

            def serve_header(self, number):
                raise AssertionError("fresh push must not poll")

        syncer.sources = [Exploding()]
        tip = syncer.sync()                      # fresh ⇒ no source touched
        assert tip.number == 2
        assert syncer.push_syncs_skipped == 1
        clock[0] = 5.0                           # past staleness ⇒ pull again
        assert not syncer.push_fresh()
        syncer.sources = [source]
        net.advance_blocks(1)
        assert syncer.sync().number == 3
