"""PARP wire messages: Fig. 3 structures and Table II's exact overheads."""

import pytest

from repro.crypto import PrivateKey, keccak256
from repro.parp.constants import (
    REQUEST_OVERHEAD_BYTES,
    RESPONSE_OVERHEAD_BYTES,
)
from repro.parp.messages import (
    MessageError,
    PARPRequest,
    PARPResponse,
    ResponseStatus,
    RpcCall,
    handshake_digest,
    payment_digest,
    request_digest,
)

LC = PrivateKey.from_seed("msg:lc")
FN = PrivateKey.from_seed("msg:fn")
ALPHA = keccak256(b"channel")[:16]
H_B = keccak256(b"block")


def make_request(amount=1_000, method="eth_getBalance"):
    call = RpcCall.create(method, LC.address)
    return PARPRequest.build(ALPHA, H_B, amount, call, LC)


def make_response(request, result=b"payload", proof=(b"node1", b"node2"),
                  m_b=7, status=ResponseStatus.OK):
    return PARPResponse.build(ALPHA, request, m_b, result, list(proof), FN,
                              status=status)


class TestTableTwoOverheads:
    """The headline size claims: request +226 B, response +187 B + proof."""

    def test_constants(self):
        assert REQUEST_OVERHEAD_BYTES == 226
        assert RESPONSE_OVERHEAD_BYTES == 187

    def test_request_wire_overhead_exact(self):
        request = make_request()
        call_bytes = request.call.encode()
        assert len(request.encode_wire()) - len(call_bytes) == 226
        assert request.wire_overhead == 226

    def test_response_wire_overhead_exact(self):
        request = make_request()
        response = make_response(request, proof=())
        from repro.rlp import encode

        payload = encode([response.result, []])
        assert len(response.encode_wire()) - len(payload) == 187

    def test_response_overhead_includes_proof(self):
        request = make_request()
        response = make_response(request)
        from repro.rlp import encode

        proof_bytes = len(encode(list(response.proof)))
        assert response.wire_overhead == 187 + proof_bytes

    def test_two_signatures_in_each_direction(self):
        """226 = 2×65 sigs + α(16) + h_B(32) + a(16) + h_req(32)."""
        assert 226 == 65 + 65 + 16 + 32 + 16 + 32
        assert 187 == 1 + 8 + 16 + 32 + 65 + 65


class TestRequestWire:
    def test_roundtrip(self):
        request = make_request()
        decoded = PARPRequest.decode_wire(request.encode_wire())
        assert decoded == request

    def test_digest_binds_all_fields(self):
        request = make_request()
        assert request.h_req == request_digest(
            ALPHA, H_B, request.a, request.call.encode(),
        )

    def test_verify_returns_signer(self):
        request = make_request()
        assert request.verify() == LC.address

    def test_verify_checks_expected_sender(self):
        request = make_request()
        with pytest.raises(MessageError):
            request.verify(expected_sender=FN.address)

    def test_tampered_amount_detected(self):
        request = make_request()
        wire = bytearray(request.encode_wire())
        wire[16 + 32 + 15] ^= 0x01  # last byte of the amount field
        tampered = PARPRequest.decode_wire(bytes(wire))
        with pytest.raises(MessageError):
            tampered.verify()

    def test_mismatched_payment_signer_detected(self):
        honest = make_request()
        evil_payment = PrivateKey.from_seed("evil").sign(
            payment_digest(ALPHA, honest.a)).to_bytes()
        frankenstein = PARPRequest(
            alpha=honest.alpha, h_b=honest.h_b, a=honest.a, call=honest.call,
            h_req=honest.h_req, sig_a=evil_payment, sig_req=honest.sig_req,
        )
        with pytest.raises(MessageError):
            frankenstein.verify()

    def test_too_short_wire_rejected(self):
        with pytest.raises(MessageError):
            PARPRequest.decode_wire(b"\x00" * 100)

    def test_amount_out_of_range(self):
        call = RpcCall.create("eth_blockNumber")
        with pytest.raises(MessageError):
            PARPRequest.build(ALPHA, H_B, 1 << 130, call, LC)


class TestResponseWire:
    def test_roundtrip(self):
        request = make_request()
        response = make_response(request)
        decoded = PARPResponse.decode_wire(response.encode_wire())
        assert decoded == response

    def test_signer_recovers_full_node(self):
        request = make_request()
        response = make_response(request)
        assert response.signer(ALPHA) == FN.address

    def test_alpha_bound_into_signature(self):
        """Verifying under a different channel id must not recover FN."""
        request = make_request()
        response = make_response(request)
        other_alpha = keccak256(b"other-channel")[:16]
        assert response.signer(other_alpha) != FN.address

    def test_fraud_blob_roundtrip(self):
        request = make_request()
        response = make_response(request)
        alpha, decoded = PARPResponse.decode_for_fraud(
            response.encode_for_fraud(ALPHA))
        assert alpha == ALPHA and decoded == response

    def test_error_status_roundtrip(self):
        request = make_request()
        response = make_response(request, status=ResponseStatus.ERROR, proof=())
        assert PARPResponse.decode_wire(response.encode_wire()).status == 1

    def test_malformed_payload_rejected(self):
        request = make_request()
        response = make_response(request, proof=())
        wire = response.encode_wire()[:190]  # truncate the payload
        with pytest.raises(MessageError):
            PARPResponse.decode_wire(wire)

    def test_echoes_request_signature(self):
        request = make_request()
        response = make_response(request)
        assert response.sig_req == request.sig_req
        assert response.h_req == request.h_req


class TestRpcCall:
    def test_roundtrip(self):
        call = RpcCall.create("eth_getStorageAt", LC.address, b"\x00" * 32)
        assert RpcCall.decode(call.encode()) == call

    def test_typed_params(self):
        call = RpcCall.create("m", 42, "text", True, [1, 2])
        decoded = RpcCall.decode(call.encode())
        assert decoded.param_int(0) == 42
        assert decoded.param_bytes(1) == b"text"

    def test_param_bounds_checked(self):
        call = RpcCall.create("m", b"abc")
        with pytest.raises(MessageError):
            call.param_bytes(5)
        with pytest.raises(MessageError):
            call.param_bytes(0, exact=20)

    def test_undecodable_rejected(self):
        with pytest.raises(MessageError):
            RpcCall.decode(b"\xff\xff")
        from repro.rlp import encode

        with pytest.raises(MessageError):
            RpcCall.decode(encode(b"not-a-list"))


class TestDigests:
    def test_payment_digest_deterministic(self):
        assert payment_digest(ALPHA, 5) == payment_digest(ALPHA, 5)
        assert payment_digest(ALPHA, 5) != payment_digest(ALPHA, 6)

    def test_handshake_digest_binds_both_fields(self):
        a = handshake_digest(LC.address, 100)
        assert a != handshake_digest(FN.address, 100)
        assert a != handshake_digest(LC.address, 101)

    def test_bad_alpha_length(self):
        with pytest.raises(MessageError):
            payment_digest(b"short", 5)
