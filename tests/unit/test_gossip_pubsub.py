"""The gossip transport: topics, dedup, TTL, fanout, and flood control."""

import pytest

from repro.gossip import (
    GossipError,
    GossipMessage,
    GossipNode,
    connect_mesh,
)
from repro.net import FixedLatency, SimNetwork


def make_mesh(n: int, latency: float = 0.01, **kwargs):
    network = SimNetwork(latency=FixedLatency(latency))
    nodes = [GossipNode(network, f"g{i}", **kwargs) for i in range(n)]
    connect_mesh(nodes)
    return network, nodes


class Collector:
    def __init__(self) -> None:
        self.messages: list[GossipMessage] = []

    def __call__(self, message: GossipMessage) -> None:
        self.messages.append(message)


class TestMessage:
    def test_msg_id_commits_to_identity(self):
        a = GossipMessage("t", b"p", "n", 0, 4)
        assert a.msg_id == GossipMessage("t", b"p", "n", 0, 2).msg_id
        assert a.msg_id != GossipMessage("t", b"p", "n", 1, 4).msg_id
        assert a.msg_id != GossipMessage("t", b"q", "n", 0, 4).msg_id
        assert a.msg_id != GossipMessage("u", b"p", "n", 0, 4).msg_id
        assert a.msg_id != GossipMessage("t", b"p", "m", 0, 4).msg_id

    def test_field_confusion_does_not_collide(self):
        # topic/origin shifting bytes into each other must change the id
        a = GossipMessage("ab", b"", "c", 0, 4)
        b = GossipMessage("a", b"", "bc", 0, 4)
        assert a.msg_id != b.msg_id

    def test_hop_decrements_ttl_only(self):
        msg = GossipMessage("t", b"p", "n", 7, 3)
        hopped = msg.hop()
        assert hopped.ttl == 2
        assert hopped.msg_id == msg.msg_id


class TestPubSub:
    def test_publish_reaches_every_subscriber(self):
        network, nodes = make_mesh(4)
        sinks = [Collector() for _ in nodes]
        for node, sink in zip(nodes, sinks):
            node.subscribe("demo", sink)
        nodes[0].publish("demo", b"hello")
        network.run()
        for sink in sinks:
            assert [m.payload for m in sink.messages] == [b"hello"]

    def test_unsubscribed_topics_are_not_delivered_but_still_relayed(self):
        # a sparse line topology: g0 - g1 - g2; g1 is not subscribed but
        # must still carry the flood so g2 hears it
        network = SimNetwork(latency=FixedLatency(0.01))
        nodes = [GossipNode(network, f"g{i}") for i in range(3)]
        nodes[0].add_peer("g1"); nodes[1].add_peer("g0")
        nodes[1].add_peer("g2"); nodes[2].add_peer("g1")
        sink = Collector()
        nodes[2].subscribe("demo", sink)
        nodes[0].publish("demo", b"x")
        network.run()
        assert len(sink.messages) == 1
        assert nodes[1].stats.delivered == 0
        assert nodes[1].stats.relayed >= 1

    def test_duplicate_floods_deliver_once(self):
        network, nodes = make_mesh(5)
        sink = Collector()
        nodes[4].subscribe("demo", sink)
        nodes[0].publish("demo", b"once")
        network.run()
        assert len(sink.messages) == 1
        # a full mesh floods every node from several directions
        assert nodes[4].stats.duplicates_dropped >= 1

    def test_replayed_publication_is_distinct(self):
        network, nodes = make_mesh(2)
        sink = Collector()
        nodes[1].subscribe("demo", sink)
        nodes[0].publish("demo", b"same")
        nodes[0].publish("demo", b"same")   # new seq ⇒ new message
        network.run()
        assert len(sink.messages) == 2

    def test_unsubscribe_stops_delivery(self):
        network, nodes = make_mesh(2)
        sink = Collector()
        nodes[1].subscribe("demo", sink)
        nodes[1].unsubscribe("demo", sink)
        assert not nodes[1].subscribed("demo")
        nodes[0].publish("demo", b"x")
        network.run()
        assert sink.messages == []

    def test_publisher_delivers_to_itself(self):
        network, nodes = make_mesh(2)
        sink = Collector()
        nodes[0].subscribe("demo", sink)
        nodes[0].publish("demo", b"self")
        assert len(sink.messages) == 1      # local delivery is synchronous

    def test_bad_usage_raises(self):
        network, nodes = make_mesh(2)
        with pytest.raises(GossipError):
            nodes[0].publish("", b"x")
        with pytest.raises(GossipError):
            nodes[0].subscribe("", lambda m: None)
        with pytest.raises(GossipError):
            nodes[0].add_peer(nodes[0].name)
        with pytest.raises(GossipError):
            GossipNode(network, "bad", fanout=0)


class TestRelayBounds:
    def test_ttl_bounds_propagation_on_a_line(self):
        # line of 6 nodes, ttl=2: the publisher's flood reaches hop 0 (g1),
        # hop 1 (g2), hop 2 (g3, delivered, not relayed) and stops
        network = SimNetwork(latency=FixedLatency(0.01))
        nodes = [GossipNode(network, f"g{i}", ttl=2) for i in range(6)]
        for i in range(5):
            nodes[i].add_peer(f"g{i + 1}")
            nodes[i + 1].add_peer(f"g{i}")
        sinks = [Collector() for _ in nodes]
        for node, sink in zip(nodes, sinks):
            node.subscribe("demo", sink)
        nodes[0].publish("demo", b"x")
        network.run()
        reached = [i for i, s in enumerate(sinks) if s.messages]
        assert reached == [0, 1, 2, 3]
        assert nodes[3].stats.ttl_exhausted == 1

    def test_fanout_bounds_forwards_per_message(self):
        network, nodes = make_mesh(8, **{"fanout": 2})
        nodes[0].publish("demo", b"x")
        assert nodes[0].stats.relayed == 2   # not 7

    def test_seen_cache_is_bounded(self):
        network, nodes = make_mesh(2, **{"seen_cache_size": 8})
        for i in range(50):
            nodes[0].publish("demo", f"m{i}".encode())
        network.run()
        assert len(nodes[0]._seen) <= 8
        assert len(nodes[1]._seen) <= 8

    def test_relay_excludes_arrival_hop_and_origin(self):
        # triangle: g0 publishes; g1 must not bounce the message back to
        # g0 (origin) — its only other peer is g2
        network, nodes = make_mesh(3)
        nodes[0].publish("demo", b"x")
        network.run()
        # g0 never receives its own message back as a non-duplicate
        assert nodes[0].stats.delivered == 0
        assert nodes[0].stats.received == nodes[0].stats.duplicates_dropped


class TestRateLimiting:
    def test_flooding_peer_is_dropped(self):
        network, nodes = make_mesh(
            2, **{"rate_limit": 5, "rate_window": 10.0})
        sink = Collector()
        nodes[1].subscribe("demo", sink)
        for i in range(20):
            nodes[0].publish("demo", f"m{i}".encode())
        network.run()
        assert len(sink.messages) == 5
        assert nodes[1].stats.rate_limited == 15
        accepted, dropped = nodes[1].peer_score("g0")
        assert accepted == 5 and dropped == 15

    def test_window_resets_admission(self):
        network, nodes = make_mesh(
            2, **{"rate_limit": 2, "rate_window": 0.5})
        sink = Collector()
        nodes[1].subscribe("demo", sink)
        for i in range(4):
            nodes[0].publish("demo", f"a{i}".encode())
        network.run()
        assert len(sink.messages) == 2
        network.run_until(network.clock.now() + 1.0)   # window expires
        for i in range(2):
            nodes[0].publish("demo", f"b{i}".encode())
        network.run()
        assert len(sink.messages) == 4

    def test_undecodable_payloads_are_counted_not_raised(self):
        network, nodes = make_mesh(2)
        network.send("g0", "g1", b"not-a-gossip-message", size_bytes=10)
        network.run()
        assert nodes[1].stats.undecodable == 1


class TestPartitionHealing:
    def test_resubscribe_after_heal_receives_new_messages(self):
        network, nodes = make_mesh(2)
        sink = Collector()
        nodes[1].subscribe("demo", sink)
        network.partition("g0", "g1")
        nodes[0].publish("demo", b"lost")
        network.run()
        assert sink.messages == []
        network.heal("g0", "g1")
        # the recovery ritual: drop + re-add the subscription
        nodes[1].unsubscribe("demo", sink)
        nodes[1].subscribe("demo", sink)
        nodes[0].publish("demo", b"after-heal")
        network.run()
        assert [m.payload for m in sink.messages] == [b"after-heal"]
