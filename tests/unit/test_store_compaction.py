"""Compaction and pruning of the persistent storage layer.

Three layers under test, bottom-up:

* ``RetentionPolicy`` — the knob (parse / retained_roots / trigger fields);
* ``compact_node_store`` over ``AppendOnlyFileStore`` — the live-set walk
  and the atomic log rewrite, including the pruned-roots memory and the
  root-index footer round trip;
* ``Blockchain.compact`` — block-log pruning ordered before store
  compaction, the typed :class:`PrunedRootError` serving window, and the
  growth-triggered automatic pass.

The §V-D acceptance property threaded throughout: a retained root serves
**byte-identical** Merkle proofs before and after compaction — compaction
must be invisible to a light client inside the retention window.
"""

import pytest

from repro.chain import ChainError, GenesisConfig
from repro.chain.state import StateDB
from repro.crypto import keccak256
from repro.crypto.keys import Address
from repro.node import Devnet
from repro.storage import (
    AppendOnlyFileStore,
    MemoryNodeStore,
    PrunedRootError,
    RetentionPolicy,
    StoreError,
    compact_node_store,
    open_state_dir,
)
from repro.trie import (
    MerklePatriciaTrie,
    generate_multiproof,
    generate_proof,
    verify_multiproof,
    verify_proof,
)

from ..conftest import Keys

TOKEN = 10 ** 18


def _addr(i: int) -> Address:
    return Address(keccak256(b"acct" + i.to_bytes(4, "big"))[:20])


def _grow_state(store, commits: int = 6, per_commit: int = 25) -> list[bytes]:
    """Commit ``commits`` successive world states; returns their roots."""
    state = StateDB(store)
    roots = []
    for c in range(commits):
        for i in range(per_commit):
            state.add_balance(_addr(c * per_commit + i), (c + 1) * TOKEN)
        roots.append(state.commit())
    return roots


class TestRetentionPolicy:
    def test_parse_forms(self):
        archive = RetentionPolicy.archive()
        assert RetentionPolicy.parse(None) == archive
        assert RetentionPolicy.parse("archive") == archive
        assert not archive.prunes
        for spec in (4, "4", "last:4", "last-4", "LAST:4"):
            policy = RetentionPolicy.parse(spec)
            assert (policy.mode, policy.k) == ("last", 4), spec
            assert policy.prunes
        existing = RetentionPolicy.last(7)
        assert RetentionPolicy.parse(existing) is existing

    @pytest.mark.parametrize("bad", ["", "last:", "last:x", "k=3", "-2", 0, -1])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            RetentionPolicy.parse(bad)

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            RetentionPolicy(mode="lru")
        with pytest.raises(ValueError, match="k >= 1"):
            RetentionPolicy(mode="last", k=0)

    def test_retained_roots_dedups_to_newest_occurrence(self):
        a, b, c = b"\x01" * 32, b"\x02" * 32, b"\x03" * 32
        history = [a, b, a, c]  # a was re-committed after b
        assert RetentionPolicy.archive().retained_roots(history) == [b, a, c]
        # recency counts the *last* commit of each root: keeping 2 keeps
        # a (recommitted third) and c, not b
        assert RetentionPolicy.last(2).retained_roots(history) == [a, c]
        assert RetentionPolicy.last(10).retained_roots(history) == [b, a, c]

    def test_describe(self):
        assert "archive" in RetentionPolicy.archive().describe()
        assert "last-3" in RetentionPolicy.last(3).describe()


class TestStoreCompaction:
    def test_compaction_shrinks_and_keeps_proofs_byte_identical(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        roots = _grow_state(store)
        keep = roots[-2:]
        # capture §V-D proofs against a root that will survive
        probe_keys = [keccak256(bytes(_addr(i))) for i in range(5)]
        trie = MerklePatriciaTrie(store, keep[-1])
        before_proofs = [generate_proof(trie, key) for key in probe_keys]
        before_multi = generate_multiproof(trie, probe_keys)
        size_before = store.log_bytes()

        report = compact_node_store(store, RetentionPolicy.last(2))

        assert list(report.retained_roots) == keep
        assert set(report.pruned_roots) == set(roots[:-2])
        assert report.bytes_after < report.bytes_before == size_before
        assert report.bytes_reclaimed > 0
        assert 0.0 < report.shrink_ratio < 1.0
        assert store.log_bytes() == report.bytes_after
        assert store.stats.compactions == 1
        assert store.stats.bytes_reclaimed == report.bytes_reclaimed
        # the retained roots serve byte-identical proofs post-compaction
        trie = MerklePatriciaTrie(store, keep[-1])
        for key, before in zip(probe_keys, before_proofs):
            after = generate_proof(trie, key)
            assert after == before
            assert verify_proof(keep[-1], key, after) is not None
        after_multi = generate_multiproof(trie, probe_keys)
        assert after_multi == before_multi
        proven = verify_multiproof(keep[-1], probe_keys, after_multi)
        assert all(proven[key] is not None for key in probe_keys)
        store.close()

    def test_pruned_roots_raise_typed_error(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        roots = _grow_state(store)
        compact_node_store(store, RetentionPolicy.last(1))
        assert store.pruned_roots == frozenset(roots[:-1])
        for old in roots[:-1]:
            with pytest.raises(PrunedRootError, match="pruned"):
                MerklePatriciaTrie(store, old)
        # a root that never existed stays the generic unknown-root failure
        with pytest.raises(Exception) as excinfo:
            MerklePatriciaTrie(store, keccak256(b"never-committed"))
        assert not isinstance(excinfo.value, PrunedRootError)
        store.close()

    def test_storage_tries_survive_compaction(self, tmp_path):
        """The live set is account trie + referenced storage tries: a slot
        behind the retained root must stay readable, not just balances."""
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        state = StateDB(store)
        owner = _addr(1)
        state.add_balance(owner, TOKEN)
        for slot in range(40):
            state.set_storage(owner, keccak256(b"slot%d" % slot),
                              b"v%d" % slot)
        state.commit()
        # churn unrelated accounts so compaction has garbage to drop
        for c in range(4):
            state.add_balance(_addr(100 + c), TOKEN)
            state.commit()
        report = compact_node_store(store, RetentionPolicy.last(1))
        assert report.bytes_reclaimed > 0
        reread = StateDB(store, store.last_root)
        for slot in range(40):
            assert reread.get_storage(owner, keccak256(b"slot%d" % slot)) \
                == b"v%d" % slot
        store.close()

    def test_archive_compaction_keeps_every_root(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        roots = _grow_state(store, commits=4)
        report = compact_node_store(store)  # store default: archive
        assert report.pruned_roots == ()
        assert store.pruned_roots == frozenset()
        for root, expect in zip(
                roots, (1 * TOKEN, 2 * TOKEN, 3 * TOKEN, 4 * TOKEN)):
            state = StateDB(store, root)
            # spot-check one account written in that commit's batch
            assert state.balance_of(_addr(0)) == TOKEN
        store.close()

    def test_memory_store_refuses_compaction(self):
        with pytest.raises(StoreError, match="does not support compaction"):
            compact_node_store(MemoryNodeStore())

    def test_staged_writes_refuse_compaction(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        _grow_state(store, commits=2)
        store[keccak256(b"staged")] = b"uncommitted"
        with pytest.raises(StoreError, match="staged uncommitted"):
            compact_node_store(store, RetentionPolicy.last(1))
        store.close()

    def test_wedged_store_refuses_compaction(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        _grow_state(store, commits=2)
        store._wedged = True
        with pytest.raises(StoreError, match="wedged"):
            compact_node_store(store, RetentionPolicy.last(1))
        store._wedged = False
        store.close()

    def test_unresolvable_retain_root_is_refused(self, tmp_path):
        store = AppendOnlyFileStore(tmp_path / "nodes.log")
        _grow_state(store, commits=2)
        with pytest.raises(StoreError, match="unresolvable"):
            compact_node_store(
                store, retain_roots=[keccak256(b"not-a-root")])
        store.close()

    def test_pruned_memory_survives_reopen_and_recompaction(self, tmp_path):
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        roots = _grow_state(store)
        compact_node_store(store, RetentionPolicy.last(2))
        first_pruned = set(roots[:-2])
        store.close()  # footer path

        store = AppendOnlyFileStore(path)
        assert store.opened_indexed
        assert store.pruned_roots == frozenset(first_pruned)
        more = _grow_state(store, commits=2, per_commit=10)
        compact_node_store(store, RetentionPolicy.last(1))
        # old and new pruned roots are both remembered
        expected = first_pruned | set(roots[-2:]) | {more[0]}
        assert store.pruned_roots == frozenset(expected)
        store.close(write_index=False)  # scan path preserves it too

        store = AppendOnlyFileStore(path)
        assert not store.opened_indexed
        assert store.pruned_roots == frozenset(expected)
        store.close()


class TestFooterRoundTrip:
    def test_clean_close_reopens_without_scanning(self, tmp_path):
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        roots = _grow_state(store)
        size_footer_free = store.log_bytes()
        index_before = dict(store._index)
        history_before = list(store.root_history)
        store.close()
        assert path.stat().st_size > size_footer_free  # footer appended

        reopened = AppendOnlyFileStore(path)
        assert reopened.opened_indexed
        assert reopened.stats.truncated_bytes == 0
        assert reopened.stats.batches_recovered == len(history_before)
        assert reopened.last_root == roots[-1]
        assert reopened.root_history == history_before
        assert reopened._index == index_before
        # the footer was stripped: the live file is a pure batch log again
        assert path.stat().st_size == size_footer_free
        reopened.close()

    def test_indexed_open_equals_scan_open(self, tmp_path):
        """The footer is an *optimization*: both open paths must
        reconstruct the same index, history, and last root."""
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        _grow_state(store)
        store.close()
        footer_file = path.read_bytes()

        indexed = AppendOnlyFileStore(path)
        assert indexed.opened_indexed
        via_footer = (dict(indexed._index), indexed.root_history,
                      indexed.last_root)
        indexed.close(write_index=False)

        scan_path = tmp_path / "scan.log"
        scan_path.write_bytes(footer_file)
        # chop the 8-byte pointer so the footer is undiscoverable: the
        # scan must walk the batches and then truncate the footer residue
        with open(scan_path, "r+b") as fh:
            fh.truncate(len(footer_file) - 8)
        scanned = AppendOnlyFileStore(scan_path)
        assert not scanned.opened_indexed
        assert (dict(scanned._index), scanned.root_history,
                scanned.last_root) == via_footer
        scanned.close()

    def test_footer_never_survives_into_the_live_log(self, tmp_path):
        """Open-close cycles must not accrete footers (a footer mid-file
        would end every future recovery scan early)."""
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        _grow_state(store, commits=2, per_commit=5)
        store.close()
        for _ in range(3):
            store = AppendOnlyFileStore(path)
            assert store.opened_indexed
            store.close()
        store = AppendOnlyFileStore(path)
        base = store.log_bytes()
        roots = _grow_state(store, commits=1, per_commit=5)
        store.close(write_index=False)
        # scan reopen: everything before the appended batch parses clean
        scanned = AppendOnlyFileStore(path)
        assert scanned.stats.truncated_bytes == 0
        assert scanned.last_root == roots[-1]
        scanned.close()

    def test_wedged_store_writes_no_footer(self, tmp_path):
        path = tmp_path / "nodes.log"
        store = AppendOnlyFileStore(path)
        _grow_state(store, commits=1, per_commit=5)
        size = store.log_bytes()
        store._wedged = True
        store.close()
        assert path.stat().st_size == size  # no footer appended


def _genesis(keys: Keys) -> GenesisConfig:
    return GenesisConfig(allocations={
        keys.alice.address: 100 * TOKEN,
        keys.bob.address: 100 * TOKEN,
    })


def _mine_transfers(net, keys, count, start=1):
    for value in range(start, start + count):
        net.send_transaction(keys.alice, keys.bob.address, value=value)
        net.mine()


class TestChainCompaction:
    def test_compact_prunes_blocks_and_serves_window(self, tmp_path, keys):
        net = Devnet(_genesis(keys), state_dir=tmp_path / "state",
                     retention="last:2")
        _mine_transfers(net, keys, 5)
        chain = net.chain
        pre_balance = chain.state.balance_of(keys.bob.address)

        report = chain.compact()
        assert report is not None and report.bytes_reclaimed >= 0
        assert chain.first_retained_number == chain.height - 1
        # inside the window: blocks and historical state still served
        for number in (chain.height - 1, chain.height):
            assert chain.get_block_by_number(number) is not None
            chain.state_at(number)
        assert chain.state.balance_of(keys.bob.address) == pre_balance
        # below the window: typed pruned error, not "never existed"
        with pytest.raises(PrunedRootError, match="retention window"):
            chain.state_at(0)
        with pytest.raises(PrunedRootError, match="serves heights"):
            chain.state_at(chain.height - 2)
        assert chain.get_block_by_number(0) is None
        # a height beyond the head is still the generic error
        with pytest.raises(ChainError, match="no block"):
            chain.state_at(chain.height + 10)
        net.close()

    def test_pruned_chain_reattaches_and_keeps_growing(self, tmp_path, keys):
        state_dir = tmp_path / "state"
        net = Devnet(_genesis(keys), state_dir=state_dir, retention=2)
        _mine_transfers(net, keys, 4)
        net.chain.compact()
        head = net.chain.head.hash
        first = net.chain.first_retained_number
        bob = net.chain.state.balance_of(keys.bob.address)
        net.close()

        revived = Devnet(_genesis(keys), state_dir=state_dir, retention=2)
        chain = revived.chain
        assert chain.reattached
        assert chain.head.hash == head
        assert chain.first_retained_number == first
        assert chain.state.balance_of(keys.bob.address) == bob
        with pytest.raises(PrunedRootError):
            chain.state_at(first - 1)
        # the anchored chain keeps sealing past the recovered head
        _mine_transfers(revived, keys, 2, start=100)
        assert chain.head.header.parent_hash != head  # two blocks later
        assert chain.height >= first + 2
        revived.close()

    def test_find_transaction_respects_the_window(self, tmp_path, keys):
        net = Devnet(_genesis(keys), state_dir=tmp_path / "state",
                     retention="last:1")
        early_tx = net.send_transaction(keys.alice, keys.bob.address, value=7)
        net.mine()
        _mine_transfers(net, keys, 3)
        late_tx = net.send_transaction(keys.alice, keys.bob.address, value=9)
        net.mine()
        net.chain.compact()
        assert net.chain.find_transaction(early_tx.hash) is None
        block, index = net.chain.find_transaction(late_tx.hash)
        assert block.number == net.chain.height
        net.close()

    def test_autocompaction_triggers_on_growth(self, tmp_path, keys):
        policy = RetentionPolicy.last(2, min_compact_bytes=1,
                                      compact_growth=1.0)
        net = Devnet(_genesis(keys), state_dir=tmp_path / "state",
                     retention=policy)
        _mine_transfers(net, keys, 4)
        assert net.node_store.stats.compactions > 0
        assert net.chain.first_retained_number > 0
        # the chain stays serviceable straight through automatic passes
        assert net.chain.state.balance_of(keys.bob.address) > 100 * TOKEN
        net.close()

    def test_archive_chain_skips_unforced_compaction(self, tmp_path, keys):
        net = Devnet(_genesis(keys), state_dir=tmp_path / "state")
        _mine_transfers(net, keys, 2)
        assert net.chain.compact() is None  # archive: nothing to prune
        forced = net.chain.compact(force=True)  # rewrite, keep every root
        assert forced is not None
        assert forced.pruned_roots == ()
        for number in range(net.chain.height + 1):
            net.chain.state_at(number)
        net.close()

    def test_memory_chain_compact_is_noop_unless_forced(self, keys):
        net = Devnet(_genesis(keys))
        _mine_transfers(net, keys, 1)
        assert net.chain.compact() is None
        with pytest.raises(ChainError, match="disk-backed"):
            net.chain.compact(force=True)
        net.close()

    def test_blocklog_never_references_a_pruned_root(self, tmp_path, keys):
        """The crash-safety ordering contract, observed from outside: at
        every point the block log's records resolve against the store."""
        state_dir = tmp_path / "state"
        net = Devnet(_genesis(keys), state_dir=state_dir, retention=2)
        _mine_transfers(net, keys, 4)
        net.chain.compact()
        net.close()
        store, block_log = open_state_dir(state_dir)
        try:
            for block in block_log.blocks:
                # every logged state root must be materializable
                StateDB(store, block.header.state_root)
            assert block_log.first_number \
                == block_log.blocks[0].number > 0
        finally:
            store.close()
            block_log.close()
