"""Checkpoint sync: Bootstrap at a trusted header, UpdatesByRange paging.

Covers the Altair-style onboarding path: anchoring mid-chain at a trusted
checkpoint (quorum cross-checked), paged catch-up with is_better_update
selection, equivocation detection, and the HeaderChain anchor refusal for
pre-checkpoint heights.
"""

import pytest

from repro.lightclient import (
    Checkpoint,
    CheckpointSyncer,
    HeaderSyncer,
    RangeUpdate,
    SyncError,
    is_better_update,
)
from repro.node import FullNode
from repro.rlp import codec as rlp


@pytest.fixture
def grown(devnet):
    devnet.advance_blocks(20)
    return devnet


def _nodes(devnet, count=3):
    return [FullNode(devnet.chain, name=f"src{i}") for i in range(count)]


class _Equivocator:
    """Answers the bootstrap with the wrong header and serves a foreign
    chain's pages; head reports are honest (so it stays in the quorum
    denominator)."""

    def __init__(self, honest: FullNode, fork_chain=None) -> None:
        self.honest = honest
        self.fork = fork_chain

    def serve_head_number(self):
        return self.honest.serve_head_number()

    def serve_header(self, number):
        return self.honest.serve_header(number)

    def serve_bootstrap(self, checkpoint_hash):
        return self.honest.get_header(0)  # a real header, wrong hash

    def serve_updates_range(self, start, count):
        if self.fork is None:
            return self.honest.serve_updates_range(start, count)
        return [self.fork.get_header(n)
                for n in range(start, min(start + count,
                                          self.fork.height + 1))]


class TestBootstrap:
    def test_anchors_at_the_checkpoint(self, grown):
        sources = _nodes(grown)
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer(sources, checkpoint)
        anchor = syncer.bootstrap()
        assert anchor.number == 15
        assert anchor.hash == checkpoint.hash
        assert syncer.chain.anchor_number == 15
        assert syncer.headers_fetched == 1
        # idempotent: a second call returns the existing anchor, no refetch
        assert syncer.bootstrap() is not None
        assert syncer.headers_fetched == 1

    def test_unknown_checkpoint_hash_fails(self, grown):
        syncer = CheckpointSyncer(_nodes(grown),
                                  Checkpoint(number=15, hash=b"\x11" * 32))
        with pytest.raises(SyncError, match="no source could provide"):
            syncer.bootstrap()

    def test_equivocating_bootstrap_server_is_suspected(self, grown):
        honest = _nodes(grown, count=2)
        evil = _Equivocator(honest[0])
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer([honest[0], evil, honest[1]], checkpoint)
        anchor = syncer.bootstrap()
        assert anchor.hash == checkpoint.hash
        assert syncer.suspects == {1}

    def test_quorum_disagreement_rejects_the_checkpoint(self, grown):
        honest = _nodes(grown, count=1)[0]
        evil_a = _Equivocator(honest)
        evil_b = _Equivocator(honest)
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer([honest, evil_a, evil_b], checkpoint)
        # only 1 of 3 sources attests the trusted header: below quorum (2)
        with pytest.raises(SyncError, match="no quorum on checkpoint"):
            syncer.bootstrap()
        assert syncer.suspects == {1, 2}


class TestPagedSync:
    def test_cost_scales_with_distance_not_chain_length(self, grown):
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer(_nodes(grown), checkpoint, page_size=2)
        tip = syncer.sync()
        assert tip.hash == grown.chain.head.hash
        distance = grown.chain.height - 15
        assert syncer.headers_fetched == distance + 1  # anchor + catch-up
        assert syncer.pages_fetched == (distance + 1) // 2  # ⌈5/2⌉ = 3
        # a full genesis sync would have fetched height+1 headers
        assert syncer.headers_fetched < grown.chain.height + 1

    def test_matches_genesis_sync_headers(self, grown):
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        fast = CheckpointSyncer(_nodes(grown), checkpoint, page_size=4)
        slow = HeaderSyncer(_nodes(grown))
        fast.sync()
        slow.sync()
        for number in range(16, grown.chain.height + 1):
            assert fast.get_header(number).hash == slow.get_header(number).hash

    def test_pre_anchor_heights_are_refused(self, grown):
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer(_nodes(grown), checkpoint)
        syncer.sync()
        assert syncer.get_header(10) is None
        with pytest.raises(SyncError, match="below the local trust anchor"):
            syncer.ensure_height(10)

    def test_equivocating_page_server_is_suspected(self, grown, keys):
        from repro.chain import GenesisConfig
        from repro.node import Devnet

        # a fork: same genesis config, but diverging (tx-bearing) blocks
        fork = Devnet(GenesisConfig(allocations=grown.chain.config.allocations))
        for _ in range(21):
            fork.send_transaction(keys.alice, keys.bob.address, value=9)
            fork.mine()
        honest = _nodes(grown, count=2)
        evil = _Equivocator(honest[0], fork_chain=fork.chain)
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer([honest[0], honest[1], evil], checkpoint,
                                  page_size=3)
        # bootstrap: evil answers with the wrong header → suspect; pages:
        # its fork headers do not link to our tip → suspect again
        tip = syncer.sync()
        assert tip.hash == grown.chain.head.hash
        assert 2 in syncer.suspects

    def test_no_quorum_on_pages_fails(self, grown):
        honest = _nodes(grown, count=1)[0]
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer([honest], checkpoint, quorum=2)
        with pytest.raises(SyncError, match="no quorum on checkpoint"):
            syncer.sync()

    def test_dead_sources_fail_page_fetch(self, grown):
        class Dead:
            def serve_head_number(self):
                raise ConnectionError("down")

            def serve_bootstrap(self, checkpoint_hash):
                raise ConnectionError("down")

            def serve_updates_range(self, start, count):
                raise ConnectionError("down")

        honest = _nodes(grown, count=1)[0]
        checkpoint = Checkpoint.of(grown.chain.get_header(15))
        syncer = CheckpointSyncer([honest, Dead()], checkpoint, quorum=1)
        syncer.bootstrap()
        syncer.sources = [Dead(), Dead()]
        with pytest.raises(SyncError, match="no source could provide headers"):
            syncer.sync_to(grown.chain.height)


class TestRangeUpdate:
    def test_codec_round_trip(self, grown):
        headers = tuple(grown.chain.get_header(n) for n in range(5, 9))
        update = RangeUpdate(headers)
        assert update.start == 5
        assert update.tip.number == 8
        assert len(update) == 4
        decoded = RangeUpdate.decode(update.encode())
        assert [h.hash for h in decoded.headers] == [h.hash for h in headers]

    def test_rejects_broken_linkage(self, grown):
        h5, h7 = grown.chain.get_header(5), grown.chain.get_header(7)
        with pytest.raises(ValueError, match="breaks linkage"):
            RangeUpdate((h5, h7))
        with pytest.raises(ValueError, match="at least one header"):
            RangeUpdate(())
        wire = rlp.encode([h5.encode(), h7.encode()])
        with pytest.raises(rlp.RLPError):
            RangeUpdate.decode(wire)

    def test_decode_rejects_garbage(self):
        with pytest.raises(rlp.RLPError):
            RangeUpdate.decode(rlp.encode(b"not a list"))
        with pytest.raises(rlp.RLPError):
            RangeUpdate.decode(rlp.encode([]))


class TestBetterUpdate:
    def test_higher_tip_wins(self, grown):
        short = RangeUpdate(tuple(grown.chain.get_header(n)
                                  for n in range(5, 7)))
        tall = RangeUpdate(tuple(grown.chain.get_header(n)
                                 for n in range(5, 9)))
        assert is_better_update((1, tall), (3, short))
        assert not is_better_update((3, short), (1, tall))

    def test_votes_break_equal_tips(self, grown):
        update = RangeUpdate(tuple(grown.chain.get_header(n)
                                   for n in range(5, 7)))
        assert is_better_update((3, update), (2, update))
        assert not is_better_update((2, update), (3, update))

    def test_deterministic_hash_tiebreak(self, grown):
        update = RangeUpdate(tuple(grown.chain.get_header(n)
                                   for n in range(5, 7)))
        # identical tips and votes: the (equal) hash comparison is False
        # both ways, so selection order cannot flip the winner
        assert not is_better_update((2, update), (2, update))


class TestValidPrefix:
    def test_shapes(self, grown):
        headers = [grown.chain.get_header(n) for n in range(5, 8)]
        tip_hash = grown.chain.get_header(4).hash
        prefix = CheckpointSyncer._valid_prefix
        assert prefix(None, 5, tip_hash) == []
        assert prefix([], 5, tip_hash) == []
        assert prefix(b"junk", 5, tip_hash) is None
        assert prefix(headers, 5, tip_hash) == headers
        assert prefix(RangeUpdate(tuple(headers)), 5, tip_hash) == headers
        # wrong start or a first header that does not link: hard failure
        assert prefix(headers, 6, tip_hash) is None
        assert prefix(headers, 5, b"\x00" * 32) is None
        # a valid prefix followed by a gap is truncated, not rejected
        gappy = headers[:2] + [grown.chain.get_header(9)]
        assert prefix(gappy, 5, tip_hash) == headers[:2]

    def test_page_size_validation(self, grown):
        checkpoint = Checkpoint.of(grown.chain.get_header(1))
        with pytest.raises(ValueError, match="positive"):
            CheckpointSyncer(_nodes(grown), checkpoint, page_size=0)
        big = CheckpointSyncer(_nodes(grown), checkpoint, page_size=10 ** 6)
        from repro.lightclient.checkpoint import MAX_UPDATE_PAGE
        assert big.page_size == MAX_UPDATE_PAGE

    def test_checkpoint_validation(self):
        with pytest.raises(ValueError):
            Checkpoint(number=-1, hash=b"\x00" * 32)
        with pytest.raises(ValueError):
            Checkpoint(number=1, hash=b"short")
