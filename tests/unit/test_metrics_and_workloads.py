"""Measurement utilities and workload generators."""

import pytest

from repro.metrics import ResourceProbe, StepTimer, render_series, render_table
from repro.workloads import AccountSet, ZipfSelector, generate_dataset
from repro.workloads.dapp_traffic import PUBLISHED_SHARES, TOTAL_RPC_DAPPS


class TestStepTimer:
    def test_measure_context(self):
        timer = StepTimer()
        with timer.measure("step"):
            sum(range(1000))
        stats = timer.stats("step")
        assert stats.count == 1
        assert stats.mean > 0

    def test_statistics(self):
        timer = StepTimer()
        for value in (0.001, 0.002, 0.003, 0.010):
            timer.add_sample("s", value)
        stats = timer.stats("s")
        assert stats.count == 4
        assert stats.minimum == 0.001 and stats.maximum == 0.010
        assert stats.median == pytest.approx(0.0025)
        assert 0.001 <= stats.p95 <= 0.010

    def test_paper_style_formatting(self):
        timer = StepTimer()
        timer.add_sample("ms", 0.0123)
        timer.add_sample("us", 0.000714)
        assert timer.stats("ms").format_paper_style().endswith("ms")
        assert timer.stats("us").format_paper_style().endswith("µs")

    def test_unknown_step(self):
        with pytest.raises(KeyError):
            StepTimer().stats("ghost")

    def test_reset(self):
        timer = StepTimer()
        timer.add_sample("x", 1.0)
        timer.reset()
        assert timer.samples == {}


class TestResourceProbe:
    def test_measures_cpu_and_memory(self):
        with ResourceProbe() as probe:
            # bytes([i]) defeats constant folding so each buffer is distinct
            data = [bytes([i % 251]) * 1000 for i in range(500)]
            sum(len(d) for d in data)
        sample = probe.sample
        assert sample.cpu_seconds >= 0
        assert sample.wall_seconds > 0
        assert sample.peak_memory_bytes > 100_000  # the 500 KB of buffers

    def test_cpu_only_mode(self):
        with ResourceProbe(trace_memory=False) as probe:
            sum(range(10_000))
        assert probe.sample.peak_memory_bytes == 0
        assert probe.sample.cpu_seconds >= 0

    def test_utilization(self):
        with ResourceProbe(trace_memory=False) as probe:
            sum(range(2_000_000))  # long enough to dominate clock granularity
        assert probe.sample.cpu_utilization >= 0
        assert probe.sample.wall_seconds > 0


class TestTableRendering:
    def test_alignment(self):
        text = render_table(["a", "long-header"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        assert render_table(["h"], [[1]], title="T").startswith("T\n")

    def test_series(self):
        text = render_series("s", [1, 2], [10, 20], "x", "y")
        assert "10" in text and "x" in text


class TestZipf:
    def test_skew(self):
        selector = ZipfSelector(population=100, exponent=1.2, seed=1)
        picks = [selector.pick() for _ in range(2_000)]
        assert all(0 <= p < 100 for p in picks)
        # rank 0 must dominate rank 50 under a Zipf law
        assert picks.count(0) > picks.count(50) * 3

    def test_deterministic(self):
        a = list(ZipfSelector(10, seed=7).stream(50))
        b = list(ZipfSelector(10, seed=7).stream(50))
        assert a == b

    def test_bad_population(self):
        with pytest.raises(ValueError):
            ZipfSelector(0)


class TestAccountSet:
    def test_deterministic_keys(self):
        a = AccountSet(5, seed="s")
        b = AccountSet(5, seed="s")
        assert a.addresses == b.addresses
        assert AccountSet(5, seed="t").addresses != a.addresses

    def test_genesis_funds_everyone(self):
        accounts = AccountSet(3, balance=123)
        genesis = accounts.genesis()
        assert all(genesis.allocations[addr] == 123
                   for addr in accounts.addresses)

    def test_genesis_extra_merge(self):
        from repro.crypto import PrivateKey

        accounts = AccountSet(2, balance=5)
        vip = PrivateKey.from_seed("vip").address
        genesis = accounts.genesis(extra={vip: 999})
        assert genesis.allocations[vip] == 999


class TestDappDataset:
    def test_marginals_match_published(self):
        records = generate_dataset(seed=42)
        by_provider = {}
        for record in records:
            by_provider.setdefault(record.provider, set()).add(record.dapp_id)
        for provider, (count, _share) in PUBLISHED_SHARES.items():
            assert len(by_provider[provider]) == count, provider

    def test_every_dapp_covered(self):
        records = generate_dataset(seed=42)
        assert {r.dapp_id for r in records} == set(range(TOTAL_RPC_DAPPS))

    def test_multi_homing_exists(self):
        records = generate_dataset(seed=42)
        providers_per_dapp = {}
        for record in records:
            providers_per_dapp.setdefault(record.dapp_id, set()).add(record.provider)
        assert any(len(p) > 1 for p in providers_per_dapp.values())

    def test_deterministic_per_seed(self):
        assert generate_dataset(seed=1) == generate_dataset(seed=1)
        assert generate_dataset(seed=1) != generate_dataset(seed=2)

    def test_records_well_formed(self):
        for record in generate_dataset(seed=3)[:50]:
            assert record.call_count > 0
            assert record.endpoint_host
            assert record.method.startswith("eth_")
