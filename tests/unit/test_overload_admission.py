"""Unit tests for overload survival: admission control, the signed
``Overloaded`` reply, load-driven repricing, and the soft reputation path.

The invariants under test are the ones the e2e overload matrix and the
bench build on: the virtual-backlog gate bounds queueing delay, a shed is
cheaper than a serve and cryptographically attributable, repricing never
drops below the enforced base schedule, and honest shedding can demote but
never ban a server.
"""

import pytest

from repro.crypto import PrivateKey, keccak256
from repro.crypto.keys import Address
from repro.net.futures import ExponentialBackoff
from repro.net.latency import UniformLatency
from repro.parp.admission import AdmissionConfig, AdmissionController
from repro.parp.constants import OVERLOAD_OVERHEAD_BYTES
from repro.parp.messages import MessageError, OverloadedReply, ResponseStatus
from repro.parp.pricing import (
    DEFAULT_FEE_SCHEDULE,
    MULTIPLIER_SCALE,
    RepricedFeeSchedule,
    load_multiplier,
)
from repro.parp.reputation import (
    EVENT_INVALID_RESPONSE,
    EVENT_OVERLOADED,
    EVENT_SERVED_OK,
    SOFT_EVENT_KINDS,
    ReputationLedger,
)

KEY = PrivateKey.from_seed("unit:overload:server")
OTHER = PrivateKey.from_seed("unit:overload:other")
H_REQ = keccak256(b"unit:overload:h_req")


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def controller(max_queue_cost=4.0, service_time=0.1, **kwargs):
    clock = FakeClock()
    cfg = AdmissionConfig(max_queue_cost=max_queue_cost,
                          service_time=service_time, **kwargs)
    return AdmissionController(cfg, clock=clock), clock


class TestAdmissionController:
    def test_idle_server_admits_at_zero_load(self):
        ctrl, _ = controller()
        decision = ctrl.offer(1.0)
        assert decision.admitted
        assert decision.load == 0.0
        assert decision.queue_delay == pytest.approx(0.1)
        assert ctrl.admitted == 1 and ctrl.shed == 0

    def test_backlog_fills_then_sheds(self):
        ctrl, _ = controller(max_queue_cost=3.0, service_time=0.1)
        for _ in range(3):
            assert ctrl.offer(1.0).admitted
        decision = ctrl.offer(1.0)   # 3 + 1 > 3: over the bound
        assert not decision.admitted
        assert decision.retry_after > 0.0
        assert ctrl.shed == 1

    def test_queue_delay_is_bounded_by_the_configured_budget(self):
        """The whole point of admission: every admitted request's modeled
        delay stays ≤ max_queue_cost × service_time, no matter the load."""
        ctrl, _ = controller(max_queue_cost=5.0, service_time=0.2)
        bound = 5.0 * 0.2
        delays = []
        for _ in range(50):
            decision = ctrl.offer(1.0)
            if decision.admitted:
                delays.append(decision.queue_delay)
        assert delays and max(delays) <= bound + 1e-9

    def test_backlog_drains_with_the_clock(self):
        ctrl, clock = controller(max_queue_cost=2.0, service_time=0.5)
        assert ctrl.offer(1.0).admitted
        assert ctrl.offer(1.0).admitted
        assert not ctrl.offer(1.0).admitted     # full
        clock.advance(0.5)                       # one unit of work drains
        assert ctrl.offer(1.0).admitted
        clock.advance(10.0)                      # fully idle again
        assert ctrl.load_factor() == 0.0
        assert ctrl.offer(1.0).load == 0.0

    def test_batch_cost_is_marginal_not_linear(self):
        ctrl, _ = controller(batch_item_cost=0.25)
        assert ctrl.cost_of(1) == 1.0
        assert ctrl.cost_of(5) == pytest.approx(1.0 + 0.25 * 4)
        assert ctrl.cost_of(5) < 5 * ctrl.cost_of(1)

    def test_shed_leaves_backlog_untouched(self):
        ctrl, _ = controller(max_queue_cost=1.0, service_time=0.1)
        assert ctrl.offer(1.0).admitted
        before = ctrl.load_factor()
        ctrl.offer(1.0)   # shed
        assert ctrl.load_factor() == pytest.approx(before)

    def test_retry_after_is_jittered_but_deterministic_per_seed(self):
        a1, _ = controller(max_queue_cost=1.0, seed=7)
        a2, _ = controller(max_queue_cost=1.0, seed=7)
        b, _ = controller(max_queue_cost=1.0, seed=8)
        for ctrl in (a1, a2, b):
            ctrl.offer(1.0)
        hints_a1 = [a1.offer(1.0).retry_after for _ in range(5)]
        hints_a2 = [a2.offer(1.0).retry_after for _ in range(5)]
        hints_b = [b.offer(1.0).retry_after for _ in range(5)]
        assert hints_a1 == hints_a2         # reproducible
        assert hints_a1 != hints_b          # decorrelated across servers
        assert len(set(hints_a1)) > 1       # actually jittered

    def test_snapshot_reports_the_probe_payload(self):
        ctrl, _ = controller(max_queue_cost=4.0, service_time=0.1)
        for _ in range(2):
            ctrl.offer(1.0)
        info = ctrl.snapshot()
        assert info["load"] == pytest.approx(0.5)
        assert info["admitted"] == 2 and info["shed"] == 0
        assert info["fee_multiplier"] == load_multiplier(0.5)
        assert info["max_queue_cost"] == 4.0

    def test_ewma_trackers_move_toward_observations(self):
        ctrl, _ = controller(max_queue_cost=10.0, service_time=0.1,
                             ewma_alpha=0.5)
        for _ in range(6):
            ctrl.offer(1.0)
        info = ctrl.snapshot()
        assert info["ewma_queue_depth"] > 0.0
        assert info["ewma_serve_delay"] > 0.0


class TestOverloadedReply:
    def build(self, key=KEY, h_req=H_REQ):
        return OverloadedReply.build(m_b=42, load=0.83, retry_after=0.125,
                                     fee_multiplier=2.5, h_req=h_req, key=key)

    def test_wire_roundtrip(self):
        reply = self.build()
        wire = reply.encode_wire()
        assert len(wire) == OVERLOAD_OVERHEAD_BYTES
        assert wire[0] == ResponseStatus.OVERLOADED
        decoded = OverloadedReply.decode_wire(wire)
        assert decoded == reply
        assert decoded.load == pytest.approx(0.83)
        assert decoded.retry_after == pytest.approx(0.125)
        assert decoded.fee_multiplier == pytest.approx(2.5)

    def test_is_overload_wire_discriminates(self):
        wire = self.build().encode_wire()
        assert OverloadedReply.is_overload_wire(wire)
        assert not OverloadedReply.is_overload_wire(wire[:-1])
        assert not OverloadedReply.is_overload_wire(b"\x00" + wire[1:])
        assert not OverloadedReply.is_overload_wire(b"")

    def test_verify_binds_signer_and_request(self):
        reply = self.build()
        assert reply.signer() == KEY.address
        reply.verify(expected_signer=KEY.address, expected_h_req=H_REQ)
        with pytest.raises(MessageError):
            reply.verify(expected_signer=OTHER.address, expected_h_req=H_REQ)
        with pytest.raises(MessageError):
            reply.verify(expected_signer=KEY.address,
                         expected_h_req=keccak256(b"someone else's request"))

    def test_forged_fields_break_the_signature(self):
        """A relay cannot inflate retry_after (grief) or the repriced fee
        (steal) without invalidating σ_ovl."""
        wire = bytearray(self.build().encode_wire())
        wire[10] ^= 0x01   # inside the millis fields
        tampered = OverloadedReply.decode_wire(bytes(wire))
        with pytest.raises(MessageError):
            tampered.verify(expected_signer=KEY.address, expected_h_req=H_REQ)

    def test_shed_is_cheaper_than_any_served_response(self):
        from repro.parp.constants import RESPONSE_OVERHEAD_BYTES
        assert OVERLOAD_OVERHEAD_BYTES < RESPONSE_OVERHEAD_BYTES


class TestRepricing:
    def test_multiplier_floor_is_the_base_schedule(self):
        with pytest.raises(ValueError):
            RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                multiplier_millis=MULTIPLIER_SCALE - 1)

    def test_scaling_applies_to_every_price(self):
        surge = RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                    multiplier_millis=2_500)
        from repro.parp.messages import RpcCall
        call = RpcCall.create("eth_getBalance", Address(b"\x11" * 20))
        base_price = DEFAULT_FEE_SCHEDULE.price(call)
        assert surge.price(call) == base_price * 2_500 // MULTIPLIER_SCALE
        assert surge.reference_price() > DEFAULT_FEE_SCHEDULE.reference_price()
        assert "×2.500" in surge.describe()

    def test_identity_multiplier_changes_nothing(self):
        same = RepricedFeeSchedule(base=DEFAULT_FEE_SCHEDULE,
                                   multiplier_millis=MULTIPLIER_SCALE)
        from repro.parp.messages import RpcCall
        call = RpcCall.create("eth_blockNumber")
        assert same.price(call) == DEFAULT_FEE_SCHEDULE.price(call)


class TestSoftReputation:
    NODE = Address(keccak256(b"unit:overload:node")[-20:])

    def test_overloaded_is_soft(self):
        assert EVENT_OVERLOADED in SOFT_EVENT_KINDS
        assert EVENT_INVALID_RESPONSE not in SOFT_EVENT_KINDS

    def test_shedding_alone_never_bans(self):
        """The no-death-spiral property: any volume of honest sheds sinks a
        server to the soft floor, never to banned."""
        ledger = ReputationLedger()
        for i in range(500):
            ledger.record(self.NODE, EVENT_OVERLOADED, time=float(i))
        now = 500.0
        assert ledger.raw_score(self.NODE, now) < 0.0
        assert not ledger.is_banned(self.NODE, now)
        assert ledger.score(self.NODE, now) == ledger.soft_floor

    def test_hard_negative_still_bans(self):
        ledger = ReputationLedger()
        ledger.record(self.NODE, EVENT_INVALID_RESPONSE, time=0.0)
        assert ledger.has_hard_negative(self.NODE)
        assert ledger.is_banned(self.NODE, 0.0)
        assert ledger.score(self.NODE, 0.0) == 0.0

    def test_recovered_server_scores_normally_again(self):
        ledger = ReputationLedger(half_life=10.0)
        ledger.record(self.NODE, EVENT_OVERLOADED, time=0.0)
        ledger.record(self.NODE, EVENT_SERVED_OK, time=1.0)
        assert ledger.raw_score(self.NODE, 1.0) > 0.0
        assert ledger.score(self.NODE, 1.0) > 0.0
        assert not ledger.is_banned(self.NODE, 1.0)


class TestExponentialBackoff:
    def test_delays_grow_then_cap(self):
        policy = ExponentialBackoff(base=0.1, factor=2.0, cap=1.0, jitter=0.0)
        delays = [policy.delay(n) for n in range(1, 8)]
        assert delays[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
        assert all(d == 1.0 for d in delays[4:])

    def test_jitter_stays_within_the_band_and_is_deterministic(self):
        policy = ExponentialBackoff(base=0.1, factor=2.0, cap=10.0,
                                    jitter=0.5, seed=3)
        again = ExponentialBackoff(base=0.1, factor=2.0, cap=10.0,
                                   jitter=0.5, seed=3)
        for n in range(1, 10):
            raw = min(10.0, 0.1 * 2.0 ** (n - 1))
            d = policy.delay(n)
            assert raw * 0.5 - 1e-12 <= d <= raw * 1.5 + 1e-12
            assert d == again.delay(n)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(base=-1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter=1.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=2.0, cap=1.0)


class TestPerLinkJitter:
    def test_each_link_draws_an_independent_deterministic_stream(self):
        """Two runs drawing in *different interleavings* must still give
        each link the same delay sequence (per-link streams, not one shared
        RNG whose draws depend on global order)."""
        a = UniformLatency(0.01, 0.05, seed=42)
        b = UniformLatency(0.01, 0.05, seed=42)
        # run A: alternate links; run B: all of x first, then y
        run_a = {"x": [], "y": []}
        for _ in range(5):
            run_a["x"].append(a.delay("c", "x", 100))
            run_a["y"].append(a.delay("c", "y", 100))
        run_b = {"x": [b.delay("c", "x", 100) for _ in range(5)],
                 "y": [b.delay("c", "y", 100) for _ in range(5)]}
        assert run_a == run_b

    def test_links_and_directions_are_decorrelated(self):
        lat = UniformLatency(0.01, 0.05, seed=1)
        forward = [lat.delay("a", "b", 1) for _ in range(8)]
        reverse = [lat.delay("b", "a", 1) for _ in range(8)]
        assert forward != reverse

    def test_seed_still_controls_reproducibility(self):
        one = UniformLatency(0.01, 0.05, seed=9)
        two = UniformLatency(0.01, 0.05, seed=10)
        assert [one.delay("a", "b", 1) for _ in range(4)] != \
               [two.delay("a", "b", 1) for _ in range(4)]
