"""The futures transport: submit, correlation, combinators, error typing."""

import pytest

from repro.crypto.keys import Address
from repro.net import (
    EndpointTimeout,
    FixedLatency,
    PendingReply,
    RemoteError,
    ReplyCancelled,
    SimEndpoint,
    SimNetwork,
    SimServerBinding,
    wait_all,
    wait_any,
)
from repro.parp.server import ServeError


class EchoServer:
    """Implements just enough of the allowed endpoint surface to echo."""

    def __init__(self, name: str) -> None:
        self.name = name

    def serve_header(self, token):
        return (self.name, token)

    def serve_head_number(self):
        raise RuntimeError("head exploded")

    def serve_request(self, wire):
        raise ServeError("unknown channel")


def make_rig(n_servers: int = 1, latency: float = 0.05,
             timeout: float = 1.0):
    net = SimNetwork(latency=FixedLatency(latency))
    endpoints = []
    for j in range(n_servers):
        SimServerBinding(net, f"srv-{j}", EchoServer(f"srv-{j}"))
        endpoints.append(SimEndpoint(net, f"lc-{j}", f"srv-{j}",
                                     Address.zero(), timeout=timeout))
    return net, endpoints


class TestPendingReply:
    def test_submit_returns_immediately_and_resolves_on_delivery(self):
        net, (ep,) = make_rig()
        reply = ep.submit("serve_header", 7)
        assert not reply.done() and not reply.ok
        assert ep.in_flight == 1
        net.run()
        assert reply.done() and reply.ok
        assert reply.result() == ("srv-0", 7)
        assert ep.in_flight == 0

    def test_result_drives_the_loop(self):
        net, (ep,) = make_rig()
        reply = ep.submit("serve_header", 3)
        assert reply.result() == ("srv-0", 3)     # no explicit run() needed
        assert net.clock.now() == pytest.approx(0.1)

    def test_many_replies_never_cross_correlate(self):
        net, (ep,) = make_rig()
        replies = [ep.submit("serve_header", i) for i in range(10)]
        assert ep.in_flight == 10                 # genuinely all in flight
        net.run()
        for i, reply in enumerate(replies):
            assert reply.result() == ("srv-0", i)

    def test_timeout_raises_endpoint_timeout(self):
        net, (ep,) = make_rig()
        net.isolate("srv-0")
        reply = ep.submit("serve_header", 1)
        with pytest.raises(EndpointTimeout):
            reply.result()
        assert net.clock.now() == pytest.approx(1.0)   # the synchrony bound
        assert not reply.done()                        # still formally pending

    def test_cancel_wins_over_late_reply(self):
        net, (ep,) = make_rig(latency=0.5)
        reply = ep.submit("serve_header", 1)
        assert reply.cancel() is True
        assert reply.cancelled() and reply.done() and not reply.ok
        net.run()                                  # the reply still arrives …
        assert reply.cancelled()                   # … but cannot resolve it
        assert ep.late_replies == 1
        with pytest.raises(ReplyCancelled):
            reply.result()

    def test_cancel_after_resolution_is_a_noop(self):
        net, (ep,) = make_rig()
        reply = ep.submit("serve_header", 1)
        net.run()
        assert reply.cancel() is False
        assert reply.ok

    def test_resolves_exactly_once(self):
        fired = []
        reply = PendingReply(method="m", target="t")
        reply.add_done_callback(lambda r: fired.append(r.state))
        assert reply.set_result(1) is True
        assert reply.set_result(2) is False
        assert reply.set_exception(ValueError()) is False
        assert reply.cancel() is False
        assert reply.result() == 1
        assert fired == ["done"]

    def test_exception_accessor(self):
        net, (ep,) = make_rig()
        reply = ep.submit("serve_head_number")
        net.run()
        exc = reply.exception()
        assert isinstance(exc, RemoteError)
        assert not reply.ok and reply.done()


class TestErrorTyping:
    def test_serve_layer_errors_map_to_serve_error(self):
        net, (ep,) = make_rig()
        reply = ep.submit("serve_request", b"junk")
        net.run()
        with pytest.raises(ServeError) as excinfo:
            reply.result()
        assert not isinstance(excinfo.value, RemoteError)
        assert "unknown channel" in str(excinfo.value)

    def test_unexpected_server_exceptions_carry_their_type(self):
        net, (ep,) = make_rig()
        reply = ep.submit("serve_head_number")
        net.run()
        with pytest.raises(RemoteError) as excinfo:
            reply.result()
        assert excinfo.value.remote_type == "RuntimeError"
        assert "head exploded" in str(excinfo.value)

    def test_unknown_method_is_a_serve_error(self):
        net, (ep,) = make_rig()
        reply = ep.submit("format_disk")
        net.run()
        assert isinstance(reply.exception(), ServeError)


class TestCombinators:
    def test_wait_any_returns_the_fastest(self):
        net = SimNetwork(latency=FixedLatency(0.01))
        SimServerBinding(net, "fast", EchoServer("fast"))
        slow_net_binding = SimServerBinding(net, "slow", EchoServer("slow"))
        ep_fast = SimEndpoint(net, "lc-f", "fast", Address.zero(), timeout=5.0)
        ep_slow = SimEndpoint(net, "lc-s", "slow", Address.zero(), timeout=5.0)
        # delay the slow leg by suspending its binding until after the race
        slow_net_binding.offline = True
        slow = ep_slow.submit("serve_header", 2)
        fast = ep_fast.submit("serve_header", 1)
        first = wait_any([slow, fast], timeout=1.0)
        assert first is fast
        assert fast.result() == ("fast", 1)
        assert not slow.done()                     # provably still in flight

    def test_wait_any_timeout_returns_none(self):
        net, (ep,) = make_rig()
        net.isolate("srv-0")
        replies = [ep.submit("serve_header", i) for i in range(3)]
        assert wait_any(replies, timeout=0.5) is None
        assert net.clock.now() == pytest.approx(0.5)

    def test_wait_any_prefers_already_resolved(self):
        done = PendingReply.completed("x")
        pending = PendingReply(method="m")
        assert wait_any([pending, done], timeout=1.0) is done

    def test_wait_all(self):
        net, endpoints = make_rig(n_servers=3)
        replies = [ep.submit("serve_header", i)
                   for i, ep in enumerate(endpoints)]
        assert wait_all(replies, timeout=1.0) is True
        assert [r.result() for r in replies] == \
            [(f"srv-{i}", i) for i in range(3)]

    def test_combinators_drive_every_network(self):
        """Replies spanning two simulated networks each get their own event
        loop driven — a responsive server on the second network must not be
        misread as a timeout just because the first loop was driven."""
        net_a, (ep_a,) = make_rig()
        net_b = SimNetwork(latency=FixedLatency(0.05))
        SimServerBinding(net_b, "srv-b", EchoServer("srv-b"))
        ep_b = SimEndpoint(net_b, "lc-b", "srv-b", Address.zero(), timeout=1.0)
        net_a.isolate("srv-0")                    # network A never answers
        dead = ep_a.submit("serve_header", 1)
        live = ep_b.submit("serve_header", 2)
        assert wait_any([dead, live], timeout=1.0) is live
        assert live.result() == ("srv-b", 2)
        net_a.rejoin("srv-0")
        more = [ep_a.submit("serve_header", 3), ep_b.submit("serve_header", 4)]
        assert wait_all(more, timeout=1.0) is True
        assert [r.result() for r in more] == [("srv-0", 3), ("srv-b", 4)]

    def test_wait_all_counts_cancellations_as_resolved(self):
        net, (ep,) = make_rig()
        net.isolate("srv-0")
        replies = [ep.submit("serve_header", i) for i in range(2)]
        assert wait_all(replies, timeout=0.2) is False
        for reply in replies:
            reply.cancel()
        assert wait_all(replies, timeout=0.2) is True


class TestUnreachableDestinations:
    def test_submit_to_deregistered_server_times_out_instead_of_crashing(self):
        """A deregistered server looks like an unreachable host: the request
        is dropped and the client hits its timeout path mid-failover."""
        net, (ep,) = make_rig()
        net.deregister("srv-0")
        reply = ep.submit("serve_header", 1)      # must not raise
        assert wait_any([reply], timeout=0.5) is None
        assert net.stats.link("lc-0", "srv-0").dropped == 1
        with pytest.raises(EndpointTimeout):
            reply.result(timeout=0.1)

    def test_blocking_facade_times_out_on_unknown_destination(self):
        net = SimNetwork(latency=FixedLatency(0.01))
        ep = SimEndpoint(net, "lc", "ghost", Address.zero(), timeout=0.3)
        with pytest.raises(EndpointTimeout):
            ep.serve_head_number()
        assert net.stats.messages_dropped == 1
