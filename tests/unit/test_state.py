"""World-state semantics: balances, nonces, storage, snapshots, proofs."""

import pytest

from repro.chain import Account, InsufficientBalance, StateDB
from repro.crypto import PrivateKey, keccak256
from repro.crypto.keys import Address
from repro.lightclient.verify import verify_account  # exercised via proofs
from repro.trie import verify_proof

A = PrivateKey.from_seed("state:a").address
B = PrivateKey.from_seed("state:b").address
CONTRACT = Address.from_hex("0x00000000000000000000000000000000000000CC")


@pytest.fixture
def state(node_store) -> StateDB:
    # node_store is backend-parametrized (REPRO_NODE_STORE), so every state
    # semantics test below also runs against the append-only disk store in CI
    db = StateDB(node_store)
    db.add_balance(A, 1_000)
    db.add_balance(B, 50)
    return db


class TestBalances:
    def test_absent_account_reads_zero(self, state):
        ghost = PrivateKey.from_seed("ghost").address
        assert state.balance_of(ghost) == 0
        assert not state.account_exists(ghost)

    def test_add_and_sub(self, state):
        state.add_balance(A, 10)
        state.sub_balance(A, 1_005)
        assert state.balance_of(A) == 5

    def test_overdraft_rejected(self, state):
        with pytest.raises(InsufficientBalance):
            state.sub_balance(B, 51)
        assert state.balance_of(B) == 50  # unchanged

    def test_transfer(self, state):
        state.transfer(A, B, 100)
        assert state.balance_of(A) == 900
        assert state.balance_of(B) == 150

    def test_transfer_atomic_on_failure(self, state):
        with pytest.raises(InsufficientBalance):
            state.transfer(B, A, 999)
        assert state.balance_of(A) == 1_000
        assert state.balance_of(B) == 50

    def test_negative_amounts_rejected(self, state):
        with pytest.raises(ValueError):
            state.transfer(A, B, -1)
        with pytest.raises(ValueError):
            state.add_balance(A, -1)

    def test_root_changes_with_balances(self, state):
        before = state.root_hash
        state.add_balance(A, 1)
        assert state.root_hash != before


class TestNonces:
    def test_increment(self, state):
        assert state.nonce_of(A) == 0
        state.increment_nonce(A)
        state.increment_nonce(A)
        assert state.nonce_of(A) == 2

    def test_emptied_account_disappears(self):
        db = StateDB()
        db.add_balance(A, 5)
        db.sub_balance(A, 5)
        assert not db.account_exists(A)  # EIP-161 style emptiness


class TestStorage:
    SLOT = keccak256(b"slot-1")

    def test_absent_slot_reads_empty(self, state):
        assert state.get_storage(CONTRACT, self.SLOT) == b""

    def test_write_read(self, state):
        state.set_storage(CONTRACT, self.SLOT, b"\x2a")
        assert state.get_storage(CONTRACT, self.SLOT) == b"\x2a"

    def test_zeroing_deletes(self, state):
        state.set_storage(CONTRACT, self.SLOT, b"\x2a")
        state.commit()  # storage_root is re-derived at commit, not per write
        root_with_value = state.get_account(CONTRACT).storage_root
        state.set_storage(CONTRACT, self.SLOT, b"")
        assert state.get_storage(CONTRACT, self.SLOT) == b""
        state.commit()
        assert state.get_account(CONTRACT).storage_root != root_with_value

    def test_storage_isolated_per_account(self, state):
        state.set_storage(CONTRACT, self.SLOT, b"\x01")
        other = Address.from_hex("0x00000000000000000000000000000000000000DD")
        assert state.get_storage(other, self.SLOT) == b""

    def test_bad_slot_length_rejected(self, state):
        with pytest.raises(ValueError):
            state.get_storage(CONTRACT, b"short")


class TestSnapshots:
    def test_revert_restores_everything(self, state):
        state.set_storage(CONTRACT, keccak256(b"s"), b"\x07")
        snapshot = state.snapshot()
        state.transfer(A, B, 500)
        state.set_storage(CONTRACT, keccak256(b"s"), b"\x08")
        state.increment_nonce(A)
        state.revert(snapshot)
        assert state.balance_of(A) == 1_000
        assert state.nonce_of(A) == 0
        assert state.get_storage(CONTRACT, keccak256(b"s")) == b"\x07"

    def test_at_root_view_is_frozen(self, state):
        root = state.snapshot()
        state.add_balance(A, 500)
        view = state.at_root(root)
        assert view.balance_of(A) == 1_000
        assert state.balance_of(A) == 1_500


class TestProofs:
    def test_account_proof_inclusion(self, state):
        proof = state.prove_account(A)
        raw = verify_proof(state.root_hash, keccak256(A.to_bytes()), proof)
        assert Account.decode(raw).balance == 1_000

    def test_account_proof_exclusion(self, state):
        ghost = PrivateKey.from_seed("ghost2").address
        proof = state.prove_account(ghost)
        assert verify_proof(state.root_hash, keccak256(ghost.to_bytes()), proof) is None

    def test_storage_proof(self, state):
        slot = keccak256(b"proved-slot")
        state.set_storage(CONTRACT, slot, b"\x99")
        proof = state.prove_storage(CONTRACT, slot)  # commits first
        account = state.get_account(CONTRACT)
        from repro.rlp import decode

        raw = verify_proof(account.storage_root, keccak256(slot), proof)
        assert decode(raw) == b"\x99"

    def test_accounts_iterator(self, state):
        found = {account.balance for _, account in state.accounts()}
        assert found == {1_000, 50}
