"""Multiproofs: one deduplicated node pool answering many keys."""

import pytest

from repro.crypto import keccak256
from repro.trie import (
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    ProofError,
    generate_multiproof,
    generate_proof,
    proof_size,
    verify_multiproof,
    verify_proof,
)


def build_trie(n=64, prefix=b"acct"):
    """Keys sharing a 4-byte prefix: maximal upper-level sharing."""
    trie = MerklePatriciaTrie()
    model = {prefix + i.to_bytes(2, "big"): b"v" * 8 + bytes([i % 251])
             for i in range(n)}
    trie.update(model)
    return trie, model


class TestGeneration:
    def test_batch_of_one_equals_single_proof(self):
        trie, model = build_trie()
        key = next(iter(model))
        assert generate_multiproof(trie, [key]) == generate_proof(trie, key)

    def test_nodes_are_deduplicated(self):
        trie, model = build_trie()
        keys = sorted(model)[:16]
        multi = generate_multiproof(trie, keys)
        hashes = [keccak256(node) for node in multi]
        assert len(hashes) == len(set(hashes))
        concatenated = sum(proof_size(generate_proof(trie, k)) for k in keys)
        assert proof_size(multi) < concatenated

    def test_covers_union_of_single_proofs(self):
        trie, model = build_trie()
        keys = sorted(model)[:8] + [b"absent-key"]
        pool = {keccak256(n) for n in generate_multiproof(trie, keys)}
        for key in keys:
            for node in generate_proof(trie, key):
                assert keccak256(node) in pool

    def test_empty_trie_and_empty_keys(self):
        trie = MerklePatriciaTrie()
        assert generate_multiproof(trie, [b"k"]) == []
        populated, _ = build_trie(4)
        assert generate_multiproof(populated, []) == []


class TestVerification:
    def test_round_trip_reports_exact_contents(self):
        trie, model = build_trie()
        keys = sorted(model)[:20] + [b"absent-1", b"absent-2"]
        proof = generate_multiproof(trie, keys)
        results = verify_multiproof(trie.root_hash, keys, proof)
        for key in keys:
            assert results[key] == model.get(key)

    def test_agrees_with_single_proof_verification(self):
        trie, model = build_trie()
        keys = sorted(model)[:12]
        proof = generate_multiproof(trie, keys)
        results = verify_multiproof(trie.root_hash, keys, proof)
        for key in keys:
            single = verify_proof(trie.root_hash, key,
                                  generate_proof(trie, key))
            assert results[key] == single

    def test_missing_key_soundness(self):
        """Absent keys verify to None, never to a fabricated value."""
        trie, model = build_trie()
        absent = [b"nope" + bytes([i]) for i in range(4)]
        proof = generate_multiproof(trie, sorted(model)[:4] + absent)
        results = verify_multiproof(trie.root_hash, absent, proof)
        assert all(results[k] is None for k in absent)

    def test_tampered_node_is_rejected(self):
        trie, model = build_trie()
        keys = sorted(model)[:8]
        proof = generate_multiproof(trie, keys)
        tampered = list(proof)
        tampered[0] = tampered[0][:-1] + bytes([tampered[0][-1] ^ 0x01])
        with pytest.raises(ProofError):
            verify_multiproof(trie.root_hash, keys, tampered)

    def test_truncated_pool_is_rejected(self):
        trie, model = build_trie()
        keys = sorted(model)[:8]
        proof = generate_multiproof(trie, keys)
        assert len(proof) > 1
        with pytest.raises(ProofError):
            verify_multiproof(trie.root_hash, keys, proof[:-1])

    def test_wrong_root_never_fabricates(self):
        trie, model = build_trie()
        other, other_model = build_trie(prefix=b"othr")
        keys = sorted(model)[:8]
        proof = generate_multiproof(trie, keys)
        try:
            results = verify_multiproof(other.root_hash, keys, proof)
        except ProofError:
            return  # rejected outright: perfect
        for key in keys:
            assert results[key] == other_model.get(key)

    def test_empty_root(self):
        results = verify_multiproof(EMPTY_TRIE_ROOT, [b"a", b"b"], [])
        assert results == {b"a": None, b"b": None}
        with pytest.raises(ProofError):
            verify_multiproof(EMPTY_TRIE_ROOT, [b"a"], [b"junk"])
