"""Accounts, transactions, receipts, headers, blocks: encodings and rules."""

import pytest

from repro.chain import (
    Account,
    Block,
    BlockHeader,
    LogEntry,
    Receipt,
    Transaction,
    TransactionError,
    UnsignedTransaction,
    build_receipt_trie,
    build_transaction_trie,
    index_key,
)
from repro.crypto import KECCAK_EMPTY, PrivateKey, keccak256
from repro.crypto.keys import Address
from repro.rlp import RLPError, encode, encode_int
from repro.trie import EMPTY_TRIE_ROOT

KEY = PrivateKey.from_seed("chain-objects")
OTHER = PrivateKey.from_seed("other")


def make_tx(nonce=0, value=100, data=b"") -> Transaction:
    return UnsignedTransaction(
        nonce=nonce, gas_price=10 ** 9, gas_limit=50_000,
        to=OTHER.address, value=value, data=data,
    ).sign(KEY)


class TestAccount:
    def test_roundtrip(self):
        account = Account(nonce=3, balance=10 ** 18)
        assert Account.decode(account.encode()) == account

    def test_default_is_empty(self):
        assert Account().is_empty
        assert Account(balance=1).is_empty is False

    def test_defaults_match_ethereum(self):
        account = Account()
        assert account.storage_root == EMPTY_TRIE_ROOT
        assert account.code_hash == KECCAK_EMPTY

    def test_with_balance_rejects_negative(self):
        with pytest.raises(ValueError):
            Account().with_balance(-1)

    def test_decode_rejects_malformed(self):
        with pytest.raises(RLPError):
            Account.decode(encode([b"\x01", b"\x02"]))
        with pytest.raises(RLPError):
            Account.decode(encode([b"", b"", b"short", b"short"]))


class TestTransaction:
    def test_sign_and_recover_sender(self):
        tx = make_tx()
        assert tx.sender == KEY.address

    def test_encode_decode_roundtrip(self):
        tx = make_tx(data=b"calldata here")
        decoded = Transaction.decode(tx.encode())
        assert decoded == tx
        assert decoded.sender == KEY.address

    def test_hash_is_stable_and_unique(self):
        tx1, tx2 = make_tx(nonce=0), make_tx(nonce=1)
        assert tx1.hash == Transaction.decode(tx1.encode()).hash
        assert tx1.hash != tx2.hash

    def test_tampered_payload_changes_sender(self):
        tx = make_tx()
        tampered = Transaction(
            nonce=tx.nonce, gas_price=tx.gas_price, gas_limit=tx.gas_limit,
            to=tx.to, value=tx.value + 1, data=tx.data, signature=tx.signature,
        )
        assert tampered.sender != KEY.address

    def test_decode_rejects_garbage(self):
        with pytest.raises(TransactionError):
            Transaction.decode(b"\x01\x02\x03")
        with pytest.raises(TransactionError):
            Transaction.decode(encode([b"\x01"] * 5))

    def test_intrinsic_gas_floor(self):
        assert make_tx(data=b"").intrinsic_gas() == 21_000

    def test_intrinsic_gas_calldata(self):
        tx = make_tx(data=b"\x00\x01")  # 4 + 16
        assert tx.intrinsic_gas() == 21_000 + 20


class TestReceiptAndLogs:
    def test_roundtrip(self):
        receipt = Receipt(
            status=1, cumulative_gas_used=54_321,
            logs=(LogEntry(KEY.address, (keccak256(b"Event"),), b"data"),),
        )
        decoded = Receipt.decode(receipt.encode())
        assert decoded.status == 1
        assert decoded.cumulative_gas_used == 54_321
        assert decoded.logs[0].address == KEY.address
        assert decoded.logs[0].data == b"data"

    def test_succeeded_property(self):
        assert Receipt(1, 0).succeeded
        assert not Receipt(0, 0).succeeded

    def test_bad_topic_length_rejected(self):
        with pytest.raises(RLPError):
            Receipt.decode(encode([b"\x01", b"\x05", [[KEY.address.to_bytes(),
                                                      [b"short-topic"], b""]]]))


class TestHeader:
    def make_header(self, **overrides) -> BlockHeader:
        fields = dict(
            parent_hash=b"\x11" * 32, state_root=b"\x22" * 32,
            transactions_root=b"\x33" * 32, receipts_root=b"\x44" * 32,
            number=7, timestamp=1000, gas_used=21_000, gas_limit=30_000_000,
            proposer=KEY.address, extra_data=b"test",
        )
        fields.update(overrides)
        return BlockHeader(**fields)

    def test_roundtrip(self):
        header = self.make_header()
        assert BlockHeader.decode(header.encode()) == header

    def test_hash_is_keccak_of_rlp(self):
        header = self.make_header()
        assert header.hash == keccak256(header.encode())

    def test_any_field_change_changes_hash(self):
        base = self.make_header()
        assert self.make_header(number=8).hash != base.hash
        assert self.make_header(state_root=b"\x55" * 32).hash != base.hash

    def test_rejects_bad_root_length(self):
        with pytest.raises(ValueError):
            self.make_header(state_root=b"\x22" * 31)

    def test_rejects_negative_number(self):
        with pytest.raises(ValueError):
            self.make_header(number=-1)


class TestBlockTries:
    def test_index_key_is_rlp(self):
        assert index_key(0) == encode(encode_int(0))
        assert index_key(128) == encode(encode_int(128))

    def test_transaction_trie_proves_members(self):
        txs = [make_tx(nonce=i) for i in range(5)]
        trie = build_transaction_trie(txs)
        from repro.trie import generate_proof, verify_proof

        for i, tx in enumerate(txs):
            proof = generate_proof(trie, index_key(i))
            assert verify_proof(trie.root_hash, index_key(i), proof) == tx.encode()

    def test_empty_tries_have_empty_root(self):
        assert build_transaction_trie([]).root_hash == EMPTY_TRIE_ROOT
        assert build_receipt_trie([]).root_hash == EMPTY_TRIE_ROOT

    def test_validate_roots_catches_mismatch(self):
        txs = [make_tx(nonce=0)]
        receipts = [Receipt(1, 21_000)]
        header = BlockHeader(
            parent_hash=b"\x00" * 32,
            state_root=b"\x00" * 32,
            transactions_root=EMPTY_TRIE_ROOT,  # wrong: block has a tx
            receipts_root=build_receipt_trie(receipts).root_hash,
            number=1, timestamp=1, gas_used=21_000, gas_limit=30_000_000,
            proposer=Address.zero(),
        )
        block = Block(header=header, transactions=tuple(txs),
                      receipts=tuple(receipts))
        with pytest.raises(ValueError):
            block.validate_roots()

    def test_transaction_index_lookup(self):
        txs = [make_tx(nonce=i) for i in range(3)]
        header = BlockHeader(
            parent_hash=b"\x00" * 32, state_root=b"\x00" * 32,
            transactions_root=build_transaction_trie(txs).root_hash,
            receipts_root=EMPTY_TRIE_ROOT, number=1, timestamp=1,
            gas_used=0, gas_limit=30_000_000, proposer=Address.zero(),
        )
        block = Block(header=header, transactions=tuple(txs))
        assert block.transaction_index(txs[1].hash) == 1
        assert block.transaction_index(b"\x00" * 32) is None
