"""FullNodeServer and LightClientSession unit behaviour (direct transport)."""

import pytest

from repro.parp import (
    ChannelError,
    Handshake,
    LightClientState,
    ServeError,
    SessionError,
)
from repro.parp.messages import PARPRequest, RpcCall
from repro.parp.pricing import (
    CallBasedFeeSchedule,
    DEFAULT_FEE_SCHEDULE,
    FlatFeeSchedule,
)

from ..conftest import make_parp_env


class TestPricing:
    def test_flat(self):
        schedule = FlatFeeSchedule(flat_price=500)
        assert schedule.price(RpcCall.create("eth_getBalance", b"\x00" * 20)) == 500
        assert schedule.price(RpcCall.create("anything")) == 500

    def test_call_based_differentiates(self):
        schedule = CallBasedFeeSchedule()
        read = schedule.price(RpcCall.create("eth_getBalance", b"\x00" * 20))
        write = schedule.price(RpcCall.create("eth_sendRawTransaction", b"tx"))
        assert write > read

    def test_call_based_default_for_unknown(self):
        schedule = CallBasedFeeSchedule(prices={}, default_price=77)
        assert schedule.price(RpcCall.create("eth_whatever")) == 77

    def test_describe(self):
        assert "flat" in FlatFeeSchedule().describe()
        assert "call-based" in DEFAULT_FEE_SCHEDULE.describe()


class TestServer:
    def test_handshake_has_future_expiry(self, devnet, keys):
        env = make_parp_env(devnet, keys, connect=False)
        confirm = env.server.handshake(Handshake(keys.lc.address))
        confirm.verify(keys.lc.address)
        assert confirm.expiry > devnet.chain.head.header.timestamp

    def test_unknown_channel_rejected(self, parp_env):
        request = PARPRequest.build(
            b"\x00" * 16, parp_env.net.chain.head.hash, 100,
            RpcCall.create("eth_blockNumber"), parp_env.keys.lc,
        )
        with pytest.raises(ServeError):
            parp_env.server.serve_request(request.encode_wire())
        assert parp_env.server.stats.requests_rejected == 1

    def test_underpaid_request_rejected(self, parp_env):
        request = PARPRequest.build(
            parp_env.alpha, parp_env.net.chain.head.hash, 1,  # 1 wei << price
            RpcCall.create("eth_getBalance", parp_env.keys.alice.address),
            parp_env.keys.lc,
        )
        with pytest.raises(ServeError):
            parp_env.server.serve_request(request.encode_wire())

    def test_foreign_signer_rejected(self, parp_env):
        request = PARPRequest.build(
            parp_env.alpha, parp_env.net.chain.head.hash, 10 ** 12,
            RpcCall.create("eth_blockNumber"), parp_env.keys.alice,  # not LC
        )
        with pytest.raises(ServeError):
            parp_env.server.serve_request(request.encode_wire())

    def test_garbage_wire_rejected(self, parp_env):
        with pytest.raises(ServeError):
            parp_env.server.serve_request(b"\x00" * 300)

    def test_unknown_reference_block_signed_error(self, parp_env):
        session = parp_env.session
        call = RpcCall.create("eth_blockNumber")
        amount = session.channel.next_amount(10 ** 10)
        request = PARPRequest.build(parp_env.alpha, b"\x77" * 32, amount,
                                    call, parp_env.keys.lc)
        raw = parp_env.server.serve_request(request.encode_wire())
        from repro.parp.messages import PARPResponse

        response = PARPResponse.decode_wire(raw)
        assert response.status == 1  # signed error
        assert response.signer(parp_env.alpha) == parp_env.server.address

    def test_unsupported_method_signed_error(self, parp_env):
        session = parp_env.session
        outcome = session.request("eth_gasPrice")  # not in the catalog
        assert outcome.report.is_error_response

    def test_relay_restricted_to_parp_modules(self, parp_env):
        from repro.chain import UnsignedTransaction

        tx = UnsignedTransaction(
            nonce=parp_env.net.chain.state.nonce_of(parp_env.keys.alice.address),
            gas_price=10 ** 9, gas_limit=21_000,
            to=parp_env.keys.bob.address, value=1,
        ).sign(parp_env.keys.alice)
        with pytest.raises(ServeError):
            parp_env.server.relay_transaction(tx.encode())

    def test_fees_accumulate(self, parp_env):
        before = parp_env.server.stats.fees_earned
        parp_env.session.get_balance(parp_env.keys.alice.address)
        assert parp_env.server.stats.fees_earned > before

    def test_open_channel_rejects_non_cmm_target(self, parp_env):
        from repro.chain import UnsignedTransaction

        tx = UnsignedTransaction(
            nonce=0, gas_price=10 ** 9, gas_limit=21_000,
            to=parp_env.keys.bob.address, value=1,
        ).sign(parp_env.keys.lc)
        with pytest.raises(ServeError):
            parp_env.server.open_channel(tx.encode())


class TestSession:
    def test_connect_transitions_to_bonded(self, parp_env):
        assert parp_env.session.state is LightClientState.BONDED
        assert parp_env.session.channel.alpha == parp_env.alpha

    def test_cannot_connect_twice(self, parp_env):
        with pytest.raises(SessionError):
            parp_env.session.connect(budget=1_000)

    def test_request_requires_bond(self, devnet, keys):
        env = make_parp_env(devnet, keys, connect=False)
        with pytest.raises(SessionError):
            env.session.request("eth_blockNumber")

    def test_budget_exhaustion_surfaces(self, devnet, keys):
        env = make_parp_env(devnet, keys, budget=15 * 10 ** 9)
        env.session.get_balance(keys.alice.address)  # 10 gwei
        with pytest.raises(SessionError):
            env.session.get_balance(keys.alice.address)  # would exceed budget

    def test_spend_tracked_per_request(self, parp_env):
        session = parp_env.session
        session.block_number()
        first = session.channel.spent
        session.get_balance(parp_env.keys.alice.address)
        assert session.channel.spent > first
        assert session.channel.requests_sent == 2

    def test_history_records_outcomes(self, parp_env):
        parp_env.session.block_number()
        assert len(parp_env.session.history) == 1
        assert parp_env.session.history[0].report.valid

    def test_tip_adds_extra_payment(self, parp_env):
        session = parp_env.session
        outcome = session.request("eth_blockNumber", tip=5_000)
        base_price = DEFAULT_FEE_SCHEDULE.price(RpcCall.create("eth_blockNumber"))
        assert outcome.amount_paid == base_price + 5_000

    def test_adopt_channel_resumes(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        spent = env.session.channel.spent
        from repro.lightclient import HeaderSyncer
        from repro.parp import LightClientSession

        resumed = LightClientSession(
            keys.lc, env.server, HeaderSyncer([env.server, env.witness_node]),
        )
        resumed.headers.sync()
        resumed.adopt_channel(env.alpha, env.server.address,
                              budget=10 ** 15, spent=spent)
        assert resumed.state is LightClientState.BONDED
        balance = resumed.get_balance(keys.alice.address)
        assert balance > 0
