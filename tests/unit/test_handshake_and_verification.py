"""Handshake messages (Algorithm 1) and the §V-D classification logic."""

import pytest

from repro.crypto import PrivateKey, keccak256
from repro.parp.handshake import (
    Handshake,
    HandshakeConfirm,
    HandshakeError,
    OpenChannelReceipt,
)
from repro.parp.messages import PARPRequest, PARPResponse, ResponseStatus, RpcCall
from repro.parp.states import ResponseClass
from repro.parp.verification import classify_response

LC = PrivateKey.from_seed("hv:lc")
FN = PrivateKey.from_seed("hv:fn")
ALPHA = keccak256(b"hv")[:16]
H_B = keccak256(b"hv-block")


class TestHandshakeConfirm:
    def test_build_verify(self):
        confirm = HandshakeConfirm.build(FN, LC.address, expiry=12_345)
        confirm.verify(LC.address)  # must not raise
        assert confirm.full_node == FN.address

    def test_wrong_light_client_rejected(self):
        confirm = HandshakeConfirm.build(FN, LC.address, expiry=12_345)
        with pytest.raises(HandshakeError):
            confirm.verify(FN.address)

    def test_tampered_expiry_rejected(self):
        confirm = HandshakeConfirm.build(FN, LC.address, expiry=12_345)
        forged = HandshakeConfirm(confirm.full_node, 99_999, confirm.signature)
        with pytest.raises(HandshakeError):
            forged.verify(LC.address)

    def test_impersonation_rejected(self):
        rogue = PrivateKey.from_seed("hv:rogue")
        confirm = HandshakeConfirm.build(rogue, LC.address, expiry=1)
        forged = HandshakeConfirm(FN.address, 1, confirm.signature)
        with pytest.raises(HandshakeError):
            forged.verify(LC.address)

    def test_garbage_signature(self):
        confirm = HandshakeConfirm(FN.address, 1, b"\x00" * 65)
        with pytest.raises(HandshakeError):
            confirm.verify(LC.address)


class TestOpenChannelReceipt:
    def test_build_verify(self):
        receipt = OpenChannelReceipt.build(FN, ALPHA)
        receipt.verify(FN.address)
        assert receipt.channel_id == ALPHA

    def test_wrong_signer_rejected(self):
        rogue = PrivateKey.from_seed("hv:rogue2")
        receipt = OpenChannelReceipt.build(rogue, ALPHA)
        with pytest.raises(HandshakeError):
            receipt.verify(FN.address)

    def test_bad_channel_id_length(self):
        with pytest.raises(HandshakeError):
            OpenChannelReceipt.build(FN, b"short")


def make_pair(amount=100, m_b=5, result=b"", proof=(), status=ResponseStatus.OK):
    call = RpcCall.create("eth_blockNumber")
    request = PARPRequest.build(ALPHA, H_B, amount, call, LC)
    response = PARPResponse.build(ALPHA, request, m_b, result, list(proof),
                                  FN, status=status)
    return request, response


NO_HEADERS = staticmethod(lambda n: None)


class TestClassification:
    """Unit-level coverage of the §V-D decision table (integration tests
    drive the same logic through real servers)."""

    def classify(self, request, response, request_height=3):
        return classify_response(request, response, ALPHA, FN.address,
                                 request_height, lambda n: None)

    def test_valid_unverifiable_response(self):
        request, response = make_pair()
        report = self.classify(request, response)
        assert report.classification is ResponseClass.VALID

    def test_wrong_request_hash_invalid(self):
        request, response = make_pair()
        from dataclasses import replace

        forged = replace(response, h_req=keccak256(b"other"))
        report = self.classify(request, forged)
        assert report.classification is ResponseClass.INVALID
        assert report.check == "request-hash"

    def test_wrong_request_sig_echo_invalid(self):
        request, response = make_pair()
        from dataclasses import replace

        forged = replace(response, sig_req=b"\x01" * 65)
        report = self.classify(request, forged)
        assert report.classification is ResponseClass.INVALID

    def test_wrong_signer_invalid(self):
        call = RpcCall.create("eth_blockNumber")
        request = PARPRequest.build(ALPHA, H_B, 100, call, LC)
        rogue = PrivateKey.from_seed("hv:rogue3")
        response = PARPResponse.build(ALPHA, request, 5, b"", [], rogue)
        report = self.classify(request, response)
        assert report.classification is ResponseClass.INVALID
        assert report.check == "response-signature"

    def test_payment_mismatch_fraud(self):
        request, honest = make_pair()
        from repro.parp.adversary import _sign_response

        forged = _sign_response(FN, ALPHA, request, m_b=5,
                                amount=request.a + 1, result=b"", proof=[])
        report = self.classify(request, forged)
        assert report.classification is ResponseClass.FRAUD
        assert report.check == "payment-amount"

    def test_stale_height_fraud(self):
        request, response = make_pair(m_b=1)
        report = self.classify(request, response, request_height=4)
        assert report.classification is ResponseClass.FRAUD
        assert report.check == "timestamp"

    def test_equal_height_not_fraud(self):
        request, response = make_pair(m_b=4)
        report = self.classify(request, response, request_height=4)
        assert report.classification is ResponseClass.VALID

    def test_signed_error_is_valid_but_flagged(self):
        request, response = make_pair(status=ResponseStatus.ERROR)
        report = self.classify(request, response)
        assert report.classification is ResponseClass.VALID
        assert report.is_error_response

    def test_fraud_checks_precede_error_status(self):
        """Even an 'error' response must not lie about the amount."""
        request, _ = make_pair()
        from repro.parp.adversary import _sign_response

        forged = _sign_response(FN, ALPHA, request, m_b=5,
                                amount=request.a + 9, result=b"",
                                proof=[], status=ResponseStatus.ERROR)
        report = self.classify(request, forged)
        assert report.classification is ResponseClass.FRAUD
