"""Merkle proofs: inclusion, exclusion, and tamper resistance.

These are the exact objects PARP responses carry (π_γ) and the FDM verifies
on-chain, so the adversarial cases here are load-bearing for the protocol's
security claims.
"""

import pytest

from repro.crypto import keccak256
from repro.rlp import encode_int
from repro.trie import (
    EMPTY_TRIE_ROOT,
    MerklePatriciaTrie,
    ProofError,
    generate_proof,
    proof_size,
    verify_proof,
)


@pytest.fixture(scope="module")
def populated():
    trie = MerklePatriciaTrie()
    items = {keccak256(encode_int(i + 1)): encode_int(i + 1000) for i in range(128)}
    trie.update(items)
    return trie, items


class TestInclusion:
    def test_every_key_provable(self, populated):
        trie, items = populated
        for key, value in list(items.items())[:16]:
            proof = generate_proof(trie, key)
            assert verify_proof(trie.root_hash, key, proof) == value

    def test_proof_size_positive(self, populated):
        trie, items = populated
        key = next(iter(items))
        proof = generate_proof(trie, key)
        assert proof_size(proof) == sum(len(n) for n in proof) > 0

    def test_single_entry_trie(self):
        trie = MerklePatriciaTrie()
        trie.put(b"solo", b"value")
        proof = generate_proof(trie, b"solo")
        assert verify_proof(trie.root_hash, b"solo", proof) == b"value"

    def test_proof_with_inline_nodes(self):
        """Small sibling nodes are inlined in parents; proofs must still verify."""
        trie = MerklePatriciaTrie()
        trie.put(b"\x01", b"a")   # tiny leaves encode under 32 bytes
        trie.put(b"\x02", b"b")
        proof = generate_proof(trie, b"\x01")
        assert verify_proof(trie.root_hash, b"\x01", proof) == b"a"


class TestExclusion:
    def test_absent_key_proof(self, populated):
        trie, _ = populated
        absent = keccak256(b"definitely-not-present")
        proof = generate_proof(trie, absent)
        assert verify_proof(trie.root_hash, absent, proof) is None

    def test_empty_trie_exclusion(self):
        assert verify_proof(EMPTY_TRIE_ROOT, b"anything", []) is None

    def test_empty_trie_rejects_nonempty_proof(self):
        with pytest.raises(ProofError):
            verify_proof(EMPTY_TRIE_ROOT, b"k", [b"\x80"])

    def test_diverging_leaf_exclusion(self):
        trie = MerklePatriciaTrie()
        trie.put(b"abcdef", b"1")
        proof = generate_proof(trie, b"abcdeg")
        assert verify_proof(trie.root_hash, b"abcdeg", proof) is None


class TestTamperResistance:
    """Every forgery mode the fraud-proof protocol must catch."""

    def test_flipped_byte_in_node(self, populated):
        trie, items = populated
        key = next(iter(items))
        proof = generate_proof(trie, key)
        for index in range(len(proof)):
            tampered = list(proof)
            node = bytearray(tampered[index])
            node[len(node) // 2] ^= 0x01
            tampered[index] = bytes(node)
            with pytest.raises(ProofError):
                verify_proof(trie.root_hash, key, tampered)

    def test_missing_node(self, populated):
        trie, items = populated
        key = next(iter(items))
        proof = generate_proof(trie, key)
        if len(proof) > 1:
            with pytest.raises(ProofError):
                verify_proof(trie.root_hash, key, proof[:-1])

    def test_wrong_root(self, populated):
        trie, items = populated
        key = next(iter(items))
        proof = generate_proof(trie, key)
        with pytest.raises(ProofError):
            verify_proof(keccak256(b"evil root"), key, proof)

    def test_proof_for_other_key_fails_or_excludes(self, populated):
        """A proof for key A presented for key B must not prove B's value."""
        trie, items = populated
        keys = list(items)
        proof_a = generate_proof(trie, keys[0])
        try:
            result = verify_proof(trie.root_hash, keys[1], proof_a)
        except ProofError:
            return  # missing-node rejection: fine
        assert result != items[keys[1]] or result is None

    def test_value_swap_detected(self):
        """Re-rooting a modified leaf must change every hash up the path."""
        trie = MerklePatriciaTrie()
        trie.update({b"k1": b"honest", b"k2": b"other"})
        honest_root = trie.root_hash
        evil = MerklePatriciaTrie()
        evil.update({b"k1": b"forged", b"k2": b"other"})
        forged_proof = generate_proof(evil, b"k1")
        with pytest.raises(ProofError):
            verify_proof(honest_root, b"k1", forged_proof)

    def test_garbage_nodes_rejected(self):
        trie = MerklePatriciaTrie()
        trie.put(b"k", b"v")
        with pytest.raises(ProofError):
            verify_proof(trie.root_hash, b"k", [b"\xde\xad\xbe\xef"])

    def test_undecodable_node_rejected(self, populated):
        trie, items = populated
        key = next(iter(items))
        proof = generate_proof(trie, key)
        # replace the final node with bytes that hash right... impossible —
        # so replace with garbage of a *different* hash and expect missing-node.
        with pytest.raises(ProofError):
            verify_proof(trie.root_hash, key, proof[:-1] + [b"\xff" * 40])


class TestProofSizeShape:
    """Fig. 6 foundations: proof size grows with trie size, dips for short
    keys (RLP index encoding), and is dominated by branch nodes."""

    def test_grows_with_population(self):
        sizes = []
        for population in (4, 64, 512):
            trie = MerklePatriciaTrie()
            for i in range(population):
                trie.put(keccak256(encode_int(i + 1)), b"v" * 10)
            probe = keccak256(encode_int(1))
            sizes.append(proof_size(generate_proof(trie, probe)))
        assert sizes[0] < sizes[1] < sizes[2]
