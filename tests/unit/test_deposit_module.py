"""Full Nodes Deposit Module: staking, unbonding, slashing authorization."""

import pytest

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS, TREASURY_ADDRESS
from repro.crypto import PrivateKey
from repro.node import Devnet
from repro.parp.constants import MIN_FULL_NODE_DEPOSIT, UNBONDING_BLOCKS

FN = PrivateKey.from_seed("dep:fn")
LC = PrivateKey.from_seed("dep:lc")
WN = PrivateKey.from_seed("dep:wn")
INTRUDER = PrivateKey.from_seed("dep:intruder")
TOKEN = 10 ** 18


@pytest.fixture
def net() -> Devnet:
    return Devnet(GenesisConfig(allocations={
        FN.address: 100 * TOKEN, LC.address: 10 * TOKEN,
        WN.address: 10 * TOKEN, INTRUDER.address: 10 * TOKEN,
    }))


def deposit(net, key=FN, value=MIN_FULL_NODE_DEPOSIT):
    return net.execute(key, DEPOSIT_MODULE_ADDRESS, "deposit", value=value)


class TestDeposit:
    def test_deposit_registers_collateral(self, net):
        result = deposit(net)
        assert result.succeeded
        assert net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                             [FN.address]) == MIN_FULL_NODE_DEPOSIT
        assert net.balance_of(DEPOSIT_MODULE_ADDRESS) == MIN_FULL_NODE_DEPOSIT

    def test_deposit_emits_discovery_event(self, net):
        result = deposit(net)
        from repro.crypto import keccak256

        topics = result.receipt.logs[0].topics
        assert topics[0] == keccak256(b"Deposited")
        assert topics[1][-20:] == FN.address.to_bytes()

    def test_deposits_accumulate(self, net):
        deposit(net, value=MIN_FULL_NODE_DEPOSIT // 2)
        assert not net.call_view(DEPOSIT_MODULE_ADDRESS, "is_eligible", [FN.address])
        deposit(net, value=MIN_FULL_NODE_DEPOSIT // 2)
        assert net.call_view(DEPOSIT_MODULE_ADDRESS, "is_eligible", [FN.address])

    def test_zero_value_rejected(self, net):
        result = net.execute(FN, DEPOSIT_MODULE_ADDRESS, "deposit", value=0)
        assert not result.succeeded

    def test_eligibility_threshold(self, net):
        deposit(net, value=MIN_FULL_NODE_DEPOSIT - 1)
        assert not net.call_view(DEPOSIT_MODULE_ADDRESS, "is_eligible", [FN.address])


class TestUnbonding:
    def test_withdraw_requires_stop_serving(self, net):
        deposit(net)
        result = net.execute(FN, DEPOSIT_MODULE_ADDRESS, "withdraw")
        assert not result.succeeded

    def test_withdraw_requires_waiting(self, net):
        deposit(net)
        assert net.execute(FN, DEPOSIT_MODULE_ADDRESS, "stop_serving").succeeded
        result = net.execute(FN, DEPOSIT_MODULE_ADDRESS, "withdraw")
        assert not result.succeeded  # window not yet over

    def test_withdraw_after_unbonding(self, net):
        deposit(net)
        net.execute(FN, DEPOSIT_MODULE_ADDRESS, "stop_serving")
        net.advance_blocks(UNBONDING_BLOCKS + 1)
        before = net.balance_of(FN.address)
        result = net.execute(FN, DEPOSIT_MODULE_ADDRESS, "withdraw")
        assert result.succeeded
        assert net.balance_of(FN.address) > before
        assert net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of", [FN.address]) == 0

    def test_unbonding_node_not_eligible(self, net):
        deposit(net)
        net.execute(FN, DEPOSIT_MODULE_ADDRESS, "stop_serving")
        assert not net.call_view(DEPOSIT_MODULE_ADDRESS, "is_eligible", [FN.address])

    def test_stop_serving_without_deposit_rejected(self, net):
        result = net.execute(INTRUDER, DEPOSIT_MODULE_ADDRESS, "stop_serving")
        assert not result.succeeded


class TestSlashing:
    def test_only_fraud_module_may_slash(self, net):
        deposit(net)
        result = net.execute(
            INTRUDER, DEPOSIT_MODULE_ADDRESS, "slash",
            [FN.address, LC.address, WN.address],
        )
        assert not result.succeeded
        assert net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                             [FN.address]) == MIN_FULL_NODE_DEPOSIT

    def test_slash_splits_sum_to_deposit(self, net):
        """The 3-way split must conserve the confiscated amount exactly."""
        from repro.contracts.deposit import (
            SLASH_REPORTER_BPS, SLASH_TREASURY_BPS, SLASH_WITNESS_BPS,
        )

        assert SLASH_TREASURY_BPS + SLASH_REPORTER_BPS + SLASH_WITNESS_BPS == 10_000
