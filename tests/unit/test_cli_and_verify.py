"""The installed CLI demos and the standalone lightclient verifiers."""

import pytest

from repro.cli import main as cli_main
from repro.lightclient.verify import (
    verify_account,
    verify_balance,
    verify_receipt_at,
    verify_storage_slot,
    verify_transaction_at,
)


class TestCli:
    def test_quickstart_demo(self, capsys):
        assert cli_main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "channel open" in out
        assert "verified balance" in out

    def test_fraud_demo(self, capsys):
        assert cli_main(["fraud"]) == 0
        out = capsys.readouterr().out
        assert "fraud detected" in out
        assert "slashed" in out

    def test_providers_demo(self, capsys):
        assert cli_main(["providers"]) == 0
        assert "infura" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])


class TestStandaloneVerify:
    """The non-PARP verification helpers over real chain data."""

    @pytest.fixture
    def chain_data(self, devnet, keys):
        from repro.chain import UnsignedTransaction

        tx = UnsignedTransaction(
            nonce=0, gas_price=10 ** 9, gas_limit=21_000,
            to=keys.bob.address, value=77,
        ).sign(keys.alice)
        devnet.chain.add_transaction(tx)
        block = devnet.mine()
        return devnet, keys, block, tx

    def test_verify_account_and_balance(self, chain_data):
        devnet, keys, block, _ = chain_data
        state = devnet.chain.state_at(block.number)
        proof = state.prove_account(keys.bob.address)
        account = verify_account(block.header, keys.bob.address, proof)
        assert account.balance == 3 * 10 ** 18 + 77
        assert verify_balance(block.header, keys.bob.address, proof) == account.balance

    def test_verify_absent_account(self, chain_data):
        devnet, keys, block, _ = chain_data
        from repro.crypto import PrivateKey

        ghost = PrivateKey.from_seed("verify:ghost").address
        proof = devnet.chain.state_at(block.number).prove_account(ghost)
        assert verify_account(block.header, ghost, proof) is None
        assert verify_balance(block.header, ghost, proof) == 0

    def test_verify_transaction_and_receipt(self, chain_data):
        devnet, keys, block, tx = chain_data
        from repro.chain import index_key
        from repro.trie import generate_proof

        tx_proof = generate_proof(block.transaction_trie, index_key(0))
        proven_tx = verify_transaction_at(block.header, 0, tx_proof)
        assert proven_tx.hash == tx.hash

        receipt_proof = generate_proof(block.receipt_trie, index_key(0))
        receipt = verify_receipt_at(block.header, 0, receipt_proof)
        assert receipt.succeeded

    def test_verify_storage_slot(self, chain_data):
        devnet, keys, block, _ = chain_data
        from repro.contracts import CHANNELS_MODULE_ADDRESS

        slot = b"\x05" * 32
        devnet.chain.state.set_storage(CHANNELS_MODULE_ADDRESS, slot, b"\x2b")
        fresh = devnet.chain.build_block()
        state = devnet.chain.state_at(fresh.number)
        proof = (state.prove_account(CHANNELS_MODULE_ADDRESS)
                 + state.prove_storage(CHANNELS_MODULE_ADDRESS, slot))
        assert verify_storage_slot(fresh.header, CHANNELS_MODULE_ADDRESS,
                                   slot, proof) == b"\x2b"

    def test_tampered_header_defeats_verification(self, chain_data):
        devnet, keys, block, _ = chain_data
        from dataclasses import replace

        from repro.trie import ProofError

        state = devnet.chain.state_at(block.number)
        proof = state.prove_account(keys.bob.address)
        forged = replace(block.header, state_root=b"\x99" * 32)
        with pytest.raises(ProofError):
            verify_account(forged, keys.bob.address, proof)
