"""Fraud Detection Module: Algorithm 2 branch coverage on-chain.

Builds raw request/response pairs directly (below the client/server layer)
so each FDM branch can be driven in isolation — including the paths the
normal client could never produce.
"""

import pytest

from repro.chain import GenesisConfig
from repro.contracts import (
    CHANNELS_MODULE_ADDRESS,
    DEPOSIT_MODULE_ADDRESS,
    FRAUD_MODULE_ADDRESS,
    TREASURY_ADDRESS,
)
from repro.crypto import PrivateKey
from repro.node import Devnet
from repro.parp.constants import MIN_FULL_NODE_DEPOSIT
from repro.parp.messages import (
    PARPRequest,
    PARPResponse,
    RpcCall,
    handshake_digest,
)
from repro.parp.queries import execute_query
from repro.node.fullnode import FullNode

FN = PrivateKey.from_seed("fdm:fn")
LC = PrivateKey.from_seed("fdm:lc")
WN = PrivateKey.from_seed("fdm:wn")
ALICE = PrivateKey.from_seed("fdm:alice")
TOKEN = 10 ** 18


@pytest.fixture
def env():
    net = Devnet(GenesisConfig(allocations={
        FN.address: 100 * TOKEN, LC.address: 10 * TOKEN,
        WN.address: 10 * TOKEN, ALICE.address: 2 * TOKEN,
    }))
    net.execute(FN, DEPOSIT_MODULE_ADDRESS, "deposit", value=MIN_FULL_NODE_DEPOSIT)
    expiry = net.chain.head.header.timestamp + 1_000
    sig = FN.sign(handshake_digest(LC.address, expiry)).to_bytes()
    result = net.execute(LC, CHANNELS_MODULE_ADDRESS, "open_channel",
                         [FN.address, expiry, sig], value=TOKEN)
    alpha = result.return_value
    net.advance_blocks(2)
    node = FullNode(net.chain, key=FN)
    return net, node, alpha


def balance_exchange(net, node, alpha, amount=10_000):
    """An honest request/response pair for eth_getBalance(alice)."""
    call = RpcCall.create("eth_getBalance", ALICE.address)
    h_b = net.chain.head.hash
    request = PARPRequest.build(alpha, h_b, amount, call, LC)
    m_b = node.head_number()
    result, proof = execute_query(node, call, m_b)
    response = PARPResponse.build(alpha, request, m_b, result, proof, FN)
    return request, response


def submit(net, request, response, alpha, proof_header=None, req_header=None):
    chain = net.chain
    req_header = req_header or chain.get_block_by_hash(request.h_b).header
    proof_header = proof_header or chain.get_header(response.m_b)
    return net.execute(
        WN, FRAUD_MODULE_ADDRESS, "submit_fraud_proof",
        [request.encode_wire(), response.encode_for_fraud(alpha),
         proof_header.encode(), req_header.encode(), WN.address],
    )


class TestHonestResponsesSafe:
    def test_honest_response_reverts(self, env):
        """Algorithm 2 must never slash an honest node."""
        net, node, alpha = env
        request, response = balance_exchange(net, node, alpha)
        result = submit(net, request, response, alpha)
        assert not result.succeeded
        assert "no fraud" in result.error
        assert net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                             [FN.address]) == MIN_FULL_NODE_DEPOSIT


class TestFraudBranches:
    def test_payment_mismatch_slashes(self, env):
        net, node, alpha = env
        request, honest = balance_exchange(net, node, alpha)
        from repro.parp.adversary import _sign_response

        forged = _sign_response(FN, alpha, request, m_b=honest.m_b,
                                amount=request.a + 5, result=honest.result,
                                proof=list(honest.proof))
        result = submit(net, request, forged, alpha)
        assert result.succeeded
        assert net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                             [FN.address]) == 0

    def test_stale_height_slashes(self, env):
        net, node, alpha = env
        call = RpcCall.create("eth_getBalance", ALICE.address)
        pinned = net.chain.head  # request pins the current tip
        request = PARPRequest.build(alpha, pinned.hash, 10_000, call, LC)
        stale_height = pinned.number - 2
        result_bytes, proof = execute_query(node, call, stale_height)
        response = PARPResponse.build(alpha, request, stale_height,
                                      result_bytes, proof, FN)
        outcome = submit(net, request, response, alpha,
                         proof_header=net.chain.get_header(stale_height))
        assert outcome.succeeded

    def test_bad_proof_slashes(self, env):
        net, node, alpha = env
        request, honest = balance_exchange(net, node, alpha)
        bogus = PARPResponse.build(
            alpha, request, honest.m_b, honest.result,
            [node[::-1] for node in honest.proof], FN,
        )
        result = submit(net, request, bogus, alpha)
        assert result.succeeded

    def test_tampered_result_slashes(self, env):
        net, node, alpha = env
        request, honest = balance_exchange(net, node, alpha)
        from repro.chain import Account

        account = Account.decode(honest.result)
        lie = account.with_balance(account.balance * 7).encode()
        forged = PARPResponse.build(alpha, request, honest.m_b, lie,
                                    list(honest.proof), FN)
        result = submit(net, request, forged, alpha)
        assert result.succeeded

    def test_slash_distribution(self, env):
        net, node, alpha = env
        request, honest = balance_exchange(net, node, alpha)
        from repro.parp.adversary import _sign_response

        forged = _sign_response(FN, alpha, request, m_b=honest.m_b,
                                amount=request.a + 5, result=honest.result,
                                proof=list(honest.proof))
        lc_before = net.balance_of(LC.address)
        wn_before = net.balance_of(WN.address)
        tr_before = net.balance_of(TREASURY_ADDRESS)
        result = submit(net, request, forged, alpha)
        assert result.succeeded
        lc_gain = net.balance_of(LC.address) - lc_before
        tr_gain = net.balance_of(TREASURY_ADDRESS) - tr_before
        # witness paid gas, so compare against the raw 25% cut
        wn_gain_plus_gas = (net.balance_of(WN.address) - wn_before
                            + result.gas_used * 12 * 10 ** 9)
        assert lc_gain == MIN_FULL_NODE_DEPOSIT * 25 // 100
        assert wn_gain_plus_gas == MIN_FULL_NODE_DEPOSIT * 25 // 100
        assert tr_gain == MIN_FULL_NODE_DEPOSIT * 50 // 100


class TestRejectionBranches:
    """Submissions that must revert without slashing."""

    def deposit_intact(self, net):
        assert net.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                             [FN.address]) == MIN_FULL_NODE_DEPOSIT

    def test_channel_id_mismatch(self, env):
        net, node, alpha = env
        request, response = balance_exchange(net, node, alpha)
        result = net.execute(
            WN, FRAUD_MODULE_ADDRESS, "submit_fraud_proof",
            [request.encode_wire(), response.encode_for_fraud(b"\x00" * 16),
             net.chain.get_header(response.m_b).encode(),
             net.chain.get_block_by_hash(request.h_b).header.encode(),
             WN.address],
        )
        assert not result.succeeded
        self.deposit_intact(net)

    def test_unknown_channel(self, env):
        net, node, alpha = env
        fake_alpha = b"\x42" * 16
        call = RpcCall.create("eth_getBalance", ALICE.address)
        request = PARPRequest.build(fake_alpha, net.chain.head.hash, 1, call, LC)
        m_b = node.head_number()
        result_bytes, proof = execute_query(node, call, m_b)
        response = PARPResponse.build(fake_alpha, request, m_b, result_bytes,
                                      proof, FN)
        result = submit(net, request, response, fake_alpha)
        assert not result.succeeded
        self.deposit_intact(net)

    def test_request_not_signed_by_channel_lc(self, env):
        net, node, alpha = env
        imposter = PrivateKey.from_seed("fdm:imposter")
        call = RpcCall.create("eth_getBalance", ALICE.address)
        request = PARPRequest.build(alpha, net.chain.head.hash, 1, call, imposter)
        m_b = node.head_number()
        result_bytes, proof = execute_query(node, call, m_b)
        response = PARPResponse.build(alpha, request, m_b, result_bytes, proof, FN)
        result = submit(net, request, response, alpha)
        assert not result.succeeded
        self.deposit_intact(net)

    def test_response_not_signed_by_channel_fn(self, env):
        net, node, alpha = env
        rogue = PrivateKey.from_seed("fdm:rogue")
        request, _ = balance_exchange(net, node, alpha)
        call = request.call
        result_bytes, proof = execute_query(node, call, node.head_number())
        response = PARPResponse.build(alpha, request, node.head_number(),
                                      result_bytes, proof, rogue)
        result = submit(net, request, response, alpha)
        assert not result.succeeded
        self.deposit_intact(net)

    def test_wrong_height_reference_header(self, env):
        net, node, alpha = env
        request, response = balance_exchange(net, node, alpha)
        wrong_header = net.chain.get_header(0)  # hash won't match req.h_b
        result = submit(net, request, response, alpha, req_header=wrong_header)
        assert not result.succeeded
        self.deposit_intact(net)

    def test_non_canonical_proof_header(self, env):
        net, node, alpha = env
        request, honest = balance_exchange(net, node, alpha)
        # bogus proof forces the Merkle branch; forged header must be caught
        bogus = PARPResponse.build(alpha, request, honest.m_b, honest.result,
                                   [b"\xbb" * 40], FN)
        from dataclasses import replace

        forged_header = replace(net.chain.get_header(bogus.m_b),
                                extra_data=b"not-canonical")
        result = submit(net, request, bogus, alpha, proof_header=forged_header)
        assert not result.succeeded
        self.deposit_intact(net)

    def test_undecodable_evidence(self, env):
        net, node, alpha = env
        result = net.execute(
            WN, FRAUD_MODULE_ADDRESS, "submit_fraud_proof",
            [b"garbage", b"more garbage", b"h", b"h", WN.address],
        )
        assert not result.succeeded

    def test_closed_channel_not_adjudicable(self, env):
        net, node, alpha = env
        request, honest = balance_exchange(net, node, alpha)
        # close + settle the channel
        from repro.parp.constants import DISPUTE_WINDOW_BLOCKS

        net.execute(LC, CHANNELS_MODULE_ADDRESS, "close_channel", [alpha, 0, b""])
        net.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
        net.execute(LC, CHANNELS_MODULE_ADDRESS, "confirm_closure", [alpha])
        from repro.parp.adversary import _sign_response

        forged = _sign_response(FN, alpha, request, m_b=honest.m_b,
                                amount=request.a + 5, result=honest.result,
                                proof=list(honest.proof))
        # header windows: request grew stale; use fresh pair anyway
        result = submit(net, request, forged, alpha)
        assert not result.succeeded
        self.deposit_intact(net)
