"""Adversary module: every attack yields its designed classification.

Unit-level complement to the integration matrix: checks the forged
responses directly (without the session layer), including that each attack
changes exactly the field it claims to change.
"""

import pytest

from repro.parp.adversary import ATTACKS, MaliciousFullNodeServer, _sign_response
from repro.parp.messages import PARPRequest, ResponseStatus, RpcCall
from repro.parp.states import ResponseClass
from repro.parp.verification import classify_response

from ..conftest import make_parp_env

EXPECTED = {
    "inflate_balance": ResponseClass.FRAUD,
    "bogus_proof": ResponseClass.FRAUD,
    "overcharge": ResponseClass.FRAUD,
    "stale_height": ResponseClass.FRAUD,
    "wrong_signature": ResponseClass.INVALID,
    "wrong_request_hash": ResponseClass.INVALID,
    "wrong_channel": ResponseClass.INVALID,
}


class TestAttackCatalog:
    def test_catalog_is_complete(self):
        assert set(ATTACKS) == set(EXPECTED)

    def test_unknown_attack_rejected(self, devnet, keys):
        from repro.node import FullNode

        node = FullNode(devnet.chain, key=keys.fn)
        with pytest.raises(ValueError):
            MaliciousFullNodeServer(node, attack="ddos")

    @pytest.mark.parametrize("attack", sorted(EXPECTED))
    def test_classification_matrix(self, devnet, keys, attack):
        env = make_parp_env(devnet, keys,
                            server_cls=MaliciousFullNodeServer, attack=attack)
        session = env.session
        call = RpcCall.create("eth_getBalance", keys.alice.address)
        amount = session.channel.next_amount(session.fee_schedule.price(call))
        request = session.build_request(call, amount)
        session.channel.record_request(amount)
        raw = env.server.serve_request(request.encode_wire())
        from repro.parp.messages import PARPResponse

        response = PARPResponse.decode_wire(raw)
        # bypassing the session layer means syncing headers manually
        if response.m_b > session.headers.chain.tip_number:
            session.headers.sync_to(response.m_b)
        report = classify_response(
            request, response, env.alpha, env.server.address,
            session.headers.height_of(request.h_b),
            session.headers.get_header,
        )
        assert report.classification is EXPECTED[attack], report
        assert env.server.attacks_launched == 1

    def test_overcharge_changes_only_amount(self, devnet, keys):
        env = make_parp_env(devnet, keys,
                            server_cls=MaliciousFullNodeServer,
                            attack="overcharge")
        session = env.session
        call = RpcCall.create("eth_getBalance", keys.alice.address)
        amount = session.channel.next_amount(session.fee_schedule.price(call))
        request = session.build_request(call, amount)
        session.channel.record_request(amount)
        from repro.parp.messages import PARPResponse

        response = PARPResponse.decode_wire(
            env.server.serve_request(request.encode_wire()))
        assert response.a == request.a + 10 ** 9
        # the forgery is still *signed by the attacker* — attributability
        assert response.signer(env.alpha) == env.server.address

    def test_sign_response_helper_signs_lies(self, devnet, keys):
        env = make_parp_env(devnet, keys)
        call = RpcCall.create("eth_blockNumber")
        request = PARPRequest.build(env.alpha, devnet.chain.head.hash, 100,
                                    call, keys.lc)
        forged = _sign_response(keys.fn, env.alpha, request, m_b=1,
                                amount=999, result=b"lie", proof=[],
                                status=ResponseStatus.OK)
        assert forged.signer(env.alpha) == keys.fn.address
        assert forged.a == 999
