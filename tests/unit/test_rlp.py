"""RLP codec: official vectors, canonicality enforcement, typed sedes."""

import pytest

from repro.rlp import (
    Binary,
    CountableList,
    ListSedes,
    RLPError,
    address_bytes,
    big_endian_int,
    decode,
    decode_int,
    deserialize,
    encode,
    encode_int,
    hash32,
    serialize,
)

LOREM = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit"


class TestOfficialVectors:
    """Vectors from the Ethereum RLP specification."""

    CASES = [
        (b"", b"\x80"),
        (b"\x00", b"\x00"),
        (b"\x0f", b"\x0f"),
        (b"\x7f", b"\x7f"),
        (b"\x80", b"\x81\x80"),
        (b"dog", b"\x83dog"),
        (b"\x04\x00", b"\x82\x04\x00"),
        (LOREM, b"\xb88" + LOREM),
        ([], b"\xc0"),
        ([b"cat", b"dog"], b"\xc8\x83cat\x83dog"),
        ([[], [[]], [[], [[]]]], bytes.fromhex("c7c0c1c0c3c0c1c0")),
    ]

    @pytest.mark.parametrize("value,expected", CASES)
    def test_encode(self, value, expected):
        assert encode(value) == expected

    @pytest.mark.parametrize("value,expected", CASES)
    def test_decode(self, value, expected):
        assert decode(expected) == value

    def test_long_list(self):
        value = [LOREM] * 10
        assert decode(encode(value)) == value

    def test_long_string_boundary_55_56(self):
        for n in (54, 55, 56, 57):
            data = b"a" * n
            assert decode(encode(data)) == data


class TestIntegers:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 256, 2 ** 64, 2 ** 256 - 1])
    def test_roundtrip(self, value):
        assert decode_int(encode_int(value)) == value

    def test_zero_is_empty(self):
        assert encode_int(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(RLPError):
            encode_int(-1)

    def test_leading_zero_rejected(self):
        with pytest.raises(RLPError):
            decode_int(b"\x00\x01")


class TestCanonicality:
    """Malformed or non-minimal encodings must be rejected, not normalized."""

    def test_trailing_bytes(self):
        with pytest.raises(RLPError):
            decode(b"\x83dog!")

    def test_truncated_string(self):
        with pytest.raises(RLPError):
            decode(b"\x85dog")

    def test_truncated_list(self):
        with pytest.raises(RLPError):
            decode(b"\xc8\x83cat")

    def test_non_canonical_single_byte(self):
        with pytest.raises(RLPError):
            decode(b"\x81\x05")  # 0x05 must encode as itself

    def test_non_canonical_long_form_length(self):
        # length 3 must use the short form, not the long form
        with pytest.raises(RLPError):
            decode(b"\xb8\x03dog")

    def test_length_field_leading_zero(self):
        with pytest.raises(RLPError):
            decode(b"\xb9\x00\x38" + LOREM)

    def test_empty_input(self):
        with pytest.raises(RLPError):
            decode(b"")

    def test_rejects_raw_int_encode(self):
        with pytest.raises(RLPError):
            encode(5)  # type: ignore[arg-type]

    def test_rejects_unknown_type(self):
        with pytest.raises(RLPError):
            encode(3.14)  # type: ignore[arg-type]


class TestSedes:
    def test_int_sedes_roundtrip(self):
        assert deserialize(big_endian_int, serialize(big_endian_int, 1234)) == 1234

    def test_int_sedes_width_bound(self):
        from repro.rlp.sedes import BigEndianInt

        narrow = BigEndianInt(max_bytes=2)
        with pytest.raises(RLPError):
            serialize(narrow, 2 ** 17)

    def test_binary_exact(self):
        with pytest.raises(RLPError):
            serialize(hash32, b"\x00" * 31)
        assert deserialize(hash32, serialize(hash32, b"\x11" * 32)) == b"\x11" * 32

    def test_address_sedes(self):
        assert deserialize(address_bytes, serialize(address_bytes, b"\x22" * 20)) == b"\x22" * 20

    def test_countable_list(self):
        numbers = CountableList(big_endian_int)
        assert deserialize(numbers, serialize(numbers, [1, 2, 3])) == [1, 2, 3]

    def test_struct_sedes(self):
        struct = ListSedes(big_endian_int, Binary(), hash32)
        value = (7, b"blob", b"\x33" * 32)
        assert deserialize(struct, serialize(struct, value)) == value

    def test_struct_field_count_enforced(self):
        struct = ListSedes(big_endian_int, Binary())
        with pytest.raises(RLPError):
            serialize(struct, (1,))
        with pytest.raises(RLPError):
            deserialize(struct, encode([b"\x01", b"x", b"extra"]))

    def test_type_errors(self):
        with pytest.raises(RLPError):
            serialize(big_endian_int, "not an int")
        with pytest.raises(RLPError):
            serialize(Binary(), 42)
