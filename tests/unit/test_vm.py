"""Contract runtime: gas metering, revert semantics, events, dispatch."""

import pytest

from repro.chain import GenesisConfig, StateDB, UnsignedTransaction
from repro.crypto import PrivateKey, keccak256
from repro.crypto.keys import Address
from repro.node import Devnet
from repro.vm import (
    ContractRegistry,
    GasMeter,
    NativeContract,
    OutOfGas,
    Revert,
    TransactionExecutor,
    abi,
    contract_method,
    gas,
)

KEY = PrivateKey.from_seed("vm:sender")
TOKEN = 10 ** 18
PROBE_ADDRESS = Address.from_hex("0x00000000000000000000000000000000000000F1")


class ProbeContract(NativeContract):
    """Minimal contract exercising every runtime facility."""

    name = "Probe"

    @contract_method(payable=True)
    def store(self, ctx, args):
        slot = abi.as_int(args[0])
        value = abi.as_bytes(args[1])
        ctx.storage.set(slot, value)
        ctx.emit("Stored", topics=[value[:32]], data=value)
        return len(value)

    @contract_method()
    def load(self, ctx, args):
        return ctx.storage.get(abi.as_int(args[0]))

    @contract_method()
    def fail(self, ctx, args):
        ctx.storage.set(1, b"\xaa")  # must be rolled back
        raise Revert("deliberate failure")

    @contract_method()
    def burn(self, ctx, args):
        while True:
            ctx.charge(10_000, "spin")

    @contract_method()
    def clear(self, ctx, args):
        ctx.storage.set(abi.as_int(args[0]), b"")

    @contract_method(payable=True)
    def forward(self, ctx, args):
        ctx.transfer(abi.as_address(args[0]), ctx.value)


@pytest.fixture
def env():
    net = Devnet(GenesisConfig(allocations={KEY.address: 100 * TOKEN}))
    probe = ProbeContract(PROBE_ADDRESS)
    net.registry.deploy(probe)
    return net


class TestGasMeter:
    def test_charges_accumulate_with_breakdown(self):
        meter = GasMeter(100_000)
        meter.charge(21_000, "intrinsic")
        meter.charge(100, "sload")
        meter.charge(100, "sload")
        assert meter.used == 21_200
        assert meter.breakdown == {"intrinsic": 21_000, "sload": 200}
        assert meter.remaining == 78_800

    def test_out_of_gas_consumes_everything(self):
        meter = GasMeter(1_000)
        with pytest.raises(OutOfGas):
            meter.charge(2_000, "big")
        assert meter.used == 1_000

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            GasMeter(10).charge(-1)

    def test_calldata_gas(self):
        assert gas.calldata_gas(b"") == 0
        assert gas.calldata_gas(b"\x00\x00") == 8
        assert gas.calldata_gas(b"\x01\x02") == 32

    def test_keccak_gas_words(self):
        assert gas.keccak_gas(0) == 30
        assert gas.keccak_gas(1) == 36
        assert gas.keccak_gas(32) == 36
        assert gas.keccak_gas(33) == 42


class TestExecution:
    def test_plain_transfer_costs_21000(self, env):
        other = PrivateKey.from_seed("vm:other").address
        tx = env.send_transaction(KEY, other, value=123)
        env.mine()
        res = env.result_of(tx.hash)
        assert res.gas_used == 21_000
        assert env.balance_of(other) == 123

    def test_contract_call_and_return(self, env):
        result = env.execute(KEY, PROBE_ADDRESS, "store", [5, b"hello"], value=1)
        assert result.succeeded
        assert result.return_value == 5
        assert env.call_view(PROBE_ADDRESS, "load", [5]) == b"hello"

    def test_value_reaches_contract(self, env):
        env.execute(KEY, PROBE_ADDRESS, "store", [1, b"x"], value=777)
        assert env.balance_of(PROBE_ADDRESS) == 777

    def test_revert_rolls_back_state_but_charges_gas(self, env):
        env.execute(KEY, PROBE_ADDRESS, "store", [1, b"\x11"])
        balance_before = env.balance_of(KEY.address)
        result = env.execute(KEY, PROBE_ADDRESS, "fail")
        assert not result.succeeded
        assert result.error is not None and "deliberate" in result.error
        # storage rolled back
        assert env.call_view(PROBE_ADDRESS, "load", [1]) == b"\x11"
        # but gas was paid
        assert env.balance_of(KEY.address) < balance_before

    def test_revert_drops_logs(self, env):
        result = env.execute(KEY, PROBE_ADDRESS, "fail")
        assert result.receipt.logs == ()

    def test_out_of_gas_consumes_limit(self, env):
        result = env.execute(KEY, PROBE_ADDRESS, "burn", gas_limit=100_000)
        assert not result.succeeded
        assert result.gas_used == 100_000

    def test_nonpayable_rejects_value(self, env):
        result = env.execute(KEY, PROBE_ADDRESS, "load", [1], value=5)
        assert not result.succeeded
        assert "not payable" in result.error

    def test_unknown_selector_reverts(self, env):
        result = env.execute(KEY, PROBE_ADDRESS, "no_such_method")
        assert not result.succeeded

    def test_nonce_increments_even_on_revert(self, env):
        env.execute(KEY, PROBE_ADDRESS, "fail")
        assert env.chain.state.nonce_of(KEY.address) == 1

    def test_contract_to_eoa_transfer(self, env):
        target = PrivateKey.from_seed("vm:target").address
        env.execute(KEY, PROBE_ADDRESS, "forward", [target], value=500)
        assert env.balance_of(target) == 500
        assert env.balance_of(PROBE_ADDRESS) == 0


class TestStorageGasAccounting:
    def test_fresh_sstore_costs_set(self, env):
        result = env.execute(KEY, PROBE_ADDRESS, "store", [9, b"\x01"])
        # cold sload surcharge + 20k set must be present in the breakdown
        assert result.gas_breakdown.get("sstore", 0) >= gas.SSTORE_SET_GAS

    def test_update_cheaper_than_set(self, env):
        first = env.execute(KEY, PROBE_ADDRESS, "store", [9, b"\x01"])
        second = env.execute(KEY, PROBE_ADDRESS, "store", [9, b"\x02"])
        assert second.gas_used < first.gas_used

    def test_clearing_earns_refund(self, env):
        env.execute(KEY, PROBE_ADDRESS, "store", [9, b"\x01"])
        write = env.execute(KEY, PROBE_ADDRESS, "store", [8, b"\x01"])
        clear = env.execute(KEY, PROBE_ADDRESS, "clear", [9])
        assert clear.gas_used < write.gas_used

    def test_warm_second_access_cheaper(self, env):
        class DoubleRead(NativeContract):
            name = "DoubleRead"

            @contract_method()
            def once(self, ctx, args):
                ctx.storage.get(3)

            @contract_method()
            def twice(self, ctx, args):
                ctx.storage.get(3)
                ctx.storage.get(3)

        addr = Address.from_hex("0x00000000000000000000000000000000000000F2")
        env.registry.deploy(DoubleRead(addr))
        once = env.execute(KEY, addr, "once")
        twice = env.execute(KEY, addr, "twice")
        extra = twice.gas_used - once.gas_used
        assert extra < gas.SLOAD_COLD_GAS  # second read was warm


class TestAbi:
    def test_selector_is_keccak_prefix(self):
        assert abi.selector("deposit") == keccak256(b"deposit")[:4]

    def test_encode_decode_roundtrip(self):
        data = abi.encode_call("m", [1, b"bytes", KEY.address, True, [2, 3]])
        selector, args = abi.decode_call(data)
        assert selector == abi.selector("m")
        assert abi.as_int(args[0]) == 1
        assert abi.as_bytes(args[1]) == b"bytes"
        assert abi.as_address(args[2]) == KEY.address
        assert abi.as_bool(args[3]) is True
        inner = abi.as_list(args[4])
        assert [abi.as_int(x) for x in inner] == [2, 3]

    def test_too_short_calldata(self):
        with pytest.raises(abi.ABIError):
            abi.decode_call(b"\x01\x02")

    def test_negative_int_rejected(self):
        with pytest.raises(abi.ABIError):
            abi.encode_args([-5])

    def test_typed_accessor_errors(self):
        with pytest.raises(abi.ABIError):
            abi.as_address(b"short")
        with pytest.raises(abi.ABIError):
            abi.as_bool(b"\x07")  # 7 is not a boolean
        with pytest.raises(abi.ABIError):
            abi.as_int([b"list"])
