"""Keys and Ethereum address derivation."""

import pytest

from repro.crypto import keccak256
from repro.crypto.keys import Address, PrivateKey, PublicKey

# Canonical Ethereum vectors: addresses of private keys 1 and 2.
KEY1_ADDRESS = "0x7E5F4552091A69125d5DfCb7b8C2659029395Bdf"
KEY2_ADDRESS = "0x2B5AD5c4795c026514f8317c7a215E218DcCD6cF"


class TestAddressDerivation:
    def test_known_vector_key1(self):
        assert PrivateKey(1).address.hex_checksum() == KEY1_ADDRESS

    def test_known_vector_key2(self):
        assert PrivateKey(2).address.hex_checksum() == KEY2_ADDRESS

    def test_eip55_checksum_mixed_case(self):
        checksum = PrivateKey(1).address.hex_checksum()
        assert checksum != checksum.lower() and checksum != checksum.upper()

    def test_address_is_20_bytes(self):
        assert len(PrivateKey.generate().address.to_bytes()) == 20


class TestAddress:
    def test_from_hex_roundtrip(self):
        address = PrivateKey(7).address
        assert Address.from_hex(address.hex()) == address

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Address(b"\x00" * 19)

    def test_equality_with_bytes(self):
        address = PrivateKey(9).address
        assert address == address.to_bytes()

    def test_hashable_and_ordered(self):
        a, b = PrivateKey(1).address, PrivateKey(2).address
        assert len({a, b, a}) == 2
        assert (a < b) != (b < a)

    def test_zero_address(self):
        assert Address.zero().to_bytes() == b"\x00" * 20


class TestPublicKey:
    def test_sec1_roundtrip(self):
        public = PrivateKey.from_seed("pk").public_key
        assert PublicKey.from_bytes(public.to_bytes()) == public

    def test_sec1_is_65_bytes_uncompressed(self):
        raw = PrivateKey.from_seed("pk").public_key.to_bytes()
        assert len(raw) == 65 and raw[0] == 0x04

    def test_rejects_bad_prefix(self):
        raw = PrivateKey.from_seed("pk").public_key.to_bytes()
        with pytest.raises(ValueError):
            PublicKey.from_bytes(b"\x02" + raw[1:])

    def test_verify_helper(self):
        key = PrivateKey.from_seed("verify")
        digest = keccak256(b"payload")
        assert key.public_key.verify(digest, key.sign(digest))


class TestPrivateKey:
    def test_from_seed_deterministic(self):
        assert PrivateKey.from_seed("a").secret == PrivateKey.from_seed("a").secret
        assert PrivateKey.from_seed("a").secret != PrivateKey.from_seed("b").secret

    def test_from_seed_accepts_str_and_bytes(self):
        assert PrivateKey.from_seed("s").secret == PrivateKey.from_seed(b"s").secret

    def test_bytes_roundtrip(self):
        key = PrivateKey.from_seed("roundtrip")
        assert PrivateKey.from_bytes(key.to_bytes()).secret == key.secret

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PrivateKey(0)

    def test_generate_produces_distinct_keys(self):
        assert PrivateKey.generate().secret != PrivateKey.generate().secret

    def test_repr_does_not_leak_secret(self):
        key = PrivateKey.from_seed("secret")
        assert str(key.secret) not in repr(key)
        assert hex(key.secret)[2:] not in repr(key)
