"""Chain management: genesis, mempool rules, block production, history."""

import pytest

from repro.chain import Blockchain, ChainError, GenesisConfig, UnsignedTransaction
from repro.crypto import PrivateKey
from repro.vm import ContractRegistry, TransactionExecutor

ALICE = PrivateKey.from_seed("bc:alice")
BOB = PrivateKey.from_seed("bc:bob")
TOKEN = 10 ** 18


@pytest.fixture
def chain() -> Blockchain:
    genesis = GenesisConfig(allocations={ALICE.address: 10 * TOKEN,
                                         BOB.address: TOKEN})
    return Blockchain(genesis, executor=TransactionExecutor(ContractRegistry()))


def transfer(sender=ALICE, nonce=0, value=100, gas_limit=21_000):
    return UnsignedTransaction(
        nonce=nonce, gas_price=10 ** 9, gas_limit=gas_limit,
        to=BOB.address, value=value,
    ).sign(sender)


class TestGenesis:
    def test_block_zero(self, chain):
        assert chain.head.number == 0
        assert chain.height == 0
        assert chain.get_block_by_number(0) is chain.head

    def test_allocations_applied(self, chain):
        assert chain.state.balance_of(ALICE.address) == 10 * TOKEN

    def test_genesis_state_root_committed(self, chain):
        assert chain.head.header.state_root == chain.state.root_hash

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            Blockchain(GenesisConfig(allocations={ALICE.address: -1}))


class TestMempool:
    def test_accepts_valid_transaction(self, chain):
        tx_hash = chain.add_transaction(transfer())
        assert len(chain.mempool) == 1
        assert tx_hash == chain.mempool[0].hash

    def test_rejects_nonce_gap(self, chain):
        with pytest.raises(ChainError):
            chain.add_transaction(transfer(nonce=5))

    def test_accepts_consecutive_nonces(self, chain):
        chain.add_transaction(transfer(nonce=0))
        chain.add_transaction(transfer(nonce=1))
        assert len(chain.mempool) == 2

    def test_rejects_duplicate(self, chain):
        tx = transfer()
        chain.add_transaction(tx)
        with pytest.raises(ChainError):
            chain.add_transaction(tx)

    def test_rejects_oversized_gas_limit(self, chain):
        with pytest.raises(ChainError):
            chain.add_transaction(transfer(gas_limit=chain.config.gas_limit + 1))


class TestBlockProduction:
    def test_executes_and_links(self, chain):
        chain.add_transaction(transfer())
        block = chain.build_block()
        assert block.number == 1
        assert block.header.parent_hash == chain.get_block_by_number(0).hash
        assert len(block.transactions) == 1
        assert chain.state.balance_of(BOB.address) == TOKEN + 100
        assert chain.mempool == []

    def test_header_commits_to_posted_state(self, chain):
        chain.add_transaction(transfer())
        block = chain.build_block()
        assert block.header.state_root == chain.state.root_hash
        block.validate_roots()

    def test_invalid_transaction_dropped(self, chain):
        poor = PrivateKey.from_seed("pauper")
        bad = UnsignedTransaction(
            nonce=0, gas_price=10 ** 9, gas_limit=21_000,
            to=BOB.address, value=1,
        ).sign(poor)
        chain.mempool.append(bad)  # bypass validation to test the builder
        block = chain.build_block()
        assert len(block.transactions) == 0

    def test_timestamps_monotone(self, chain):
        b1 = chain.build_block()
        b2 = chain.build_block()
        assert b2.header.timestamp > b1.header.timestamp - 1

    def test_coinbase_receives_fees(self, chain):
        miner = PrivateKey.from_seed("miner").address
        chain.add_transaction(transfer())
        block = chain.build_block(coinbase=miner)
        assert chain.state.balance_of(miner) == 21_000 * 10 ** 9
        assert block.header.proposer == miner

    def test_gas_limit_defers_transactions(self, chain):
        for i in range(3):
            chain.add_transaction(transfer(nonce=i))
        # shrink the block gas limit so only 2 transfers fit
        chain.config = GenesisConfig(
            allocations=chain.config.allocations, gas_limit=45_000,
        )
        block = chain.build_block()
        assert len(block.transactions) == 2
        assert len(chain.mempool) == 1

    def test_deferral_carries_same_sender_successors(self, chain):
        """Regression: when a tx is deferred for gas, *later* txs from the
        same sender must be deferred too — executing them against the nonce
        gap used to drop them silently, losing the whole tail."""
        for i in range(3):
            chain.add_transaction(transfer(nonce=i))
        # room for exactly one 21k transfer: alice #0 fits, alice #1 defers
        # for gas, and alice #2 must ride along instead of executing into
        # the nonce gap (which would silently drop it)
        chain.config = GenesisConfig(
            allocations=chain.config.allocations, gas_limit=30_000,
        )
        block = chain.build_block()
        assert [tx.nonce for tx in block.transactions] == [0]
        assert [tx.nonce for tx in chain.mempool] == [1, 2]
        # the deferred tail is intact: a follow-up block includes all of it
        chain.config = GenesisConfig(allocations=chain.config.allocations)
        block2 = chain.build_block()
        assert [tx.nonce for tx in block2.transactions] == [1, 2]
        assert chain.mempool == []

    def test_explicit_list_deferral_stays_in_callers_list(self, chain):
        """An explicit ``transactions=`` list is the caller's: deferred txs
        are left in it (in order) and must never leak into the shared
        mempool."""
        mine = [transfer(nonce=0), transfer(nonce=1), transfer(nonce=2)]
        unrelated = transfer(sender=BOB, nonce=0, value=1)
        chain.add_transaction(unrelated)
        chain.config = GenesisConfig(
            allocations=chain.config.allocations, gas_limit=21_000,
        )
        block = chain.build_block(transactions=mine)
        assert len(block.transactions) == 1
        assert [tx.nonce for tx in mine] == [1, 2]
        # the mempool still holds exactly what it held before
        assert [tx.hash for tx in chain.mempool] == [unrelated.hash]
        # resubmitting the caller's leftover list drains it
        chain.config = GenesisConfig(allocations=chain.config.allocations)
        block2 = chain.build_block(transactions=mine)
        assert [tx.nonce for tx in block2.transactions] == [1, 2]
        assert mine == []
        assert [tx.hash for tx in chain.mempool] == [unrelated.hash]

    def test_executor_required(self):
        bare = Blockchain(GenesisConfig())
        with pytest.raises(ChainError):
            bare.build_block()


class TestHistory:
    def test_lookup_by_hash_and_number(self, chain):
        block = chain.build_block()
        assert chain.get_block_by_hash(block.hash) is block
        assert chain.get_block_hash(1) == block.hash
        assert chain.get_block_hash(99) is None

    def test_find_transaction(self, chain):
        tx = transfer()
        chain.add_transaction(tx)
        block = chain.build_block()
        found = chain.find_transaction(tx.hash)
        assert found == (block, 0)
        assert chain.find_transaction(b"\x00" * 32) is None

    def test_receipt_lookup(self, chain):
        tx = transfer()
        chain.add_transaction(tx)
        chain.build_block()
        receipt = chain.get_receipt(tx.hash)
        assert receipt is not None and receipt.succeeded

    def test_state_at_history(self, chain):
        chain.add_transaction(transfer(value=500))
        chain.build_block()
        old = chain.state_at(0)
        assert old.balance_of(BOB.address) == TOKEN
        assert chain.state.balance_of(BOB.address) == TOKEN + 500

    def test_state_at_unknown_height(self, chain):
        with pytest.raises(ChainError):
            chain.state_at(42)

    def test_headers_accessible(self, chain):
        chain.build_block()
        assert chain.get_header(1).number == 1
        assert chain.get_header(12) is None
