"""Checkpoint sync benchmark: join time vs chain length, genesis vs fast.

A light client joining an L-block chain from genesis fetches L+1 headers in
L+1 quorum rounds; one joining from a checkpoint D blocks behind the head
fetches D+1 headers in ⌈D/page⌉+1 rounds.  This bench grows one devnet
chain through several lengths and, at each, onboards two fresh clients —
a genesis :class:`HeaderSyncer` and a :class:`CheckpointSyncer` anchored a
fixed distance behind the head — recording header fetches, request rounds,
and wall-clock join time.

Gates are machine-independent count invariants (checkpoint fetches stay
O(distance) while genesis fetches grow with the chain); wall-clock ratios
are reported to ``BENCH_checkpoint.json`` for trend tracking, not gated.
"""

from __future__ import annotations

import os
import time

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.lightclient import Checkpoint, CheckpointSyncer, HeaderSyncer
from repro.metrics import render_table
from repro.node import Devnet, FullNode
from repro.workloads import AccountSet

from .reporting import add_report, write_json_series

#: chain lengths at which a fresh client joins (CI can shrink the sweep)
CHAIN_LENGTHS = [
    int(n) for n in
    os.environ.get("CHECKPOINT_BENCH_LENGTHS", "64,128,256").split(",")
]
#: how far behind the head the trusted checkpoint sits
CHECKPOINT_DISTANCE = int(os.environ.get("CHECKPOINT_BENCH_DISTANCE", "8"))
PAGE_SIZE = 32
SOURCES = 3


class _CountingNode(FullNode):
    """A header source that counts serving rounds (request round trips)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rounds = 0

    def serve_header(self, number):
        self.rounds += 1
        return super().serve_header(number)

    def serve_bootstrap(self, checkpoint_hash):
        self.rounds += 1
        return super().serve_bootstrap(checkpoint_hash)

    def serve_updates_range(self, start, count):
        self.rounds += 1
        return super().serve_updates_range(start, count)


def test_checkpoint_sync_join_time(benchmark):
    accounts = AccountSet(8, seed="ckpt-bench", balance=10 ** 21)
    operator = PrivateKey.from_seed("ckpt-bench:fn")
    genesis = accounts.genesis(extra={operator.address: 10 ** 21})
    net = Devnet(GenesisConfig(allocations=genesis.allocations))

    rows = []
    series = []
    for length in sorted(CHAIN_LENGTHS):
        while net.chain.height < length:
            net.advance_blocks(1)

        sources = [_CountingNode(net.chain, name=f"src{i}")
                   for i in range(SOURCES)]
        start = time.perf_counter()
        slow = HeaderSyncer(sources)
        slow.sync()
        genesis_s = time.perf_counter() - start
        genesis_rounds = max(src.rounds for src in sources)
        genesis_headers = len(slow.chain)

        checkpoint = Checkpoint.of(
            net.chain.get_header(length - CHECKPOINT_DISTANCE))
        sources = [_CountingNode(net.chain, name=f"src{i}")
                   for i in range(SOURCES)]
        start = time.perf_counter()
        fast = CheckpointSyncer(sources, checkpoint, page_size=PAGE_SIZE)
        fast.sync()
        checkpoint_s = time.perf_counter() - start
        checkpoint_rounds = max(src.rounds for src in sources)

        # -- gates: machine-independent count invariants ----------------- #
        assert fast.tip.hash == slow.tip.hash, "syncers disagree on the tip"
        # checkpoint cost is exactly distance+1 headers, whatever the length
        assert fast.headers_fetched == CHECKPOINT_DISTANCE + 1
        # genesis cost grows with the chain; the gap must widen, not shrink
        assert genesis_headers == length + 1
        assert fast.headers_fetched < genesis_headers
        # paging collapses rounds: bootstrap + ⌈distance/page⌉ + head probe
        expected_pages = -(-CHECKPOINT_DISTANCE // PAGE_SIZE)
        assert fast.pages_fetched == expected_pages
        assert checkpoint_rounds <= 2 + expected_pages
        assert checkpoint_rounds < genesis_rounds

        rows.append((
            str(length),
            f"{genesis_headers} hdrs / {genesis_rounds} rounds / "
            f"{genesis_s * 1000:,.0f} ms",
            f"{fast.headers_fetched} hdrs / {checkpoint_rounds} rounds / "
            f"{checkpoint_s * 1000:,.0f} ms",
            f"{genesis_s / checkpoint_s:.1f}x",
        ))
        series.append({
            "chain_length": length,
            "checkpoint_distance": CHECKPOINT_DISTANCE,
            "genesis_sync": {
                "headers_fetched": genesis_headers,
                "request_rounds": genesis_rounds,
                "join_seconds": round(genesis_s, 4),
            },
            "checkpoint_sync": {
                "headers_fetched": fast.headers_fetched,
                "pages_fetched": fast.pages_fetched,
                "request_rounds": checkpoint_rounds,
                "join_seconds": round(checkpoint_s, 4),
            },
            "speedup": round(genesis_s / checkpoint_s, 2),
        })

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    write_json_series("BENCH_checkpoint", {
        "page_size": PAGE_SIZE,
        "sources": SOURCES,
        "sweep": series,
    })
    add_report(
        f"Checkpoint sync: join cost vs chain length "
        f"(checkpoint {CHECKPOINT_DISTANCE} behind head, "
        f"page={PAGE_SIZE})",
        render_table(
            ["chain length", "genesis sync", "checkpoint sync", "speedup"],
            rows,
        ),
    )
