"""Figure 7 — full-node resource usage vs number of concurrent light clients.

Paper setup: N light clients each send 2 requests/second for two minutes to
one PARP node (4 vCPU / 8 GB); at N = 20 the PARP node used 3.43x the CPU
and 2.38x the memory of a plain Geth node under the same workload.

Substitution (DESIGN.md §2): we run the *real serving code* — the PARP
engine vs the plain JSON-RPC server — on the same chain and workload shape,
and measure the real Python process: CPU seconds via ``time.process_time``
and allocation peaks via ``tracemalloc``.  Reported series: absolute usage
per N and the PARP/plain ratio (the reproduction target is the ratio's
scale and its growth with N, not Geth's absolute percentages).
"""

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.metrics import ResourceProbe, render_table
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
)
from repro.rpc import RpcClient, RpcServer
from repro.workloads import AccountSet

from .reporting import add_report

#: raised to 50 once the overlay trie engine removed the per-request
#: hashing/decoding bottleneck (PR 3) — the paper's sweep tops out at 20
CLIENT_COUNTS = (1, 5, 10, 20, 50)
#: requests per client per simulated second (the paper's rate)
RATE = 2
#: scaled-down duration (the paper used 120 s; the pipeline per request is
#: identical, so the per-request cost — and hence the ratio — is unchanged;
#: tracemalloc makes pure-Python hashing expensive, so keep this small)
DURATION = 1
TOKEN = 10 ** 18


def build_world(n_clients: int):
    fn = PrivateKey.from_seed("fig7:fn")
    accounts = AccountSet(max(n_clients, 8), seed="fig7", balance=100 * TOKEN)
    client_keys = [PrivateKey.from_seed(f"fig7:lc{i}") for i in range(n_clients)]
    extra = {key.address: 100 * TOKEN for key in client_keys}
    extra[fn.address] = 1_000 * TOKEN
    net = Devnet(accounts.genesis(extra=extra))
    net.execute(fn, DEPOSIT_MODULE_ADDRESS, "deposit",
                value=MIN_FULL_NODE_DEPOSIT)
    net.advance_blocks(1)
    node = FullNode(net.chain, key=fn, name="fig7")
    return net, node, accounts, client_keys


def run_parp_serving(n_clients: int) -> tuple[float, int, int]:
    """N bonded PARP sessions polling balances; returns (cpu, peak_mem, reqs)."""
    net, node, accounts, client_keys = build_world(n_clients)
    server = FullNodeServer(node)
    sessions = []
    for key in client_keys:
        session = LightClientSession(key, server, HeaderSyncer([server]))
        session.connect(budget=10 ** 16)
        sessions.append(session)

    requests = 0
    with ResourceProbe() as probe:
        for tick in range(DURATION * RATE):
            for i, session in enumerate(sessions):
                target = accounts.addresses[(tick + i) % len(accounts)]
                session.get_balance(target)
                requests += 1
    return probe.sample.cpu_seconds, probe.sample.peak_memory_bytes, requests


def run_plain_serving(n_clients: int) -> tuple[float, int, int]:
    """The same workload shape against the plain JSON-RPC baseline."""
    net, node, accounts, client_keys = build_world(n_clients)
    server = RpcServer(node)
    clients = [RpcClient(server.handle_raw) for _ in client_keys]

    requests = 0
    with ResourceProbe() as probe:
        for tick in range(DURATION * RATE):
            for i, client in enumerate(clients):
                target = accounts.addresses[(tick + i) % len(accounts)]
                client.call("eth_getBalance", target.hex(), "latest")
                requests += 1
    return probe.sample.cpu_seconds, probe.sample.peak_memory_bytes, requests


def test_fig7_scalability(benchmark):
    rows = []
    ratios = {}
    absolute_cpu = {}
    for n in CLIENT_COUNTS:
        parp_cpu, parp_mem, requests = run_parp_serving(n)
        absolute_cpu[n] = parp_cpu
        plain_cpu, plain_mem, _ = run_plain_serving(n)
        cpu_ratio = parp_cpu / plain_cpu if plain_cpu else float("inf")
        mem_ratio = parp_mem / plain_mem if plain_mem else float("inf")
        ratios[n] = (cpu_ratio, mem_ratio)
        rows.append((
            n, requests,
            f"{parp_cpu:.2f}s", f"{plain_cpu:.2f}s", f"{cpu_ratio:.2f}x",
            f"{parp_mem / 1024:.0f}KiB", f"{plain_mem / 1024:.0f}KiB",
            f"{mem_ratio:.2f}x",
        ))

    benchmark.pedantic(lambda: run_parp_serving(1), rounds=1, iterations=1)

    add_report(
        "Fig. 7: serving-node resources vs concurrent light clients "
        f"({RATE} req/s each; paper @N=20: CPU 3.43x, memory 2.38x vs plain)",
        render_table(
            ["clients", "requests", "PARP cpu", "plain cpu", "cpu ratio",
             "PARP mem", "plain mem", "mem ratio"],
            rows,
        ),
    )

    # -- shape assertions ------------------------------------------------- #
    cpu_top, mem_top = ratios[CLIENT_COUNTS[-1]]  # N=50 since PR 3
    # PARP costs more than plain serving, but only by a small factor:
    # the paper reports 3.43x CPU / 2.38x memory at its N=20 top end
    assert 1.0 < cpu_top < 30.0
    assert mem_top > 1.0
    # work scales with the number of clients (absolute CPU grows with N)
    assert absolute_cpu[10] > absolute_cpu[1] * 3
