"""Shared benchmark fixtures: standard PARP environments and block builders."""

from __future__ import annotations

import pytest

from repro.chain import GenesisConfig
from repro.contracts import DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.lightclient import HeaderSyncer
from repro.node import Devnet, FullNode
from repro.parp import (
    FullNodeServer,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
    WitnessService,
)
from repro.workloads import AccountSet, build_block_with_size

from .reporting import drain_reports, reset_results_file

TOKEN = 10 ** 18


def pytest_configure(config):
    reset_results_file()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = drain_reports()
    if not reports:
        return
    terminalreporter.section("paper reproduction tables")
    for title, body in reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in body.splitlines():
            terminalreporter.write_line(line)


class BenchWorld:
    """A devnet with a staked PARP server, a bonded client, and a witness."""

    def __init__(self, accounts: int = 32, history_blocks: int = 2,
                 budget: int = 10 ** 16) -> None:
        self.fn_key = PrivateKey.from_seed("bench:fn")
        self.lc_key = PrivateKey.from_seed("bench:lc")
        self.wn_key = PrivateKey.from_seed("bench:wn")
        self.accounts = AccountSet(accounts, seed="bench", balance=10 * TOKEN)
        genesis = self.accounts.genesis(extra={
            self.fn_key.address: 1_000 * TOKEN,
            self.lc_key.address: 1_000 * TOKEN,
            self.wn_key.address: 1_000 * TOKEN,
        })
        self.net = Devnet(genesis)
        self.net.execute(self.fn_key, DEPOSIT_MODULE_ADDRESS, "deposit",
                         value=MIN_FULL_NODE_DEPOSIT)
        self.net.advance_blocks(history_blocks)
        self.node = FullNode(self.net.chain, key=self.fn_key, name="bench-fn")
        self.server = FullNodeServer(self.node)
        self.witness_node = FullNode(self.net.chain, key=self.wn_key,
                                     name="bench-wn")
        self.witness = WitnessService(self.witness_node)
        self.syncer = HeaderSyncer([self.server, self.witness_node])
        self.session = LightClientSession(self.lc_key, self.server, self.syncer)
        self.alpha = self.session.connect(budget=budget)

    def block_with(self, num_transactions: int):
        """Mine a block holding exactly N transfer transactions."""
        return build_block_with_size(self.net.chain, self.accounts,
                                     num_transactions)

    def paid_write_in_block_of(self, total_txs: int):
        """The paper's write workload: a PARP-submitted transaction that
        lands in a block with ``total_txs`` transactions.  Pre-fills the
        mempool with ``total_txs - 1`` transfers so the node's auto-miner
        packs them together with the client's transaction."""
        from repro.workloads.write import WriteWorkload

        workload = WriteWorkload(self.accounts)
        workload.fill_mempool(self.net.chain, total_txs - 1)
        tx = workload.make_transfer(self.net.chain, total_txs + 1,
                                    total_txs + 2)
        outcome = self.session.request("eth_sendRawTransaction", tx.encode())
        self.syncer.sync()
        return outcome


@pytest.fixture(scope="module")
def world() -> BenchWorld:
    return BenchWorld()


@pytest.fixture(scope="module")
def world_with_200tx_block():
    """The paper's reference write scenario: a block with 200 transactions."""
    world = BenchWorld(accounts=64)
    block = world.block_with(200)
    world.syncer.sync()
    return world, block
