"""Open-loop overload sweep: goodput and tail latency across saturation.

Closed-loop clients can never overload a server — they wait for each reply
before sending the next request, so the backlog self-limits.  This bench
drives the admission pipeline the way the paper's adversarial regime does:
a seeded **Poisson arrival process** fires requests at 0.5× / 1× / 2× / 3×
the cluster's aggregate modeled capacity without waiting for anything, and
every arrival is resolved to exactly one of

* a **verified response** (proof checked, §V-D payment semantics), or
* a **verified signed shed** (`Overloaded`, signature + h_req binding
  checked) — never a timeout, never an unsigned drop.

Two gates, both on simulated time and therefore machine-independent:

* **goodput** — verified responses must stay ≥90% of what the cluster
  could sustainably serve at every sweep point (every arrival below
  saturation; a full window at capacity plus the allowed queue budget past
  it): the cluster keeps serving at capacity instead of collapsing under
  its own queue;
* **bounded p99** — the verified-response p99 latency at 3× capacity must
  stay inside the configured queue bound (``max_queue_cost × service_time``
  plus the network round trip): admission control converts overload into
  sheds, not into unbounded queueing delay.

Honest sheds are also replayed into a reputation ledger as
``EVENT_OVERLOADED`` to pin the no-death-spiral property at bench scale:
thousands of sheds, zero bans, zero hard negatives.

Emits ``results/BENCH_overload.json`` (uploaded by the tier-2 CI job) and
enforces a >30% regression check against the committed baseline
(``baselines/BENCH_overload_baseline.json``).
"""

from __future__ import annotations

import json
import pathlib
import random

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.metrics import render_table
from repro.net import PairwiseLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet
from repro.parp import (
    AdmissionConfig,
    AdmissionController,
    FlatFeeSchedule,
    Marketplace,
    MarketplaceClient,
)
from repro.parp.client import ServerOverloaded
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.parp.reputation import EVENT_OVERLOADED

from .reporting import add_report, write_json_series

TOKEN = 10 ** 18
N_SERVERS = 2
#: modeled seconds of serving work per unit request cost
SERVICE_TIME = 0.02
#: queue budget per server, in request-cost units → 0.5 s of queue
MAX_QUEUE_COST = 25.0
#: aggregate modeled capacity of the cluster, requests/second
CAPACITY = N_SERVERS / SERVICE_TIME
#: offered-load multiples of CAPACITY swept by the bench
RATES = (0.5, 1.0, 2.0, 3.0)
#: seconds of Poisson arrivals per sweep point
WINDOW = 1.5
LATENCY = 0.005
TIMEOUT = 10.0
QUEUE_BOUND = MAX_QUEUE_COST * SERVICE_TIME

GOODPUT_GATE = 0.90
REGRESSION_TOLERANCE = 0.30
BASELINE_PATH = (pathlib.Path(__file__).parent / "baselines"
                 / "BENCH_overload_baseline.json")


def build_world():
    ops = [PrivateKey.from_seed(f"bench:ovl:op{i}") for i in range(N_SERVERS)]
    lc = PrivateKey.from_seed("bench:ovl:lc")
    alice = PrivateKey.from_seed("bench:ovl:alice")
    allocations = {k.address: 1_000 * TOKEN for k in ops + [lc]}
    allocations[alice.address] = 5 * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))
    network = SimNetwork(latency=PairwiseLatency({}, default=LATENCY))

    marketplace = Marketplace()
    servers = []
    for i, op in enumerate(ops):
        # the admission clock is the sim clock (backlog drains with simulated
        # time); the server's own clock stays on chain timestamps
        ctrl = AdmissionController(
            AdmissionConfig(max_queue_cost=MAX_QUEUE_COST,
                            service_time=SERVICE_TIME, seed=i),
            clock=network.clock)
        server = devnet.attach_server(
            op, name=f"srv-{i}", admission=ctrl,
            fee_schedule=FlatFeeSchedule(flat_price=10 * GWEI))
        SimServerBinding(network, f"srv-{i}", server)
        endpoint = SimEndpoint(network, f"lc-{i}", f"srv-{i}", server.address,
                               timeout=TIMEOUT)
        marketplace.advertise_server(server, name=f"srv-{i}", endpoint=endpoint)
        servers.append(server)
    devnet.advance_blocks(2)

    client = MarketplaceClient(lc, marketplace, budget=10 ** 16,
                               clock=network.clock)
    client.connect(min_sessions=N_SERVERS)
    client.headers.sync()
    return network, client, servers, alice


def poisson_arrivals(rate_rps: float, window: float, seed: int) -> list[float]:
    rng = random.Random(f"bench:ovl:poisson:{seed}")
    t, out = 0.0, []
    while True:
        t += rng.expovariate(rate_rps)
        if t >= window:
            return out
        out.append(t)


def percentile(samples: list[float], pct: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, round(pct / 100 * (len(ranked) - 1))))
    return ranked[index]


def run_sweep_point(multiple: float) -> dict:
    network, client, servers, alice = build_world()
    call = RpcCall.create("eth_getBalance", alice.address)
    sessions = [client.sessions[s.address] for s in servers]

    # warm-up: one closed-loop request per session pays first-use setup
    # (channel already open from connect) outside the measured window
    for session in sessions:
        session.collect(session.begin_request(call))

    rate = multiple * CAPACITY
    arrivals = poisson_arrivals(rate, WINDOW, seed=int(multiple * 10))
    base = network.clock.now()
    pendings: list = [None] * len(arrivals)
    completions: list = [None] * len(arrivals)

    def fire(idx: int, session):
        pending = session.begin_request(call)

        def done(_reply, idx=idx):
            completions[idx] = network.clock.now()

        pending.reply.add_done_callback(done)
        pendings[idx] = (session, pending)

    # open loop: every arrival fires regardless of what came back so far;
    # round-robin spreads the stream evenly over the cluster
    for idx, offset in enumerate(arrivals):
        network.schedule(offset, lambda idx=idx: fire(
            idx, sessions[idx % N_SERVERS]))
    # sample the surge price while the backlog is at its fullest — by the
    # time the run drains, the quote is back at base
    peak_multiplier = [1.0]
    network.schedule(WINDOW, lambda: peak_multiplier.__setitem__(0, max(
        peak_multiplier[0],
        max(s.current_fee_multiplier() for s in servers))))
    network.run_until(base + WINDOW + QUEUE_BOUND + 1.0)

    served, shed, latencies = 0, 0, []
    for idx, entry in enumerate(pendings):
        assert entry is not None, "arrival never fired"
        session, pending = entry
        try:
            outcome = session.collect(pending)
            assert outcome.report.classification.value == "valid"
            served += 1
            latencies.append(completions[idx] - (base + arrivals[idx]))
        except ServerOverloaded as exc:
            shed += 1
            client.reputation.record(exc.reply.signer(), EVENT_OVERLOADED,
                                     time=network.clock.now())

    # every shed is honest-signed soft evidence: no bans, no hard negatives
    now = network.clock.now()
    for server in servers:
        assert not client.reputation.has_hard_negative(server.address)
        assert not client.reputation.is_banned(server.address, now)

    # what the cluster could possibly have served: every arrival below
    # saturation; past it, a full window at capacity plus draining the
    # queue budget each server is allowed to hold at the window's edge
    sustainable = min(len(arrivals),
                      CAPACITY * WINDOW + MAX_QUEUE_COST * N_SERVERS)
    return {
        "rate_multiple": multiple,
        "offered": len(arrivals),
        "offered_rps": len(arrivals) / WINDOW,
        "served": served,
        "shed": shed,
        "goodput_rps": served / WINDOW,
        "goodput_ratio": served / sustainable,
        "p50_s": percentile(latencies, 50),
        "p99_s": percentile(latencies, 99),
        "admitted_by_server": [s.stats.admitted for s in servers],
        "shed_by_server": [s.stats.shed for s in servers],
        "peak_fee_multiplier": peak_multiplier[0],
    }


def test_overload_goodput_and_tail():
    series = [run_sweep_point(multiple) for multiple in RATES]

    # gate 1: goodput tracks min(offered, capacity) at every sweep point —
    # no sheds below saturation, no collapse past it
    for entry in series:
        assert entry["goodput_ratio"] >= GOODPUT_GATE, (
            f"goodput at {entry['rate_multiple']}x capacity is "
            f"{entry['goodput_ratio']:.2%} of sustainable "
            f"(gate {GOODPUT_GATE:.0%})"
        )

    # gate 2: past saturation the verified-response p99 stays inside the
    # configured queue bound + round trip — overload becomes sheds, not
    # unbounded queueing delay
    p99_bound = QUEUE_BOUND + 4 * LATENCY
    saturated = [e for e in series if e["rate_multiple"] >= 1.0]
    for entry in saturated:
        assert entry["p99_s"] <= p99_bound, (
            f"p99 at {entry['rate_multiple']}x is {entry['p99_s']:.3f}s, "
            f"queue bound is {p99_bound:.3f}s"
        )
    # sanity: the sweep actually crossed saturation (sheds happened)
    at_three = next(e for e in series if e["rate_multiple"] == 3.0)
    assert at_three["shed"] > 0
    assert at_three["peak_fee_multiplier"] > 1.0

    rows = [[f"{e['rate_multiple']:.1f}x", str(e["offered"]),
             str(e["served"]), str(e["shed"]),
             f"{e['goodput_rps']:.0f}", f"{e['goodput_ratio']:.2%}",
             f"{e['p99_s'] * 1e3:.0f}ms"]
            for e in series]
    add_report(
        f"Open-loop overload sweep ({N_SERVERS} servers, capacity "
        f"{CAPACITY:.0f} rps, queue bound {QUEUE_BOUND:.2f}s, "
        f"{WINDOW:.1f}s Poisson windows)",
        render_table(
            ["rate", "offered", "served", "shed", "goodput", "of sustainable",
             "p99"],
            rows,
        ),
    )
    write_json_series("BENCH_overload", {
        "servers": N_SERVERS,
        "capacity_rps": CAPACITY,
        "service_time_s": SERVICE_TIME,
        "max_queue_cost": MAX_QUEUE_COST,
        "queue_bound_s": QUEUE_BOUND,
        "window_s": WINDOW,
        "series": series,
        "gates": {
            "goodput_gate": GOODPUT_GATE,
            "min_goodput_ratio": min(e["goodput_ratio"] for e in series),
            "p99_bound_s": p99_bound,
            "p99_at_3x_s": at_three["p99_s"],
        },
    })

    # -- regression check against the committed baseline ------------------- #
    # simulated time and count ratios: deterministic given the seeds, so the
    # 30% band is pure headroom against intentional retunes drifting
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    goodput_floor = (baseline["goodput_ratio_at_3x"]
                     * (1 - REGRESSION_TOLERANCE))
    assert at_three["goodput_ratio"] >= goodput_floor, (
        f"goodput at 3x regressed: {at_three['goodput_ratio']:.2%} vs "
        f"committed baseline {baseline['goodput_ratio_at_3x']:.2%} "
        f"(floor {goodput_floor:.2%})"
    )
    p99_ceiling = baseline["p99_s_at_3x"] * (1 + REGRESSION_TOLERANCE)
    assert at_three["p99_s"] <= p99_ceiling, (
        f"p99 at 3x regressed: {at_three['p99_s']:.3f}s vs committed "
        f"baseline {baseline['p99_s_at_3x']:.3f}s (ceiling {p99_ceiling:.3f}s)"
    )
