"""Table II — PARP message-size overhead vs standard Ethereum JSON-RPC.

Paper: "A PARP request includes two 65-byte signatures … total overhead per
request is 226 bytes.  A PARP response adds 187 bytes of metadata … plus
variable-sized proof verification data."  Reference base-layer sizes: 118 B
for a balance query, 422 B for a raw-transaction call (an OpenChannel tx).
"""

from repro.parp.constants import REQUEST_OVERHEAD_BYTES, RESPONSE_OVERHEAD_BYTES
from repro.metrics import render_table
from repro.rpc import RpcClient, RpcServer
from repro.vm.abi import encode_call

from .reporting import add_report


def test_table2_parp_overheads(benchmark, world_with_200tx_block):
    world, block = world_with_200tx_block
    session = world.session

    # read: verified balance query
    read_outcome = session.request("eth_getBalance",
                                   world.accounts.addresses[0])
    # write: raw transfer through PARP, landing in a 200-tx block
    write_outcome = world.paid_write_in_block_of(200)

    def encode_round():
        return (read_outcome.request.encode_wire(),
                read_outcome.response.encode_wire())

    benchmark(encode_round)

    read_req = read_outcome.request
    read_res = read_outcome.response
    write_res = write_outcome.response
    from repro.rlp import encode

    read_proof_bytes = len(encode(list(read_res.proof)))
    write_proof_bytes = len(encode(list(write_res.proof)))

    rows = [
        ("PARP request overhead", f"{read_req.wire_overhead} B", "226 B"),
        ("PARP response overhead (metadata)", f"{RESPONSE_OVERHEAD_BYTES} B",
         "187 B"),
        ("+ Merkle proof (read: account)", f"{read_proof_bytes} B",
         "variable"),
        ("+ Merkle proof (write: tx in 200-tx block)",
         f"{write_proof_bytes} B", "~1150 B avg"),
    ]
    add_report(
        "Table II: PARP message size overhead (measured vs paper)",
        render_table(["quantity", "measured", "paper"], rows),
    )

    assert read_req.wire_overhead == REQUEST_OVERHEAD_BYTES == 226
    assert read_res.wire_overhead == 187 + read_proof_bytes
    # the write proof must be in the paper's ballpark for a 200-tx block
    assert 700 <= write_proof_bytes <= 1700


def test_table2_base_rpc_reference_sizes(benchmark, world):
    """The base-layer sizes PARP's overhead is compared against."""
    server = RpcServer(world.node)
    client = RpcClient(server.handle_raw)

    balance_size = client.request_size(
        "eth_getBalance", world.accounts.addresses[0].hex(), "latest",
    )

    # the paper's 422-byte raw-tx example is an OpenChannel transaction
    from repro.chain import UnsignedTransaction
    from repro.contracts import CHANNELS_MODULE_ADDRESS
    from repro.parp.messages import handshake_digest

    expiry = world.net.chain.head.header.timestamp + 600
    confirmation = world.fn_key.sign(
        handshake_digest(world.lc_key.address, expiry)).to_bytes()
    open_tx = UnsignedTransaction(
        nonce=world.net.chain.state.nonce_of(world.lc_key.address),
        gas_price=12 * 10 ** 9, gas_limit=300_000,
        to=CHANNELS_MODULE_ADDRESS, value=10 ** 15,
        data=encode_call("open_channel",
                         [world.fn_key.address, expiry, confirmation]),
    ).sign(world.lc_key)
    open_tx_size = client.request_size(
        "eth_sendRawTransaction", "0x" + open_tx.encode().hex(),
    )

    benchmark(client.request_size, "eth_getBalance",
              world.accounts.addresses[0].hex(), "latest")

    add_report(
        "Table II context: base JSON-RPC request sizes",
        render_table(
            ["request", "measured", "paper"],
            [("eth_getBalance", f"{balance_size} B", "118 B"),
             ("raw OpenChannel transaction", f"{open_tx_size} B", "422 B")],
        ),
    )
    assert 100 <= balance_size <= 140
    assert 330 <= open_tx_size <= 520
