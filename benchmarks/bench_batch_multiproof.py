"""Batched multiproof serving vs N sequential single-key queries.

The batch extension's claim: for a dApp fetching N keys against one state
root, one BatchRequest beats N PARPRequests on BOTH

* total proof bytes shipped — the shared multiproof dedups the upper trie
  levels every account path crosses (the Fig. 6 metric, batched), and
* server-side serving time — one signature verification + one payment
  banking + one response signature instead of N of each.

Sequential and batched runs use disjoint account sets so the server's proof
LRU cannot subsidise either side; a separate case measures what the cache
adds on repeated traffic.
"""

import time

from repro.metrics import render_table
from repro.parp.messages import RpcCall
from repro.trie.proof import proof_size

import pytest

from .conftest import BenchWorld
from .reporting import add_report

BATCH_SIZES = (2, 8, 16)


@pytest.fixture(scope="module")
def big_world() -> BenchWorld:
    # 2 disjoint address slices per batch size, budget for ~100 queries
    return BenchWorld(accounts=2 * sum(BATCH_SIZES), budget=10 ** 17)


def serve_sequential(world, addresses):
    """N paid single-key rounds; returns (server_seconds, proof_bytes)."""
    session, server = world.session, world.server
    elapsed = 0.0
    proof_bytes = 0
    for address in addresses:
        call = RpcCall.create("eth_getBalance", address)
        price = session.fee_schedule.price(call)
        request = session.build_request(call, session.channel.next_amount(price))
        session.channel.record_request(request.a)
        wire = request.encode_wire()
        start = time.perf_counter()
        raw = server.serve_request(wire)
        elapsed += time.perf_counter() - start
        outcome = session.process_response(request, raw)
        proof_bytes += proof_size(list(outcome.response.proof))
    return elapsed, proof_bytes


def serve_batched(world, addresses):
    """One paid batch round; returns (server_seconds, proof_bytes)."""
    session, server = world.session, world.server
    calls = [RpcCall.create("eth_getBalance", a) for a in addresses]
    price = session.fee_schedule.batch_price(calls)
    request = session.build_batch_request(calls, session.channel.next_amount(price))
    session.channel.record_request(request.a)
    wire = request.encode_wire()
    start = time.perf_counter()
    raw = server.serve_batch(wire)
    elapsed = time.perf_counter() - start
    outcome = session.process_batch_response(request, raw)
    assert all(item.ok for item in outcome.items)
    return elapsed, proof_size(list(outcome.response.proof))


def test_batch_beats_sequential(big_world):
    world = big_world
    addresses = world.accounts.addresses
    rows = []
    offset = 0
    for n in BATCH_SIZES:
        seq_slice = addresses[offset:offset + n]
        batch_slice = addresses[offset + n:offset + 2 * n]
        offset += 2 * n
        seq_time, seq_bytes = serve_sequential(world, seq_slice)
        batch_time, batch_bytes = serve_batched(world, batch_slice)
        rows.append([
            str(n), f"{seq_bytes}", f"{batch_bytes}",
            f"{seq_bytes / batch_bytes:.2f}x",
            f"{seq_time * 1e3:.2f}ms", f"{batch_time * 1e3:.2f}ms",
            f"{seq_time / batch_time:.2f}x",
        ])
        # The acceptance bar: batched wins both metrics from N >= 8.
        if n >= 8:
            assert batch_bytes < seq_bytes, (
                f"N={n}: multiproof {batch_bytes}B not smaller than "
                f"{seq_bytes}B of stand-alone proofs"
            )
            assert batch_time < seq_time, (
                f"N={n}: batch served in {batch_time:.4f}s, sequential "
                f"{seq_time:.4f}s"
            )
    add_report(
        "Batched multiproof serving vs sequential single-key queries",
        render_table(
            ["N keys", "seq proof B", "batch proof B", "bytes win",
             "seq serve", "batch serve", "time win"],
            rows,
        ),
    )


def test_proof_cache_on_repeated_traffic(big_world):
    """Second identical batch at the same height is answered from the LRU."""
    world = big_world
    addresses = world.accounts.addresses[:8]
    cold_time, cold_bytes = serve_batched(world, addresses)
    hits_before = world.server.proof_cache.stats.hits
    warm_time, warm_bytes = serve_batched(world, addresses)
    assert world.server.proof_cache.stats.hits >= hits_before + len(addresses)
    assert warm_bytes == cold_bytes  # cached proofs are the same proofs
    add_report(
        "Proof LRU on repeated batch traffic (8 keys, same height)",
        render_table(
            ["run", "server time", "proof bytes"],
            [
                ["cold", f"{cold_time * 1e3:.2f}ms", str(cold_bytes)],
                ["warm", f"{warm_time * 1e3:.2f}ms", str(warm_bytes)],
                ["cache", world.server.proof_cache.stats.format_line(), ""],
            ],
        ),
    )
