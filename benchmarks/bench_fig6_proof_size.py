"""Figure 6 — Merkle proof size vs transaction index across block sizes.

Paper: "Merkle proof sizes vary not only with the number of transactions
included in one block but also with the transaction index within those
blocks (explaining the sudden drop in the figure).  For instance, for a
transaction located in a block containing 200 transactions, the average
Merkle proof size is approximately 1150 bytes."

We rebuild the sweep: for blocks of 50–400 transfers, prove every index and
report the series (plus the index-boundary effect around 0x80, where the
RLP key encoding changes width — the paper's "sudden drop").
"""

import statistics

from repro.chain import index_key
from repro.metrics import render_series, render_table
from repro.trie import generate_proof, proof_size
from repro.workloads import AccountSet, build_block_with_size
from repro.node import Devnet

from .reporting import add_report

BLOCK_SIZES = (50, 100, 200, 300, 400)
TOKEN = 10 ** 18


def build_blocks():
    accounts = AccountSet(64, seed="fig6", balance=100 * TOKEN)
    net = Devnet(accounts.genesis())
    blocks = {}
    for size in BLOCK_SIZES:
        blocks[size] = build_block_with_size(net.chain, accounts, size)
    return blocks


def test_fig6_proof_size_sweep(benchmark):
    blocks = build_blocks()

    series: dict[int, list[int]] = {}
    for size, block in blocks.items():
        trie = block.transaction_trie
        series[size] = [
            proof_size(generate_proof(trie, index_key(i))) for i in range(size)
        ]

    # benchmark: proving one mid-block transaction at the reference size
    trie_200 = blocks[200].transaction_trie
    benchmark(lambda: generate_proof(trie_200, index_key(100)))

    rows = []
    for size in BLOCK_SIZES:
        sizes = series[size]
        rows.append((
            size,
            round(statistics.fmean(sizes)),
            min(sizes),
            max(sizes),
        ))
    add_report(
        "Fig. 6: tx inclusion proof size by block size "
        "(paper: ~1150 B avg at 200 txs)",
        render_table(["block txs", "mean proof B", "min", "max"], rows),
    )

    # the index-boundary effect ("sudden drop"): rlp(index) changes width at
    # index 128 (0x80), reshaping the trie around those keys
    at_200 = series[200]
    boundary = [(i, at_200[i]) for i in (0, 1, 63, 64, 127, 128, 129, 199)]
    add_report(
        "Fig. 6 detail: proof size vs tx index in the 200-tx block",
        render_series("index -> proof bytes",
                      [b[0] for b in boundary], [b[1] for b in boundary],
                      x_label="tx index", y_label="proof bytes"),
    )

    # -- shape assertions ------------------------------------------------- #
    means = {size: statistics.fmean(series[size]) for size in BLOCK_SIZES}
    # proof size grows with block size
    assert means[50] < means[200] < means[400]
    # the 200-tx average is in the paper's zone (~1150 B; our transfers are
    # minimal-size legacy txs, so slightly below is expected)
    assert 700 <= means[200] <= 1500
    # proof size varies with the index within one block (the paper's point)
    assert max(at_200) - min(at_200) > 200
    # index 0 has a shorter key path than mid-block indexes
    assert at_200[0] < statistics.fmean(at_200)
