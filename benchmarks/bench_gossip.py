"""Gossip head propagation: push latency vs polling, and tuition saved.

Two questions, both answered in **simulated time** (seeded latencies, so
deterministic and machine-independent):

1. **How fast does a pushed head reach a subscribed client?**  A cluster of
   staked servers announces each seal on ``parp/new_heads/1``; cohorts of
   1 / 10 / 50 gossip-subscribed light clients (swept via
   ``REPRO_BENCH_GOSSIP_CLIENTS``) apply it after a quorum of distinct
   announcers.  A matching cohort of pull-only clients polls ``sync()`` on
   the classic interval.  The gate is the headline claim: the **worst**
   push latency stays under **one poll interval** — heads arrive before a
   poller would even have asked.

2. **What does shared reputation save a newcomer?**  A victim client pays
   the tuition at the cheapest (malicious) server, slashes it, and gossips
   the signed event.  A newcomer that subscribed to ``parp/reputation/1``
   then connects: the gate is **zero** fraud incidents (it never pays the
   known-bad server), while the gossip-blind control newcomer walks
   straight in and eats ≥1.

Emits ``results/BENCH_gossip.json`` (uploaded by the tier-2 CI job) and
enforces a >30% regression check against the committed baseline
(``baselines/BENCH_gossip_baseline.json``).
"""

from __future__ import annotations

import json
import os
import pathlib
import random

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.gossip import GossipNode, HeadGossip
from repro.lightclient import HeaderSyncer
from repro.metrics import render_table
from repro.net import SimEndpoint, SimNetwork, SimServerBinding, UniformLatency
from repro.node import Devnet, FullNode
from repro.parp import (
    FlatFeeSchedule,
    FullNodeServer,
    Marketplace,
    MarketplaceClient,
    ServerAdvertisement,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.fraudproof import WitnessService
from repro.parp.pricing import GWEI

from .reporting import add_report, write_json_series

TOKEN = 10 ** 18
N_SERVERS = 3
#: the classic pull cadence (and the push-mode staleness window)
POLL_INTERVAL = 2.0
#: per-link latency band of the simulated overlay
LATENCY_LO, LATENCY_HI = 0.01, 0.05
#: light-client cohort sizes swept (override: REPRO_BENCH_GOSSIP_CLIENTS)
COHORTS = tuple(
    int(x) for x in os.environ.get(
        "REPRO_BENCH_GOSSIP_CLIENTS", "1,10,50").split(",") if x.strip())

REGRESSION_TOLERANCE = 0.30
BASELINE_PATH = (pathlib.Path(__file__).parent / "baselines"
                 / "BENCH_gossip_baseline.json")


def percentile(samples: list[float], pct: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, round(pct / 100 * (len(ranked) - 1))))
    return ranked[index]


# --------------------------------------------------------------------------- #
# Part 1 — head propagation: push vs poll
# --------------------------------------------------------------------------- #

def run_propagation(n_clients: int, seed: int = 7) -> dict:
    ops = [PrivateKey.from_seed(f"bench:gsp:op{i}") for i in range(N_SERVERS)]
    allocations = {k.address: 200 * TOKEN for k in ops}
    devnet = Devnet(GenesisConfig(allocations=allocations))
    for op in ops:
        devnet.stake_full_node(op)
    devnet.advance_blocks(1)

    network = SimNetwork(latency=UniformLatency(LATENCY_LO, LATENCY_HI,
                                                seed=seed))
    sources = []
    servers = []
    for i, op in enumerate(ops):
        node = FullNode(devnet.chain, key=op, name=f"srv-{i}")
        sources.append(node)
        servers.append(FullNodeServer(node))
    # a mesh node per server; fanout sized to the leaf population so the
    # star topology floods every subscriber (gossipsub would size its mesh
    # degree the same way)
    mesh = devnet.attach_gossip_mesh(network, servers,
                                     fanout=n_clients + N_SERVERS + 2)

    rng = random.Random(f"bench:gsp:poll:{seed}")
    push_syncers, applied_at = [], {}
    poll_syncers, caught_at = [], {}
    target = [None]

    for i in range(n_clients):
        # the push cohort: subscribed leaves peered with every mesh node
        syncer = HeaderSyncer(sources)
        syncer.sync()
        leaf = GossipNode(network, f"push-lc-{i}")
        for m in mesh:
            leaf.add_peer(m.name)
            m.add_peer(leaf.name)
        syncer.enable_push(network.clock.now, staleness=POLL_INTERVAL)
        HeadGossip(leaf, syncer, stake_of=devnet.stake_of)
        original = syncer.offer_header

        def offer(header, i=i, original=original):
            result = original(header)
            if result in ("appended", "pulled") and i not in applied_at:
                applied_at[i] = network.clock.now()
            return result

        syncer.offer_header = offer
        push_syncers.append(syncer)

        # the poll cohort: same sources, no gossip, a phase-shifted timer
        poller = HeaderSyncer(sources)
        poller.sync()
        poll_syncers.append(poller)
        phase = rng.uniform(0.0, POLL_INTERVAL)

        def tick(i=i, poller=poller):
            if i in caught_at or target[0] is None:
                return
            poller.sync()
            if poller.chain.tip_number >= target[0]:
                caught_at[i] = network.clock.now()

        for k in range(3):
            network.schedule(phase + k * POLL_INTERVAL, tick)

    t0 = network.clock.now()
    devnet.advance_blocks(1)            # seal: every server announces now
    target[0] = devnet.chain.head.header.number
    network.run_until(t0 + 3 * POLL_INTERVAL)

    assert len(applied_at) == n_clients, "a push client missed the head"
    assert len(caught_at) == n_clients, "a poll client missed the head"
    push = [applied_at[i] - t0 for i in range(n_clients)]
    poll = [caught_at[i] - t0 for i in range(n_clients)]
    return {
        "clients": n_clients,
        "push_mean_s": sum(push) / len(push),
        "push_max_s": max(push),
        "poll_mean_s": sum(poll) / len(poll),
        "poll_max_s": max(poll),
        "speedup_mean": (sum(poll) / len(poll)) / (sum(push) / len(push)),
    }


# --------------------------------------------------------------------------- #
# Part 2 — newcomer tuition, with and without shared reputation
# --------------------------------------------------------------------------- #

def build_market_world():
    ops = [PrivateKey.from_seed(f"bench:gsp:mop{i}") for i in range(N_SERVERS)]
    wn = PrivateKey.from_seed("bench:gsp:wn")
    alice = PrivateKey.from_seed("bench:gsp:alice")
    victim = PrivateKey.from_seed("bench:gsp:victim")
    newcomer = PrivateKey.from_seed("bench:gsp:newcomer")
    allocations = {k.address: 200 * TOKEN
                   for k in ops + [wn, victim, newcomer]}
    allocations[alice.address] = 5 * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))
    for op in ops:
        devnet.stake_full_node(op)
    devnet.stake_full_node(victim)      # reporter weight needs collateral
    devnet.advance_blocks(2)

    network = SimNetwork(latency=UniformLatency(LATENCY_LO, LATENCY_HI,
                                                seed=11))
    marketplace = Marketplace()
    servers = []
    prices = [8, 10, 10]                # evil is the tempting cheapest
    for i, op in enumerate(ops):
        schedule = FlatFeeSchedule(flat_price=prices[i] * GWEI)
        node = FullNode(devnet.chain, key=op, name=f"msrv-{i}")
        if i == 0:
            server = MaliciousFullNodeServer(node, attack="inflate_balance",
                                             fee_schedule=schedule)
        else:
            server = FullNodeServer(node, fee_schedule=schedule)
        SimServerBinding(network, f"msrv-{i}", server)
        endpoint = SimEndpoint(network, f"mlc-ep-{i}", f"msrv-{i}",
                               server.address, timeout=2.0)
        marketplace.advertise(ServerAdvertisement.for_server(
            server, name=f"msrv-{i}", endpoint=endpoint))
        servers.append(server)
    mesh = devnet.attach_gossip_mesh(network, servers, name_prefix="mgossip")
    witness = WitnessService(FullNode(devnet.chain, key=wn, name="mwn"))
    return devnet, network, marketplace, witness, mesh, servers, \
        alice, victim, newcomer


def join(devnet, network, mesh, marketplace, witness, key, label,
         peer_index: int = 0) -> MarketplaceClient:
    client = MarketplaceClient(key, marketplace, witness=witness,
                               budget=10 ** 15, clock=network.clock.now)
    node = GossipNode(network, f"mlc-gossip-{label}")
    node.add_peer(mesh[peer_index].name)
    mesh[peer_index].add_peer(node.name)
    client.join_gossip(node, stake_of=devnet.stake_of)
    return client


def run_tuition() -> dict:
    (devnet, network, marketplace, witness, mesh, servers,
     alice, victim_key, newcomer_key) = build_market_world()
    evil = servers[0]

    # the newcomer is listening before the victim's report goes out
    newcomer = join(devnet, network, mesh, marketplace, witness,
                    newcomer_key, "newcomer", peer_index=1)

    victim = join(devnet, network, mesh, marketplace, witness,
                  victim_key, "victim")
    victim.connect()
    assert victim.get_balance(alice.address) == 5 * TOKEN
    assert victim.stats.frauds_detected == 1
    network.run()                       # the signed event floods the mesh

    newcomer.connect()
    for _ in range(4):
        assert newcomer.get_balance(alice.address) == 5 * TOKEN
    return {
        "informed_merges": newcomer.rep_share.stats.merged,
        "tuition_queries_with_gossip": newcomer.stats.frauds_detected,
        "evil_sessions_with_gossip": int(evil.address in newcomer.sessions),
    }


def run_blind_control() -> int:
    (devnet, network, marketplace, witness, mesh, servers,
     alice, _victim, _newcomer) = build_market_world()
    blind_key = PrivateKey.from_seed("bench:gsp:victim")   # funded at genesis
    blind = MarketplaceClient(blind_key, marketplace, witness=witness,
                              budget=10 ** 15, clock=network.clock.now)
    blind.connect()
    assert blind.get_balance(alice.address) == 5 * TOKEN
    return blind.stats.frauds_detected


def test_gossip_push_latency_and_tuition():
    series = [run_propagation(n) for n in COHORTS]

    # gate 1: the worst push latency beats one poll interval in every cohort
    for entry in series:
        assert entry["push_max_s"] < POLL_INTERVAL, (
            f"push latency at {entry['clients']} clients is "
            f"{entry['push_max_s']:.3f}s — not under the "
            f"{POLL_INTERVAL:.1f}s poll interval"
        )

    tuition = run_tuition()
    blind_frauds = run_blind_control()

    # gate 2: gossiped reputation fully pays the newcomer's tuition …
    assert tuition["tuition_queries_with_gossip"] == 0, (
        "a gossip-informed newcomer still paid the malicious server")
    assert tuition["evil_sessions_with_gossip"] == 0
    assert tuition["informed_merges"] >= 1
    # … which the gossip-blind control actually owes
    assert blind_frauds >= 1, (
        "the control newcomer never met the malicious server — the "
        "comparison is vacuous")

    rows = [[str(e["clients"]), f"{e['push_mean_s'] * 1e3:.0f}ms",
             f"{e['push_max_s'] * 1e3:.0f}ms",
             f"{e['poll_mean_s'] * 1e3:.0f}ms",
             f"{e['speedup_mean']:.1f}x"]
            for e in series]
    add_report(
        f"Gossip head propagation ({N_SERVERS} announcers, quorum 2, "
        f"{LATENCY_LO * 1e3:.0f}–{LATENCY_HI * 1e3:.0f}ms links, "
        f"poll interval {POLL_INTERVAL:.1f}s) + newcomer tuition "
        f"(with gossip: {tuition['tuition_queries_with_gossip']} frauds, "
        f"blind control: {blind_frauds})",
        render_table(
            ["clients", "push mean", "push max", "poll mean", "speedup"],
            rows,
        ),
    )

    largest = series[-1]
    write_json_series("BENCH_gossip", {
        "servers": N_SERVERS,
        "poll_interval_s": POLL_INTERVAL,
        "latency_band_s": [LATENCY_LO, LATENCY_HI],
        "cohorts": list(COHORTS),
        "propagation": series,
        "tuition": {
            "with_gossip_frauds": tuition["tuition_queries_with_gossip"],
            "blind_control_frauds": blind_frauds,
            "informed_merges": tuition["informed_merges"],
        },
        "gates": {
            "poll_interval_s": POLL_INTERVAL,
            "push_max_s_at_largest": largest["push_max_s"],
            "speedup_mean_at_largest": largest["speedup_mean"],
        },
    })

    # -- regression check against the committed baseline ------------------- #
    # seeded sim time: deterministic, so the 30% band is pure headroom
    if COHORTS == (1, 10, 50):          # custom sweeps skip the fence
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        latency_ceiling = (baseline["push_max_s_at_50_clients"]
                           * (1 + REGRESSION_TOLERANCE))
        assert largest["push_max_s"] <= latency_ceiling, (
            f"push latency regressed: {largest['push_max_s']:.3f}s vs "
            f"committed baseline {baseline['push_max_s_at_50_clients']:.3f}s "
            f"(ceiling {latency_ceiling:.3f}s)"
        )
        speedup_floor = (baseline["speedup_mean_at_50_clients"]
                         * (1 - REGRESSION_TOLERANCE))
        assert largest["speedup_mean"] >= speedup_floor, (
            f"push-over-poll speedup regressed: {largest['speedup_mean']:.1f}x "
            f"vs baseline {baseline['speedup_mean_at_50_clients']:.1f}x "
            f"(floor {speedup_floor:.1f}x)"
        )
        assert baseline["tuition_with_gossip_frauds"] == 0
