"""Node-store backend benchmark: in-memory dict vs append-only disk log.

The persistent backend is what lets a PARP full node hold multi-million-
account state tries that do not fit in RAM — but it must not give back the
serving throughput the overlay engine and decoded-node LRU bought.  This
bench builds the same ``STORE_BENCH_ACCOUNTS``-account secure-trie-shaped
state on both backends and measures:

* **bulk insert** — overlay build + one commit (for the disk store that is
  the atomic, checksummed, fsynced batch append);
* **proof serving** — single-key account proofs, cold (empty decoded-node
  LRU, the disk store actually reading the log) and steady-state (warm LRU,
  where both backends should converge because hot nodes never touch disk);
* **reopen** — close the log, reopen it (recovery scan rebuilds the offset
  index), and serve §V-D-verified single and multi proofs bit-identical to
  the memory run.

Correctness is gated (roots and proof bytes identical across backends and
across the close/reopen boundary); throughput numbers are reported to
``BENCH_store.json`` (uploaded by CI like ``BENCH_trie.json``) — absolute
disk rates are machine-dependent, so they are tracked, not gated.
"""

from __future__ import annotations

import os
import random
import tempfile
import time

from repro.chain.account import Account
from repro.metrics import render_table
from repro.metrics.cache import LRUCache
from repro.storage import AppendOnlyFileStore, MemoryNodeStore
from repro.trie import (
    DEFAULT_NODE_CACHE_CAPACITY,
    MerklePatriciaTrie,
    generate_multiproof,
    generate_proof,
    verify_multiproof,
    verify_proof,
)

from .reporting import add_report, write_json_series

#: accounts in the bulk-insert phase (paper-scale default 100k; CI shrinks
#: it via the environment, like TRIE_BENCH_ACCOUNTS)
ACCOUNTS = int(os.environ.get("STORE_BENCH_ACCOUNTS", "100000"))
#: single-key proofs measured per backend and temperature
PROOF_REQUESTS = min(ACCOUNTS, 2000)
#: keys per multiproof batch served from the reopened store
MULTIPROOF_BATCH = 32


def _account_items(count: int) -> dict[bytes, bytes]:
    """Secure-trie shaped state: uniform 32-byte keys -> RLP account records."""
    rng = random.Random(0xD15C)
    return {
        rng.randbytes(32): Account(nonce=i % 5, balance=10 ** 18 + i).encode()
        for i in range(count)
    }


def _measure_proofs(trie: MerklePatriciaTrie, probes: list[bytes]) -> float:
    start = time.perf_counter()
    for key in probes:
        generate_proof(trie, key)
    return len(probes) / (time.perf_counter() - start)


def test_store_backend(benchmark):
    items = _account_items(ACCOUNTS)
    keys = list(items)
    rng = random.Random(7)
    probes = rng.choices(keys, k=PROOF_REQUESTS)

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        log_path = os.path.join(tmp, "nodes.log")

        # -- bulk insert: memory --------------------------------------- #
        memory = MerklePatriciaTrie(MemoryNodeStore())
        start = time.perf_counter()
        memory.update(items)
        memory_root = memory.commit()
        memory_insert_s = time.perf_counter() - start

        # -- bulk insert: disk (one atomic fsynced batch) --------------- #
        store = AppendOnlyFileStore(log_path)
        disk = MerklePatriciaTrie(store)
        start = time.perf_counter()
        disk.update(items)
        disk_root = disk.commit()
        disk_insert_s = time.perf_counter() - start
        assert disk_root == memory_root, "backends disagree on the state root"
        log_bytes = store.stats.bytes_appended

        # -- proof serving: steady state (warm LRU) --------------------- #
        memory_warm = _measure_proofs(memory, probes)
        disk_warm = _measure_proofs(disk, probes)
        store.close()

        # -- close / reopen: recovery scan ------------------------------ #
        start = time.perf_counter()
        reopened = AppendOnlyFileStore(log_path)
        recovery_s = time.perf_counter() - start
        assert reopened.last_root == memory_root

        # -- proof serving: cold ---------------------------------------- #
        # memory: fresh decoded-node LRU over the same store; disk: the
        # freshly reopened store, so both its decoded LRU *and* its
        # encoded-bytes read cache start empty and every miss is a real
        # log read
        memory_cold_view = MerklePatriciaTrie(
            memory.db, memory_root,
            node_cache=LRUCache(capacity=DEFAULT_NODE_CACHE_CAPACITY))
        memory_cold = _measure_proofs(memory_cold_view, probes)
        revived = MerklePatriciaTrie(reopened, reopened.last_root)
        disk_cold = _measure_proofs(revived, probes)

        # -- serve §V-D-verified proofs from the reopened store --------- #
        sample = rng.sample(keys, k=min(len(keys), 200))
        for key in sample:
            proof = generate_proof(revived, key)
            assert proof == generate_proof(memory, key)
            assert verify_proof(memory_root, key, proof) == items[key]
        batch = sample[:MULTIPROOF_BATCH]
        pool = generate_multiproof(revived, batch)
        assert pool == generate_multiproof(memory, batch)
        answers = verify_multiproof(memory_root, batch, pool)
        assert all(answers[key] == items[key] for key in batch)
        reopened.close()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    payload = {
        "accounts": ACCOUNTS,
        "proof_requests": PROOF_REQUESTS,
        "state_root": memory_root.hex(),
        "bulk_insert": {
            "memory_keys_per_sec": round(ACCOUNTS / memory_insert_s, 1),
            "disk_keys_per_sec": round(ACCOUNTS / disk_insert_s, 1),
            "disk_overhead": round(disk_insert_s / memory_insert_s, 3),
        },
        "proof_serving": {
            "memory_warm_per_sec": round(memory_warm, 1),
            "disk_warm_per_sec": round(disk_warm, 1),
            "memory_cold_per_sec": round(memory_cold, 1),
            "disk_cold_per_sec": round(disk_cold, 1),
            "warm_ratio_disk_vs_memory": round(disk_warm / memory_warm, 3),
        },
        "reopen": {
            "recovery_seconds": round(recovery_s, 3),
            "log_bytes": log_bytes,
            "verified_single_proofs": len(sample),
            "verified_multiproof_batch": len(batch),
        },
    }
    write_json_series("BENCH_store", payload)

    add_report(
        f"Node-store backends: memory vs append-only disk "
        f"({ACCOUNTS} accounts)",
        render_table(
            ["phase", "memory", "disk", "disk/mem"],
            [
                ("bulk insert",
                 f"{ACCOUNTS / memory_insert_s:,.0f} keys/s",
                 f"{ACCOUNTS / disk_insert_s:,.0f} keys/s",
                 f"{memory_insert_s / disk_insert_s:.2f}x"),
                ("proof serving (warm LRU)",
                 f"{memory_warm:,.0f} proofs/s",
                 f"{disk_warm:,.0f} proofs/s",
                 f"{disk_warm / memory_warm:.2f}x"),
                ("proof serving (cold LRU)",
                 f"{memory_cold:,.0f} proofs/s",
                 f"{disk_cold:,.0f} proofs/s",
                 f"{disk_cold / memory_cold:.2f}x"),
                ("reopen (recovery scan)",
                 "—",
                 f"{recovery_s * 1000:,.0f} ms "
                 f"({log_bytes / 2**20:.1f} MiB log)",
                 "—"),
            ],
        ),
    )
