"""Node-store backend benchmark: in-memory dict vs append-only disk log.

The persistent backend is what lets a PARP full node hold multi-million-
account state tries that do not fit in RAM — but it must not give back the
serving throughput the overlay engine and decoded-node LRU bought.  This
bench builds the same ``STORE_BENCH_ACCOUNTS``-account secure-trie-shaped
state on both backends (100k default; set ``STORE_BENCH_ACCOUNTS=1000000``
for the paper-scale million-account run) and measures:

* **bulk insert** — overlay build + one commit (for the disk store that is
  the atomic, checksummed, fsynced batch append);
* **proof serving** — single-key account proofs, cold (empty decoded-node
  LRU, the disk store actually reading the log) and steady-state (warm LRU,
  where both backends should converge because hot nodes never touch disk);
* **churn + compaction** — ``STORE_BENCH_CHURN_ROUNDS`` rounds of account
  updates grow the log past the live set, then a ``last-K`` compaction pass
  rewrites it.  Gated: the compacted log is **exactly** the retained live
  set (magic + pruned record + retained batches, nothing else), retained
  roots serve byte-identical §V-D (multi)proofs across the pass, and a
  pruned root raises the typed :class:`PrunedRootError`;
* **reopen** — the same compacted log opened twice: once footer-free (the
  recovery scan walks every batch) and once from a clean close (the
  root-index footer is deserialized in one read).  Gated: the indexed
  reopen is at least :data:`MIN_INDEXED_REOPEN_SPEEDUP`× faster at paper
  scale (a smaller floor below it, where the scan is already cheap).

Correctness is gated; throughput numbers are reported to
``BENCH_store.json`` (uploaded by CI like ``BENCH_trie.json``).  The
machine-independent *ratios* — indexed-reopen speedup and compaction shrink
— are additionally checked against the committed baseline
(``benchmarks/baselines/BENCH_store_baseline.json``): a drop of more than
30% below the recorded values fails the bench.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import tempfile
import time

from repro.chain.account import Account
from repro.metrics import render_table
from repro.metrics.cache import LRUCache
from repro.storage import (
    MAGIC,
    AppendOnlyFileStore,
    MemoryNodeStore,
    PrunedRootError,
    RetentionPolicy,
    compact_node_store,
    live_state_nodes,
)
from repro.trie import (
    DEFAULT_NODE_CACHE_CAPACITY,
    MerklePatriciaTrie,
    generate_multiproof,
    generate_proof,
    verify_multiproof,
    verify_proof,
)

from .reporting import add_report, write_json_series

#: accounts in the bulk-insert phase (paper-scale default 100k; CI shrinks
#: it via the environment, like TRIE_BENCH_ACCOUNTS; 1M is the overnight
#: million-account configuration)
ACCOUNTS = int(os.environ.get("STORE_BENCH_ACCOUNTS", "100000"))
#: single-key proofs measured per backend and temperature
PROOF_REQUESTS = min(ACCOUNTS, 2000)
#: keys per multiproof batch served from the reopened store
MULTIPROOF_BATCH = 32
#: churn rounds before compaction; each updates 1/20 of the accounts
CHURN_ROUNDS = int(os.environ.get("STORE_BENCH_CHURN_ROUNDS", "8"))
#: retention window the compaction pass keeps (the acceptance scenario's K)
RETAIN_K = 4
#: scale at which the paper-scale gates apply
GATED_ACCOUNTS = 100_000
#: indexed reopen must beat the scan by this factor at paper scale …
MIN_INDEXED_REOPEN_SPEEDUP = 10.0
#: … and by this factor at CI scale, where the scan is already fast
MIN_INDEXED_REOPEN_SPEEDUP_SMALL = 3.0
#: allowed drop below the committed baseline ratios before failing
REGRESSION_TOLERANCE = 0.30
BASELINE_PATH = (pathlib.Path(__file__).parent / "baselines"
                 / "BENCH_store_baseline.json")

#: on-log framing: per-batch marker+count+root+crc, per-node hash+len
_BATCH_OVERHEAD = 1 + 4 + 32 + 4
_NODE_OVERHEAD = 32 + 4


def _account_items(count: int) -> dict[bytes, bytes]:
    """Secure-trie shaped state: uniform 32-byte keys -> RLP account records."""
    rng = random.Random(0xD15C)
    return {
        rng.randbytes(32): Account(nonce=i % 5, balance=10 ** 18 + i).encode()
        for i in range(count)
    }


def _measure_proofs(trie: MerklePatriciaTrie, probes: list[bytes]) -> float:
    start = time.perf_counter()
    for key in probes:
        generate_proof(trie, key)
    return len(probes) / (time.perf_counter() - start)


def _expected_compacted_bytes(store: AppendOnlyFileStore,
                              retained: list[bytes],
                              pruned_count: int) -> int:
    """Byte-exact size of the log compaction must produce: the retained
    roots' live set and the on-log framing — nothing else."""
    size = len(MAGIC)
    if pruned_count:
        size += 1 + 4 + 32 * pruned_count + 4  # the 0xB5 pruned record
    seen: set[bytes] = set()
    for root in retained:
        size += _BATCH_OVERHEAD
        size += sum(_NODE_OVERHEAD + len(raw)
                    for _, raw in live_state_nodes(store, root, seen))
    return size


def test_store_backend(benchmark):
    items = _account_items(ACCOUNTS)
    keys = list(items)
    rng = random.Random(7)
    probes = rng.choices(keys, k=PROOF_REQUESTS)

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        log_path = os.path.join(tmp, "nodes.log")

        # -- bulk insert: memory --------------------------------------- #
        memory = MerklePatriciaTrie(MemoryNodeStore())
        start = time.perf_counter()
        memory.update(items)
        memory_root = memory.commit()
        memory_insert_s = time.perf_counter() - start

        # -- bulk insert: disk (one atomic fsynced batch) --------------- #
        store = AppendOnlyFileStore(log_path)
        disk = MerklePatriciaTrie(store)
        start = time.perf_counter()
        disk.update(items)
        disk_root = disk.commit()
        disk_insert_s = time.perf_counter() - start
        assert disk_root == memory_root, "backends disagree on the state root"
        log_bytes = store.stats.bytes_appended

        # -- proof serving: steady state (warm LRU) --------------------- #
        memory_warm = _measure_proofs(memory, probes)
        disk_warm = _measure_proofs(disk, probes)

        # -- churn: grow the log past its live set ----------------------- #
        # every round rewrites 1/20 of the accounts (new balances), so the
        # log accretes one superseded path per touched account per round —
        # the garbage a long-running node accumulates and compaction exists
        # to reclaim
        churn_keys = rng.sample(keys, k=max(len(keys) // 20, 1))
        start = time.perf_counter()
        for round_no in range(CHURN_ROUNDS):
            updates = {
                key: Account(
                    nonce=round_no + 1,
                    balance=10 ** 18 + round_no,
                ).encode()
                for key in churn_keys
            }
            items.update(updates)
            disk.update(updates)
            disk.commit()
            memory.update(updates)
            memory.commit()
        churn_s = time.perf_counter() - start
        head_root = store.last_root
        assert head_root == memory.root_hash
        pre_compact_bytes = store.log_bytes()
        first_root = store.root_history[0]
        store.close(write_index=False)

        # -- reopen the full log: the recovery scan --------------------- #
        start = time.perf_counter()
        reopened = AppendOnlyFileStore(log_path)
        recovery_s = time.perf_counter() - start
        assert not reopened.opened_indexed
        assert reopened.last_root == head_root

        # -- proof serving: cold ---------------------------------------- #
        # memory: fresh decoded-node LRU over the same store; disk: the
        # freshly reopened store, so both its decoded LRU *and* its
        # encoded-bytes read cache start empty and every miss is a real
        # log read
        memory_cold_view = MerklePatriciaTrie(
            memory.db, memory_root,
            node_cache=LRUCache(capacity=DEFAULT_NODE_CACHE_CAPACITY))
        memory_cold = _measure_proofs(memory_cold_view, probes)
        revived = MerklePatriciaTrie(reopened, reopened.last_root)
        disk_cold = _measure_proofs(revived, probes)

        # -- serve §V-D-verified proofs from the reopened store --------- #
        sample = rng.sample(keys, k=min(len(keys), 200))
        for key in sample:
            proof = generate_proof(revived, key)
            assert proof == generate_proof(memory, key)
            assert verify_proof(head_root, key, proof) == items[key]
        batch = sample[:MULTIPROOF_BATCH]
        pool = generate_multiproof(revived, batch)
        assert pool == generate_multiproof(memory, batch)
        answers = verify_multiproof(head_root, batch, pool)
        assert all(answers[key] == items[key] for key in batch)

        # -- compaction: rewrite down to the last-K live set ------------- #
        policy = RetentionPolicy.last(RETAIN_K)
        retained = policy.retained_roots(reopened.root_history)
        pruned_count = len(set(reopened.root_history) - set(retained))
        expected_bytes = _expected_compacted_bytes(
            reopened, retained, pruned_count)
        before_proofs = [generate_proof(revived, key) for key in sample]
        before_pool = generate_multiproof(revived, batch)
        start = time.perf_counter()
        report = compact_node_store(reopened, policy)
        compact_s = time.perf_counter() - start
        assert report.bytes_before == pre_compact_bytes
        assert report.bytes_after < report.bytes_before, (
            "compaction failed to shrink a churned log"
        )
        # the gate of the acceptance scenario: the compacted log holds the
        # live set of the retained roots and its framing — byte-exact
        assert report.bytes_after == expected_bytes, (
            f"compacted log is {report.bytes_after} bytes, expected the "
            f"live set to pack into exactly {expected_bytes}"
        )
        # §V-D service is untouched inside the retention window …
        post = MerklePatriciaTrie(reopened, reopened.last_root)
        for key, before in zip(sample, before_proofs):
            assert generate_proof(post, key) == before
        assert generate_multiproof(post, batch) == before_pool
        # … and typed-refused outside it
        try:
            MerklePatriciaTrie(reopened, first_root)
        except PrunedRootError:
            pass
        else:
            raise AssertionError(
                "a pruned root must raise PrunedRootError, not serve")

        # -- reopen the compacted log: scan vs root-index footer --------- #
        reopened.close(write_index=False)
        start = time.perf_counter()
        scan_store = AppendOnlyFileStore(log_path)
        scan_reopen_s = time.perf_counter() - start
        assert not scan_store.opened_indexed
        assert scan_store.last_root == head_root
        scan_index_size = len(scan_store._index)
        scan_store.close()  # clean close: writes the footer

        start = time.perf_counter()
        indexed_store = AppendOnlyFileStore(log_path)
        indexed_reopen_s = time.perf_counter() - start
        assert indexed_store.opened_indexed
        assert indexed_store.last_root == head_root
        assert len(indexed_store._index) == scan_index_size
        compacted_bytes = indexed_store.log_bytes()
        indexed_store.close()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    reopen_speedup = scan_reopen_s / indexed_reopen_s
    shrink_ratio = report.shrink_ratio
    if ACCOUNTS >= GATED_ACCOUNTS:
        assert reopen_speedup >= MIN_INDEXED_REOPEN_SPEEDUP, (
            f"indexed reopen only {reopen_speedup:.1f}x faster than the "
            f"scan (gate: {MIN_INDEXED_REOPEN_SPEEDUP}x at paper scale)"
        )
    elif ACCOUNTS >= 20_000:
        assert reopen_speedup >= MIN_INDEXED_REOPEN_SPEEDUP_SMALL, (
            f"indexed reopen only {reopen_speedup:.1f}x faster than the "
            f"scan (gate: {MIN_INDEXED_REOPEN_SPEEDUP_SMALL}x at CI scale)"
        )

    payload = {
        "accounts": ACCOUNTS,
        "proof_requests": PROOF_REQUESTS,
        "state_root": head_root.hex(),
        "bulk_insert": {
            "memory_keys_per_sec": round(ACCOUNTS / memory_insert_s, 1),
            "disk_keys_per_sec": round(ACCOUNTS / disk_insert_s, 1),
            "disk_overhead": round(disk_insert_s / memory_insert_s, 3),
        },
        "proof_serving": {
            "memory_warm_per_sec": round(memory_warm, 1),
            "disk_warm_per_sec": round(disk_warm, 1),
            "memory_cold_per_sec": round(memory_cold, 1),
            "disk_cold_per_sec": round(disk_cold, 1),
            "warm_ratio_disk_vs_memory": round(disk_warm / memory_warm, 3),
        },
        "churn": {
            "rounds": CHURN_ROUNDS,
            "accounts_per_round": len(churn_keys),
            "seconds": round(churn_s, 3),
            "log_bytes_after_churn": pre_compact_bytes,
        },
        "compaction": {
            "retain_k": RETAIN_K,
            "bytes_before": report.bytes_before,
            "bytes_after": report.bytes_after,
            "shrink_ratio": round(shrink_ratio, 3),
            "live_nodes": report.live_nodes,
            "pruned_roots": len(report.pruned_roots),
            "seconds": round(compact_s, 3),
        },
        "reopen": {
            "recovery_seconds": round(recovery_s, 3),
            "log_bytes": log_bytes,
            "scan_seconds": round(scan_reopen_s, 4),
            "indexed_seconds": round(indexed_reopen_s, 4),
            "indexed_speedup": round(reopen_speedup, 2),
            "compacted_log_bytes": compacted_bytes,
            "verified_single_proofs": len(sample),
            "verified_multiproof_batch": len(batch),
        },
    }
    write_json_series("BENCH_store", payload)

    add_report(
        f"Node-store backends: memory vs append-only disk "
        f"({ACCOUNTS} accounts)",
        render_table(
            ["phase", "memory", "disk", "disk/mem"],
            [
                ("bulk insert",
                 f"{ACCOUNTS / memory_insert_s:,.0f} keys/s",
                 f"{ACCOUNTS / disk_insert_s:,.0f} keys/s",
                 f"{memory_insert_s / disk_insert_s:.2f}x"),
                ("proof serving (warm LRU)",
                 f"{memory_warm:,.0f} proofs/s",
                 f"{disk_warm:,.0f} proofs/s",
                 f"{disk_warm / memory_warm:.2f}x"),
                ("proof serving (cold LRU)",
                 f"{memory_cold:,.0f} proofs/s",
                 f"{disk_cold:,.0f} proofs/s",
                 f"{disk_cold / memory_cold:.2f}x"),
                ("reopen (recovery scan)",
                 "—",
                 f"{recovery_s * 1000:,.0f} ms "
                 f"({pre_compact_bytes / 2**20:.1f} MiB log)",
                 "—"),
                (f"compaction (last-{RETAIN_K})",
                 "—",
                 f"{report.bytes_before / 2**20:.1f} → "
                 f"{report.bytes_after / 2**20:.1f} MiB "
                 f"in {compact_s * 1000:,.0f} ms "
                 f"({shrink_ratio:.0%} reclaimed)",
                 "—"),
                ("reopen compacted: scan vs footer",
                 "—",
                 f"{scan_reopen_s * 1000:,.0f} ms vs "
                 f"{indexed_reopen_s * 1000:,.0f} ms "
                 f"({reopen_speedup:.1f}x)",
                 "—"),
            ],
        ),
    )

    # -- regression check against the committed baseline ------------------- #
    # ratios are machine-independent; absolute ms are not.  Below CI scale
    # the scan is so cheap that the footer's edge shrinks legitimately, so
    # quick iteration runs are not held to the committed floors.
    if ACCOUNTS < 20_000:
        return
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    floor = (baseline["indexed_reopen"]["speedup"]
             * (1 - REGRESSION_TOLERANCE))
    assert reopen_speedup >= floor, (
        f"indexed-reopen speedup regressed: {reopen_speedup:.1f}x vs "
        f"committed baseline {baseline['indexed_reopen']['speedup']}x "
        f"(floor {floor:.1f}x)"
    )
    shrink_floor = (baseline["compaction"]["shrink_ratio"]
                    * (1 - REGRESSION_TOLERANCE))
    assert shrink_ratio >= shrink_floor, (
        f"compaction shrink regressed: {shrink_ratio:.2f} of the churned "
        f"log reclaimed vs committed baseline "
        f"{baseline['compaction']['shrink_ratio']} (floor {shrink_floor:.2f})"
    )
