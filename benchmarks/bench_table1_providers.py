"""Table I — node-provider traffic shares and the feature matrix (§II-B/C).

The paper maps frontend JSON-RPC calls of 383 dApps to providers.  We run
the identical analysis pipeline over the synthetic Torres-calibrated record
set and regenerate both halves of Table I.
"""

from repro.analysis import (
    PROVIDER_PROFILES,
    compare_with_published,
    compute_traffic_shares,
)
from repro.metrics import render_table
from repro.workloads import generate_dataset

from .reporting import add_report


def test_table1_traffic_shares(benchmark):
    records = generate_dataset(seed=42)
    shares = benchmark(compute_traffic_shares, records)

    rows = []
    for share in shares:
        measured = share.format_paper_style()
        rows.append((share.provider, measured))
    add_report(
        "Table I (traffic share): measured over synthetic dataset",
        render_table(["provider", "dApps (share)"], rows),
    )

    comparison = compare_with_published(shares)
    add_report(
        "Table I: measured vs published shares",
        render_table(
            ["provider", "measured %", "paper %", "abs diff (pts)"],
            comparison,
        ),
    )
    # the calibrated generator must reproduce the published marginals exactly
    assert all(diff == 0.0 for _, _, _, diff in comparison)
    assert shares[0].provider == "infura"
    assert abs(shares[0].share - 0.4752) < 1e-4


def test_table1_feature_matrix(benchmark):
    def build_matrix():
        rows = []
        for key in ("infura", "alchemy", "ankr", "quicknode", "chainstack"):
            profile = PROVIDER_PROFILES[key]
            rows.append((
                profile.name,
                "yes" if profile.free_public_no_signup else "-",
                "yes" if profile.login_via_wallet else "-",
                "yes" if profile.signup_email else "-",
                "yes" if profile.call_based_pricing else "-",
                profile.plan_tiers,
                profile.free_usage,
                "yes" if profile.pays_crypto else "-",
            ))
        return rows

    rows = benchmark(build_matrix)
    add_report(
        "Table I (feature matrix, survey constants from the paper)",
        render_table(
            ["provider", "no-signup", "wallet-login", "email-signup",
             "call-based", "tiers", "free usage", "crypto-pay"],
            rows,
        ),
    )
    # structural checks the paper's prose states
    assert sum(1 for r in rows if r[1] == "yes") == 1      # only Ankr
    assert sum(1 for r in rows if r[4] == "yes") == 3      # 3/5 call-based
    assert sum(1 for r in rows if r[7] == "yes") == 2      # 2/5 take crypto
