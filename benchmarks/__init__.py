"""Paper-reproduction benchmarks (run explicitly: ``pytest benchmarks/``)."""
