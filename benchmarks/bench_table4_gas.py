"""Table IV — on-chain gas costs of every PARP action (§VI-E).

Executes each action on the devnet and reads the *metered* gas from the
receipt — the costs emerge from EVM-style accounting (21k intrinsic,
calldata, EIP-2929 storage, ecrecover, keccak, logs), not from constants.
USD conversion uses the paper's assumptions: ETH $4,000, 12 Gwei mainnet,
0.1 Gwei Arbitrum.

Reference fraud-proof scenario: tampered write response for a transaction
in a 200-tx block — the heaviest evidence (the paper's 762,508 figure).
"""

import pytest

from repro.chain import GenesisConfig
from repro.contracts import (
    CHANNELS_MODULE_ADDRESS,
    DEPOSIT_MODULE_ADDRESS,
    cost_row,
)
from repro.contracts.gascost import MEDIAN_TX_FEE_USD
from repro.crypto import PrivateKey
from repro.metrics import render_table
from repro.node import Devnet, FullNode
from repro.lightclient import HeaderSyncer
from repro.parp import (
    FraudDetected,
    LightClientSession,
    MIN_FULL_NODE_DEPOSIT,
    WitnessService,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.constants import DISPUTE_WINDOW_BLOCKS
from repro.parp.messages import handshake_digest, payment_digest
from repro.workloads import AccountSet, WriteWorkload

from .reporting import add_report

PAPER_GAS = {
    "Deposit funds": 45_238,
    "Open a channel": 196_183,
    "Close a channel": 110_118,
    "Confirm closure": 87_128,
    "Submit a fraud proof": 762_508,
}

TOKEN = 10 ** 18


def run_gas_scenario() -> dict[str, int]:
    """One full pass over every on-chain PARP action; returns gas by action."""
    fn = PrivateKey.from_seed("gas:fn")
    lc = PrivateKey.from_seed("gas:lc")
    wn = PrivateKey.from_seed("gas:wn")
    accounts = AccountSet(64, seed="gas", balance=10 * TOKEN)
    net = Devnet(accounts.genesis(extra={
        fn.address: 1_000 * TOKEN, lc.address: 1_000 * TOKEN,
        wn.address: 1_000 * TOKEN,
    }))
    gas: dict[str, int] = {}

    # 1. deposit
    result = net.execute(fn, DEPOSIT_MODULE_ADDRESS, "deposit",
                         value=MIN_FULL_NODE_DEPOSIT)
    assert result.succeeded
    gas["Deposit funds"] = result.gas_used

    # 2. open a channel
    expiry = net.chain.head.header.timestamp + 600
    confirmation = fn.sign(handshake_digest(lc.address, expiry)).to_bytes()
    result = net.execute(lc, CHANNELS_MODULE_ADDRESS, "open_channel",
                         [fn.address, expiry, confirmation], value=TOKEN)
    assert result.succeeded
    gas["Open a channel"] = result.gas_used
    alpha = result.return_value

    # 3. close it with a signed state
    amount = 40_000 * 10 ** 9
    sig_a = lc.sign(payment_digest(alpha, amount)).to_bytes()
    result = net.execute(fn, CHANNELS_MODULE_ADDRESS, "close_channel",
                         [alpha, amount, sig_a])
    assert result.succeeded
    gas["Close a channel"] = result.gas_used

    # 4. confirm closure after the dispute window
    net.advance_blocks(DISPUTE_WINDOW_BLOCKS + 1)
    result = net.execute(fn, CHANNELS_MODULE_ADDRESS, "confirm_closure",
                         [alpha])
    assert result.succeeded
    gas["Confirm closure"] = result.gas_used

    # 5. fraud proof for a tampered write response in a 200-tx block
    evil = MaliciousFullNodeServer(
        FullNode(net.chain, key=fn, name="evil"), attack="inflate_balance",
    )
    witness_node = FullNode(net.chain, key=wn, name="wn")
    session = LightClientSession(lc, evil,
                                 HeaderSyncer([evil, witness_node]))
    session.connect(budget=10 ** 16)
    workload = WriteWorkload(accounts)
    workload.fill_mempool(net.chain, 199)
    tx = workload.make_transfer(net.chain, 199, 200)
    try:
        session.send_raw_transaction(tx.encode())
    except FraudDetected as exc:
        witness = WitnessService(witness_node)
        tx_hash = witness.submit(exc.package)
        gas["Submit a fraud proof"] = net.chain.get_receipt(tx_hash).gas_used
    else:
        raise AssertionError("the malicious node was not caught")
    return gas


def test_table4_gas_costs(benchmark):
    gas = benchmark.pedantic(run_gas_scenario, rounds=1, iterations=1)

    rows = []
    for action, paper in PAPER_GAS.items():
        measured = gas[action]
        row = cost_row(action, measured)
        deviation = (measured - paper) / paper * 100
        rows.append((
            action, f"{measured:,}", f"{paper:,}", f"{deviation:+.1f}%",
            f"${row.mainnet_usd:.3f}", f"${row.arbitrum_usd:.3f}",
        ))
    rows.append((
        "Median tx fee (2024-12-09, cited)", "-", "-", "-",
        f"${MEDIAN_TX_FEE_USD['mainnet']:.3f}",
        f"${MEDIAN_TX_FEE_USD['arbitrum']:.3f}",
    ))
    add_report(
        "Table IV: on-chain costs (measured gas; USD at $4000/ETH, "
        "12 / 0.1 Gwei)",
        render_table(
            ["action", "gas (measured)", "gas (paper)", "dev",
             "mainnet USD", "arbitrum USD"],
            rows,
        ),
    )

    # Shape: the orderings the paper's table exhibits.
    assert (gas["Submit a fraud proof"] > gas["Open a channel"]
            > gas["Close a channel"] > gas["Confirm closure"]
            > gas["Deposit funds"])
    # Zone: each action within 2x of the paper's absolute figure.
    for action, paper in PAPER_GAS.items():
        assert paper / 2 < gas[action] < paper * 2, (action, gas[action])
