"""Ablation — per-pair channels vs a payment-channel network (§VIII).

The paper's limitation: a light client must open (and pay gas for) one
on-chain channel per full node.  The PCN extension reaches N nodes through
one funded channel plus routed micro-payments.  This bench compares the
crossing point: on-chain gas outlay for N direct channels vs one channel +
cumulative routing fees for the same payment volume.
"""

from repro.crypto import PrivateKey
from repro.metrics import render_table
from repro.parp.pcn import ChannelGraph

from .reporting import add_report

OPEN_CHANNEL_GAS = 191_061          # measured in bench_table4
CLOSE_CONFIRM_GAS = 105_915 + 81_797
GAS_PRICE = 12 * 10 ** 9
GWEI = 10 ** 9

SERVER_COUNTS = (1, 2, 5, 10, 20)
PAYMENTS_PER_SERVER = 50
PAYMENT_WEI = 15 * GWEI             # a typical per-request fee
HUB_FEE_PPM = 5_000                  # 0.5% per routed hop


def direct_cost(n_servers: int) -> int:
    """Wei spent on gas to open+settle one channel per server."""
    return n_servers * (OPEN_CHANNEL_GAS + CLOSE_CONFIRM_GAS) * GAS_PRICE


def pcn_cost(n_servers: int) -> int:
    """Wei spent with one on-chain channel + routed payments via a hub."""
    lc = PrivateKey.from_seed("pcn-bench:lc").address
    hub = PrivateKey.from_seed("pcn-bench:hub").address
    graph = ChannelGraph()
    graph.add_channel(lc, hub, capacity=10 ** 18, fee_ppm=HUB_FEE_PPM)
    servers = []
    for i in range(n_servers):
        server = PrivateKey.from_seed(f"pcn-bench:fn{i}").address
        graph.add_channel(hub, server, capacity=10 ** 18, fee_ppm=HUB_FEE_PPM)
        servers.append(server)

    fees = 0
    for server in servers:
        for _ in range(PAYMENTS_PER_SERVER):
            route = graph.pay(lc, server, PAYMENT_WEI)
            fees += route.fees
    onchain = (OPEN_CHANNEL_GAS + CLOSE_CONFIRM_GAS) * GAS_PRICE  # 1 channel
    return onchain + fees


def test_ablation_pcn_vs_direct(benchmark):
    rows = []
    for n in SERVER_COUNTS:
        direct = direct_cost(n)
        routed = pcn_cost(n)
        rows.append((
            n,
            f"{direct / 10 ** 15:.2f}m gwei",
            f"{routed / 10 ** 15:.2f}m gwei",
            f"{direct / routed:.1f}x" if routed else "-",
        ))

    benchmark.pedantic(lambda: pcn_cost(5), rounds=3, iterations=1)

    add_report(
        "Ablation: N direct channels vs 1 channel + PCN routing "
        f"({PAYMENTS_PER_SERVER} payments of {PAYMENT_WEI // GWEI} gwei per "
        "server; 0.5%/hop)",
        render_table(
            ["servers", "direct (gas wei)", "PCN (gas+fees wei)",
             "direct/PCN"],
            rows,
        ),
    )

    # With one server the two are equal-ish (PCN still pays one open);
    # from two servers on, PCN must win and the gap must widen with N.
    assert direct_cost(1) <= pcn_cost(1) * 1.01
    assert direct_cost(2) > pcn_cost(2)
    gap_5 = direct_cost(5) / pcn_cost(5)
    gap_20 = direct_cost(20) / pcn_cost(20)
    assert gap_20 > gap_5 > 1.0
