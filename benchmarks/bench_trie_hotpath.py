"""Trie hot-path benchmark: the overlay engine vs the naive reference.

Every PARP serve, block execution, and Merkle proof bottoms out in
:class:`~repro.trie.mpt.MerklePatriciaTrie`.  The seed engine re-RLP-encoded
and re-keccaked the entire root path on every ``put`` (O(keys × depth) hash
round trips for a bulk load) and re-decoded every node from the store on
every visit.  The overlay engine defers hashing to one commit pass —
O(distinct dirty nodes) — and serves reads/proofs through a decoded-node
LRU.  This bench quantifies both wins on a million-account-shaped workload:

* **bulk insert** — building an ``TRIE_BENCH_ACCOUNTS``-account state trie
  (secure-trie shaped: uniform 32-byte keys, RLP account records);
* **proof serving** — single-key account proofs against the built trie, the
  per-request path of Fig. 7's serving race.  Both engines prove over the
  *same* committed store and root; the gated number is steady-state
  (warm-LRU) throughput, i.e. the dApp-re-reads-hot-keys regime the
  decoded-node cache exists for, with the cold first pass reported
  alongside.

The naive baseline's insert is measured on a smaller prefix of the same
key stream (``NAIVE_INSERT_SAMPLE`` keys) because the eager engine's cost
per key *grows* with trie depth: its throughput at the sample size is an
upper bound on its 100k-account throughput, so the reported speedup is a
conservative lower bound.

Emits ``BENCH_trie.json`` and enforces two gates:

* absolute: ≥ 5× bulk-insert and ≥ 2× proof-serving speedup;
* regression: the measured insert speedup must stay within 30% of the
  committed baseline (``benchmarks/baselines/BENCH_trie_baseline.json``) —
  speedup ratios are machine-independent, so this check is CI-stable.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time

from repro.chain.account import Account
from repro.metrics import render_table
from repro.trie import MerklePatriciaTrie, NaiveMerklePatriciaTrie, generate_proof

from .reporting import add_report, write_json_series

#: accounts in the bulk-insert phase (the paper-scale default is 100k; CI or
#: quick local runs can shrink it via the environment).
ACCOUNTS = int(os.environ.get("TRIE_BENCH_ACCOUNTS", "100000"))
#: keys the naive baseline inserts (upper-bounds its full-size throughput)
NAIVE_INSERT_SAMPLE = min(ACCOUNTS, max(ACCOUNTS // 10, 5000))
#: single-key proofs measured per engine
PROOF_REQUESTS = min(ACCOUNTS, 2000)

BASELINE_PATH = (pathlib.Path(__file__).parent / "baselines"
                 / "BENCH_trie_baseline.json")

#: regression tolerance against the committed baseline speedups
REGRESSION_TOLERANCE = 0.30
#: absolute acceptance gates for the overlay engine, enforced at the
#: paper-scale account count they were defined for (smaller CI-sized runs
#: rely on the regression floor, which leaves ~45% headroom for noisy
#: shared runners instead of ~15%)
MIN_INSERT_SPEEDUP = 5.0
MIN_PROOF_SPEEDUP = 2.0
GATED_ACCOUNTS = 100_000


def _account_items(count: int) -> dict[bytes, bytes]:
    """Secure-trie shaped state: uniform 32-byte keys -> RLP account records."""
    rng = random.Random(0xC0FFEE)
    return {
        rng.randbytes(32): Account(nonce=i % 5, balance=10 ** 18 + i).encode()
        for i in range(count)
    }


def test_trie_hotpath(benchmark):
    items = _account_items(ACCOUNTS)
    keys = list(items)

    # -- bulk insert ------------------------------------------------------ #
    fast = MerklePatriciaTrie()
    start = time.perf_counter()
    fast.update(items)
    fast_root = fast.commit()
    fast_insert_s = time.perf_counter() - start
    fast_insert_rate = ACCOUNTS / fast_insert_s

    naive_items = {key: items[key] for key in keys[:NAIVE_INSERT_SAMPLE]}
    naive = NaiveMerklePatriciaTrie()
    start = time.perf_counter()
    naive.update(naive_items)
    naive_insert_s = time.perf_counter() - start
    naive_insert_rate = NAIVE_INSERT_SAMPLE / naive_insert_s
    insert_speedup = fast_insert_rate / naive_insert_rate

    # sanity: both engines agree bit-for-bit on the sample's commitment
    check = MerklePatriciaTrie()
    check.update(naive_items)
    assert check.root_hash == naive.root_hash

    # -- proof serving ---------------------------------------------------- #
    # both engines prove over the SAME committed store and root (the naive
    # engine attaches read-only to the overlay engine's db), so the contest
    # is purely per-request work: cached decoded nodes vs rlp.decode per
    # node per request.
    naive_view = NaiveMerklePatriciaTrie(fast.db, fast_root)
    rng = random.Random(1)
    probes = rng.choices(keys, k=PROOF_REQUESTS)

    # first pass: cold-ish serving (the LRU still holds whatever survived
    # the commit sweep) — reported, not gated
    start = time.perf_counter()
    for key in probes:
        generate_proof(fast, key)
    fast_cold_rate = PROOF_REQUESTS / (time.perf_counter() - start)

    # second pass over the same working set: steady-state serving, the
    # regime the decoded-node LRU targets (Fig. 7's dApp traffic re-reads
    # hot keys between blocks — see the proof_cache notes in parp/server.py)
    start = time.perf_counter()
    for key in probes:
        generate_proof(fast, key)
    fast_proof_s = time.perf_counter() - start
    fast_proof_rate = PROOF_REQUESTS / fast_proof_s

    start = time.perf_counter()
    for key in probes:
        generate_proof(naive_view, key)
    naive_proof_s = time.perf_counter() - start
    naive_proof_rate = PROOF_REQUESTS / naive_proof_s
    proof_speedup = fast_proof_rate / naive_proof_rate

    benchmark.pedantic(
        lambda: generate_proof(fast, probes[0]), rounds=1, iterations=10,
    )

    cache = fast.node_cache
    payload = {
        "accounts": ACCOUNTS,
        "naive_insert_sample": NAIVE_INSERT_SAMPLE,
        "proof_requests": PROOF_REQUESTS,
        "state_root": fast_root.hex(),
        "bulk_insert": {
            "fast_keys_per_sec": round(fast_insert_rate, 1),
            "fast_seconds": round(fast_insert_s, 2),
            "naive_keys_per_sec": round(naive_insert_rate, 1),
            "naive_seconds": round(naive_insert_s, 2),
            "speedup": round(insert_speedup, 2),
        },
        "proof_serving": {
            "fast_proofs_per_sec": round(fast_proof_rate, 1),
            "fast_cold_proofs_per_sec": round(fast_cold_rate, 1),
            "naive_proofs_per_sec": round(naive_proof_rate, 1),
            "speedup": round(proof_speedup, 2),
        },
        "node_cache": {
            "capacity": cache.capacity,
            "entries": len(cache),
            "hit_rate": round(cache.stats.hit_rate, 4),
        },
        "store_entries": {"fast": len(fast.db), "naive": len(naive.db)},
    }
    write_json_series("BENCH_trie", payload)

    add_report(
        f"Trie hot path: overlay engine vs naive reference "
        f"({ACCOUNTS} accounts; naive insert sampled at {NAIVE_INSERT_SAMPLE})",
        render_table(
            ["phase", "overlay", "naive", "speedup"],
            [
                ("bulk insert",
                 f"{fast_insert_rate:,.0f} keys/s",
                 f"{naive_insert_rate:,.0f} keys/s",
                 f"{insert_speedup:.1f}x"),
                ("proof serving (steady state)",
                 f"{fast_proof_rate:,.0f} proofs/s",
                 f"{naive_proof_rate:,.0f} proofs/s",
                 f"{proof_speedup:.1f}x"),
                ("proof serving (cold LRU)",
                 f"{fast_cold_rate:,.0f} proofs/s",
                 f"{naive_proof_rate:,.0f} proofs/s",
                 f"{fast_cold_rate / naive_proof_rate:.1f}x"),
            ],
        ),
    )

    # -- acceptance gates (at the scale they were defined for) ------------- #
    if ACCOUNTS >= GATED_ACCOUNTS:
        assert insert_speedup >= MIN_INSERT_SPEEDUP, (
            f"bulk-insert speedup {insert_speedup:.2f}x below the "
            f"{MIN_INSERT_SPEEDUP}x gate"
        )
        assert proof_speedup >= MIN_PROOF_SPEEDUP, (
            f"proof-serving speedup {proof_speedup:.2f}x below the "
            f"{MIN_PROOF_SPEEDUP}x gate"
        )

    # -- regression check against the committed baseline ------------------- #
    # the baseline ratios were recorded at 20k (CI) and 100k (paper scale);
    # below that the overlay-vs-naive ratio legitimately shrinks with trie
    # depth, so quick iteration runs are not held to it
    if ACCOUNTS < 20_000:
        return
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    floor = baseline["bulk_insert"]["speedup"] * (1 - REGRESSION_TOLERANCE)
    assert insert_speedup >= floor, (
        f"bulk-insert speedup regressed: {insert_speedup:.2f}x vs committed "
        f"baseline {baseline['bulk_insert']['speedup']}x (floor {floor:.2f}x)"
    )
    proof_floor = (baseline["proof_serving"]["speedup"]
                   * (1 - REGRESSION_TOLERANCE))
    assert proof_speedup >= proof_floor, (
        f"proof-serving speedup regressed: {proof_speedup:.2f}x vs committed "
        f"baseline {baseline['proof_serving']['speedup']}x "
        f"(floor {proof_floor:.2f}x)"
    )
