"""Benchmark report collection.

Each bench registers the table/series it regenerated; the conftest's
``pytest_terminal_summary`` hook prints every block at the end of the run,
so ``pytest benchmarks/ --benchmark-only`` emits the paper-comparison tables
without needing ``-s``.  Blocks are also appended to
``benchmarks/results/latest.txt`` for EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

import json
import pathlib

_REPORTS: list[tuple[str, str]] = []

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def add_report(title: str, body: str) -> None:
    """Register a rendered table/series for the terminal summary."""
    _REPORTS.append((title, body))
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "latest.txt", "a", encoding="utf-8") as fh:
        fh.write(f"== {title} ==\n{body}\n\n")


def write_json_series(name: str, payload: dict) -> pathlib.Path:
    """Persist one bench's machine-readable series (CI uploads these so the
    perf trajectory is diffable across commits, not just eyeballable)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def drain_reports() -> list[tuple[str, str]]:
    """Return and clear all registered reports."""
    global _REPORTS
    out, _REPORTS = _REPORTS, []
    return out


def reset_results_file() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "latest.txt").write_text("", encoding="utf-8")
