"""Ablation — fee-schedule design (§VIII "designing a fee schedule").

Table I notes that 3 of 5 surveyed providers price per call type "for a
fairer fee calculation".  This bench runs the same mixed workload under a
flat schedule and a call-based schedule and compares what the client pays
and how the charge distributes across call types.
"""

from repro.lightclient import HeaderSyncer
from repro.metrics import render_table
from repro.parp import LightClientSession
from repro.parp.pricing import CallBasedFeeSchedule, FlatFeeSchedule, GWEI
from repro.workloads.write import WriteWorkload

from .reporting import add_report

#: mixed workload: mostly cheap reads, a few expensive writes — the shape
#: provider "compute unit" schedules are designed around.
MIX = (["eth_getBalance"] * 8 + ["eth_blockNumber"] * 4
       + ["eth_sendRawTransaction"] * 1)


def run_mix(world, schedule) -> tuple[int, dict[str, int]]:
    # fee schedules are a connection parameter: both sides must agree
    world.server.fee_schedule = schedule
    session = LightClientSession(
        world.lc_key, world.server,
        HeaderSyncer([world.server, world.witness_node]),
        fee_schedule=schedule,
    )
    session.connect(budget=10 ** 16)
    workload = WriteWorkload(world.accounts)
    per_method: dict[str, int] = {}
    for i, method in enumerate(MIX):
        before = session.channel.spent
        if method == "eth_getBalance":
            session.get_balance(world.accounts.addresses[i % 8])
        elif method == "eth_blockNumber":
            session.block_number()
        else:
            tx = workload.make_transfer(world.net.chain, i + 40, i + 41)
            session.send_raw_transaction(tx.encode())
        per_method[method] = (per_method.get(method, 0)
                              + session.channel.spent - before)
    return session.channel.spent, per_method


def test_ablation_fee_schedules(benchmark, world):
    flat = FlatFeeSchedule(flat_price=15 * GWEI)
    call_based = CallBasedFeeSchedule()

    flat_total, flat_split = run_mix(world, flat)
    cb_total, cb_split = run_mix(world, call_based)

    benchmark(call_based.price,
              __import__("repro.parp.messages", fromlist=["RpcCall"])
              .RpcCall.create("eth_getBalance", b"\x00" * 20))

    rows = []
    for method in sorted(set(MIX)):
        count = MIX.count(method)
        rows.append((
            method, count,
            f"{flat_split[method] / GWEI:.0f} gwei",
            f"{cb_split[method] / GWEI:.0f} gwei",
        ))
    rows.append(("TOTAL", len(MIX), f"{flat_total / GWEI:.0f} gwei",
                 f"{cb_total / GWEI:.0f} gwei"))
    add_report(
        "Ablation: flat vs call-based fee schedule on a mixed workload "
        "(8 reads, 4 head polls, 1 write)",
        render_table(["method", "calls", "flat schedule", "call-based"],
                     rows),
    )

    # call-based pricing shifts cost toward the expensive write...
    write = "eth_sendRawTransaction"
    assert cb_split[write] > flat_split[write]
    # ...and away from trivial head polls
    assert cb_split["eth_blockNumber"] < flat_split["eth_blockNumber"]
