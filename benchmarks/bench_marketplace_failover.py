"""Marketplace routing under the Table I traffic mix, honest vs malicious.

Replays the synthetic dApp→provider dataset (``workloads/dapp_traffic``)
against a three-server PARP marketplace: provider shares decide how many
queries the load generator aims at each server, the marketplace client
routes them by reputation × price, and a second run flips the
biggest-share server malicious to price the failover path — the client
must still complete 100% of the workload while the fraud is detected,
slashed, and routed around.

Emits ``results/BENCH_marketplace.json`` (uploaded by the tier-2 CI job)
so the marketplace perf trajectory is diffable commit over commit.
"""

import random
import time
from collections import Counter

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.metrics import render_table
from repro.node import Devnet, FullNode
from repro.parp import (
    FlatFeeSchedule,
    FullNodeServer,
    Marketplace,
    MarketplaceClient,
)
from repro.parp.adversary import MaliciousFullNodeServer
from repro.parp.fraudproof import WitnessService
from repro.parp.pricing import GWEI
from repro.workloads.dapp_traffic import PUBLISHED_SHARES, generate_dataset

from .reporting import add_report, write_json_series

TOKEN = 10 ** 18
TOTAL_QUERIES = 120
#: the three biggest Table I providers play the three marketplace servers
PROVIDERS = ("infura", "alchemy", "binance")
PRICES_GWEI = {"infura": 10, "alchemy": 8, "binance": 5}


def traffic_schedule() -> list[str]:
    """Per-query provider labels, proportional to the dataset's call counts."""
    records = generate_dataset(seed=7)
    calls = Counter()
    for record in records:
        if record.provider in PROVIDERS:
            calls[record.provider] += record.call_count
    total = sum(calls.values())
    schedule: list[str] = []
    for provider in PROVIDERS:
        schedule += [provider] * round(TOTAL_QUERIES * calls[provider] / total)
    # seeded shuffle: deterministic, and interleaved so no provider's burst
    # skews timing (the labels size the load; marketplace routing, not the
    # dataset's provider column, decides who actually serves each query)
    random.Random(2025).shuffle(schedule)
    return schedule[:TOTAL_QUERIES]


def build_world(evil_provider: str | None = None):
    operators = {p: PrivateKey.from_seed(f"bench:mkt:{p}") for p in PROVIDERS}
    lc = PrivateKey.from_seed("bench:mkt:lc")
    wn = PrivateKey.from_seed("bench:mkt:wn")
    alice = PrivateKey.from_seed("bench:mkt:alice")
    allocations = {k.address: 1_000 * TOKEN
                   for k in list(operators.values()) + [lc, wn]}
    allocations[alice.address] = 5 * TOKEN
    net = Devnet(GenesisConfig(allocations=allocations))
    for op in operators.values():
        net.stake_full_node(op)
    net.advance_blocks(2)

    servers = {}
    for provider, op in operators.items():
        schedule = FlatFeeSchedule(flat_price=PRICES_GWEI[provider] * GWEI)
        node = FullNode(net.chain, key=op, name=provider)
        if provider == evil_provider:
            servers[provider] = MaliciousFullNodeServer(
                node, attack="inflate_balance", fee_schedule=schedule)
        else:
            servers[provider] = FullNodeServer(node, fee_schedule=schedule)

    marketplace = Marketplace()
    for provider, server in servers.items():
        marketplace.advertise_server(server, name=provider)
    witness = WitnessService(FullNode(net.chain, key=wn, name="wn"))
    client = MarketplaceClient(lc, marketplace, witness=witness,
                               budget=10 ** 16)
    return net, servers, client, alice


def run_workload(client, alice) -> tuple[float, int]:
    """Serve the whole schedule; returns (seconds, completed)."""
    completed = 0
    start = time.perf_counter()
    for _ in traffic_schedule():
        # every dApp query is a verified read against the marketplace
        if client.get_balance(alice.address) == 5 * TOKEN:
            completed += 1
    return time.perf_counter() - start, completed


def test_marketplace_failover_throughput():
    # honest baseline
    _, servers, client, alice = build_world()
    client.connect()
    honest_time, honest_done = run_workload(client, alice)
    assert honest_done == TOTAL_QUERIES
    assert client.stats.failovers == 0
    honest_qps = TOTAL_QUERIES / honest_time

    # one-third of the marketplace turns malicious — the cheapest provider,
    # i.e. exactly the one price-aware selection would pick first
    _, evil_servers, evil_client, alice = build_world(evil_provider="binance")
    evil_client.connect()
    evil_time, evil_done = run_workload(evil_client, alice)
    assert evil_done == TOTAL_QUERIES          # 100% completion regardless
    assert evil_client.stats.frauds_detected >= 1
    assert evil_client.stats.frauds_slashed >= 1
    assert evil_client.stats.failovers >= 1
    evil_qps = TOTAL_QUERIES / evil_time

    served = {p: sum(c.queries_served for c in s.channels.values())
              for p, s in evil_servers.items()}
    # the fraud (its one banked-but-forged query) evicted it from routing
    assert served["binance"] <= 1

    rows = [
        ["honest ×3", f"{TOTAL_QUERIES}", f"{honest_time * 1e3:.1f}ms",
         f"{honest_qps:.0f} q/s", "0"],
        ["1 malicious", f"{TOTAL_QUERIES}", f"{evil_time * 1e3:.1f}ms",
         f"{evil_qps:.0f} q/s", str(evil_client.stats.failovers)],
    ]
    add_report(
        "Marketplace routing under Table I traffic (3 servers, 120 queries)",
        render_table(
            ["scenario", "queries", "total", "throughput", "failovers"], rows,
        ),
    )
    write_json_series("BENCH_marketplace", {
        "total_queries": TOTAL_QUERIES,
        "honest": {
            "seconds": honest_time,
            "queries_per_second": honest_qps,
            "failovers": 0,
        },
        "one_malicious": {
            "seconds": evil_time,
            "queries_per_second": evil_qps,
            "failovers": evil_client.stats.failovers,
            "frauds_detected": evil_client.stats.frauds_detected,
            "frauds_slashed": evil_client.stats.frauds_slashed,
            "served_by_provider": served,
        },
        "overhead_ratio": evil_time / honest_time,
    })
