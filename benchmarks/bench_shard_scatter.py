"""Sharded scatter-gather vs a single full-range node: aggregate throughput.

Replays a Table-I-style batch mix (balance-heavy state reads plus the odd
unsharded probe) against clusters of 1 / 2 / 4 / 8 shard servers over the
simulated network.  Every configuration serves the *same* call stream and
returns byte-identical proofs (the differential property suite pins that);
what sharding buys is parallelism — each server materializes and proves
only its slice, so the serving work divides across the cluster.

Two measured quantities, both deterministic:

* **scatter latency** — simulated time per `query_sharded` batch; the legs
  run concurrently, so splitting a batch across shards must not stretch
  its wall-clock (the p99 gate);
* **per-server busy bytes** — response traffic each server pushed back
  (per-link `LinkStats`, handshake/sync excluded), the serving-work proxy:
  slice proofs are byte-identical to full-trie proofs, so the *total* is
  ~constant across configurations and the **max over servers** models the
  cluster's makespan under a fixed per-node service bandwidth.

Aggregate throughput is state-keyed calls per modeled busy-second of the
busiest server.  Emits ``results/BENCH_shard.json`` (uploaded by the
tier-2 CI job), gated on **≥2.5× aggregate throughput at 4 shards vs the
single-node baseline** and **bounded scatter p99** (no shard count may
double the single-node tail).
"""

import random

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey, keccak256
from repro.metrics import render_table
from repro.net import PairwiseLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet
from repro.parp import FlatFeeSchedule, Marketplace, MarketplaceClient
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.trie import shard_of_key

from .reporting import add_report, write_json_series

TOKEN = 10 ** 18
SHARD_COUNTS = (1, 2, 4, 8)
N_USERS = 128             # 16 per 8-bucket: balanced at every shard count
N_BATCHES = 12
LATENCY = 0.02
TIMEOUT = 2.0
#: modeled per-node service bandwidth for the busy-bytes → seconds mapping
#: (any constant works: gates are ratios, machine- and constant-independent)
MODEL_BANDWIDTH = 1 << 20


def balanced_users() -> list[PrivateKey]:
    """N_USERS funded accounts, exactly N_USERS/8 hashing into each of the
    8 finest buckets — so the key-space load is balanced at every shard
    count in SHARD_COUNTS and the speedup measures sharding, not luck."""
    buckets: dict[int, list[PrivateKey]] = {b: [] for b in range(8)}
    i = 0
    while any(len(us) < N_USERS // 8 for us in buckets.values()):
        key = PrivateKey.from_seed(f"bench:shard:user{i}")
        i += 1
        bucket = shard_of_key(keccak256(bytes(key.address)), 8)
        if len(buckets[bucket]) < N_USERS // 8:
            buckets[bucket].append(key)
    return [key for b in range(8) for key in buckets[b]]


def batch_schedule(users: list[PrivateKey]) -> list[list[RpcCall]]:
    """The Table-I-style mix: balance-heavy batches of 16–24 calls drawn
    round-robin over the balanced population, with an unsharded probe
    riding along in every fourth batch."""
    rng = random.Random(1337)
    order = list(users)
    rng.shuffle(order)
    cursor = 0
    batches = []
    for b in range(N_BATCHES):
        size = rng.randint(16, 24)
        calls = []
        for _ in range(size):
            calls.append(RpcCall.create("eth_getBalance",
                                        order[cursor % len(order)].address))
            cursor += 1
        if b % 4 == 0:
            calls.append(RpcCall.create("eth_blockNumber"))
        batches.append(calls)
    return batches


def build_world(shard_count: int, users: list[PrivateKey]):
    ops = [PrivateKey.from_seed(f"bench:shard:op{i}")
           for i in range(shard_count)]
    lc = PrivateKey.from_seed("bench:shard:lc")
    allocations = {k.address: 1_000 * TOKEN for k in ops + [lc]}
    for i, user in enumerate(users):
        allocations[user.address] = (i + 1) * TOKEN
    devnet = Devnet(GenesisConfig(allocations=allocations))

    links = {(f"lc-{s}", f"srv-{s}"): LATENCY for s in range(shard_count)}
    network = SimNetwork(latency=PairwiseLatency(links, default=LATENCY))

    marketplace = Marketplace()
    for s, server in enumerate(devnet.attach_shard_cluster(
            ops, shard_count, fee_schedule=FlatFeeSchedule(flat_price=5 * GWEI))):
        SimServerBinding(network, f"srv-{s}", server)
        endpoint = SimEndpoint(network, f"lc-{s}", f"srv-{s}", server.address,
                               timeout=TIMEOUT)
        marketplace.advertise_server(server, name=f"srv-{s}", endpoint=endpoint)
    devnet.advance_blocks(2)

    client = MarketplaceClient(lc, marketplace, budget=10 ** 16,
                               clock=network.clock)
    client.connect(min_sessions=shard_count)
    client.headers.sync()   # pin the post-connect head outside the timings
    return network, client


def server_response_bytes(network) -> dict[str, int]:
    """Bytes each server pushed back toward the client, from LinkStats."""
    out: dict[str, int] = {}
    for (src, _dst), link in network.stats.links.items():
        if src.startswith("srv-"):
            out[src] = out.get(src, 0) + link.bytes_sent
    return out


def percentile(samples: list[float], pct: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, round(pct / 100 * (len(ranked) - 1))))
    return ranked[index]


def run_configuration(shard_count: int, users, batches):
    network, client = build_world(shard_count, users)
    # warm-up: two calls per finest bucket puts every leg on the batch
    # path, paying each session's one-time first-use setup (the free batch
    # version probe) outside the measured window — connect cost, not
    # steady-state serving
    per_bucket = N_USERS // 8
    warm = [users[b * per_bucket + k] for b in range(8) for k in range(2)]
    client.query_sharded([RpcCall.create("eth_getBalance", user.address)
                          for user in warm])
    before = server_response_bytes(network)   # handshakes, opens, warm-up
    durations = []
    for calls in batches:
        start = network.clock.now()
        outcome = client.query_sharded(calls)
        durations.append(network.clock.now() - start)
        assert outcome.report.valid and len(outcome) == len(calls)
    after = server_response_bytes(network)
    busy = {name: after[name] - before.get(name, 0) for name in after}
    assert all(leg_bytes >= 0 for leg_bytes in busy.values())
    total_calls = sum(
        sum(1 for call in calls if call.method == "eth_getBalance")
        for calls in batches)
    makespan = max(busy.values()) / MODEL_BANDWIDTH
    return {
        "shards": shard_count,
        "state_calls": total_calls,
        "p50_s": percentile(durations, 50),
        "p99_s": percentile(durations, 99),
        "sim_total_s": sum(durations),
        "busy_bytes_per_server": dict(sorted(busy.items())),
        "max_busy_bytes": max(busy.values()),
        "total_busy_bytes": sum(busy.values()),
        "throughput_cps": total_calls / makespan,
        "scatter_legs": client.stats.scatter_legs,
    }


def test_shard_scatter_throughput():
    users = balanced_users()
    batches = batch_schedule(users)
    series = [run_configuration(n, users, batches) for n in SHARD_COUNTS]
    baseline = series[0]

    for entry in series:
        entry["speedup_vs_single"] = (entry["throughput_cps"]
                                      / baseline["throughput_cps"])

    # gate 1: sharding must actually multiply aggregate throughput
    at_four = next(e for e in series if e["shards"] == 4)
    assert at_four["speedup_vs_single"] >= 2.5

    # gate 2: scattering must not stretch the tail — the legs run
    # concurrently, so no configuration may double the single-node p99
    for entry in series:
        assert entry["p99_s"] <= 2 * baseline["p99_s"]

    rows = [[str(e["shards"]), f"{e['p50_s'] * 1e3:.0f}ms",
             f"{e['p99_s'] * 1e3:.0f}ms",
             f"{e['max_busy_bytes'] / 1024:.0f}KiB",
             f"{e['throughput_cps']:.0f}",
             f"{e['speedup_vs_single']:.2f}x"]
            for e in series]
    add_report(
        f"Sharded scatter-gather vs single node (Table I mix, {N_BATCHES} "
        f"batches, {baseline['state_calls']} state calls)",
        render_table(
            ["shards", "p50", "p99", "max busy", "calls/busy-s", "speedup"],
            rows,
        ),
    )
    write_json_series("BENCH_shard", {
        "batches": N_BATCHES,
        "users": N_USERS,
        "model_bandwidth_bytes_per_s": MODEL_BANDWIDTH,
        "series": series,
        "gates": {
            "throughput_at_4_shards_vs_single": at_four["speedup_vs_single"],
            "throughput_gate": 2.5,
            "p99_bound_vs_single": max(e["p99_s"] for e in series)
                                   / baseline["p99_s"],
            "p99_gate": 2.0,
        },
    })
