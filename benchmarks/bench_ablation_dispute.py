"""Ablation — dispute-window length: settlement latency vs challenge safety.

The CMM's dispute window (paper §IV-E.4) trades closure latency against the
time an honest counterparty has to challenge a stale state.  This bench
sweeps the window length and reports (a) blocks until funds settle in the
cooperative case and (b) whether a late challenger still wins.
"""

import pytest

from repro.chain import GenesisConfig
from repro.contracts import CHANNELS_MODULE_ADDRESS, DEPOSIT_MODULE_ADDRESS
from repro.crypto import PrivateKey
from repro.metrics import render_table
from repro.node import Devnet
from repro.parp import MIN_FULL_NODE_DEPOSIT
from repro.parp.messages import handshake_digest, payment_digest

from .reporting import add_report

TOKEN = 10 ** 18
WINDOWS = (2, 5, 10, 20)


def channel_scenario(window: int, challenge_delay: int):
    """Open a channel, close with a stale state, challenge after ``delay``.

    Returns (challenge_succeeded, blocks_to_settlement).
    """
    import repro.contracts.channels as channels_module

    fn = PrivateKey.from_seed("disp:fn")
    lc = PrivateKey.from_seed("disp:lc")
    net = Devnet(GenesisConfig(allocations={
        fn.address: 100 * TOKEN, lc.address: 100 * TOKEN,
    }))
    net.execute(fn, DEPOSIT_MODULE_ADDRESS, "deposit",
                value=MIN_FULL_NODE_DEPOSIT)
    expiry = net.chain.head.header.timestamp + 600
    sig = fn.sign(handshake_digest(lc.address, expiry)).to_bytes()
    result = net.execute(lc, CHANNELS_MODULE_ADDRESS, "open_channel",
                         [fn.address, expiry, sig], value=TOKEN)
    alpha = result.return_value

    original_window = channels_module.DISPUTE_WINDOW_BLOCKS
    channels_module.DISPUTE_WINDOW_BLOCKS = window
    try:
        stale, newest = 1_000, 9_000
        stale_sig = lc.sign(payment_digest(alpha, stale)).to_bytes()
        newest_sig = lc.sign(payment_digest(alpha, newest)).to_bytes()

        close_block = net.chain.height + 1
        net.execute(lc, CHANNELS_MODULE_ADDRESS, "close_channel",
                    [alpha, stale, stale_sig])
        if challenge_delay:
            net.advance_blocks(challenge_delay)
        challenge = net.execute(fn, CHANNELS_MODULE_ADDRESS, "submit_state",
                                [alpha, newest, newest_sig])
        # settle as soon as allowed
        deadline = net.call_view(CHANNELS_MODULE_ADDRESS, "get_channel",
                                 [alpha])[5]
        while net.chain.height <= deadline:
            net.advance_blocks(1)
        settle = net.execute(fn, CHANNELS_MODULE_ADDRESS, "confirm_closure",
                             [alpha])
        assert settle.succeeded
        final = net.call_view(CHANNELS_MODULE_ADDRESS, "get_channel", [alpha])
        return challenge.succeeded, net.chain.height - close_block, final[3]
    finally:
        channels_module.DISPUTE_WINDOW_BLOCKS = original_window


def test_ablation_dispute_window(benchmark):
    rows = []
    for window in WINDOWS:
        in_time, blocks, settled_amount = channel_scenario(
            window, challenge_delay=max(0, window - 2))
        too_late, _, late_amount = channel_scenario(
            window, challenge_delay=window + 2)
        rows.append((
            window, blocks,
            "won" if in_time and settled_amount == 9_000 else "lost",
            "rejected" if not too_late else "accepted",
        ))

    benchmark.pedantic(lambda: channel_scenario(2, 0), rounds=1, iterations=1)

    add_report(
        "Ablation: dispute-window length vs settlement latency and "
        "challenge safety",
        render_table(
            ["window (blocks)", "blocks to settle",
             "challenge inside window", "challenge after window"],
            rows,
        ),
    )

    # inside-window challenges always win; after-window ones never land
    assert all(r[2] == "won" for r in rows)
    assert all(r[3] == "rejected" for r in rows)
    # settlement latency grows with the window
    latencies = [r[1] for r in rows]
    assert latencies == sorted(latencies)
