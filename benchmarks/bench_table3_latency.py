"""Table III — per-step computational latency of the PARP pipeline (§VI-D).

The paper times four steps of Fig. 5, averaged over 100 requests:

* light client: (A) request generation, (D) response verification
  (proof-only and total),
* full node: (B) request verification, (C) response generation (proof-only
  and total).

Write workload = a transaction inside a 200-tx block; read workload =
``eth_getBalance``.  Absolute times differ from the paper's Go prototype
(pure-Python crypto); the reproduction target is the structure — write >
read, proof work dominating response generation/verification — recorded
side by side with the paper's numbers.
"""

import time

from repro.metrics import StepTimer, render_table
from repro.parp.messages import PARPRequest, PARPResponse, RpcCall
from repro.parp.queries import execute_query, verify_query_result
from repro.parp.verification import classify_response

from .reporting import add_report

PAPER_ROWS = {
    ("A", "write"): "10.91 ms", ("A", "read"): "4.82 ms",
    ("D-proof", "write"): "7.13 ms", ("D-proof", "read"): "5.78 ms",
    ("D-total", "write"): "8.11 ms", ("D-total", "read"): "1.01 ms",
    ("B", "write"): "714 µs", ("B", "read"): "703 µs",
    ("C-proof", "write"): "3.08 ms", ("C-proof", "read"): "477 µs",
    ("C-total", "write"): "3.37 ms", ("C-total", "read"): "1.29 ms",
}

REQUESTS = 100


def _measure_workload(world, call_factory, timer: StepTimer, label: str,
                      requests: int = REQUESTS) -> None:
    """Run the full pipeline ``requests`` times, timing each step."""
    session, server = world.session, world.server
    for i in range(requests):
        call = call_factory(i)
        price = session.fee_schedule.price(call)
        amount = session.channel.next_amount(price)

        start = time.perf_counter()                      # (A) request gen
        request = session.build_request(call, amount)
        timer.add_sample(f"A/{label}", time.perf_counter() - start)
        session.channel.record_request(amount)
        wire = request.encode_wire()

        start = time.perf_counter()                      # (B) request verify
        verified = server._verify_request(PARPRequest.decode_wire(wire))
        timer.add_sample(f"B/{label}", time.perf_counter() - start)

        start = time.perf_counter()                      # (C-proof)
        m_b = server.node.head_number()
        result, proof = execute_query(server.node, call, m_b)
        proof_elapsed = time.perf_counter() - start
        timer.add_sample(f"C-proof/{label}", proof_elapsed)
        start = time.perf_counter()
        response = PARPResponse.build(
            alpha=request.alpha, request=request, m_b=m_b,
            result=result, proof=proof, key=server.key,
        )
        timer.add_sample(f"C-total/{label}",
                         proof_elapsed + (time.perf_counter() - start))
        raw = response.encode_wire()

        decoded = PARPResponse.decode_wire(raw)
        request_height = session.headers.height_of(request.h_b)
        start = time.perf_counter()                      # (D-proof)
        verify_query_result(call, decoded, session.headers.get_header)
        timer.add_sample(f"D-proof/{label}", time.perf_counter() - start)

        start = time.perf_counter()                      # (D-total)
        report = classify_response(
            request, decoded, session.channel.alpha, session.full_node,
            request_height, session.headers.get_header,
        )
        timer.add_sample(f"D-total/{label}", time.perf_counter() - start)
        assert report.valid, report


def test_table3_latency_breakdown(benchmark, world_with_200tx_block):
    world, block = world_with_200tx_block
    timer = StepTimer()

    # READ workload: balance queries over the funded accounts.
    addresses = world.accounts.addresses

    def read_call(i):
        return RpcCall.create("eth_getBalance", addresses[i % len(addresses)])

    _measure_workload(world, read_call, timer, "read")

    # WRITE workload: proofs for transactions inside the 200-tx block.
    def write_call(i):
        return RpcCall.create(
            "eth_getTransactionByBlockNumberAndIndex",
            block.number, i % len(block.transactions),
        )

    _measure_workload(world, write_call, timer, "write")

    # benchmark fixture: one full read round (request gen -> verify)
    def one_round():
        call = read_call(0)
        amount = world.session.channel.next_amount(
            world.session.fee_schedule.price(call))
        request = world.session.build_request(call, amount)
        world.session.channel.record_request(amount)
        return world.server.serve_request(request.encode_wire())

    benchmark.pedantic(one_round, rounds=10, iterations=1)

    rows = []
    for step in ("A", "D-proof", "D-total", "B", "C-proof", "C-total"):
        for workload in ("write", "read"):
            stats = timer.stats(f"{step}/{workload}")
            rows.append((
                step, workload, stats.format_paper_style(),
                PAPER_ROWS[(step, workload)],
            ))
    add_report(
        f"Table III: added latency per step (mean of {REQUESTS} requests)",
        render_table(["step", "workload", "measured (this impl)",
                      "paper (Go prototype)"], rows),
    )

    # Shape assertions.  Two caveats vs the Go prototype, recorded in
    # EXPERIMENTS.md: (1) steps bound by ECDSA public-key recovery (B and
    # D-total) carry a larger constant in pure Python, and (2) our node keeps
    # per-block tries cached, so write-proof generation is a walk rather
    # than Geth's rebuild-then-prove.  The following structure holds in both
    # implementations:
    for step in ("A", "B", "C-proof", "C-total", "D-proof", "D-total"):
        for workload in ("write", "read"):
            # every step is millisecond-scale — "minor latency" (§VI-G)
            assert timer.stats(f"{step}/{workload}").mean < 0.1
    # total response generation includes and exceeds the proof share
    assert (timer.stats("C-total/write").mean
            >= timer.stats("C-proof/write").mean)
    # total response verification includes and exceeds the proof share
    assert (timer.stats("D-total/write").mean
            >= timer.stats("D-proof/write").mean)
    # request verification cost is workload-independent (714 vs 703 µs in
    # the paper): both are two signature recoveries plus a digest check
    b_write = timer.stats("B/write").mean
    b_read = timer.stats("B/read").mean
    assert abs(b_write - b_read) / max(b_write, b_read) < 0.5
