"""Hedged fan-out vs. sequential failover: tail latency under slow servers.

Replays the Table I traffic mix against a three-server marketplace over the
simulated network with **one third of the servers slow** (high link latency,
and priced to win first pick — the worst case for serial routing).  The
sequential client walks the classic route-to-best path and eats the slow
server's round trip on every query; the hedged client races the same query
on two sessions (``query_hedged(fanout=2)``) and takes the first
§V-D-verified response, cancelling the loser.

Latency is *simulated* time per query (deterministic, machine-independent),
so the p50/p99 comparison is a property of the protocol, not the CI box.
The per-link :class:`~repro.net.network.LinkStats` counters price what the
win costs: the redundant request traffic sent to losing servers.

Emits ``results/BENCH_async.json`` (uploaded by the tier-2 CI job), gated
on **hedged p99 < sequential p99**.
"""

import random
from collections import Counter

from repro.chain import GenesisConfig
from repro.crypto import PrivateKey
from repro.metrics import render_table
from repro.net import PairwiseLatency, SimEndpoint, SimNetwork, SimServerBinding
from repro.node import Devnet
from repro.parp import FlatFeeSchedule, Marketplace, MarketplaceClient
from repro.parp.messages import RpcCall
from repro.parp.pricing import GWEI
from repro.workloads.dapp_traffic import generate_dataset

from .reporting import add_report, write_json_series

TOKEN = 10 ** 18
TOTAL_QUERIES = 90
#: the three biggest Table I providers play the three marketplace servers
PROVIDERS = ("infura", "alchemy", "binance")
PRICES_GWEI = {"infura": 10, "alchemy": 8, "binance": 5}
#: binance is both the cheapest (→ ranked first) and the slow third
SLOW_PROVIDER = "binance"
SLOW_LATENCY = 0.35
FAST_LATENCY = 0.02
TIMEOUT = 2.0


def traffic_schedule() -> list[str]:
    """Per-query provider labels, proportional to the dataset's call counts
    (they size the workload; marketplace routing decides who serves)."""
    records = generate_dataset(seed=7)
    calls = Counter()
    for record in records:
        if record.provider in PROVIDERS:
            calls[record.provider] += record.call_count
    total = sum(calls.values())
    schedule: list[str] = []
    for provider in PROVIDERS:
        schedule += [provider] * round(TOTAL_QUERIES * calls[provider] / total)
    random.Random(2025).shuffle(schedule)
    return schedule[:TOTAL_QUERIES]


def build_world(mode: str):
    """A fresh chain + simulated network + marketplace for one run mode."""
    operators = {p: PrivateKey.from_seed(f"bench:async:{p}") for p in PROVIDERS}
    lc = PrivateKey.from_seed("bench:async:lc")
    alice = PrivateKey.from_seed("bench:async:alice")
    allocations = {k.address: 1_000 * TOKEN
                   for k in list(operators.values()) + [lc]}
    allocations[alice.address] = 5 * TOKEN
    net = Devnet(GenesisConfig(allocations=allocations))

    links = {}
    for provider in PROVIDERS:
        latency = SLOW_LATENCY if provider == SLOW_PROVIDER else FAST_LATENCY
        links[(f"{mode}-lc-{provider}", f"{mode}-{provider}")] = latency
    network = SimNetwork(latency=PairwiseLatency(links, default=FAST_LATENCY))

    marketplace = Marketplace()
    for provider, op in operators.items():
        server = net.attach_server(
            op, name=provider,
            fee_schedule=FlatFeeSchedule(flat_price=PRICES_GWEI[provider] * GWEI))
        SimServerBinding(network, f"{mode}-{provider}", server)
        endpoint = SimEndpoint(network, f"{mode}-lc-{provider}",
                               f"{mode}-{provider}", server.address,
                               timeout=TIMEOUT)
        marketplace.advertise_server(server, name=provider, endpoint=endpoint)
    net.advance_blocks(2)

    client = MarketplaceClient(lc, marketplace, budget=10 ** 16,
                               clock=network.clock)
    client.connect()
    client.headers.sync()   # pin the post-connect head outside the timings
    return network, client, alice


def percentile(samples: list[float], pct: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, round(pct / 100 * (len(ranked) - 1))))
    return ranked[index]


def run_workload(network, client, alice, hedged: bool) -> list[float]:
    """Serve the whole schedule; returns per-query simulated latencies."""
    durations = []
    for _ in traffic_schedule():
        call = RpcCall.create("eth_getBalance", alice.address)
        start = network.clock.now()
        if hedged:
            outcome = client.query_hedged([call], fanout=2)
            assert all(item.ok for item in outcome.items)
        else:
            client.request_call(call)
        durations.append(network.clock.now() - start)
    return durations


def client_request_traffic(network, prefix: str) -> tuple[int, int]:
    """(messages, bytes) the client pushed toward servers, from LinkStats."""
    messages = bytes_sent = 0
    for (src, _dst), link in network.stats.links.items():
        if src.startswith(f"{prefix}-lc-"):
            messages += link.sent
            bytes_sent += link.bytes_sent
    return messages, bytes_sent


def test_hedged_fanout_tail_latency():
    seq_net, seq_client, alice = build_world("seq")
    seq = run_workload(seq_net, seq_client, alice, hedged=False)
    assert len(seq) == TOTAL_QUERIES            # 100% completion

    hedge_net, hedge_client, alice = build_world("hed")
    hedged = run_workload(hedge_net, hedge_client, alice, hedged=True)
    assert len(hedged) == TOTAL_QUERIES

    seq_p50, seq_p99 = percentile(seq, 50), percentile(seq, 99)
    hed_p50, hed_p99 = percentile(hedged, 50), percentile(hedged, 99)

    # the gate: hedging must cut the tail, not just the median
    assert hed_p99 < seq_p99

    # what the win costs: redundant request traffic to losing servers
    seq_msgs, seq_bytes = client_request_traffic(seq_net, "seq")
    hed_msgs, hed_bytes = client_request_traffic(hedge_net, "hed")
    assert hedge_client.stats.hedges_cancelled > 0   # losers really raced

    rows = [
        ["sequential", f"{seq_p50 * 1e3:.0f}ms", f"{seq_p99 * 1e3:.0f}ms",
         f"{sum(seq):.1f}s", str(seq_msgs), f"{seq_bytes / 1024:.0f}KiB"],
        ["hedged ×2", f"{hed_p50 * 1e3:.0f}ms", f"{hed_p99 * 1e3:.0f}ms",
         f"{sum(hedged):.1f}s", str(hed_msgs), f"{hed_bytes / 1024:.0f}KiB"],
    ]
    add_report(
        "Hedged fan-out vs sequential failover "
        f"(Table I mix, {TOTAL_QUERIES} queries, 1/3 servers slow)",
        render_table(
            ["mode", "p50", "p99", "sim total", "req msgs", "req bytes"], rows,
        ),
    )
    write_json_series("BENCH_async", {
        "total_queries": TOTAL_QUERIES,
        "slow_provider": SLOW_PROVIDER,
        "slow_latency_s": SLOW_LATENCY,
        "sequential": {
            "p50_s": seq_p50, "p99_s": seq_p99,
            "makespan_s": sum(seq),
            "request_messages": seq_msgs, "request_bytes": seq_bytes,
        },
        "hedged": {
            "fanout": 2,
            "p50_s": hed_p50, "p99_s": hed_p99,
            "makespan_s": sum(hedged),
            "request_messages": hed_msgs, "request_bytes": hed_bytes,
            "hedge_launches": hedge_client.stats.hedge_launches,
            "hedges_cancelled": hedge_client.stats.hedges_cancelled,
        },
        "p99_speedup": seq_p99 / hed_p99,
        "redundant_request_ratio": hed_msgs / max(1, seq_msgs),
    })
