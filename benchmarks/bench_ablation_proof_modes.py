"""Ablation — how much of PARP's cost is Merkle proving?

DESIGN.md calls out proof-per-response as a design choice: the server
attaches π_γ to *every* verifiable response.  The alternative is
proof-on-demand (respond with bare results; clients request proofs only
when suspicious), which trades bandwidth and server time against the
window during which a client acts on unverified data.  This bench
quantifies the per-request cost of always-proving, for both workloads.
"""

import time

from repro.metrics import StepTimer, render_table
from repro.parp.messages import PARPResponse, RpcCall
from repro.parp.queries import execute_query

from .reporting import add_report

ROUNDS = 60


def test_ablation_proof_generation_share(benchmark, world_with_200tx_block):
    world, block = world_with_200tx_block
    node, fn_key = world.node, world.fn_key
    timer = StepTimer()

    read_call = RpcCall.create("eth_getBalance", world.accounts.addresses[3])
    write_call = RpcCall.create(
        "eth_getTransactionByBlockNumberAndIndex", block.number, 100,
    )

    proof_bytes = {}
    for label, call in (("read", read_call), ("write", write_call)):
        m_b = node.head_number()
        for _ in range(ROUNDS):
            start = time.perf_counter()
            result, proof = execute_query(node, call, m_b)
            timer.add_sample(f"with-proof/{label}", time.perf_counter() - start)
        proof_bytes[label] = sum(len(n) for n in proof)

        # proof-on-demand: execute the query, skip proof generation
        for _ in range(ROUNDS):
            start = time.perf_counter()
            if label == "read":
                state = node.state_at(m_b)
                from repro.crypto.keys import Address

                state.get_account(Address(read_call.param_bytes(0, exact=20)))
            else:
                block_obj = node.get_block(block.number)
                block_obj.transactions[100].encode()
            timer.add_sample(f"no-proof/{label}", time.perf_counter() - start)

    benchmark(lambda: execute_query(node, read_call, node.head_number()))

    rows = []
    for label in ("read", "write"):
        with_proof = timer.stats(f"with-proof/{label}")
        without = timer.stats(f"no-proof/{label}")
        overhead = with_proof.mean - without.mean
        share = overhead / with_proof.mean * 100 if with_proof.mean else 0
        rows.append((
            label, with_proof.format_paper_style(),
            without.format_paper_style(),
            f"{share:.0f}%", f"{proof_bytes[label]} B",
        ))
    add_report(
        "Ablation: proof-per-response vs proof-on-demand "
        f"(server-side execution, mean of {ROUNDS})",
        render_table(
            ["workload", "with proof", "bare result", "proving share",
             "proof bytes saved/request"],
            rows,
        ),
    )

    # proving must be a real, measurable share of execution for both loads
    for label in ("read", "write"):
        assert (timer.stats(f"with-proof/{label}").mean
                > timer.stats(f"no-proof/{label}").mean)
