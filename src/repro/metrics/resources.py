"""CPU and memory probes for the Fig. 7 scalability experiment.

The paper measures a PARP-compatible Geth node's average CPU% and memory%
while N light clients send 2 requests/second for two minutes, and reports
the multipliers vs a plain Geth node (3.43x CPU, 2.38x memory at N=20).

We measure the real Python process doing the real serving work:
``time.process_time`` for CPU seconds consumed and ``tracemalloc`` for the
serving allocations, then report the same PARP/plain ratios.  Absolute
percentages are meaningless across runtimes; the ratios and their growth
with N are the reproduction target.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

__all__ = ["ResourceSample", "ResourceProbe"]


@dataclass(frozen=True)
class ResourceSample:
    """Resources consumed during one probed region."""

    cpu_seconds: float
    wall_seconds: float
    peak_memory_bytes: int
    current_memory_bytes: int

    @property
    def cpu_utilization(self) -> float:
        """CPU seconds per wall second (≈ CPU% / 100 for one core)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds


class ResourceProbe:
    """Context manager measuring CPU time and allocation peaks.

    tracemalloc adds overhead, so CPU numbers are taken with memory tracing
    *off* unless ``trace_memory`` is requested; benches run two passes.
    """

    def __init__(self, trace_memory: bool = True) -> None:
        self.trace_memory = trace_memory
        self._cpu_start = 0.0
        self._wall_start = 0.0
        self._tracing_started_here = False
        self.sample: ResourceSample | None = None

    def __enter__(self) -> "ResourceProbe":
        if self.trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._tracing_started_here = True
        if self.trace_memory:
            tracemalloc.reset_peak()
        self._cpu_start = time.process_time()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        cpu = time.process_time() - self._cpu_start
        wall = time.perf_counter() - self._wall_start
        current, peak = (0, 0)
        if self.trace_memory and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            if self._tracing_started_here:
                tracemalloc.stop()
        self.sample = ResourceSample(
            cpu_seconds=cpu,
            wall_seconds=wall,
            peak_memory_bytes=peak,
            current_memory_bytes=current,
        )
