"""A counting LRU cache for hot serving state.

The PARP server keeps recently generated (result, proof) pairs and hot trie
nodes behind one of these: a dApp that hammers the same keys between blocks
costs the node one trie walk instead of thousands.  Hit/miss/eviction
counters feed the serving-throughput analysis (Fig. 7 territory) the same
way :class:`~repro.metrics.timers.StepTimer` feeds Table III.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generic, Hashable, Optional, TypeVar

__all__ = ["CacheStats", "LRUCache"]

V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def format_line(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} hit_rate={self.hit_rate:.1%}"
        )


@dataclass
class LRUCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity and counters."""

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[Hashable, V]" = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be positive")

    def get(self, key: Hashable) -> Optional[V]:
        """Return the cached value (refreshing recency), or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: Hashable, value: V) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries  # no counter side effects

    def __len__(self) -> int:
        return len(self._entries)
