"""A counting LRU cache for hot serving state.

The PARP server keeps recently generated (result, proof) pairs and hot trie
nodes behind one of these: a dApp that hammers the same keys between blocks
costs the node one trie walk instead of thousands.  Hit/miss/eviction
counters feed the serving-throughput analysis (Fig. 7 territory) the same
way :class:`~repro.metrics.timers.StepTimer` feeds Table III.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generic, Hashable, Optional, TypeVar

__all__ = ["CacheStats", "LRUCache"]

V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when untouched)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def format_line(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} hit_rate={self.hit_rate:.1%}"
        )


@dataclass
class LRUCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity and counters.

    Thread-safe: one cache is shared by every view of a trie store and by
    the PARP server's concurrent sessions, and ``get``'s lookup +
    recency-refresh (like ``put``'s insert + evict) must be atomic against
    a concurrent eviction or the refresh raises ``KeyError`` mid-serve.
    """

    capacity: int = 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[Hashable, V]" = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be positive")

    def get(self, key: Hashable) -> Optional[V]:
        """Return the cached value (refreshing recency), or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: Hashable, value: V) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_put(self, key: Hashable, factory) -> V:
        """Return the cached value, computing and inserting it on a miss.

        ``factory`` is a zero-argument callable evaluated only when ``key``
        is absent — the idiom of the trie's decoded-node cache and the
        server's per-snapshot view cache.  It runs outside the lock, so two
        racing callers may both compute; last write wins, which is safe for
        the idempotent values cached here.
        """
        entry = self.get(key)
        if entry is None:
            entry = factory()
            self.put(key, entry)
        return entry

    def discard(self, key: Hashable) -> None:
        """Drop ``key`` if present (no-op otherwise, no counter effects).

        The invalidation hook for callers whose backing data can retreat —
        a disk store truncating a torn append or compacting away pruned
        nodes must be able to evict exactly the stale entries without
        flushing the whole cache.
        """
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries  # no counter side effects

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
