"""Measurement utilities: step timers, caches, resource probes, tables."""

from .cache import CacheStats, LRUCache
from .resources import ResourceProbe, ResourceSample
from .tables import render_series, render_table
from .timers import StepStats, StepTimer

__all__ = [
    "StepTimer",
    "StepStats",
    "CacheStats",
    "LRUCache",
    "ResourceProbe",
    "ResourceSample",
    "render_table",
    "render_series",
]
