"""Measurement utilities: step timers, resource probes, table rendering."""

from .resources import ResourceProbe, ResourceSample
from .tables import render_series, render_table
from .timers import StepStats, StepTimer

__all__ = [
    "StepTimer",
    "StepStats",
    "ResourceProbe",
    "ResourceSample",
    "render_table",
    "render_series",
]
