"""Step timing for the Table III latency breakdown.

The paper instruments four pipeline steps (Fig. 5): (A) request generation
and (D) response verification on the light client; (B) request verification
and (C) response generation on the full node — each averaged over 100
requests.  :class:`StepTimer` collects named samples and reports the same
statistics.
"""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["StepStats", "StepTimer"]


@dataclass(frozen=True)
class StepStats:
    """Summary statistics for one named step (seconds)."""

    name: str
    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    def mean_ms(self) -> float:
        return self.mean * 1e3

    def mean_us(self) -> float:
        return self.mean * 1e6

    def format_paper_style(self) -> str:
        """Render like Table III: ms above 1 ms, µs below."""
        if self.mean >= 1e-3:
            return f"{self.mean_ms():.2f}ms"
        return f"{self.mean_us():.2f}µs"


@dataclass
class StepTimer:
    """Collects wall-clock samples per named step."""

    samples: dict[str, list[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, step: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.samples.setdefault(step, []).append(elapsed)

    def add_sample(self, step: str, seconds: float) -> None:
        self.samples.setdefault(step, []).append(seconds)

    def stats(self, step: str) -> StepStats:
        data = self.samples.get(step)
        if not data:
            raise KeyError(f"no samples recorded for step {step!r}")
        ordered = sorted(data)
        p95_index = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
        return StepStats(
            name=step,
            count=len(data),
            mean=statistics.fmean(data),
            median=statistics.median(data),
            p95=ordered[p95_index],
            minimum=ordered[0],
            maximum=ordered[-1],
        )

    def all_stats(self) -> list[StepStats]:
        return [self.stats(step) for step in self.samples]

    def reset(self) -> None:
        self.samples.clear()
