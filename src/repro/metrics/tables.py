"""Plain-text table rendering for benchmark output.

Benches print the exact rows/series the paper reports, side by side with
the paper's numbers, so EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_series"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[Any], ys: Sequence[Any],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure series as a two-column table (regenerable plot data)."""
    rows = list(zip(xs, ys))
    return render_table([x_label, y_label], rows, title=name)
