"""Full Nodes Deposit Module (FNDM) — collateral staking for PARP servers.

Paper §IV-C: "This module enables a full node to deposit its tokens, making
it eligible to serve light clients in the network", and §IV-F: on a verified
fraud proof "the contract will instruct the Deposit Module to confiscate the
deposit of the full node and distribute it to three parties".

Design notes
------------
* Eligibility is simply ``deposit >= MIN_FULL_NODE_DEPOSIT``; discovery runs
  over the ``Deposited`` event log (the on-chain registry of §IV, Design
  Goal 2 — events are on-chain data every node can scan), which keeps
  ``deposit()`` at one storage write and lands its gas cost in the zone the
  paper reports in Table IV.
* Withdrawal requires announcing ``stop_serving`` first and waiting
  ``UNBONDING_BLOCKS`` so a fraud proof racing a withdrawal still slashes.
* The slash split is 50% serving-layer treasury / 25% reporting light client
  / 25% witness full node (the paper fixes the three recipients but not the
  ratio; EXPERIMENTS.md records this choice).
"""

from __future__ import annotations

from ..crypto.keys import Address
from ..parp.constants import MIN_FULL_NODE_DEPOSIT, UNBONDING_BLOCKS
from ..vm import abi
from ..vm.contract import NativeContract, contract_method, mapping_slot
from ..vm.runtime import CallContext

__all__ = ["DepositModule"]

# storage layout bases
_DEPOSITS = 1        # mapping(address => uint) collateral
_STOP_BLOCK = 2      # mapping(address => uint) unbonding announcement block
_FRAUD_MODULE = 3    # address allowed to slash

# slash distribution in basis points
SLASH_TREASURY_BPS = 5_000
SLASH_REPORTER_BPS = 2_500
SLASH_WITNESS_BPS = 2_500


class DepositModule(NativeContract):
    """Native-contract implementation of the FNDM."""

    name = "DepositModule"

    def __init__(self, address: Address, fraud_module: Address,
                 treasury: Address) -> None:
        super().__init__(address)
        self._fraud_module = fraud_module
        self._treasury = treasury

    # ------------------------------------------------------------------ #
    # Staking
    # ------------------------------------------------------------------ #

    @contract_method(payable=True)
    def deposit(self, ctx: CallContext, args: list) -> int:
        """Lock collateral; emits ``Deposited`` for off-chain discovery."""
        ctx.require(ctx.value > 0, "deposit must attach value")
        slot = mapping_slot(_DEPOSITS, ctx.sender.to_bytes())
        total = ctx.storage.get_int(slot) + ctx.value
        ctx.storage.set_int(slot, total)
        ctx.emit("Deposited", topics=[ctx.sender.to_bytes()],
                 data=total.to_bytes(32, "big"))
        return total

    @contract_method()
    def stop_serving(self, ctx: CallContext, args: list) -> int:
        """Announce exit; starts the unbonding clock."""
        slot = mapping_slot(_STOP_BLOCK, ctx.sender.to_bytes())
        ctx.require(ctx.storage.get_int(slot) == 0, "already unbonding")
        deposit_slot = mapping_slot(_DEPOSITS, ctx.sender.to_bytes())
        ctx.require(ctx.storage.get_int(deposit_slot) > 0, "no deposit")
        ctx.storage.set_int(slot, ctx.block.number)
        ctx.emit("StopServing", topics=[ctx.sender.to_bytes()])
        return ctx.block.number

    @contract_method()
    def withdraw(self, ctx: CallContext, args: list) -> int:
        """Withdraw the full deposit after the unbonding period."""
        stop_slot = mapping_slot(_STOP_BLOCK, ctx.sender.to_bytes())
        stop_block = ctx.storage.get_int(stop_slot)
        ctx.require(stop_block > 0, "must stop_serving before withdrawing")
        ctx.require(
            ctx.block.number >= stop_block + UNBONDING_BLOCKS,
            "unbonding period not over",
        )
        deposit_slot = mapping_slot(_DEPOSITS, ctx.sender.to_bytes())
        amount = ctx.storage.get_int(deposit_slot)
        ctx.require(amount > 0, "nothing to withdraw")
        ctx.storage.set_int(deposit_slot, 0)
        ctx.storage.set_int(stop_slot, 0)
        ctx.transfer(ctx.sender, amount)
        ctx.emit("Withdrawn", topics=[ctx.sender.to_bytes()],
                 data=amount.to_bytes(32, "big"))
        return amount

    # ------------------------------------------------------------------ #
    # Slashing (FDM only)
    # ------------------------------------------------------------------ #

    @contract_method()
    def slash(self, ctx: CallContext, args: list) -> int:
        """Confiscate a fraudulent node's deposit; 3-way split per §IV-F.

        Only callable by the Fraud Detection Module.
        """
        ctx.require(ctx.sender == self._fraud_module,
                    "only the fraud module may slash")
        full_node = abi.as_address(args[0])
        reporter = abi.as_address(args[1])      # the defrauded light client
        witness = abi.as_address(args[2])       # the witness full node
        deposit_slot = mapping_slot(_DEPOSITS, full_node.to_bytes())
        amount = ctx.storage.get_int(deposit_slot)
        ctx.require(amount > 0, "full node has no deposit to slash")
        ctx.storage.set_int(deposit_slot, 0)

        reporter_cut = amount * SLASH_REPORTER_BPS // 10_000
        witness_cut = amount * SLASH_WITNESS_BPS // 10_000
        treasury_cut = amount - reporter_cut - witness_cut
        ctx.transfer(reporter, reporter_cut)
        ctx.transfer(witness, witness_cut)
        ctx.transfer(self._treasury, treasury_cut)
        ctx.emit(
            "Slashed",
            topics=[full_node.to_bytes(), reporter.to_bytes(), witness.to_bytes()],
            data=amount.to_bytes(32, "big"),
        )
        return amount

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @contract_method(view=True)
    def deposit_of(self, ctx: CallContext, args: list) -> int:
        node = abi.as_address(args[0])
        return ctx.storage.get_int(mapping_slot(_DEPOSITS, node.to_bytes()))

    @contract_method(view=True)
    def is_eligible(self, ctx: CallContext, args: list) -> bool:
        """Can this node serve?  (Enough collateral, not unbonding.)"""
        node = abi.as_address(args[0])
        amount = ctx.storage.get_int(mapping_slot(_DEPOSITS, node.to_bytes()))
        if amount < MIN_FULL_NODE_DEPOSIT:
            return False
        unbonding = ctx.storage.get_int(mapping_slot(_STOP_BLOCK, node.to_bytes()))
        return unbonding == 0
