"""Channels Management Module (CMM) — on-chain payment-channel lifecycle.

Paper §IV-C/§IV-E: unidirectional payment channels between a light client
and a full node.  The LC locks its budget ``b`` when opening; off-chain it
signs monotonically increasing cumulative amounts ``a``; on closure the CMM
pays the full node ``min(a, b)`` and refunds the rest, with a dispute window
during which either party can present a *higher* signed ``a`` (the valid
state "with a higher value of a will be acknowledged as the most recent").

Channel identifiers α are ``keccak256(LC ‖ FN ‖ pair_nonce)[:16]`` — "a
unique identifier, based on the identity of the participants" (§IV-C).
"""

from __future__ import annotations

from ..crypto.keys import Address
from ..parp.constants import ALPHA_BYTES, DISPUTE_WINDOW_BLOCKS, MAX_AMOUNT
from ..parp.messages import handshake_preimage, payment_preimage
from ..vm import abi
from ..vm.contract import NativeContract, contract_method, mapping_slot
from ..vm.runtime import CallContext

__all__ = ["ChannelsModule", "CHANNEL_NONE", "CHANNEL_OPEN", "CHANNEL_CLOSING",
           "CHANNEL_CLOSED", "channel_status_slot", "channel_budget_slot"]

# channel status values (paper Fig. 4: Open / Closing / Closed)
CHANNEL_NONE = 0
CHANNEL_OPEN = 1
CHANNEL_CLOSING = 2
CHANNEL_CLOSED = 3

# storage layout: one mapping base per struct field, keyed by α
_CH_LIGHT_CLIENT = 10
_CH_FULL_NODE = 11
_CH_BUDGET = 12
_CH_LATEST_AMOUNT = 13   # cs — the channel state acknowledged on-chain
_CH_STATUS = 14
_CH_DEADLINE = 15        # dispute-window end (block number)
_PAIR_NONCE = 16         # mapping(keccak(LC ‖ FN) => uint) for α derivation
_CH_OPENED_AT = 17       # opening block (channel age, off-chain analytics)
_CH_CLOSED_BY = 18       # which participant triggered closure (disputes)
_CH_SETTLED = 19         # final payout to the FN (audit record)
_FN_OPEN_COUNT = 20      # mapping(FN => open channels) — serving-load metric


def channel_status_slot(alpha: bytes) -> bytes:
    """Storage slot of a channel's status — light clients read this with a
    verified ``eth_getStorageAt`` for the §V-C liveness check."""
    return mapping_slot(_CH_STATUS, alpha)


def channel_budget_slot(alpha: bytes) -> bytes:
    """Storage slot of a channel's locked budget."""
    return mapping_slot(_CH_BUDGET, alpha)


class ChannelsModule(NativeContract):
    """Native-contract implementation of the CMM."""

    name = "ChannelsModule"

    def __init__(self, address: Address, deposit_module: Address) -> None:
        super().__init__(address)
        self._deposit_module = deposit_module

    # ------------------------------------------------------------------ #
    # Opening (paper §IV-E.2, Algorithm 1's OpenChannel transaction)
    # ------------------------------------------------------------------ #

    @contract_method(payable=True)
    def open_channel(self, ctx: CallContext, args: list) -> bytes:
        """Open a channel funded with ``msg.value`` as the LC's budget.

        Args: [full_node_address, expiry_timestamp, fn_confirmation_sig].
        The confirmation signature is the full node's handshake consent
        ``Sign((LC ‖ expiryDate), sk_FN)`` from Algorithm 1 — mutual consent
        is required because the FN commits to serve this client.
        """
        full_node = abi.as_address(args[0])
        expiry = abi.as_int(args[1])
        confirmation = abi.as_bytes(args[2])
        light_client = ctx.sender
        budget = ctx.value

        ctx.require(budget > 0, "channel budget must be positive")
        ctx.require(budget <= MAX_AMOUNT, "budget exceeds u128")
        ctx.require(ctx.block.timestamp <= expiry, "handshake confirmation expired")
        digest = ctx.keccak(handshake_preimage(light_client, expiry))
        signer = ctx.ecrecover(digest, confirmation)
        ctx.require(signer == full_node, "confirmation not signed by full node")
        eligible = ctx.call(self._deposit_module, "is_eligible", [full_node])
        ctx.require(eligible, "full node is not an eligible PARP server")

        pair_key = ctx.keccak(light_client.to_bytes() + full_node.to_bytes())
        nonce_slot = mapping_slot(_PAIR_NONCE, pair_key)
        nonce = ctx.storage.get_int(nonce_slot)
        ctx.storage.set_int(nonce_slot, nonce + 1)
        alpha = ctx.keccak(
            light_client.to_bytes() + full_node.to_bytes()
            + nonce.to_bytes(8, "big")
        )[:ALPHA_BYTES]

        ctx.storage.set(mapping_slot(_CH_LIGHT_CLIENT, alpha), light_client.to_bytes())
        ctx.storage.set(mapping_slot(_CH_FULL_NODE, alpha), full_node.to_bytes())
        ctx.storage.set_int(mapping_slot(_CH_BUDGET, alpha), budget)
        ctx.storage.set_int(mapping_slot(_CH_STATUS, alpha), CHANNEL_OPEN)
        ctx.storage.set_int(mapping_slot(_CH_OPENED_AT, alpha), ctx.block.number)
        count_slot = mapping_slot(_FN_OPEN_COUNT, full_node.to_bytes())
        ctx.storage.set_int(count_slot, ctx.storage.get_int(count_slot) + 1)
        ctx.emit(
            "ChannelOpened",
            topics=[alpha, light_client.to_bytes(), full_node.to_bytes()],
            data=budget.to_bytes(32, "big"),
        )
        return alpha

    # ------------------------------------------------------------------ #
    # Closing and disputes (paper §IV-E.4)
    # ------------------------------------------------------------------ #

    @contract_method()
    def close_channel(self, ctx: CallContext, args: list) -> int:
        """Start closure with the submitter's latest signed state (α, a, σ_a).

        Either participant may close.  A zero ``a`` needs no signature (it
        claims nothing); any positive ``a`` must carry the LC's payment
        signature.  Returns the dispute deadline block number.
        """
        alpha = abi.as_bytes(args[0], exact=ALPHA_BYTES)
        amount = abi.as_int(args[1])
        sig_a = abi.as_bytes(args[2])

        status = ctx.storage.get_int(mapping_slot(_CH_STATUS, alpha))
        ctx.require(status == CHANNEL_OPEN, "channel is not open")
        light_client = Address(ctx.storage.get(mapping_slot(_CH_LIGHT_CLIENT, alpha)))
        full_node = Address(ctx.storage.get(mapping_slot(_CH_FULL_NODE, alpha)))
        ctx.require(
            ctx.sender in (light_client, full_node),
            "only channel participants may close",
        )
        self._validate_state(ctx, alpha, amount, sig_a, light_client)

        deadline = ctx.block.number + DISPUTE_WINDOW_BLOCKS
        ctx.storage.set_int(mapping_slot(_CH_LATEST_AMOUNT, alpha), amount)
        ctx.storage.set_int(mapping_slot(_CH_STATUS, alpha), CHANNEL_CLOSING)
        ctx.storage.set_int(mapping_slot(_CH_DEADLINE, alpha), deadline)
        ctx.storage.set(mapping_slot(_CH_CLOSED_BY, alpha), ctx.sender.to_bytes())
        ctx.emit("ChannelClosing", topics=[alpha],
                 data=amount.to_bytes(32, "big"))
        return deadline

    @contract_method()
    def submit_state(self, ctx: CallContext, args: list) -> int:
        """Challenge during the dispute window with a higher signed state.

        "Whenever a party submits a new valid latest state, the dispute time
        will be reset to allow the other party enough time to respond."
        """
        alpha = abi.as_bytes(args[0], exact=ALPHA_BYTES)
        amount = abi.as_int(args[1])
        sig_a = abi.as_bytes(args[2])

        status = ctx.storage.get_int(mapping_slot(_CH_STATUS, alpha))
        ctx.require(status == CHANNEL_CLOSING, "channel is not in dispute")
        deadline = ctx.storage.get_int(mapping_slot(_CH_DEADLINE, alpha))
        ctx.require(ctx.block.number <= deadline, "dispute window expired")
        current = ctx.storage.get_int(mapping_slot(_CH_LATEST_AMOUNT, alpha))
        ctx.require(amount > current, "submitted state is not newer")
        light_client = Address(ctx.storage.get(mapping_slot(_CH_LIGHT_CLIENT, alpha)))
        self._validate_state(ctx, alpha, amount, sig_a, light_client)

        deadline = ctx.block.number + DISPUTE_WINDOW_BLOCKS
        ctx.storage.set_int(mapping_slot(_CH_LATEST_AMOUNT, alpha), amount)
        ctx.storage.set_int(mapping_slot(_CH_DEADLINE, alpha), deadline)
        ctx.emit("StateSubmitted", topics=[alpha],
                 data=amount.to_bytes(32, "big"))
        return deadline

    @contract_method()
    def confirm_closure(self, ctx: CallContext, args: list) -> tuple:
        """Settle after the dispute window: FN gets min(a, b), LC the rest."""
        alpha = abi.as_bytes(args[0], exact=ALPHA_BYTES)
        status = ctx.storage.get_int(mapping_slot(_CH_STATUS, alpha))
        ctx.require(status == CHANNEL_CLOSING, "channel is not closing")
        deadline = ctx.storage.get_int(mapping_slot(_CH_DEADLINE, alpha))
        ctx.require(ctx.block.number > deadline, "dispute window still open")

        budget = ctx.storage.get_int(mapping_slot(_CH_BUDGET, alpha))
        amount = ctx.storage.get_int(mapping_slot(_CH_LATEST_AMOUNT, alpha))
        light_client = Address(ctx.storage.get(mapping_slot(_CH_LIGHT_CLIENT, alpha)))
        full_node = Address(ctx.storage.get(mapping_slot(_CH_FULL_NODE, alpha)))
        payout = min(amount, budget)
        refund = budget - payout

        ctx.storage.set_int(mapping_slot(_CH_STATUS, alpha), CHANNEL_CLOSED)
        ctx.storage.set_int(mapping_slot(_CH_SETTLED, alpha), payout)
        count_slot = mapping_slot(_FN_OPEN_COUNT, full_node.to_bytes())
        open_count = ctx.storage.get_int(count_slot)
        if open_count:
            ctx.storage.set_int(count_slot, open_count - 1)
        if payout:
            ctx.transfer(full_node, payout)
        if refund:
            ctx.transfer(light_client, refund)
        ctx.emit(
            "ChannelClosed", topics=[alpha],
            data=payout.to_bytes(32, "big") + refund.to_bytes(32, "big"),
        )
        return payout, refund

    def _validate_state(self, ctx: CallContext, alpha: bytes, amount: int,
                        sig_a: bytes, light_client: Address) -> None:
        """A state claim (a, σ_a) is valid when σ_a is the LC's signature
        over Hash(α ‖ a) and a fits in the channel budget."""
        if amount == 0:
            return
        budget = ctx.storage.get_int(mapping_slot(_CH_BUDGET, alpha))
        ctx.require(amount <= budget, "claimed amount exceeds channel budget")
        digest = ctx.keccak(payment_preimage(alpha, amount))
        signer = ctx.ecrecover(digest, sig_a)
        ctx.require(signer == light_client, "payment not signed by light client")

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @contract_method(view=True)
    def get_channel(self, ctx: CallContext, args: list) -> tuple:
        """Full channel record: (LC, FN, budget, latest a, status, deadline)."""
        alpha = abi.as_bytes(args[0], exact=ALPHA_BYTES)
        return (
            ctx.storage.get(mapping_slot(_CH_LIGHT_CLIENT, alpha)),
            ctx.storage.get(mapping_slot(_CH_FULL_NODE, alpha)),
            ctx.storage.get_int(mapping_slot(_CH_BUDGET, alpha)),
            ctx.storage.get_int(mapping_slot(_CH_LATEST_AMOUNT, alpha)),
            ctx.storage.get_int(mapping_slot(_CH_STATUS, alpha)),
            ctx.storage.get_int(mapping_slot(_CH_DEADLINE, alpha)),
        )

    @contract_method(view=True)
    def channel_status(self, ctx: CallContext, args: list) -> int:
        """Just the status — the light client's liveness probe (§V-C)."""
        alpha = abi.as_bytes(args[0], exact=ALPHA_BYTES)
        return ctx.storage.get_int(mapping_slot(_CH_STATUS, alpha))

    @contract_method(view=True)
    def open_channels_of(self, ctx: CallContext, args: list) -> int:
        """How many channels a full node currently serves (load metric)."""
        node = abi.as_address(args[0])
        return ctx.storage.get_int(mapping_slot(_FN_OPEN_COUNT, node.to_bytes()))
