"""The paper's on-chain modules: deposits (FNDM), channels (CMM), fraud (FDM)."""

from .addresses import (
    CHANNELS_MODULE_ADDRESS,
    DEPOSIT_MODULE_ADDRESS,
    FRAUD_MODULE_ADDRESS,
    TREASURY_ADDRESS,
)
from .channels import (
    CHANNEL_CLOSED,
    CHANNEL_CLOSING,
    CHANNEL_NONE,
    CHANNEL_OPEN,
    ChannelsModule,
)
from .deposit import DepositModule
from .fraud import FraudModule
from .gascost import CostRow, cost_row, gas_to_usd

__all__ = [
    "DEPOSIT_MODULE_ADDRESS",
    "CHANNELS_MODULE_ADDRESS",
    "FRAUD_MODULE_ADDRESS",
    "TREASURY_ADDRESS",
    "DepositModule",
    "ChannelsModule",
    "FraudModule",
    "CHANNEL_NONE",
    "CHANNEL_OPEN",
    "CHANNEL_CLOSING",
    "CHANNEL_CLOSED",
    "CostRow",
    "cost_row",
    "gas_to_usd",
]
