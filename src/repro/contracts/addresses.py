"""Well-known deployment addresses of the PARP on-chain modules.

The devnet deploys the three modules (paper §IV-C) at fixed addresses, the
way many chains place system contracts at reserved low addresses.
"""

from __future__ import annotations

from ..crypto.keys import Address

__all__ = [
    "DEPOSIT_MODULE_ADDRESS",
    "CHANNELS_MODULE_ADDRESS",
    "FRAUD_MODULE_ADDRESS",
    "TREASURY_ADDRESS",
]

#: Full Nodes Deposit Module (FNDM)
DEPOSIT_MODULE_ADDRESS = Address.from_hex("0x0000000000000000000000000000000000000A01")
#: Channels Management Module (CMM)
CHANNELS_MODULE_ADDRESS = Address.from_hex("0x0000000000000000000000000000000000000A02")
#: Fraud Detection Module (FDM)
FRAUD_MODULE_ADDRESS = Address.from_hex("0x0000000000000000000000000000000000000A03")
#: Serving-layer reward pool receiving part of slashed deposits (§IV-F).
TREASURY_ADDRESS = Address.from_hex("0x0000000000000000000000000000000000000A10")
