"""Gas→USD cost model for Table IV.

Uses the paper's stated conversion assumptions (§VI-E): ETH at $4,000, gas
at 12 Gwei on Ethereum mainnet and 0.1 Gwei on Arbitrum, plus the cited
median transaction fees of 2024-12-09 for the table's reference row.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ETH_PRICE_USD",
    "MAINNET_GAS_PRICE_GWEI",
    "ARBITRUM_GAS_PRICE_GWEI",
    "MEDIAN_TX_FEE_USD",
    "gas_to_usd",
    "CostRow",
    "cost_row",
]

ETH_PRICE_USD = 4_000.0
MAINNET_GAS_PRICE_GWEI = 12.0
ARBITRUM_GAS_PRICE_GWEI = 0.1
GWEI = 10 ** 9
WEI_PER_ETH = 10 ** 18

#: Median network transaction fees quoted by the paper for 2024-12-09.
MEDIAN_TX_FEE_USD = {"mainnet": 1.606, "arbitrum": 0.350}


def gas_to_usd(gas: int, gas_price_gwei: float,
               eth_price_usd: float = ETH_PRICE_USD) -> float:
    """Convert a gas amount to USD at a given gas price."""
    fee_wei = gas * gas_price_gwei * GWEI
    return fee_wei / WEI_PER_ETH * eth_price_usd


@dataclass(frozen=True)
class CostRow:
    """One row of Table IV."""

    action: str
    gas: int
    mainnet_usd: float
    arbitrum_usd: float


def cost_row(action: str, gas: int) -> CostRow:
    """Build a Table IV row from a measured gas amount."""
    return CostRow(
        action=action,
        gas=gas,
        mainnet_usd=round(gas_to_usd(gas, MAINNET_GAS_PRICE_GWEI), 3),
        arbitrum_usd=round(gas_to_usd(gas, ARBITRUM_GAS_PRICE_GWEI), 3),
    )
