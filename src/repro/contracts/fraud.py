"""Fraud Detection Module (FDM) — on-chain Algorithm 2.

A witness full node submits ``(req, res, header_m, header_req, addr_WN)``;
the contract re-runs, with metered gas, exactly the checks the light client
ran off-chain (shared code in :mod:`repro.parp.queries` — the two verifiers
cannot diverge), and on any *fraud* condition instructs the Deposit Module
to confiscate the offending full node's collateral:

1. decode req/res; **identifier match** (req.α == res.α),
2. channel lookup (must exist, not closed) via the CMM,
3. **request integrity**: rebuild h_req, ``recover(h_req, σ_req) == LC``,
4. **response origin**: rebuild h_res, ``recover(h_res, σ_res) == FN``,
5. **payment amount check** (req.a ≠ res.a → slash),
6. **timestamp check** (res.m_B < height(req.h_B) → slash),
7. **Merkle proof check** (π_γ fails against the trusted root → slash).

Headers are authenticated exactly as in the paper's §VI: the submitter
provides raw header fields; the contract re-hashes them and checks the hash
against the chain's 256-block BLOCKHASH window (for the proof header) or
against req.h_B itself (for the height reference, which the request pins).
"""

from __future__ import annotations

from typing import Optional

from ..chain.header import BlockHeader
from ..crypto.keys import Address
from ..parp.messages import MessageError, PARPRequest, PARPResponse
from ..parp.queries import QueryFraud, Unverifiable, verify_query_result
from ..rlp import codec as rlp
from ..vm import abi
from ..vm.contract import NativeContract, contract_method
from ..vm.gas import PROOF_VERIFY_BYTE_GAS, RLP_DECODE_BYTE_GAS
from ..vm.runtime import CallContext, Revert

__all__ = ["FraudModule"]

# mirror of channels.CHANNEL_* (kept literal to avoid an import cycle)
_CHANNEL_NONE = 0
_CHANNEL_CLOSED = 3


class FraudModule(NativeContract):
    """Native-contract implementation of the FDM."""

    name = "FraudModule"

    def __init__(self, address: Address, deposit_module: Address,
                 channels_module: Address) -> None:
        super().__init__(address)
        self._deposit_module = deposit_module
        self._channels_module = channels_module

    @contract_method()
    def submit_fraud_proof(self, ctx: CallContext, args: list) -> bool:
        """Adjudicate a fraud proof; slashes and returns True on fraud,
        reverts otherwise (so honest nodes can never be slashed and spurious
        submissions simply burn the submitter's gas)."""
        req_blob = abi.as_bytes(args[0])
        res_blob = abi.as_bytes(args[1])
        proof_header_blob = abi.as_bytes(args[2])
        req_header_blob = abi.as_bytes(args[3])
        witness = abi.as_address(args[4])

        # -- decode (metered per byte, like a Solidity RLP reader) -------- #
        ctx.charge(RLP_DECODE_BYTE_GAS * (len(req_blob) + len(res_blob)), "decode")
        try:
            request = PARPRequest.decode_wire(req_blob)
            res_alpha, response = PARPResponse.decode_for_fraud(res_blob)
        except MessageError as exc:
            raise Revert(f"undecodable fraud evidence: {exc}") from exc

        # -- the match of the identifier ---------------------------------- #
        ctx.require(request.alpha == res_alpha, "channel id mismatch")
        alpha = request.alpha

        # -- channel lookup (Algorithm 2: chan.T != "closed") -------------- #
        channel = ctx.call(self._channels_module, "get_channel", [alpha])
        lc_raw, fn_raw, _budget, _cs, status, _deadline = channel
        ctx.require(status != _CHANNEL_NONE, "unknown channel")
        ctx.require(status != _CHANNEL_CLOSED, "channel already closed")
        light_client = Address(lc_raw)
        full_node = Address(fn_raw)

        # -- the origin of the request ------------------------------------- #
        h_req = ctx.keccak(request.expected_preimage())
        ctx.require(h_req == request.h_req, "request hash mismatch")
        req_signer = ctx.ecrecover(h_req, request.sig_req)
        ctx.require(req_signer == light_client,
                    "request not signed by the channel's light client")

        # -- the origin of the response ------------------------------------- #
        h_res = ctx.keccak(response.preimage(alpha))
        res_signer = ctx.ecrecover(h_res, response.sig_res)
        ctx.require(res_signer == full_node,
                    "response not signed by the channel's full node")
        ctx.require(response.h_req == h_req, "response references another request")

        # -- payment amount check (fraud) ------------------------------------ #
        if request.a != response.a:
            return self._slash(ctx, full_node, light_client, witness,
                               "payment amount mismatch")

        # -- timestamp check (fraud) ------------------------------------------ #
        req_header = self._decode_header(ctx, req_header_blob)
        ctx.require(
            ctx.keccak(req_header_blob) == request.h_b,
            "submitted height-reference header does not match req.h_B",
        )
        if response.m_b < req_header.number:
            return self._slash(ctx, full_node, light_client, witness,
                               "stale response height")

        # -- Merkle proof check (fraud) ----------------------------------------- #
        proof_header = self._decode_header(ctx, proof_header_blob)
        proof_header_hash = ctx.keccak(proof_header_blob)
        canonical = ctx.block_hash(proof_header.number)
        ctx.require(canonical is not None,
                    "proof header outside the 256-block verification window")
        ctx.require(canonical == proof_header_hash,
                    "submitted header is not canonical at its height")

        headers = {proof_header.number: proof_header,
                   req_header.number: req_header}
        proof_bytes = sum(len(node) for node in response.proof)
        ctx.charge(
            PROOF_VERIFY_BYTE_GAS * proof_bytes
            + RLP_DECODE_BYTE_GAS * len(response.result),
            "proof-verify",
        )
        try:
            verify_query_result(request.call, response, headers.get)
        except QueryFraud as exc:
            return self._slash(ctx, full_node, light_client, witness, str(exc))
        except Unverifiable as exc:
            raise Revert(f"fraud proof not adjudicable: {exc}") from exc
        except MessageError as exc:
            raise Revert(f"malformed query in fraud proof: {exc}") from exc

        raise Revert("no fraud detected")

    @contract_method()
    def submit_head_equivocation(self, ctx: CallContext, args: list) -> bool:
        """Adjudicate a head-announcement equivocation (gossip fraud path).

        Evidence is self-contained: two domain-separated announcement
        signatures over *different* headers at *one* height, both
        recovering to the same registry identity.  No channel context is
        needed — the announcer's misbehavior is against every subscriber
        at once — so the slash reuses the §IV-F split with the submitting
        reporter in the defrauded-party seat.
        """
        from ..gossip.heads import HEAD_ANNOUNCEMENT_DOMAIN

        header_a_blob = abi.as_bytes(args[0])
        sig_a = abi.as_bytes(args[1])
        header_b_blob = abi.as_bytes(args[2])
        sig_b = abi.as_bytes(args[3])
        reporter = abi.as_address(args[4])
        witness = abi.as_address(args[5])

        header_a = self._decode_header(ctx, header_a_blob)
        header_b = self._decode_header(ctx, header_b_blob)
        ctx.require(header_a.number == header_b.number,
                    "announcements are at different heights")
        ctx.require(ctx.keccak(header_a_blob) != ctx.keccak(header_b_blob),
                    "announcements carry the same header")

        digest_a = ctx.keccak(HEAD_ANNOUNCEMENT_DOMAIN + header_a_blob)
        digest_b = ctx.keccak(HEAD_ANNOUNCEMENT_DOMAIN + header_b_blob)
        signer_a = ctx.ecrecover(digest_a, sig_a)
        signer_b = ctx.ecrecover(digest_b, sig_b)
        ctx.require(signer_a == signer_b,
                    "announcements signed by different identities")

        return self._slash(ctx, signer_a, reporter, witness,
                           "equivocating head announcements")

    def _decode_header(self, ctx: CallContext, blob: bytes) -> BlockHeader:
        ctx.charge(RLP_DECODE_BYTE_GAS * len(blob), "decode")
        try:
            return BlockHeader.decode(blob)
        except (rlp.RLPError, ValueError) as exc:
            raise Revert(f"undecodable header: {exc}") from exc

    def _slash(self, ctx: CallContext, full_node: Address,
               light_client: Address, witness: Address, reason: str) -> bool:
        """Confirmed fraud: confiscate and distribute the deposit (§IV-F)."""
        ctx.call(self._deposit_module, "slash", [full_node, light_client, witness])
        ctx.emit(
            "FraudConfirmed",
            topics=[full_node.to_bytes(), light_client.to_bytes()],
            data=reason.encode("utf-8")[:96],
        )
        return True
