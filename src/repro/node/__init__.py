"""Node assembly: full nodes and the devnet they follow."""

from .devnet import Devnet
from .fullnode import FullNode

__all__ = ["Devnet", "FullNode"]
