"""Devnet: a single-chain test network with the PARP modules deployed.

Substitute for the paper's local OpenStack network of three Geth nodes
(§VI-B).  One :class:`repro.chain.Blockchain` instance plays the role of the
consensus layer; any number of :class:`repro.node.fullnode.FullNode` objects
attach to it, exactly like multiple serving nodes that follow the same chain.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence, Union

from ..chain.chain import Blockchain
from ..chain.genesis import GenesisConfig
from ..chain.transaction import Transaction, UnsignedTransaction
from ..contracts.addresses import (
    CHANNELS_MODULE_ADDRESS,
    DEPOSIT_MODULE_ADDRESS,
    FRAUD_MODULE_ADDRESS,
    TREASURY_ADDRESS,
)
from ..contracts.channels import ChannelsModule
from ..contracts.deposit import DepositModule
from ..contracts.fraud import FraudModule
from ..crypto.keys import Address, PrivateKey
from ..storage import NodeStore, open_state_dir
from ..vm.abi import encode_call
from ..vm.runtime import (
    BlockContext,
    ContractRegistry,
    ExecutionResult,
    GasMeter,
    TransactionExecutor,
    _TxState,
)

__all__ = ["Devnet", "DEFAULT_GAS_PRICE", "DEFAULT_GAS_LIMIT"]

DEFAULT_GAS_PRICE = 12 * 10 ** 9   # 12 Gwei, the paper's mainnet assumption
DEFAULT_GAS_LIMIT = 3_000_000
VIEW_GAS_LIMIT = 50_000_000


class Devnet:
    """A ready-to-use chain with FNDM/CMM/FDM deployed at fixed addresses.

    ``state_dir`` puts the world state on disk (an
    :class:`~repro.storage.AppendOnlyFileStore` under that directory) so a
    full node can hold tries bigger than RAM and survive restarts; ``db``
    lets callers inject any prebuilt :class:`~repro.storage.NodeStore`.
    ``retention`` sets the pruning policy for a disk-backed net —
    ``"archive"`` (default), an integer K, ``"last:K"``, or a
    :class:`~repro.storage.RetentionPolicy` — and reaches both the store
    and the chain's auto-compaction trigger.
    """

    def __init__(self, genesis: Optional[GenesisConfig] = None,
                 state_dir: Union[None, str, os.PathLike] = None,
                 db: Optional[NodeStore] = None,
                 retention=None) -> None:
        if state_dir is not None and db is not None:
            raise ValueError("pass either state_dir or db, not both")
        block_log = None
        if state_dir is not None:
            db, block_log = open_state_dir(state_dir, retention=retention)
        self.registry = ContractRegistry()
        self.deposit_module = DepositModule(
            DEPOSIT_MODULE_ADDRESS,
            fraud_module=FRAUD_MODULE_ADDRESS,
            treasury=TREASURY_ADDRESS,
        )
        self.channels_module = ChannelsModule(
            CHANNELS_MODULE_ADDRESS, deposit_module=DEPOSIT_MODULE_ADDRESS,
        )
        self.fraud_module = FraudModule(
            FRAUD_MODULE_ADDRESS,
            deposit_module=DEPOSIT_MODULE_ADDRESS,
            channels_module=CHANNELS_MODULE_ADDRESS,
        )
        self.registry.deploy(self.deposit_module)
        self.registry.deploy(self.channels_module)
        self.registry.deploy(self.fraud_module)
        self.executor = TransactionExecutor(self.registry)
        try:
            self.chain = Blockchain(genesis or GenesisConfig(),
                                    executor=self.executor, db=db,
                                    block_log=block_log,
                                    retention=retention)
        except Exception:
            if state_dir is not None and db is not None:
                # we opened them; don't leak the log handles (close() is
                # idempotent, so a refusal path that already closed one is
                # safe to cover again)
                db.close()
                if block_log is not None:
                    block_log.close()
            raise
        self._last_results: dict[bytes, ExecutionResult] = {}

    @property
    def node_store(self) -> NodeStore:
        """The chain's backing node store (memory- or disk-backed)."""
        return self.chain.db

    def close(self) -> None:
        """Release the persistence handles — the node store and, when this
        devnet runs over a ``state_dir``, the sibling block log (flushes
        nothing: commits are per-block)."""
        self.chain.close()

    def compact(self):
        """Prune + compact this net's persistent logs now (see
        :meth:`Blockchain.compact`); returns the compaction report."""
        return self.chain.compact(force=True)

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #

    def send_transaction(self, key: PrivateKey, to: Address, value: int = 0,
                         data: bytes = b"", gas_limit: int = DEFAULT_GAS_LIMIT,
                         gas_price: int = DEFAULT_GAS_PRICE) -> Transaction:
        """Sign and queue a transaction from ``key``'s account."""
        sender = key.address
        pending = sum(1 for t in self.chain.mempool if t.sender == sender)
        tx = UnsignedTransaction(
            nonce=self.chain.state.nonce_of(sender) + pending,
            gas_price=gas_price,
            gas_limit=gas_limit,
            to=to,
            value=value,
            data=data,
        ).sign(key)
        self.chain.add_transaction(tx)
        return tx

    def call_contract(self, key: PrivateKey, contract: Address, method: str,
                      args: Sequence[Any] = (), value: int = 0,
                      gas_limit: int = DEFAULT_GAS_LIMIT) -> Transaction:
        """Queue a contract-method transaction."""
        return self.send_transaction(
            key, contract, value=value, data=encode_call(method, args),
            gas_limit=gas_limit,
        )

    def mine(self, coinbase: Optional[Address] = None) -> "object":
        """Produce one block from the mempool, capturing execution results."""
        pending = list(self.chain.mempool)
        block = self._mine_with_capture(pending, coinbase)
        return block

    def _mine_with_capture(self, pending: list[Transaction],
                           coinbase: Optional[Address]) -> "object":
        captured: dict[bytes, ExecutionResult] = {}
        original_apply = self.executor.apply

        def capturing_apply(state, block_ctx, tx, cumulative_gas=0):
            result = original_apply(state, block_ctx, tx, cumulative_gas)
            captured[tx.hash] = result
            return result

        self.executor.apply = capturing_apply  # type: ignore[method-assign]
        try:
            block = self.chain.build_block(coinbase=coinbase)
        finally:
            self.executor.apply = original_apply  # type: ignore[method-assign]
        self._last_results.update(captured)
        return block

    def execute(self, key: PrivateKey, contract: Address, method: str,
                args: Sequence[Any] = (), value: int = 0,
                gas_limit: int = DEFAULT_GAS_LIMIT) -> ExecutionResult:
        """Convenience: send a contract call, mine it, return its result."""
        tx = self.call_contract(key, contract, method, args, value, gas_limit)
        self.mine()
        result = self._last_results.get(tx.hash)
        if result is None:
            raise RuntimeError("transaction was not included in the mined block")
        return result

    def result_of(self, tx_hash: bytes) -> Optional[ExecutionResult]:
        return self._last_results.get(tx_hash)

    # ------------------------------------------------------------------ #
    # View calls (free, no transaction)
    # ------------------------------------------------------------------ #

    def call_view(self, contract: Address, method: str,
                  args: Sequence[Any] = (),
                  caller: Optional[Address] = None) -> Any:
        """Execute a view method against the head state without a tx."""
        head = self.chain.head
        block_ctx = BlockContext(
            number=head.number + 1,
            timestamp=head.header.timestamp + 1,
            coinbase=Address.zero(),
            get_block_hash=self.chain.get_block_hash,
        )
        snapshot = self.chain.state.snapshot()
        tx_state = _TxState(
            state=self.chain.state,
            block=block_ctx,
            registry=self.registry,
            meter=GasMeter(VIEW_GAS_LIMIT),
            origin=caller or Address.zero(),
        )
        try:
            return tx_state.dispatch(
                caller or Address.zero(), contract, 0, encode_call(method, args)
            )
        finally:
            self.chain.state.revert(snapshot)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def balance_of(self, address: Address) -> int:
        return self.chain.state.balance_of(address)

    def stake_full_node(self, key: PrivateKey,
                        amount: Optional[int] = None) -> None:
        """Lock serving collateral in the Deposit Module for ``key``'s
        operator — the one on-chain step every marketplace server needs
        before it may advertise (availability condition of Fig. 4)."""
        from ..parp.constants import MIN_FULL_NODE_DEPOSIT

        result = self.execute(key, DEPOSIT_MODULE_ADDRESS, "deposit",
                              value=amount or MIN_FULL_NODE_DEPOSIT)
        if not result.succeeded:
            raise RuntimeError(f"stake deposit reverted: {result.error}")

    def attach_server(self, key: PrivateKey, name: str = "",
                      server_cls: Optional[type] = None, stake: bool = True,
                      **server_kwargs: Any):
        """Stake (optionally) and attach one PARP serving node to this chain.

        The standard marketplace/bench boilerplate in one call: lock the
        operator's collateral in the Deposit Module, spin up a
        :class:`~repro.node.fullnode.FullNode` following this chain, and
        wrap it in ``server_cls`` (default
        :class:`~repro.parp.server.FullNodeServer`; pass the adversary class
        to build a malicious server).  ``server_kwargs`` reach the server
        constructor (fee schedules, clocks, attacks, …).
        """
        from ..parp.server import FullNodeServer
        from .fullnode import FullNode

        if stake:
            self.stake_full_node(key)
        cls = server_cls if server_cls is not None else FullNodeServer
        node = FullNode(self.chain, key=key,
                        name=name or f"fn-{key.address.hex()[:6]}")
        return cls(node, **server_kwargs)

    def attach_shard_cluster(self, keys: Sequence[PrivateKey],
                             shard_count: int, name_prefix: str = "shard",
                             server_cls: Optional[type] = None,
                             stake: bool = True, **server_kwargs: Any) -> list:
        """Attach a cluster of shard servers jointly covering the state.

        Server ``j`` materializes shard ``j % shard_count`` of
        ``shard_count``, so passing ``shard_count`` keys yields exactly one
        server per shard and ``k × shard_count`` keys yields ``k`` replicas
        of each (the in-shard hedging/failover pool).  Names are
        ``{prefix}{shard}-{replica}``.
        """
        from ..trie.shard import ShardRange

        servers = []
        for j, key in enumerate(keys):
            shard = ShardRange.of(j % shard_count, shard_count)
            servers.append(self.attach_server(
                key, name=f"{name_prefix}{j % shard_count}-{j // shard_count}",
                server_cls=server_cls, stake=stake,
                shard_range=shard, **server_kwargs,
            ))
        return servers

    def advance_blocks(self, count: int) -> None:
        """Mine ``count`` empty blocks (to pass dispute/unbonding windows)."""
        for _ in range(count):
            self.chain.build_block()

    def stake_of(self, address: Address) -> int:
        """The deposit-registry stake of ``address`` (0 when unstaked) —
        the Sybil-resistance view gossip weighs announcers/reporters by."""
        return int(self.call_view(DEPOSIT_MODULE_ADDRESS, "deposit_of",
                                  [address]))

    def attach_gossip_mesh(self, network: Any, servers: Sequence[Any],
                           name_prefix: str = "gossip",
                           **gossip_kwargs: Any) -> list:
        """Give each server a gossip node, fully meshed, announcing heads.

        Returns the :class:`~repro.gossip.GossipNode` list (same order as
        ``servers``).  Client gossip nodes can be created separately and
        peered with any of these via ``add_peer`` — or appended to the
        mesh with :func:`~repro.gossip.connect_mesh`.
        """
        from ..gossip import GossipNode, connect_mesh

        nodes = []
        for i, server in enumerate(servers):
            node = GossipNode(network, f"{name_prefix}-{i}", **gossip_kwargs)
            server.enable_gossip(node)
            nodes.append(node)
        connect_mesh(nodes)
        return nodes
