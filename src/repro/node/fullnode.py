"""Full node: a serving peer attached to the devnet chain.

Implements the :class:`repro.parp.queries.ChainBackend` protocol (query
execution + proofs), plain JSON-RPC serving (the baseline PARP is compared
against), and transaction relay.  The PARP serving engine itself lives in
:mod:`repro.parp.server` and wraps one of these.
"""

from __future__ import annotations

from typing import Optional

from ..chain.block import Block
from ..chain.chain import Blockchain, ChainError
from ..chain.header import BlockHeader
from ..chain.state import StateDB
from ..chain.transaction import Transaction, TransactionError
from ..crypto.keys import Address, PrivateKey

__all__ = ["FullNode"]


class FullNode:
    """A full node following the devnet chain.

    ``auto_mine`` substitutes for the devnet's block production: when a
    submitted transaction needs inclusion (``ensure_mined``), the node asks
    the chain to produce a block.  In a multi-node devnet all nodes share the
    same :class:`Blockchain`, mirroring nodes that follow one consensus.
    """

    def __init__(self, chain: Blockchain, key: Optional[PrivateKey] = None,
                 name: str = "full-node", auto_mine: bool = True) -> None:
        self.chain = chain
        self.key = key or PrivateKey.from_seed(f"node:{name}")
        self.name = name
        self.auto_mine = auto_mine
        #: bytes served / received counters (Fig. 7 bookkeeping)
        self.bytes_in = 0
        self.bytes_out = 0

    @property
    def address(self) -> Address:
        return self.key.address

    # ------------------------------------------------------------------ #
    # ChainBackend protocol
    # ------------------------------------------------------------------ #

    def head_number(self) -> int:
        return self.chain.height

    def get_header(self, number: int) -> Optional[BlockHeader]:
        return self.chain.get_header(number)

    def get_header_by_hash(self, block_hash: bytes) -> Optional[BlockHeader]:
        block = self.chain.get_block_by_hash(block_hash)
        return block.header if block else None

    def state_at(self, number: int) -> StateDB:
        return self.chain.state_at(number)

    @property
    def node_store(self):
        """The chain's backing node store (see :mod:`repro.storage`)."""
        return self.chain.db

    def get_block(self, number: int) -> Optional[Block]:
        return self.chain.get_block_by_number(number)

    def find_transaction(self, tx_hash: bytes) -> Optional[tuple[Block, int]]:
        return self.chain.find_transaction(tx_hash)

    def submit_transaction(self, raw: bytes) -> bytes:
        """Decode and enqueue a raw transaction; returns its hash.

        Duplicate submissions of an already-known transaction are idempotent
        (a client may retry a relay).
        """
        try:
            tx = Transaction.decode(raw)
        except TransactionError as exc:
            raise ChainError(f"rejected raw transaction: {exc}") from exc
        if self.chain.find_transaction(tx.hash) is not None:
            return tx.hash
        if any(p.hash == tx.hash for p in self.chain.mempool):
            return tx.hash
        self.chain.add_transaction(tx)
        return tx.hash

    def ensure_mined(self, tx_hash: bytes) -> Optional[tuple[int, int]]:
        """Location of a transaction, mining pending blocks if allowed."""
        location = self.chain.find_transaction(tx_hash)
        if location is None and self.auto_mine and self.chain.mempool:
            self.chain.build_block(coinbase=self.address)
            location = self.chain.find_transaction(tx_hash)
        if location is None:
            return None
        block, index = location
        return block.number, index

    def chain_id(self) -> int:
        return self.chain.config.chain_id

    # ------------------------------------------------------------------ #
    # Free header service (paper §IV-D: headers are served without payment)
    # ------------------------------------------------------------------ #

    def serve_header(self, number: int) -> Optional[BlockHeader]:
        """Headers are compact, non-client-specific, and free to serve."""
        return self.get_header(number)

    def serve_head_number(self) -> int:
        return self.head_number()

    def serve_bootstrap(self, checkpoint_hash: bytes) -> Optional[BlockHeader]:
        """Checkpoint bootstrap: the full header behind a trusted hash.

        Self-certifying for the client (keccak(header) must equal the hash
        it already trusts), so it rides the free header service.
        """
        return self.get_header_by_hash(checkpoint_hash)

    def serve_updates_range(self, start: int, count: int) -> list[BlockHeader]:
        """UpdatesByRange: up to ``count`` consecutive headers from
        ``start`` (capped server-side; truncated at the head).  The free
        flavor of the billable ``parp_updatesByRange`` query — same data,
        no signed-response accountability."""
        from ..lightclient.checkpoint import MAX_UPDATE_PAGE

        if start < 0 or count < 1:
            return []
        headers: list[BlockHeader] = []
        stop = min(start + min(count, MAX_UPDATE_PAGE), self.head_number() + 1)
        for number in range(start, stop):
            header = self.get_header(number)
            if header is None:  # pragma: no cover — full nodes have all
                break
            headers.append(header)
        return headers

    def __repr__(self) -> str:
        return f"FullNode({self.name}, addr={self.address.hex()[:10]}…)"
