"""repro — a full Python reproduction of PARP, the Permissionless
Accountable RPC Protocol for blockchain networks (ICDCS 2025).

Layering (bottom up):

* :mod:`repro.crypto`, :mod:`repro.rlp`, :mod:`repro.trie` — Ethereum
  primitives implemented from scratch (Keccak-256, secp256k1 ECDSA with
  recovery, RLP, Merkle Patricia Tries with proofs).
* :mod:`repro.storage` — pluggable node-store backends for the tries:
  in-memory (dict) or an append-only disk log with crash-safe commits.
* :mod:`repro.chain`, :mod:`repro.vm`, :mod:`repro.contracts` — the
  devnet chain, the gas-metered contract runtime, and the three PARP
  on-chain modules (deposits, channels, fraud detection).
* :mod:`repro.rpc` — the plain JSON-RPC baseline.
* :mod:`repro.parp` — the protocol itself: light-client sessions, serving
  engines, payment channels, fraud proofs, witnesses, plus the paper's
  future-work extensions (PCN routing, proof-of-serving, reputation).
* :mod:`repro.net`, :mod:`repro.node`, :mod:`repro.lightclient` — the
  simulated network and node assemblies everything runs on.

Quickstart: see ``examples/quickstart.py`` or run ``parp-demo quickstart``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
