"""Native-contract runtime with EVM-style gas metering."""

from . import abi, gas
from .contract import NativeContract, contract_method, field_slot, mapping_slot
from .runtime import (
    BlockContext,
    CallContext,
    ContractRegistry,
    ExecutionResult,
    GasMeter,
    MeteredStorage,
    OutOfGas,
    Revert,
    TransactionExecutor,
    VMError,
)

__all__ = [
    "abi",
    "gas",
    "NativeContract",
    "contract_method",
    "mapping_slot",
    "field_slot",
    "BlockContext",
    "CallContext",
    "ContractRegistry",
    "ExecutionResult",
    "GasMeter",
    "MeteredStorage",
    "OutOfGas",
    "Revert",
    "TransactionExecutor",
    "VMError",
]
