"""Native-contract execution runtime with EVM-style gas accounting.

This is the substitute for the EVM + Solidity stack the paper deploys its
three on-chain modules on.  Contracts are Python classes (see
:mod:`repro.vm.contract`) registered at fixed addresses; every observable
effect — storage access, hashing, signature recovery, logging, value
transfer — is metered through :class:`GasMeter` with the real EVM constants
from :mod:`repro.vm.gas`, so the gas totals of Table IV emerge from the same
bookkeeping Ethereum performs.

Execution semantics mirror a minimal EVM transaction:

* up-front fee escrow (``gas_limit * gas_price``) and nonce check,
* intrinsic gas (21000 + calldata),
* snapshot/revert of the whole state on contract failure,
* EIP-3529-capped refunds, coinbase fee credit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..chain.receipt import LogEntry, Receipt
from ..chain.state import InsufficientBalance, StateDB
from ..chain.transaction import Transaction
from ..crypto import Signature, SignatureError, keccak256, recover_address
from ..crypto.keys import Address
from . import abi, gas

__all__ = [
    "VMError",
    "Revert",
    "OutOfGas",
    "GasMeter",
    "BlockContext",
    "CallContext",
    "MeteredStorage",
    "ContractRegistry",
    "TransactionExecutor",
    "ExecutionResult",
]


class VMError(Exception):
    """Base class for execution failures that revert the transaction."""


class Revert(VMError):
    """Contract-initiated failure (``require`` in the paper's Algorithm 2)."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason


class OutOfGas(VMError):
    """Gas limit exhausted; consumes the entire gas limit."""


class GasMeter:
    """Tracks gas consumption, per-reason breakdown, and refunds."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0
        self.refund = 0
        self.breakdown: dict[str, int] = {}

    def charge(self, amount: int, reason: str = "compute") -> None:
        if amount < 0:
            raise ValueError("cannot charge negative gas")
        if self.used + amount > self.limit:
            self.used = self.limit
            raise OutOfGas(f"out of gas charging {amount} for {reason}")
        self.used += amount
        self.breakdown[reason] = self.breakdown.get(reason, 0) + amount

    def add_refund(self, amount: int) -> None:
        self.refund += amount

    @property
    def remaining(self) -> int:
        return self.limit - self.used


@dataclass(frozen=True)
class BlockContext:
    """What contracts can see of the including block."""

    number: int
    timestamp: int
    coinbase: Address
    get_block_hash: Callable[[int], Optional[bytes]]

    def block_hash(self, number: int) -> Optional[bytes]:
        """BLOCKHASH semantics: only the most recent 256 blocks resolve."""
        if number >= self.number or number < 0:
            return None
        if self.number - number > 256:
            return None
        return self.get_block_hash(number)


class MeteredStorage:
    """Per-contract storage view that meters every access (EIP-2929-style)."""

    def __init__(self, state: StateDB, address: Address, meter: GasMeter,
                 warm_slots: set[tuple[bytes, bytes]]) -> None:
        self._state = state
        self._address = address
        self._meter = meter
        self._warm_slots = warm_slots

    def _slot_bytes(self, slot: bytes | int) -> bytes:
        if isinstance(slot, int):
            return slot.to_bytes(32, "big")
        if len(slot) != 32:
            raise ValueError("storage slots must be 32 bytes")
        return slot

    def _touch(self, slot: bytes) -> bool:
        """Mark the slot warm; return True when it was already warm."""
        key = (self._address.to_bytes(), slot)
        if key in self._warm_slots:
            return True
        self._warm_slots.add(key)
        return False

    def get(self, slot: bytes | int) -> bytes:
        slot_b = self._slot_bytes(slot)
        warm = self._touch(slot_b)
        self._meter.charge(
            gas.WARM_ACCESS_GAS if warm else gas.SLOAD_COLD_GAS, "sload"
        )
        return self._state.get_storage(self._address, slot_b)

    def get_int(self, slot: bytes | int) -> int:
        raw = self.get(slot)
        return int.from_bytes(raw, "big") if raw else 0

    def set(self, slot: bytes | int, value: bytes) -> None:
        slot_b = self._slot_bytes(slot)
        warm = self._touch(slot_b)
        current = self._state.get_storage(self._address, slot_b)
        cost = 0 if warm else gas.SLOAD_COLD_GAS
        if value == current:
            cost += gas.WARM_ACCESS_GAS
        elif current == b"" :
            cost += gas.SSTORE_SET_GAS
        else:
            cost += gas.SSTORE_RESET_GAS
            if value == b"":
                self._meter.add_refund(gas.SSTORE_CLEAR_REFUND)
        self._meter.charge(cost, "sstore")
        self._state.set_storage(self._address, slot_b, value)

    def set_int(self, slot: bytes | int, value: int) -> None:
        self.set(slot, b"" if value == 0 else value.to_bytes(
            max(1, (value.bit_length() + 7) // 8), "big"))


class CallContext:
    """Everything a contract method can do during one call frame."""

    def __init__(self, executor_state: "_TxState", contract_address: Address,
                 sender: Address, value: int, calldata: bytes) -> None:
        self._tx = executor_state
        self.address = contract_address
        self.sender = sender
        self.value = value
        self.calldata = calldata
        self.storage = MeteredStorage(
            executor_state.state, contract_address,
            executor_state.meter, executor_state.warm_slots,
        )

    # -- views ----------------------------------------------------------- #

    @property
    def block(self) -> BlockContext:
        return self._tx.block

    @property
    def origin(self) -> Address:
        return self._tx.origin

    @property
    def meter(self) -> GasMeter:
        return self._tx.meter

    def balance(self, address: Address) -> int:
        self._charge_account_access(address)
        return self._tx.state.balance_of(address)

    def self_balance(self) -> int:
        self._tx.meter.charge(gas.WARM_ACCESS_GAS, "balance")
        return self._tx.state.balance_of(self.address)

    # -- control flow ------------------------------------------------------ #

    def require(self, condition: Any, reason: str) -> None:
        """Solidity ``require``: revert the transaction when false."""
        if not condition:
            raise Revert(reason)

    def charge(self, amount: int, reason: str = "compute") -> None:
        self._tx.meter.charge(amount, reason)

    # -- builtins ---------------------------------------------------------- #

    def keccak(self, data: bytes) -> bytes:
        self._tx.meter.charge(gas.keccak_gas(len(data)), "keccak")
        return keccak256(data)

    def ecrecover(self, msg_hash: bytes, signature: bytes) -> Optional[Address]:
        """Recover a signer address; None on any invalid input (like the
        zero-address result of the EVM precompile)."""
        self._tx.meter.charge(gas.ECRECOVER_GAS, "ecrecover")
        try:
            sig = Signature.from_bytes(signature)
            return recover_address(msg_hash, sig)
        except (SignatureError, ValueError):
            return None

    def block_hash(self, number: int) -> Optional[bytes]:
        self._tx.meter.charge(20, "blockhash")
        return self._tx.block.block_hash(number)

    # -- effects ----------------------------------------------------------- #

    def emit(self, event: str, topics: Sequence[bytes] = (), data: bytes = b"") -> None:
        """Emit an event log (topic0 is keccak256 of the event name)."""
        all_topics = (keccak256(event.encode("ascii")),) + tuple(
            t.rjust(32, b"\x00") if len(t) < 32 else t for t in topics
        )
        for topic in all_topics:
            if len(topic) != 32:
                raise Revert(f"event topic must be <=32 bytes in {event}")
        self._tx.meter.charge(
            gas.LOG_BASE_GAS + gas.LOG_TOPIC_GAS * len(all_topics)
            + gas.LOG_DATA_BYTE_GAS * len(data),
            "log",
        )
        self._tx.logs.append(LogEntry(self.address, all_topics, data))

    def transfer(self, to: Address, amount: int) -> None:
        """Send value from the contract's own balance."""
        self._charge_account_access(to)
        self._tx.meter.charge(gas.CALL_VALUE_GAS, "call-value")
        if not self._tx.state.account_exists(to):
            self._tx.meter.charge(gas.NEW_ACCOUNT_GAS, "new-account")
        try:
            self._tx.state.transfer(self.address, to, amount)
        except InsufficientBalance as exc:
            raise Revert(f"contract balance too low: {exc}") from exc

    def call(self, to: Address, method: str, args: Sequence[Any] = (),
             value: int = 0) -> Any:
        """Synchronous cross-contract call (used by FDM -> Deposit slashing)."""
        self._charge_account_access(to)
        if value:
            self._tx.meter.charge(gas.CALL_VALUE_GAS, "call-value")
            try:
                self._tx.state.transfer(self.address, to, value)
            except InsufficientBalance as exc:
                raise Revert(str(exc)) from exc
        calldata = abi.encode_call(method, args)
        return self._tx.dispatch(self.address, to, value, calldata)

    def _charge_account_access(self, address: Address) -> None:
        raw = address.to_bytes()
        if raw in self._tx.warm_addresses:
            self._tx.meter.charge(gas.WARM_ACCESS_GAS, "account-access")
        else:
            self._tx.warm_addresses.add(raw)
            self._tx.meter.charge(gas.COLD_ACCOUNT_ACCESS_GAS, "account-access")


class ContractRegistry:
    """Maps addresses to deployed native contracts."""

    def __init__(self) -> None:
        self._contracts: dict[bytes, Any] = {}

    def deploy(self, contract: Any) -> None:
        address: Address = contract.address
        if address.to_bytes() in self._contracts:
            raise ValueError(f"address {address.hex()} already has a contract")
        self._contracts[address.to_bytes()] = contract

    def get(self, address: Address) -> Optional[Any]:
        return self._contracts.get(address.to_bytes())

    def __contains__(self, address: Address) -> bool:
        return address.to_bytes() in self._contracts

    def addresses(self) -> list[Address]:
        return [Address(raw) for raw in self._contracts]


@dataclass
class _TxState:
    """Mutable bookkeeping shared by all call frames of one transaction."""

    state: StateDB
    block: BlockContext
    registry: ContractRegistry
    meter: GasMeter
    origin: Address
    warm_addresses: set[bytes] = field(default_factory=set)
    warm_slots: set[tuple[bytes, bytes]] = field(default_factory=set)
    logs: list[LogEntry] = field(default_factory=list)

    def dispatch(self, sender: Address, to: Address, value: int,
                 calldata: bytes) -> Any:
        contract = self.registry.get(to)
        if contract is None:
            return None  # plain value transfer to an EOA
        # Calibrated stand-in for Solidity's decode/memory overhead.
        self.meter.charge(
            gas.EXECUTION_BYTE_GAS * len(calldata), "execution"
        )
        ctx = CallContext(self, to, sender, value, calldata)
        return contract.dispatch(ctx)


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of applying one transaction."""

    receipt: Receipt
    gas_used: int
    return_value: Any
    error: Optional[str]
    gas_breakdown: dict[str, int]

    @property
    def succeeded(self) -> bool:
        return self.receipt.status == 1


class TransactionExecutor:
    """Applies signed transactions to a :class:`StateDB`."""

    def __init__(self, registry: ContractRegistry) -> None:
        self.registry = registry

    def apply(self, state: StateDB, block: BlockContext, tx: Transaction,
              cumulative_gas: int = 0) -> ExecutionResult:
        sender = tx.sender
        upfront = tx.gas_limit * tx.gas_price
        if state.nonce_of(sender) != tx.nonce:
            raise VMError(
                f"bad nonce for {sender.hex()}: tx has {tx.nonce}, "
                f"state has {state.nonce_of(sender)}"
            )
        if state.balance_of(sender) < upfront + tx.value:
            raise VMError(
                f"sender {sender.hex()} cannot cover value + max fee"
            )
        state.sub_balance(sender, upfront)
        state.increment_nonce(sender)

        meter = GasMeter(tx.gas_limit)
        tx_state = _TxState(
            state=state, block=block, registry=self.registry,
            meter=meter, origin=sender,
        )
        tx_state.warm_addresses.update({sender.to_bytes(), tx.to.to_bytes()})

        snapshot = state.snapshot()
        return_value: Any = None
        error: Optional[str] = None
        status = 1
        try:
            meter.charge(tx.intrinsic_gas(), "intrinsic")
            if tx.value:
                state.transfer(sender, tx.to, tx.value)
            return_value = tx_state.dispatch(sender, tx.to, tx.value, tx.data)
        except VMError as exc:
            state.revert(snapshot)
            tx_state.logs.clear()
            status = 0
            error = str(exc)
            if isinstance(exc, OutOfGas):
                meter.used = meter.limit
        except InsufficientBalance as exc:
            state.revert(snapshot)
            tx_state.logs.clear()
            status = 0
            error = str(exc)

        refund = 0
        if status == 1:
            refund = min(meter.refund, meter.used // gas.MAX_REFUND_QUOTIENT)
        gas_used = meter.used - refund

        # Settle fees: unused gas back to sender, burn-free fee to coinbase.
        state.add_balance(sender, (tx.gas_limit - gas_used) * tx.gas_price)
        state.add_balance(block.coinbase, gas_used * tx.gas_price)

        receipt = Receipt(
            status=status,
            cumulative_gas_used=cumulative_gas + gas_used,
            logs=tuple(tx_state.logs),
            gas_used=gas_used,
        )
        return ExecutionResult(
            receipt=receipt,
            gas_used=gas_used,
            return_value=return_value,
            error=error,
            gas_breakdown=dict(meter.breakdown),
        )
