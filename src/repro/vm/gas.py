"""EVM-style gas schedule.

The paper's on-chain modules are Solidity contracts; ours are native Python
contracts executed by :mod:`repro.vm.runtime`.  To reproduce Table IV's gas
costs *mechanically*, every state access, hash, signature recovery, log, and
byte of calldata is metered with the constants Ethereum actually uses
(EIP-150/2028/2929/3529 values).  ``EXECUTION_BYTE_GAS`` is the one
calibration constant: it stands in for Solidity's per-byte execution overhead
(ABI decoding, memory expansion, bounds checks) that a native runtime does
not otherwise pay; DESIGN.md §6 documents this substitution.
"""

from __future__ import annotations

__all__ = [
    "TX_BASE_GAS",
    "CALLDATA_ZERO_GAS",
    "CALLDATA_NONZERO_GAS",
    "SLOAD_COLD_GAS",
    "WARM_ACCESS_GAS",
    "SSTORE_SET_GAS",
    "SSTORE_RESET_GAS",
    "SSTORE_CLEAR_REFUND",
    "COLD_ACCOUNT_ACCESS_GAS",
    "CALL_VALUE_GAS",
    "NEW_ACCOUNT_GAS",
    "ECRECOVER_GAS",
    "KECCAK_BASE_GAS",
    "KECCAK_WORD_GAS",
    "LOG_BASE_GAS",
    "LOG_TOPIC_GAS",
    "LOG_DATA_BYTE_GAS",
    "EXECUTION_BYTE_GAS",
    "RLP_DECODE_BYTE_GAS",
    "PROOF_VERIFY_BYTE_GAS",
    "MAX_REFUND_QUOTIENT",
    "calldata_gas",
    "keccak_gas",
]

# -- transaction-level -------------------------------------------------- #
TX_BASE_GAS = 21_000
CALLDATA_ZERO_GAS = 4        # EIP-2028
CALLDATA_NONZERO_GAS = 16    # EIP-2028

# -- storage (EIP-2929 warm/cold + EIP-3529 refunds) --------------------- #
SLOAD_COLD_GAS = 2_100
WARM_ACCESS_GAS = 100
SSTORE_SET_GAS = 20_000      # zero -> non-zero
SSTORE_RESET_GAS = 2_900     # non-zero -> different non-zero (or -> zero)
SSTORE_CLEAR_REFUND = 4_800  # EIP-3529 value for clearing a slot
COLD_ACCOUNT_ACCESS_GAS = 2_600

# -- calls and account creation ------------------------------------------ #
CALL_VALUE_GAS = 9_000
NEW_ACCOUNT_GAS = 25_000

# -- precompiles / builtins ----------------------------------------------- #
ECRECOVER_GAS = 3_000
KECCAK_BASE_GAS = 30
KECCAK_WORD_GAS = 6

# -- logging --------------------------------------------------------------- #
LOG_BASE_GAS = 375
LOG_TOPIC_GAS = 375
LOG_DATA_BYTE_GAS = 8

# -- native-runtime calibration ------------------------------------------- #
# Charged per byte of calldata consumed by contract-side decoding.  Stands in
# for Solidity ABI-decoding/memory/copy costs; see DESIGN.md §6.
EXECUTION_BYTE_GAS = 14
# Charged per byte a contract RLP-decodes (Solidity RLP readers cost tens of
# gas per byte in memory/loop overhead that a native runtime skips).
RLP_DECODE_BYTE_GAS = 60
# Charged per byte of a Merkle proof verified in-contract (Solidity MPT
# verifiers: nibble iteration, memory expansion, per-node keccak staging).
# Both constants are calibrated once against Table IV's fraud-proof figure
# for the reference workload (tx proof in a 200-tx block) — see DESIGN.md §6;
# the *scaling* with evidence size is mechanical.
PROOF_VERIFY_BYTE_GAS = 480

# EIP-3529: at most 1/5 of gas used may be returned via refunds.
MAX_REFUND_QUOTIENT = 5


def calldata_gas(data: bytes) -> int:
    """Intrinsic per-byte calldata cost (4 per zero byte, 16 per non-zero)."""
    zeros = data.count(0)
    return zeros * CALLDATA_ZERO_GAS + (len(data) - zeros) * CALLDATA_NONZERO_GAS


def keccak_gas(num_bytes: int) -> int:
    """Cost of hashing ``num_bytes`` with the keccak builtin."""
    words = (num_bytes + 31) // 32
    return KECCAK_BASE_GAS + KECCAK_WORD_GAS * words
