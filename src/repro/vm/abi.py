"""Calldata encoding for native contracts.

A call is ``selector(4 bytes) ‖ rlp([arg, …])`` where the selector is the
first four bytes of ``keccak256(method_name)``.  RLP (instead of the EVM's
32-byte-slot ABI) keeps calldata compact and uniformly meterable; the gas
model charges per byte either way, and EXPERIMENTS.md notes the encoding
difference when comparing Table IV.

Supported argument types: ``int`` (non-negative), ``bytes``, ``bool``,
:class:`~repro.crypto.keys.Address`, and (nested) lists thereof.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..crypto import keccak256
from ..crypto.keys import Address
from ..rlp import codec as rlp

__all__ = [
    "ABIError",
    "selector",
    "encode_call",
    "decode_call",
    "encode_args",
    "as_int",
    "as_bytes",
    "as_bool",
    "as_address",
    "as_list",
]


class ABIError(ValueError):
    """Raised on malformed calldata or argument type mismatches."""


def selector(method_name: str) -> bytes:
    """First 4 bytes of keccak256 of the bare method name."""
    return keccak256(method_name.encode("ascii"))[:4]


def _to_item(value: Any) -> rlp.Item:
    if isinstance(value, bool):  # before int: bool is an int subclass
        return rlp.encode_int(int(value))
    if isinstance(value, int):
        if value < 0:
            raise ABIError("negative integers are not ABI-encodable")
        return rlp.encode_int(value)
    if isinstance(value, Address):
        return value.to_bytes()
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, (list, tuple)):
        return [_to_item(v) for v in value]
    raise ABIError(f"cannot ABI-encode {type(value).__name__}")


def encode_args(args: Sequence[Any]) -> bytes:
    """RLP-encode an argument list (without a selector)."""
    return rlp.encode([_to_item(a) for a in args])


def encode_call(method_name: str, args: Sequence[Any] = ()) -> bytes:
    """Build calldata for ``method_name(*args)``."""
    return selector(method_name) + encode_args(args)


def decode_call(data: bytes) -> tuple[bytes, list[rlp.Item]]:
    """Split calldata into (selector, raw argument items)."""
    if len(data) < 4:
        raise ABIError(f"calldata too short for a selector ({len(data)} bytes)")
    sel, payload = data[:4], data[4:]
    if not payload:
        return sel, []
    try:
        items = rlp.decode(payload)
    except rlp.RLPError as exc:
        raise ABIError(f"undecodable calldata arguments: {exc}") from exc
    if not isinstance(items, list):
        raise ABIError("calldata arguments must be an RLP list")
    return sel, items


# -- typed accessors used inside contract methods -------------------------- #

def as_int(item: rlp.Item) -> int:
    if not isinstance(item, bytes):
        raise ABIError("expected integer argument")
    try:
        return rlp.decode_int(item)
    except rlp.RLPError as exc:
        raise ABIError(str(exc)) from exc


def as_bytes(item: rlp.Item, exact: int | None = None) -> bytes:
    if not isinstance(item, bytes):
        raise ABIError("expected bytes argument")
    if exact is not None and len(item) != exact:
        raise ABIError(f"expected {exact}-byte argument, got {len(item)}")
    return item


def as_bool(item: rlp.Item) -> bool:
    value = as_int(item)
    if value not in (0, 1):
        raise ABIError("expected boolean argument")
    return bool(value)


def as_address(item: rlp.Item) -> Address:
    return Address(as_bytes(item, exact=20))


def as_list(item: rlp.Item) -> list[rlp.Item]:
    if not isinstance(item, list):
        raise ABIError("expected list argument")
    return item
