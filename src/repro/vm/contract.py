"""Base class and helpers for native contracts.

A native contract is a Python class whose ``@contract_method``-decorated
methods are callable via calldata (selector + RLP args).  Dispatch, payable
checks, and storage-slot layout helpers live here; the PARP modules in
:mod:`repro.contracts` build on this.
"""

from __future__ import annotations

from typing import Any, Callable

from ..crypto import keccak256
from ..crypto.keys import Address
from . import abi
from .runtime import CallContext, Revert

__all__ = ["NativeContract", "contract_method", "mapping_slot", "field_slot"]


def contract_method(payable: bool = False, view: bool = False) -> Callable:
    """Mark a method as externally callable.

    ``payable=False`` methods revert when sent value, like Solidity.
    ``view=True`` is advisory (used by the RPC layer for eth_call routing).
    """

    def decorate(fn: Callable) -> Callable:
        fn._contract_method = True  # type: ignore[attr-defined]
        fn._payable = payable       # type: ignore[attr-defined]
        fn._view = view             # type: ignore[attr-defined]
        return fn

    return decorate


def mapping_slot(base: int, key: bytes) -> bytes:
    """Storage slot for ``mapping`` entries: keccak256(key ‖ base)."""
    return keccak256(key + base.to_bytes(32, "big"))


def field_slot(base: int, offset: int) -> int:
    """Slot of the ``offset``-th field of a struct rooted at ``base``."""
    return base + offset


class NativeContract:
    """Deployed native contract bound to a fixed address."""

    #: human-readable name (shows up in reprs and gas reports)
    name: str = "NativeContract"

    def __init__(self, address: Address) -> None:
        self.address = address
        self._methods: dict[bytes, Callable] = {}
        for attr in dir(type(self)):
            fn = getattr(type(self), attr)
            if callable(fn) and getattr(fn, "_contract_method", False):
                self._methods[abi.selector(attr)] = getattr(self, attr)

    def dispatch(self, ctx: CallContext) -> Any:
        """Route calldata to the matching method."""
        sel, args = abi.decode_call(ctx.calldata)
        method = self._methods.get(sel)
        if method is None:
            raise Revert(f"{self.name}: unknown method selector {sel.hex()}")
        if ctx.value and not getattr(method.__func__, "_payable", False):
            raise Revert(f"{self.name}: method is not payable")
        return method(ctx, args)

    def method_names(self) -> list[str]:
        """Callable method names (introspection for docs and the RPC layer)."""
        names = []
        for attr in dir(type(self)):
            fn = getattr(type(self), attr)
            if callable(fn) and getattr(fn, "_contract_method", False):
                names.append(attr)
        return sorted(names)

    def __repr__(self) -> str:
        return f"{self.name}(address={self.address.hex()})"
