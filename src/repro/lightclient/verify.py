"""Standalone stateless verification against header roots.

Thin, typed wrappers over :mod:`repro.trie.proof` for consumers outside the
PARP session flow (tests, tooling, non-PARP light clients): given a header
the client trusts, verify accounts, storage slots, transactions and receipts
purely from Merkle proofs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..chain.account import Account
from ..chain.block import index_key
from ..chain.header import BlockHeader
from ..chain.receipt import Receipt
from ..chain.transaction import Transaction
from ..crypto import keccak256
from ..crypto.keys import Address
from ..rlp import codec as rlp
from ..trie.proof import ProofError, verify_proof

__all__ = [
    "verify_account",
    "verify_balance",
    "verify_storage_slot",
    "verify_transaction_at",
    "verify_receipt_at",
]


def verify_account(header: BlockHeader, address: Address,
                   proof: Sequence[bytes]) -> Optional[Account]:
    """Prove an account's record (or its absence) under the header's state
    root.  Returns None for a proven-absent account; raises
    :class:`ProofError` when the proof does not authenticate."""
    raw = verify_proof(header.state_root, keccak256(address.to_bytes()), list(proof))
    if raw is None:
        return None
    return Account.decode(raw)


def verify_balance(header: BlockHeader, address: Address,
                   proof: Sequence[bytes]) -> int:
    """Proven balance; absent accounts have balance zero."""
    account = verify_account(header, address, proof)
    return account.balance if account is not None else 0


def verify_storage_slot(header: BlockHeader, address: Address, slot: bytes,
                        proof: Sequence[bytes]) -> bytes:
    """Prove a storage slot value (b'' when vacant) through the account's
    storage root.  ``proof`` holds the account and storage nodes together."""
    account = verify_account(header, address, proof)
    if account is None:
        return b""
    raw = verify_proof(account.storage_root, keccak256(slot), list(proof))
    if raw is None:
        return b""
    value = rlp.decode(raw)
    if not isinstance(value, bytes):
        raise ProofError("storage slot does not hold a byte value")
    return value


def verify_transaction_at(header: BlockHeader, index: int,
                          proof: Sequence[bytes]) -> Optional[Transaction]:
    """Prove the transaction at ``index`` in the header's block."""
    raw = verify_proof(header.transactions_root, index_key(index), list(proof))
    if raw is None:
        return None
    return Transaction.decode(raw)


def verify_receipt_at(header: BlockHeader, index: int,
                      proof: Sequence[bytes]) -> Optional[Receipt]:
    """Prove the receipt at ``index`` in the header's block."""
    raw = verify_proof(header.receipts_root, index_key(index), list(proof))
    if raw is None:
        return None
    return Receipt.decode(raw)
