"""Multi-source header synchronization with cross-checking.

Paper §IV-D assumes "the light client can request and receive block headers
… from any full node (PARP-compatible or not), without payment".  Because
headers are the root of trust, the client should not take them from a single
node: the syncer fetches from several sources and requires a quorum of them
to agree on each header hash, detecting equivocating or lying sources.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional, Protocol, Sequence

from ..chain.header import BlockHeader
from ..net.futures import wait_all
from .headerchain import HeaderChain, HeaderChainError

__all__ = ["HeaderSource", "SyncError", "HeaderSyncer"]


class HeaderSource(Protocol):
    """The free header service every full node exposes."""

    def serve_header(self, number: int) -> Optional[BlockHeader]: ...
    def serve_head_number(self) -> int: ...


class SyncError(Exception):
    """Raised when sources disagree beyond the quorum or data is missing."""


class HeaderSyncer:
    """Keeps a :class:`HeaderChain` in sync against multiple sources."""

    def __init__(self, sources: Sequence[HeaderSource],
                 quorum: Optional[int] = None,
                 chain: Optional[HeaderChain] = None) -> None:
        if not sources:
            raise ValueError("at least one header source is required")
        self.sources = list(sources)
        #: how many sources must agree on a header hash (default: majority).
        self.quorum = quorum if quorum is not None else len(self.sources) // 2 + 1
        self.chain = chain if chain is not None else HeaderChain()
        #: sources caught disagreeing with the quorum (candidate bad peers).
        self.suspects: set[int] = set()
        #: headers fetched over the pull path (per *appended* header — a
        #: replayed or redundant delivery never double-counts).
        self.headers_fetched = 0
        #: headers appended via the gossip push path (offer_header).
        self.headers_pushed = 0
        #: deliveries (pushed or pulled) the chain already had.
        self.duplicates_ignored = 0
        #: sync() calls satisfied from push freshness with zero source polls.
        self.push_syncs_skipped = 0
        # -- push mode (disabled until enable_push) ---------------------- #
        self._push_clock: Optional[Any] = None
        self._push_staleness = 0.0
        self._last_push: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Syncing
    # ------------------------------------------------------------------ #

    def _gather(self, method: str, *args: Any) -> list[tuple[int, Any]]:
        """Ask every source once — in parallel where the transport allows.

        Sources exposing the futures contract (``submit``) are queried with
        overlapping in-flight requests and awaited together, so a fetch
        round costs the *slowest* source's round trip instead of the sum —
        and a dead source costs one shared synchrony bound, not its own.
        Sources without it are called synchronously, as before.  Returns
        ``(source_index, value)`` pairs for the sources that answered.
        """
        pending: dict[int, Any] = {}
        answered: list[tuple[int, Any]] = []
        for index, source in enumerate(self.sources):
            submit = getattr(source, "submit", None)
            if submit is not None:
                pending[index] = submit(method, *args)
                continue
            try:
                answered.append((index, getattr(source, method)(*args)))
            except Exception:  # noqa: BLE001 — a dead source is not fatal
                continue
        if pending:
            wait_all(pending.values())
            for index, reply in pending.items():
                if reply.ok:
                    answered.append((index, reply.result()))
                else:
                    reply.cancel()  # timed out / failed: drop the correlation
        answered.sort()
        return answered

    def head_target(self) -> int:
        """The height to sync to: the median of the responsive sources' heads
        (robust against a minority of sources lying about the tip; dead or
        partitioned sources are skipped rather than wedging the sync)."""
        heads = sorted(head for _, head in self._gather("serve_head_number"))
        if not heads:
            raise SyncError("no header source answered a head request")
        return heads[len(heads) // 2]

    def sync(self) -> BlockHeader:
        """Catch up to the (median) network head; returns the new tip.

        In push mode a fresh tip short-circuits: while gossiped
        announcements keep arriving inside the staleness window no source
        is polled at all — the pull machinery below is the fallback for a
        quiet (partitioned, censored) topic, not the steady state.
        """
        if self.push_fresh() and len(self.chain):
            self.push_syncs_skipped += 1
            return self.chain.tip
        return self.sync_to(self.head_target())

    def sync_to(self, target: int) -> BlockHeader:
        """Fetch and validate headers up to ``target``.

        Idempotent under redundant delivery: a target at or below the local
        tip is already satisfied — no source is asked, nothing re-verifies,
        and ``headers_fetched`` counts each height exactly once for the
        lifetime of this syncer.
        """
        if len(self.chain) and target <= self.chain.tip_number:
            self.duplicates_ignored += 1
            return self.chain.tip
        start = self.chain.tip_number + 1 if len(self.chain) else 0
        for number in range(start, target + 1):
            self.chain.append(self._fetch_checked(number))
            self.headers_fetched += 1
        if not len(self.chain):
            raise SyncError("nothing to sync: empty chain and target below start")
        return self.chain.tip

    # ------------------------------------------------------------------ #
    # Push mode (gossip-fed) with pull fallback
    # ------------------------------------------------------------------ #

    def enable_push(self, clock, staleness: float = 2.0) -> None:
        """Accept gossiped headers; fall back to pull past ``staleness``.

        ``clock`` is a callable returning the current (sim) time; it dates
        announcements so :meth:`sync` can tell "the topic is quiet, poll"
        from "a head arrived moments ago, the tip is trustworthy as-is".
        """
        self._push_clock = clock
        self._push_staleness = float(staleness)
        # the window opens now: a just-subscribed client starts fresh
        # rather than pulling once before the first announcement lands
        self._last_push = float(clock())

    @property
    def push_enabled(self) -> bool:
        return self._push_clock is not None

    def push_fresh(self, now: Optional[float] = None) -> bool:
        """Whether the last pushed head is inside the staleness window."""
        if self._push_clock is None or self._last_push is None:
            return False
        if now is None:
            now = float(self._push_clock())
        return (now - self._last_push) <= self._push_staleness

    def offer_header(self, header: BlockHeader) -> str:
        """Offer one (already externally vouched-for) header to the chain.

        The push half of §V-D: continuity — number and parent-hash linkage
        — is enforced by :meth:`HeaderChain.append` exactly as for pulled
        headers; who may vouch (signature, stake, announcer quorum) is the
        gossip domain's job *before* calling this.  Returns what happened:

        * ``"appended"`` — it extended the tip;
        * ``"known"``    — replay of a header we already hold (no work);
        * ``"pulled"``   — it revealed a gap, which was filled by the
          quorum pull path up to the header's height;
        * ``"ignored"``  — unusable (empty chain with a non-anchor header,
          conflicting hash at a held height, or broken linkage).
        """
        if not len(self.chain):
            # an empty chain has no trust anchor to link against; pushing
            # cannot bootstrap trust (checkpoint/genesis sync does that)
            return "ignored"
        tip = self.chain.tip
        if header.number <= tip.number:
            known = self.chain.get_header(header.number)
            if known is not None and known.hash == header.hash:
                self.duplicates_ignored += 1
                self._stamp_push()
                return "known"
            return "ignored"
        if header.number == tip.number + 1:
            if header.parent_hash != tip.hash:
                return "ignored"
            try:
                self.chain.append(header)
            except HeaderChainError:
                return "ignored"
            self.headers_pushed += 1
            self._stamp_push()
            return "appended"
        # a gap: the announcement proves the network moved — fill the hole
        # through the quorum pull path, up to (and including) this height
        try:
            self.sync_to(header.number)
        except SyncError:
            return "ignored"
        self._stamp_push()
        return "pulled"

    def _stamp_push(self) -> None:
        if self._push_clock is not None:
            self._last_push = float(self._push_clock())

    def _fetch_checked(self, number: int) -> BlockHeader:
        """Fetch header ``number``, requiring quorum agreement on its hash.

        Each source is asked exactly once (in parallel over futures-capable
        transports); sources that fail (offline, partitioned, timed out)
        simply don't vote.
        """
        votes: Counter[bytes] = Counter()
        candidates: dict[bytes, BlockHeader] = {}
        answers: dict[int, bytes] = {}
        for index, header in self._gather("serve_header", number):
            if header is None or header.number != number:
                continue
            votes[header.hash] += 1
            candidates[header.hash] = header
            answers[index] = header.hash
        if not votes:
            raise SyncError(f"no source could provide header {number}")
        winner_hash, count = votes.most_common(1)[0]
        if count < self.quorum:
            raise SyncError(
                f"no quorum on header {number}: best hash has {count} votes, "
                f"need {self.quorum}"
            )
        # Remember sources that voted against the quorum hash.
        for index, answer in answers.items():
            if answer != winner_hash:
                self.suspects.add(index)
        return candidates[winner_hash]

    def ensure_height(self, number: int) -> BlockHeader:
        """Make sure the local chain reaches ``number``; returns that header."""
        if not len(self.chain) or self.chain.tip_number < number:
            self.sync_to(number)
        header = self.chain.get_header(number)
        if header is None:
            raise SyncError(f"header {number} below the local trust anchor")
        return header

    # ------------------------------------------------------------------ #
    # Views used by PARP verification
    # ------------------------------------------------------------------ #

    @property
    def tip(self) -> BlockHeader:
        return self.chain.tip

    def get_header(self, number: int) -> Optional[BlockHeader]:
        return self.chain.get_header(number)

    def height_of(self, block_hash: bytes) -> Optional[int]:
        return self.chain.height_of(block_hash)
