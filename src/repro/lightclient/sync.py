"""Multi-source header synchronization with cross-checking.

Paper §IV-D assumes "the light client can request and receive block headers
… from any full node (PARP-compatible or not), without payment".  Because
headers are the root of trust, the client should not take them from a single
node: the syncer fetches from several sources and requires a quorum of them
to agree on each header hash, detecting equivocating or lying sources.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional, Protocol, Sequence

from ..chain.header import BlockHeader
from ..net.futures import wait_all
from .headerchain import HeaderChain, HeaderChainError

__all__ = ["HeaderSource", "SyncError", "HeaderSyncer"]


class HeaderSource(Protocol):
    """The free header service every full node exposes."""

    def serve_header(self, number: int) -> Optional[BlockHeader]: ...
    def serve_head_number(self) -> int: ...


class SyncError(Exception):
    """Raised when sources disagree beyond the quorum or data is missing."""


class HeaderSyncer:
    """Keeps a :class:`HeaderChain` in sync against multiple sources."""

    def __init__(self, sources: Sequence[HeaderSource],
                 quorum: Optional[int] = None,
                 chain: Optional[HeaderChain] = None) -> None:
        if not sources:
            raise ValueError("at least one header source is required")
        self.sources = list(sources)
        #: how many sources must agree on a header hash (default: majority).
        self.quorum = quorum if quorum is not None else len(self.sources) // 2 + 1
        self.chain = chain if chain is not None else HeaderChain()
        #: sources caught disagreeing with the quorum (candidate bad peers).
        self.suspects: set[int] = set()

    # ------------------------------------------------------------------ #
    # Syncing
    # ------------------------------------------------------------------ #

    def _gather(self, method: str, *args: Any) -> list[tuple[int, Any]]:
        """Ask every source once — in parallel where the transport allows.

        Sources exposing the futures contract (``submit``) are queried with
        overlapping in-flight requests and awaited together, so a fetch
        round costs the *slowest* source's round trip instead of the sum —
        and a dead source costs one shared synchrony bound, not its own.
        Sources without it are called synchronously, as before.  Returns
        ``(source_index, value)`` pairs for the sources that answered.
        """
        pending: dict[int, Any] = {}
        answered: list[tuple[int, Any]] = []
        for index, source in enumerate(self.sources):
            submit = getattr(source, "submit", None)
            if submit is not None:
                pending[index] = submit(method, *args)
                continue
            try:
                answered.append((index, getattr(source, method)(*args)))
            except Exception:  # noqa: BLE001 — a dead source is not fatal
                continue
        if pending:
            wait_all(pending.values())
            for index, reply in pending.items():
                if reply.ok:
                    answered.append((index, reply.result()))
                else:
                    reply.cancel()  # timed out / failed: drop the correlation
        answered.sort()
        return answered

    def head_target(self) -> int:
        """The height to sync to: the median of the responsive sources' heads
        (robust against a minority of sources lying about the tip; dead or
        partitioned sources are skipped rather than wedging the sync)."""
        heads = sorted(head for _, head in self._gather("serve_head_number"))
        if not heads:
            raise SyncError("no header source answered a head request")
        return heads[len(heads) // 2]

    def sync(self) -> BlockHeader:
        """Catch up to the (median) network head; returns the new tip."""
        return self.sync_to(self.head_target())

    def sync_to(self, target: int) -> BlockHeader:
        """Fetch and validate headers up to ``target``."""
        start = self.chain.tip_number + 1 if len(self.chain) else 0
        for number in range(start, target + 1):
            self.chain.append(self._fetch_checked(number))
        if not len(self.chain):
            raise SyncError("nothing to sync: empty chain and target below start")
        return self.chain.tip

    def _fetch_checked(self, number: int) -> BlockHeader:
        """Fetch header ``number``, requiring quorum agreement on its hash.

        Each source is asked exactly once (in parallel over futures-capable
        transports); sources that fail (offline, partitioned, timed out)
        simply don't vote.
        """
        votes: Counter[bytes] = Counter()
        candidates: dict[bytes, BlockHeader] = {}
        answers: dict[int, bytes] = {}
        for index, header in self._gather("serve_header", number):
            if header is None or header.number != number:
                continue
            votes[header.hash] += 1
            candidates[header.hash] = header
            answers[index] = header.hash
        if not votes:
            raise SyncError(f"no source could provide header {number}")
        winner_hash, count = votes.most_common(1)[0]
        if count < self.quorum:
            raise SyncError(
                f"no quorum on header {number}: best hash has {count} votes, "
                f"need {self.quorum}"
            )
        # Remember sources that voted against the quorum hash.
        for index, answer in answers.items():
            if answer != winner_hash:
                self.suspects.add(index)
        return candidates[winner_hash]

    def ensure_height(self, number: int) -> BlockHeader:
        """Make sure the local chain reaches ``number``; returns that header."""
        if not len(self.chain) or self.chain.tip_number < number:
            self.sync_to(number)
        header = self.chain.get_header(number)
        if header is None:
            raise SyncError(f"header {number} below the local trust anchor")
        return header

    # ------------------------------------------------------------------ #
    # Views used by PARP verification
    # ------------------------------------------------------------------ #

    @property
    def tip(self) -> BlockHeader:
        return self.chain.tip

    def get_header(self, number: int) -> Optional[BlockHeader]:
        return self.chain.get_header(number)

    def height_of(self, block_hash: bytes) -> Optional[int]:
        return self.chain.height_of(block_hash)
