"""Light-client substrate: header chain, multi-source sync, proof checks."""

from .checkpoint import (
    Checkpoint,
    CheckpointSource,
    CheckpointSyncer,
    RangeUpdate,
    is_better_update,
)
from .headerchain import HeaderChain, HeaderChainError
from .sync import HeaderSource, HeaderSyncer, SyncError
from .verify import (
    verify_account,
    verify_balance,
    verify_receipt_at,
    verify_storage_slot,
    verify_transaction_at,
)

__all__ = [
    "Checkpoint",
    "CheckpointSource",
    "CheckpointSyncer",
    "HeaderChain",
    "HeaderChainError",
    "HeaderSource",
    "HeaderSyncer",
    "RangeUpdate",
    "SyncError",
    "is_better_update",
    "verify_account",
    "verify_balance",
    "verify_storage_slot",
    "verify_transaction_at",
    "verify_receipt_at",
]
