"""Light-client substrate: header chain, multi-source sync, proof checks."""

from .headerchain import HeaderChain, HeaderChainError
from .sync import HeaderSource, HeaderSyncer, SyncError
from .verify import (
    verify_account,
    verify_balance,
    verify_receipt_at,
    verify_storage_slot,
    verify_transaction_at,
)

__all__ = [
    "HeaderChain",
    "HeaderChainError",
    "HeaderSource",
    "HeaderSyncer",
    "SyncError",
    "verify_account",
    "verify_balance",
    "verify_storage_slot",
    "verify_transaction_at",
    "verify_receipt_at",
]
