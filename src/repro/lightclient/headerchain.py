"""Light-client header chain: the local, validated copy of block headers.

Headers are the light client's root of trust (§III-B, §IV-D): every PARP
response is ultimately verified against the state/transactions/receipts
roots inside one of these headers.  The chain enforces hash-linked
continuity from a trust anchor (genesis or a checkpoint header).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..chain.header import BlockHeader

__all__ = ["HeaderChainError", "HeaderChain"]


class HeaderChainError(Exception):
    """Raised when an appended header does not extend the chain."""


class HeaderChain:
    """An append-only, continuity-checked sequence of block headers.

    The first accepted header is the *trust anchor* — genesis for a full
    sync, or any out-of-band-trusted checkpoint header for a fast sync
    (paper §III-B: schemes like FlyClient make anchor acquisition cheap;
    anchor choice is orthogonal to PARP).
    """

    def __init__(self, anchor: Optional[BlockHeader] = None) -> None:
        self._headers: list[BlockHeader] = []
        self._by_hash: dict[bytes, BlockHeader] = {}
        self._start = 0
        if anchor is not None:
            self.append(anchor)

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #

    def append(self, header: BlockHeader) -> None:
        """Add the next header; validates number and parent-hash linkage."""
        if not self._headers:
            self._headers.append(header)
            self._by_hash[header.hash] = header
            self._start = header.number
            return
        tip = self._headers[-1]
        if header.number != tip.number + 1:
            raise HeaderChainError(
                f"expected header {tip.number + 1}, got {header.number}"
            )
        if header.parent_hash != tip.hash:
            raise HeaderChainError(
                f"header {header.number} does not link to local tip "
                f"{tip.hash.hex()[:12]}"
            )
        self._headers.append(header)
        self._by_hash[header.hash] = header

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def tip(self) -> BlockHeader:
        if not self._headers:
            raise HeaderChainError("header chain is empty")
        return self._headers[-1]

    @property
    def tip_number(self) -> int:
        return self.tip.number

    @property
    def anchor_number(self) -> int:
        if not self._headers:
            raise HeaderChainError("header chain is empty")
        return self._start

    def __len__(self) -> int:
        return len(self._headers)

    def get_header(self, number: int) -> Optional[BlockHeader]:
        index = number - self._start
        if 0 <= index < len(self._headers):
            return self._headers[index]
        return None

    def get_by_hash(self, block_hash: bytes) -> Optional[BlockHeader]:
        return self._by_hash.get(block_hash)

    def height_of(self, block_hash: bytes) -> Optional[int]:
        header = self._by_hash.get(block_hash)
        return header.number if header else None

    def __contains__(self, block_hash: bytes) -> bool:
        return block_hash in self._by_hash

    def __iter__(self) -> Iterator[BlockHeader]:
        return iter(self._headers)
