"""Checkpoint sync: bootstrap from a trusted header, page updates by range.

Modeled on the Altair minimal light-client sync protocol: a client that
trusts one out-of-band checkpoint (a ``(number, hash)`` pair from a block
explorer, a friend, or an operator config) asks the network to *bootstrap*
it — produce the full header behind that hash — and then catches up to the
head with paged ``UpdatesByRange`` fetches instead of one round trip per
header.  Onboarding therefore costs O(distance-from-checkpoint), not
O(chain length).

Trust model (paper §III-B: anchor choice is orthogonal to PARP):

* the *bootstrap* header is self-certifying — its keccak must equal the
  trusted checkpoint hash, so a lying server is detected immediately — but
  the existing multi-source quorum cross-check is still applied, flagging
  equivocating servers as suspects before any money moves;
* each *update page* is validated for internal hash linkage and continuity
  with the local tip, then selected across sources with an
  ``is_better_update``-style rule: among quorum-attested candidate pages
  prefer the one reaching the highest head, then the most votes, with a
  deterministic tiebreak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Union

from ..chain.header import BlockHeader
from ..rlp import codec as rlp
from .headerchain import HeaderChain
from .sync import HeaderSyncer, SyncError

__all__ = [
    "Checkpoint",
    "RangeUpdate",
    "CheckpointSource",
    "CheckpointSyncer",
    "is_better_update",
    "DEFAULT_UPDATE_PAGE",
    "MAX_UPDATE_PAGE",
]

#: headers per UpdatesByRange request (client default)
DEFAULT_UPDATE_PAGE = 64
#: hard server-side cap on one page (DoS bound, like MAX_REQUEST_LIGHT_CLIENT_UPDATES)
MAX_UPDATE_PAGE = 256


@dataclass(frozen=True)
class Checkpoint:
    """An out-of-band-trusted block reference: the client's root of trust."""

    number: int
    hash: bytes

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ValueError("checkpoint number must be non-negative")
        if not isinstance(self.hash, bytes) or len(self.hash) != 32:
            raise ValueError("checkpoint hash must be 32 bytes")

    @classmethod
    def of(cls, header: BlockHeader) -> "Checkpoint":
        return cls(number=header.number, hash=header.hash)


@dataclass(frozen=True)
class RangeUpdate:
    """One validated UpdatesByRange page: consecutive, hash-linked headers."""

    headers: tuple[BlockHeader, ...]

    def __post_init__(self) -> None:
        if not self.headers:
            raise ValueError("a range update carries at least one header")
        for previous, header in zip(self.headers, self.headers[1:]):
            if (header.number != previous.number + 1
                    or header.parent_hash != previous.hash):
                raise ValueError(
                    f"range update breaks linkage at header {header.number}"
                )

    @property
    def start(self) -> int:
        return self.headers[0].number

    @property
    def tip(self) -> BlockHeader:
        return self.headers[-1]

    def __len__(self) -> int:
        return len(self.headers)

    def encode(self) -> bytes:
        """Wire encoding (the billable ``parp_updatesByRange`` result)."""
        return rlp.encode([header.encode() for header in self.headers])

    @classmethod
    def decode(cls, raw: bytes) -> "RangeUpdate":
        item = rlp.decode(raw)
        if not isinstance(item, list) or not item:
            raise rlp.RLPError("range update must be a non-empty RLP list")
        headers = []
        for encoded in item:
            if not isinstance(encoded, bytes):
                raise rlp.RLPError("range update items must be header bytes")
            headers.append(BlockHeader.decode(encoded))
        try:
            return cls(tuple(headers))
        except ValueError as exc:
            raise rlp.RLPError(str(exc)) from exc


class CheckpointSource(Protocol):
    """The free checkpoint-sync services every full node exposes."""

    def serve_bootstrap(self, checkpoint_hash: bytes) -> Optional[BlockHeader]: ...
    def serve_updates_range(self, start: int,
                            count: int) -> Sequence[BlockHeader]: ...
    def serve_head_number(self) -> int: ...


def is_better_update(candidate: tuple[int, RangeUpdate],
                     incumbent: tuple[int, RangeUpdate]) -> bool:
    """Is ``candidate`` (votes, update) preferable to ``incumbent``?

    The Altair analog ranks updates by participation and recency; here both
    candidates already cleared the quorum (the participation floor), so the
    page that attests the *higher head* wins, then the one with more source
    votes, then the lexicographically smaller tip hash — a deterministic
    total order, so selection never depends on source iteration order.
    """
    votes_a, a = candidate
    votes_b, b = incumbent
    if a.tip.number != b.tip.number:
        return a.tip.number > b.tip.number
    if votes_a != votes_b:
        return votes_a > votes_b
    return a.tip.hash < b.tip.hash


class CheckpointSyncer(HeaderSyncer):
    """A :class:`HeaderSyncer` that anchors at a checkpoint and pages.

    Drop-in everywhere a ``HeaderSyncer`` is accepted (sessions call
    ``sync()`` / ``ensure_height`` polymorphically); the difference is the
    cost profile — O(distance-from-checkpoint) header fetches in
    ``⌈distance/page_size⌉`` round-trip rounds — and the refusal to serve
    anything below the anchor (:class:`HeaderChain` anchor semantics).
    """

    def __init__(self, sources: Sequence[CheckpointSource],
                 checkpoint: Checkpoint,
                 quorum: Optional[int] = None,
                 chain: Optional[HeaderChain] = None,
                 page_size: int = DEFAULT_UPDATE_PAGE) -> None:
        super().__init__(sources, quorum=quorum, chain=chain)
        if page_size < 1:
            raise ValueError("page size must be positive")
        self.checkpoint = checkpoint
        self.page_size = min(page_size, MAX_UPDATE_PAGE)
        #: page-count sibling of the inherited ``headers_fetched``: the
        #: whole point of checkpoint sync is that both scale with
        #: distance-from-checkpoint, not chain length (benched)
        self.pages_fetched = 0

    # ------------------------------------------------------------------ #
    # Bootstrap
    # ------------------------------------------------------------------ #

    def bootstrap(self) -> BlockHeader:
        """Anchor the local chain at the trusted checkpoint header.

        Every source is asked for the header behind the checkpoint hash.
        A response is self-certifying (its keccak must equal the trusted
        hash), and the quorum cross-check still applies: servers answering
        with a *different* header are equivocating and become suspects.
        """
        if len(self.chain):
            return self.chain.get_header(self.chain.anchor_number)
        anchor: Optional[BlockHeader] = None
        votes = 0
        for index, header in self._gather("serve_bootstrap",
                                          self.checkpoint.hash):
            if header is None:
                continue  # honest "don't have it": no vote, no suspicion
            if (not isinstance(header, BlockHeader)
                    or header.hash != self.checkpoint.hash
                    or header.number != self.checkpoint.number):
                self.suspects.add(index)
                continue
            anchor = header
            votes += 1
        if anchor is None:
            raise SyncError(
                f"no source could provide the checkpoint header "
                f"{self.checkpoint.number} "
                f"({self.checkpoint.hash.hex()[:12]}…)"
            )
        if votes < self.quorum:
            raise SyncError(
                f"no quorum on checkpoint header {self.checkpoint.number}: "
                f"{votes} matching votes, need {self.quorum}"
            )
        self.chain.append(anchor)
        self.headers_fetched += 1
        return anchor

    # ------------------------------------------------------------------ #
    # Paged syncing
    # ------------------------------------------------------------------ #

    def sync_to(self, target: int) -> BlockHeader:
        """Catch up to ``target`` in pages of up to ``page_size`` headers.

        Idempotent like the base class: a target at or below the local tip
        costs zero fetches and zero re-verification.
        """
        if len(self.chain) and target <= self.chain.tip_number:
            self.duplicates_ignored += 1
            return self.chain.tip
        if not len(self.chain):
            self.bootstrap()
        while self.chain.tip_number < target:
            start = self.chain.tip_number + 1
            count = min(self.page_size, target - start + 1)
            update = self._fetch_page(start, count)
            for header in update.headers:
                self.chain.append(header)
            self.headers_fetched += len(update)
            self.pages_fetched += 1
        return self.chain.tip

    def _fetch_page(self, start: int, count: int) -> RangeUpdate:
        """Fetch one page, quorum-checked with is_better_update selection.

        Each source's response is reduced to its longest *valid* prefix
        (consecutive numbers from ``start``, internally hash-linked, and
        linking to our local tip).  A candidate prefix's votes are the
        sources whose pages agree with it position-for-position; among
        quorum-attested candidates :func:`is_better_update` picks the
        winner.  Sources conflicting with the winner on any shared
        position are recorded as suspects.
        """
        tip_hash = self.chain.tip.hash
        pages: dict[int, list[BlockHeader]] = {}
        for index, raw in self._gather("serve_updates_range", start, count):
            headers = self._valid_prefix(raw, start, tip_hash)
            if headers is None:
                # claimed headers at these heights that do not link — a
                # different chain or garbage, either way not a free pass
                self.suspects.add(index)
                continue
            if headers:
                pages[index] = headers
        if not pages:
            raise SyncError(f"no source could provide headers from {start}")
        candidates: dict[tuple[bytes, ...], RangeUpdate] = {}
        for headers in pages.values():
            key = tuple(header.hash for header in headers)
            if key not in candidates:
                candidates[key] = RangeUpdate(tuple(headers))
        scored: list[tuple[int, RangeUpdate]] = []
        for key, update in candidates.items():
            votes = sum(
                1 for headers in pages.values()
                if len(headers) >= len(key)
                and all(headers[i].hash == key[i] for i in range(len(key)))
            )
            if votes >= self.quorum:
                scored.append((votes, update))
        if not scored:
            raise SyncError(
                f"no quorum on headers {start}..{start + count - 1}: no "
                f"candidate page reached {self.quorum} votes"
            )
        best = scored[0]
        for entry in scored[1:]:
            if is_better_update(entry, best):
                best = entry
        _, update = best
        for index, headers in pages.items():
            shared = min(len(headers), len(update))
            if any(headers[i].hash != update.headers[i].hash
                   for i in range(shared)):
                self.suspects.add(index)
        return update

    @staticmethod
    def _valid_prefix(raw: object, start: int,
                      tip_hash: bytes) -> Optional[list[BlockHeader]]:
        """Longest valid prefix of a source's page.

        Returns ``[]`` for an honestly-empty answer, ``None`` for a
        response that *claims* headers but fails validation outright
        (wrong type, wrong start, or a first header that does not link to
        the local tip).
        """
        if raw is None:
            return []
        if isinstance(raw, RangeUpdate):
            raw = raw.headers
        if not isinstance(raw, (list, tuple)):
            return None
        if not raw:
            return []
        prefix: list[BlockHeader] = []
        expected_parent = tip_hash
        for header in raw:
            if (not isinstance(header, BlockHeader)
                    or header.number != start + len(prefix)
                    or header.parent_hash != expected_parent):
                break
            prefix.append(header)
            expected_parent = header.hash
        return prefix if prefix else None
