"""RLP (Recursive Length Prefix) serialization substrate."""

from .codec import Item, RLPError, decode, decode_int, encode, encode_int, encoded_length
from .sedes import (
    Binary,
    CountableList,
    ListSedes,
    Sedes,
    address_bytes,
    big_endian_int,
    binary,
    deserialize,
    hash32,
    serialize,
)

__all__ = [
    "Item",
    "RLPError",
    "encode",
    "decode",
    "encode_int",
    "decode_int",
    "encoded_length",
    "Sedes",
    "Binary",
    "CountableList",
    "ListSedes",
    "big_endian_int",
    "binary",
    "address_bytes",
    "hash32",
    "serialize",
    "deserialize",
]
