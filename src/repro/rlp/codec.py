"""Recursive Length Prefix (RLP) encoding — Ethereum's canonical serialization.

RLP serializes nested structures of byte strings.  It is the encoding used for
transactions, block headers, account records, and — crucially for PARP — the
nodes of Merkle Patricia Tries, whose hashes are ``keccak256(rlp(node))``.
Merkle proof sizes in Figure 6 of the paper are therefore RLP byte counts.

The value domain is ``Item = bytes | list[Item]``.  Integers are encoded via
:func:`encode_int` (big-endian, no leading zeros, ``0 -> b""``), matching the
Ethereum convention.
"""

from __future__ import annotations

from typing import Sequence, Union

__all__ = [
    "Item",
    "RLPError",
    "encode",
    "decode",
    "encode_int",
    "decode_int",
    "encoded_length",
]

Item = Union[bytes, Sequence["Item"]]


class RLPError(ValueError):
    """Raised on malformed RLP input."""


def encode_int(value: int) -> bytes:
    """Encode a non-negative integer as a minimal big-endian byte string."""
    if value < 0:
        raise RLPError(f"cannot RLP-encode negative integer {value}")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_int(data: bytes) -> int:
    """Decode a minimal big-endian byte string into an integer."""
    if data and data[0] == 0:
        raise RLPError("integer encoding has leading zero byte")
    return int.from_bytes(data, "big")


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = encode_int(length)
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def encode(item: Item) -> bytes:
    """RLP-encode ``item`` (bytes or arbitrarily nested lists of bytes)."""
    if isinstance(item, (bytes, bytearray, memoryview)):
        payload = bytes(item)
        if len(payload) == 1 and payload[0] < 0x80:
            return payload
        return _encode_length(len(payload), 0x80) + payload
    if isinstance(item, (list, tuple)):
        body = b"".join(encode(element) for element in item)
        return _encode_length(len(body), 0xC0) + body
    if isinstance(item, int):
        raise RLPError(
            "ints are not directly RLP-encodable; use encode_int() first "
            f"(got {item!r})"
        )
    raise RLPError(f"cannot RLP-encode object of type {type(item).__name__}")


def encoded_length(item: Item) -> int:
    """Return ``len(encode(item))`` without materializing the full encoding."""
    return len(encode(item))


def decode(data: bytes) -> Item:
    """Decode a complete RLP blob; raises :class:`RLPError` on trailing bytes."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise RLPError(f"RLP input must be bytes, got {type(data).__name__}")
    data = bytes(data)
    item, consumed = _decode_at(data, 0)
    if consumed != len(data):
        raise RLPError(f"trailing bytes after RLP item ({len(data) - consumed} left)")
    return item


def _decode_at(data: bytes, pos: int) -> tuple[Item, int]:
    if pos >= len(data):
        raise RLPError("unexpected end of RLP input")
    prefix = data[pos]
    if prefix < 0x80:  # single byte, itself
        return bytes([prefix]), pos + 1
    if prefix <= 0xB7:  # short string
        length = prefix - 0x80
        end = pos + 1 + length
        if end > len(data):
            raise RLPError("RLP string extends past end of input")
        payload = data[pos + 1:end]
        if length == 1 and payload[0] < 0x80:
            raise RLPError("non-canonical single-byte string encoding")
        return payload, end
    if prefix <= 0xBF:  # long string
        len_of_len = prefix - 0xB7
        length, start = _read_length(data, pos, len_of_len, minimum=56)
        end = start + length
        if end > len(data):
            raise RLPError("RLP string extends past end of input")
        return data[start:end], end
    if prefix <= 0xF7:  # short list
        length = prefix - 0xC0
        return _decode_list_payload(data, pos + 1, length)
    # long list
    len_of_len = prefix - 0xF7
    length, start = _read_length(data, pos, len_of_len, minimum=56)
    return _decode_list_payload(data, start, length)


def _read_length(data: bytes, pos: int, len_of_len: int, minimum: int) -> tuple[int, int]:
    start = pos + 1 + len_of_len
    if start > len(data):
        raise RLPError("RLP length field extends past end of input")
    length_bytes = data[pos + 1:start]
    if length_bytes[0] == 0:
        raise RLPError("RLP length field has leading zero")
    length = int.from_bytes(length_bytes, "big")
    if length < minimum:
        raise RLPError("non-canonical RLP long-form length")
    return length, start


def _decode_list_payload(data: bytes, start: int, length: int) -> tuple[list[Item], int]:
    end = start + length
    if end > len(data):
        raise RLPError("RLP list extends past end of input")
    items: list[Item] = []
    pos = start
    while pos < end:
        item, pos = _decode_at(data, pos)
        if pos > end:
            raise RLPError("RLP list element extends past list payload")
        items.append(item)
    return items, end
