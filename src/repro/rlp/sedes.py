"""Typed serializers ("sedes") on top of raw RLP.

Chain objects (transactions, headers, accounts, receipts) are fixed-shape
lists of typed fields.  A sedes pairs a Python value with its RLP byte form
and validates on decode, so malformed on-chain data is rejected at the
boundary instead of surfacing as deep type errors.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Sequence, TypeVar

from .codec import Item, RLPError, decode, decode_int, encode, encode_int

__all__ = [
    "Sedes",
    "big_endian_int",
    "binary",
    "Binary",
    "address_bytes",
    "hash32",
    "CountableList",
    "ListSedes",
    "serialize",
    "deserialize",
]

T = TypeVar("T")


class Sedes(Generic[T]):
    """Bidirectional converter between Python values and RLP items."""

    def serialize(self, value: T) -> Item:
        raise NotImplementedError

    def deserialize(self, item: Item) -> T:
        raise NotImplementedError


class BigEndianInt(Sedes[int]):
    """Non-negative integer with optional byte-width bound."""

    def __init__(self, max_bytes: int | None = None) -> None:
        self._max_bytes = max_bytes

    def serialize(self, value: int) -> Item:
        if not isinstance(value, int) or isinstance(value, bool):
            raise RLPError(f"expected int, got {type(value).__name__}")
        raw = encode_int(value)
        if self._max_bytes is not None and len(raw) > self._max_bytes:
            raise RLPError(f"integer {value} exceeds {self._max_bytes} bytes")
        return raw

    def deserialize(self, item: Item) -> int:
        if not isinstance(item, bytes):
            raise RLPError("expected RLP string for integer field")
        if self._max_bytes is not None and len(item) > self._max_bytes:
            raise RLPError(f"integer field exceeds {self._max_bytes} bytes")
        return decode_int(item)


class Binary(Sedes[bytes]):
    """Byte string with optional exact or bounded length."""

    def __init__(self, exact: int | None = None, max_length: int | None = None) -> None:
        self._exact = exact
        self._max_length = max_length

    def serialize(self, value: bytes) -> Item:
        if not isinstance(value, (bytes, bytearray)):
            raise RLPError(f"expected bytes, got {type(value).__name__}")
        value = bytes(value)
        self._check(value)
        return value

    def deserialize(self, item: Item) -> bytes:
        if not isinstance(item, bytes):
            raise RLPError("expected RLP string for binary field")
        self._check(item)
        return item

    def _check(self, value: bytes) -> None:
        if self._exact is not None and len(value) != self._exact:
            raise RLPError(f"expected exactly {self._exact} bytes, got {len(value)}")
        if self._max_length is not None and len(value) > self._max_length:
            raise RLPError(f"expected at most {self._max_length} bytes, got {len(value)}")


class CountableList(Sedes[list]):
    """Homogeneous variable-length list of a given element sedes."""

    def __init__(self, element: Sedes) -> None:
        self._element = element

    def serialize(self, value: Sequence) -> Item:
        return [self._element.serialize(v) for v in value]

    def deserialize(self, item: Item) -> list:
        if not isinstance(item, list):
            raise RLPError("expected RLP list")
        return [self._element.deserialize(v) for v in item]


class ListSedes(Sedes[tuple]):
    """Fixed-shape heterogeneous list (a struct)."""

    def __init__(self, *fields: Sedes) -> None:
        self._fields = fields

    def serialize(self, value: Sequence) -> Item:
        if len(value) != len(self._fields):
            raise RLPError(
                f"expected {len(self._fields)} fields, got {len(value)}"
            )
        return [f.serialize(v) for f, v in zip(self._fields, value)]

    def deserialize(self, item: Item) -> tuple:
        if not isinstance(item, list):
            raise RLPError("expected RLP list")
        if len(item) != len(self._fields):
            raise RLPError(
                f"expected {len(self._fields)} fields, got {len(item)}"
            )
        return tuple(f.deserialize(v) for f, v in zip(self._fields, item))


big_endian_int = BigEndianInt()
binary = Binary()
address_bytes = Binary(exact=20)
hash32 = Binary(exact=32)


def serialize(sedes: Sedes[T], value: T) -> bytes:
    """Encode ``value`` through ``sedes`` straight to RLP bytes."""
    return encode(sedes.serialize(value))


def deserialize(sedes: Sedes[T], data: bytes) -> T:
    """Decode RLP bytes through ``sedes`` back to a Python value."""
    return sedes.deserialize(decode(data))
