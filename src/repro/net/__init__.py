"""Discrete-event simulated network (latency, loss, partitions, timeouts)."""

from .latency import FixedLatency, LatencyModel, PairwiseLatency, UniformLatency
from .network import NetworkError, NetworkStats, SimNetwork
from .simclock import SimClock
from .transport import EndpointTimeout, SimEndpoint, SimServerBinding

__all__ = [
    "SimClock",
    "SimNetwork",
    "NetworkError",
    "NetworkStats",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PairwiseLatency",
    "SimEndpoint",
    "SimServerBinding",
    "EndpointTimeout",
]
