"""Discrete-event simulated network (latency, loss, partitions, timeouts),
plus the futures-based endpoint transport (submit, wait_any, hedged races)."""

from .futures import (
    EndpointTimeout,
    ExponentialBackoff,
    PendingReply,
    ReplyCancelled,
    as_completed,
    wait_all,
    wait_any,
)
from .latency import FixedLatency, LatencyModel, PairwiseLatency, UniformLatency
from .network import LinkStats, NetworkError, NetworkStats, SimNetwork
from .simclock import SimClock
from .transport import RemoteError, SimEndpoint, SimServerBinding

__all__ = [
    "SimClock",
    "SimNetwork",
    "NetworkError",
    "NetworkStats",
    "LinkStats",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PairwiseLatency",
    "SimEndpoint",
    "SimServerBinding",
    "EndpointTimeout",
    "ReplyCancelled",
    "RemoteError",
    "PendingReply",
    "ExponentialBackoff",
    "wait_any",
    "wait_all",
    "as_completed",
]
