"""Correlated reply futures — the non-blocking half of the endpoint API.

A :class:`PendingReply` is the client-side handle for one in-flight request:
``submit(method, *args)`` on a transport returns immediately, and the reply
resolves later when the network's event loop delivers the correlated
response (or the caller cancels it, or the synchrony bound passes).  The
:func:`wait_any` / :func:`wait_all` combinators drive the simulated event
loop until the first/all of a set of replies arrive, which is what lets N
requests to M servers genuinely overlap under deterministic simulated time
— the prerequisite for hedged queries and first-valid-response failover.

This module is deliberately free of PARP imports: the transport layer maps
remote failures onto exceptions *before* resolving a reply, so a future
only ever carries opaque values and exceptions.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "EndpointTimeout",
    "ReplyCancelled",
    "PendingReply",
    "ExponentialBackoff",
    "wait_any",
    "wait_all",
    "as_completed",
]

#: fallback synchrony bound when a reply carries no per-endpoint timeout.
DEFAULT_TIMEOUT = 10.0

# Reply lifecycle.  A reply resolves exactly once: value, error, or cancel.
_PENDING = "pending"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"

#: driver signature: ``driver(keep_running_predicate, timeout) -> bool`` —
#: the shape of :meth:`repro.net.network.SimNetwork.run_while`.
Driver = Callable[[Callable[[], bool], float], bool]


class EndpointTimeout(Exception):
    """No reply within the synchrony bound — the hsTimer fired."""


class ReplyCancelled(Exception):
    """The caller abandoned this request before a reply arrived."""


class PendingReply:
    """A future for one submitted request.

    Resolved by the transport when the correlated reply is delivered
    (:meth:`set_result` / :meth:`set_exception`), or by the caller via
    :meth:`cancel`.  Every reply resolves **exactly once**; late transitions
    are ignored (and reported back to the transport via the return value so
    it can count late deliveries).
    """

    def __init__(self, method: str = "", target: str = "",
                 driver: Optional[Driver] = None,
                 default_timeout: Optional[float] = None,
                 canceller: Optional[Callable[[], Any]] = None) -> None:
        self.method = method
        self.target = target
        self._driver = driver
        self._default_timeout = (default_timeout if default_timeout is not None
                                 else DEFAULT_TIMEOUT)
        self._canceller = canceller
        self._state = _PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["PendingReply"], None]] = []
        # Resolution may race a waiting thread when the endpoint is driven
        # from another thread; the lock keeps "exactly once" exact.
        self._lock = threading.Lock()

    # -- constructors for already-settled replies -------------------------- #

    @classmethod
    def completed(cls, value: Any, method: str = "",
                  target: str = "") -> "PendingReply":
        """A reply that resolved at submit time (in-process endpoints)."""
        reply = cls(method=method, target=target)
        reply.set_result(value)
        return reply

    @classmethod
    def failed(cls, exc: BaseException, method: str = "",
               target: str = "") -> "PendingReply":
        """A reply that failed at submit time (in-process endpoints)."""
        reply = cls(method=method, target=target)
        reply.set_exception(exc)
        return reply

    # -- inspection -------------------------------------------------------- #

    def done(self) -> bool:
        """Whether the reply has resolved (value, error, or cancel)."""
        return self._state is not _PENDING

    @property
    def ok(self) -> bool:
        """Resolved with a value (False while pending or on error/cancel)."""
        return self._state is _DONE

    def cancelled(self) -> bool:
        return self._state is _CANCELLED

    @property
    def state(self) -> str:
        return self._state

    # -- waiting ----------------------------------------------------------- #

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Drive the event loop until resolved or ``timeout`` sim-seconds
        pass; returns :meth:`done`.  A driverless pending reply (nothing
        can ever resolve it) returns immediately."""
        if self.done() or self._driver is None:
            return self.done()
        bound = timeout if timeout is not None else self._default_timeout
        self._driver(lambda: not self.done(), bound)
        return self.done()

    def result(self, timeout: Optional[float] = None) -> Any:
        """The reply's value; waits (driving the loop) while pending.

        Raises the resolved exception on a failed reply,
        :class:`ReplyCancelled` on a cancelled one, and
        :class:`EndpointTimeout` when the wait expires first.
        """
        if not self.wait(timeout):
            bound = timeout if timeout is not None else self._default_timeout
            raise EndpointTimeout(
                f"{self.method or 'request'} to {self.target or 'server'}: "
                f"no reply within {bound}s of simulated time"
            )
        if self._state is _CANCELLED:
            raise ReplyCancelled(
                f"{self.method or 'request'} to {self.target or 'server'} "
                "was cancelled"
            )
        if self._exception is not None:
            raise self._exception
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The resolved exception, or None (valid result, cancel, or still
        pending after the wait)."""
        self.wait(timeout)
        return self._exception

    # -- resolution (transport side) --------------------------------------- #

    def set_result(self, value: Any) -> bool:
        """Resolve with a value; False if already resolved (late reply)."""
        return self._settle(_DONE, value=value)

    def set_exception(self, exc: BaseException) -> bool:
        """Resolve with an error; False if already resolved (late reply)."""
        return self._settle(_FAILED, exc=exc)

    def cancel(self) -> bool:
        """Abandon the request; True only if it was still in flight.

        The transport's canceller runs first so a reply that arrives after
        cancellation is dropped instead of resolving a correlation the
        caller no longer owns.
        """
        settled = self._settle(_CANCELLED)
        if settled and self._canceller is not None:
            self._canceller()
        return settled

    def add_done_callback(self, fn: Callable[["PendingReply"], None]) -> None:
        """Run ``fn(reply)`` on resolution; immediately if already resolved."""
        with self._lock:
            if self._state is _PENDING:
                self._callbacks.append(fn)
                return
        fn(self)

    def _settle(self, state: str, value: Any = None,
                exc: Optional[BaseException] = None) -> bool:
        with self._lock:
            if self._state is not _PENDING:
                return False
            self._state = state
            self._value = value
            self._exception = exc
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)
        return True

    def __repr__(self) -> str:
        return (f"PendingReply({self.method or '?'}→{self.target or '?'}, "
                f"{self._state})")


class ExponentialBackoff:
    """Deterministic jittered exponential backoff.

    ``delay(attempt)`` for attempt 1, 2, 3… grows as ``base × factor^(n-1)``
    capped at ``cap``, with ±``jitter`` (a fraction of the raw delay) applied
    from an RNG stream derived from ``(seed, attempt)`` — the same attempt
    number always yields the same delay for a given seed, so retry schedules
    reproduce run-to-run while still decorrelating across seeds (give each
    retrying party its own seed and synchronized clients don't re-converge
    into the thundering herd the jitter exists to break up).
    """

    def __init__(self, base: float = 0.1, factor: float = 2.0,
                 cap: float = 10.0, jitter: float = 0.5,
                 seed: int = 0) -> None:
        if base < 0 or factor < 1.0 or cap < base:
            raise ValueError("backoff needs base ≥ 0, factor ≥ 1, cap ≥ base")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.jitter = jitter
        self.seed = seed

    def delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-indexed; values < 1 clamp to 1)."""
        n = max(1, int(attempt))
        raw = min(self.cap, self.base * self.factor ** (n - 1))
        if not self.jitter or not raw:
            return raw
        rng = random.Random(f"backoff|{self.seed}|{n}")
        spread = self.jitter * raw
        return max(0.0, raw - spread + 2.0 * spread * rng.random())


# ---------------------------------------------------------------------- #
# Combinators
# ---------------------------------------------------------------------- #


def _driver_key(driver: Driver) -> tuple:
    """Identity of the event loop behind a driver.

    Drivers are typically fresh bound methods of one network
    (``network.run_while``), so compare by the bound owner + function, not
    by the method object (whose ``id`` differs per ``submit``).
    """
    owner = getattr(driver, "__self__", None)
    if owner is not None:
        return (id(owner), getattr(driver, "__func__", None))
    return (id(driver), None)


def _driver_groups(replies: Sequence[PendingReply],
                   ) -> list[tuple[Driver, list[PendingReply]]]:
    """Unresolved replies grouped by their event loop.

    Replies of one simulated network share one loop, so there is normally a
    single group — but replies spanning several networks each get their own
    loop driven (sequentially; each network's simulated time is its own
    universe), instead of every foreign reply being misread as a timeout.
    """
    groups: dict[tuple, tuple[Driver, list[PendingReply]]] = {}
    for reply in replies:
        if not reply.done() and reply._driver is not None:
            _, members = groups.setdefault(_driver_key(reply._driver),
                                           (reply._driver, []))
            members.append(reply)
    return list(groups.values())


def _default_bound(replies: Sequence[PendingReply]) -> float:
    bounds = [reply._default_timeout for reply in replies]
    return max(bounds) if bounds else DEFAULT_TIMEOUT


def wait_any(replies: Iterable[PendingReply],
             timeout: Optional[float] = None) -> Optional[PendingReply]:
    """Drive the event loop(s) until the first reply resolves.

    Returns the first resolved reply (an already-resolved one wins without
    advancing time), or None when ``timeout`` simulated seconds pass with
    every reply still in flight.
    """
    replies = list(replies)
    for reply in replies:
        if reply.done():
            return reply
    bound = timeout if timeout is not None else _default_bound(replies)
    for driver, _ in _driver_groups(replies):
        driver(lambda: not any(reply.done() for reply in replies), bound)
        for reply in replies:
            if reply.done():
                return reply
    return None


def wait_all(replies: Iterable[PendingReply],
             timeout: Optional[float] = None) -> bool:
    """Drive the event loop(s) until every reply resolves.

    Returns True when all resolved within ``timeout`` simulated seconds
    (cancellations count as resolved — the point is "nothing still in
    flight", not "everything succeeded").
    """
    replies = list(replies)
    bound = timeout if timeout is not None else _default_bound(replies)
    for driver, members in _driver_groups(replies):
        # scope the predicate to this driver's own replies: a loop cannot
        # resolve another network's futures, so waiting on them here would
        # just burn the whole bound before the right loop gets its turn
        driver(lambda: not all(reply.done() for reply in members), bound)
    return all(reply.done() for reply in replies)


def as_completed(replies: Iterable[PendingReply],
                 timeout: Optional[float] = None):
    """Yield replies in resolution order, driving their event loop(s).

    The multi-leg collection primitive: a scatter-gather caller hands over
    the legs' futures and processes each as it lands, instead of blocking
    head-of-line on the slowest leg.  Stops (without raising) when a full
    ``timeout`` window passes with every remaining reply still in flight —
    the leftovers stay pending for the caller to cancel, retry elsewhere,
    or report as a partial failure.
    """
    remaining = list(replies)
    while remaining:
        resolved = [reply for reply in remaining if reply.done()]
        if not resolved:
            if wait_any(remaining, timeout=timeout) is None:
                return
            resolved = [reply for reply in remaining if reply.done()]
        for reply in resolved:
            remaining.remove(reply)
            yield reply
