"""PARP over the simulated network.

Two layers bridge :class:`~repro.parp.client.ServerEndpoint` to message
passing:

* **Non-blocking transport** — :meth:`SimEndpoint.submit` turns an endpoint
  call into a request event and returns a
  :class:`~repro.net.futures.PendingReply` immediately; the reply resolves
  when the correlated response event is delivered.  N submits to M servers
  can be in flight at once, and :func:`~repro.net.futures.wait_any` /
  :func:`~repro.net.futures.wait_all` race them under simulated time.
* **Blocking facade** — the classic ``ServerEndpoint`` methods are thin
  submit-then-wait adapters over the futures, preserving the original
  synchronous contract (a timeout is how Algorithm 1's ``hsTimer`` and
  general strong-synchrony violations surface).

Server-side failures travel back *typed*: the binding tags every error
reply with the exception's class name, so the client maps serve-layer
errors to :class:`~repro.parp.server.ServeError` and anything else to
:class:`RemoteError` — no string matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Optional

from ..chain.header import BlockHeader
from ..crypto.keys import Address
from ..parp.handshake import Handshake, HandshakeConfirm, OpenChannelReceipt
from ..parp.server import FullNodeServer, ServeError
from .futures import DEFAULT_TIMEOUT, EndpointTimeout, PendingReply, ReplyCancelled
from .network import SimNetwork

__all__ = [
    "EndpointTimeout",
    "ReplyCancelled",
    "RemoteError",
    "SimServerBinding",
    "SimEndpoint",
]


class RemoteError(ServeError):
    """A non-serve-layer exception escaped the remote handler.

    ``remote_type`` carries the server-side exception class name, so client
    code can branch on the *kind* of failure without parsing messages.
    (Subclasses :class:`ServeError` because, to the protocol, an unhandled
    server bug is still "the server failed to produce a signed response".)
    """

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}" if remote_type else message)
        self.remote_type = remote_type


@dataclass
class _Call:
    request_id: int
    method: str
    args: tuple


@dataclass
class _Reply:
    request_id: int
    ok: bool
    value: Any
    error_kind: str = ""  # exception class name for failed calls


def _remote_exception(kind: str, message: str) -> ServeError:
    """Map a tagged error reply onto a typed client-side exception."""
    if not kind or kind == "ServeError":
        return ServeError(message)
    return RemoteError(kind, message)


class SimServerBinding:
    """Network-facing wrapper around a :class:`FullNodeServer`."""

    #: endpoint methods a remote client may invoke
    _ALLOWED = frozenset({
        "handshake", "open_channel", "serve_request", "relay_transaction",
        "get_transaction_count", "serve_header", "serve_head_number",
        "serve_bootstrap", "serve_updates_range",
        "serve_batch", "batch_protocol_version", "shard_info", "load_info",
    })

    def __init__(self, network: SimNetwork, name: str,
                 server: FullNodeServer) -> None:
        self.network = network
        self.name = name
        self.server = server
        #: when True the node silently ignores traffic (crash/fail-stop tests)
        self.offline = False
        network.register(name, self)

    def on_message(self, src: str, payload: Any) -> None:
        if self.offline or not isinstance(payload, _Call):
            return
        if payload.method not in self._ALLOWED:
            reply = _Reply(payload.request_id, False,
                           f"unknown endpoint method {payload.method}",
                           "ServeError")
        else:
            try:
                value = getattr(self.server, payload.method)(*payload.args)
                reply = _Reply(payload.request_id, True, value)
            except ServeError as exc:
                # the serve layer rejected the request: an expected,
                # attributable protocol outcome
                reply = _Reply(payload.request_id, False, str(exc), "ServeError")
            except Exception as exc:  # noqa: BLE001 — faithful RPC edge: an
                # unhandled server bug must surface to the client as a typed
                # remote failure, not kill the event loop
                reply = _Reply(payload.request_id, False, str(exc),
                               type(exc).__name__)
        # Admission-controlled servers model a queueing+service delay for
        # each admitted request; materialize it by scheduling the reply that
        # far into simulated time, so under load responses observably wait
        # behind the backlog instead of returning instantly.
        delay = self._consume_service_delay()
        if delay > 0:
            self.network.schedule(
                delay,
                lambda: self.network.send(self.name, src, reply,
                                          size_bytes=_reply_size(reply)),
            )
            return
        self.network.send(self.name, src, reply, size_bytes=_reply_size(reply))

    def _consume_service_delay(self) -> float:
        consume = getattr(self.server, "consume_service_delay", None)
        if consume is None:
            return 0.0
        return consume()


class SimEndpoint:
    """Client-side endpoint facade.

    Implements both the non-blocking :meth:`submit` transport contract and
    the blocking ``ServerEndpoint`` protocol (as submit-then-wait adapters).
    """

    def __init__(self, network: SimNetwork, name: str, server_name: str,
                 server_address: Address,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.network = network
        self.name = name
        self.server_name = server_name
        self._address = server_address
        self.timeout = timeout
        self._ids = count(1)
        #: in-flight correlations: request id → unresolved future
        self._pending: dict[int, PendingReply] = {}
        #: replies that arrived after their future was cancelled/timed out
        self.late_replies = 0
        network.register(name, self)

    @property
    def address(self) -> Address:
        return self._address

    @property
    def in_flight(self) -> int:
        """How many submitted requests are still awaiting their reply."""
        return len(self._pending)

    def on_message(self, src: str, payload: Any) -> None:
        if not isinstance(payload, _Reply):
            return
        pending = self._pending.pop(payload.request_id, None)
        if pending is None:
            # cancelled, timed out, or never ours: correlation is gone
            self.late_replies += 1
            return
        if payload.ok:
            pending.set_result(payload.value)
        else:
            pending.set_exception(
                _remote_exception(payload.error_kind, str(payload.value)))

    # -- the non-blocking transport --------------------------------------- #

    def submit(self, method: str, *args: Any,
               timeout: Optional[float] = None) -> PendingReply:
        """Issue ``method(*args)`` and return its future immediately.

        The reply resolves when the network delivers the correlated
        response; drive the loop via ``reply.result()``,
        :func:`~repro.net.futures.wait_any`, or ``network.run_until``.
        """
        request_id = next(self._ids)
        call = _Call(request_id, method, args)
        reply = PendingReply(
            method=method, target=self.server_name,
            driver=self.network.run_while,
            default_timeout=timeout if timeout is not None else self.timeout,
            canceller=lambda: self._pending.pop(request_id, None),
        )
        self._pending[request_id] = reply
        self.network.send(self.name, self.server_name, call,
                          size_bytes=_call_size(call))
        return reply

    # -- the blocking facade (submit-then-wait) ---------------------------- #

    def _invoke(self, method: str, *args: Any) -> Any:
        reply = self.submit(method, *args)
        try:
            return reply.result()
        except EndpointTimeout:
            # drop the correlation so a reply limping in later is discarded
            # instead of resolving a future nobody is holding
            reply.cancel()
            raise

    # -- ServerEndpoint protocol -------------------------------------------- #

    def handshake(self, msg: Handshake) -> HandshakeConfirm:
        return self._invoke("handshake", msg)

    def open_channel(self, raw_tx: bytes) -> OpenChannelReceipt:
        return self._invoke("open_channel", raw_tx)

    def serve_request(self, wire: bytes) -> bytes:
        return self._invoke("serve_request", wire)

    def serve_batch(self, wire: bytes) -> bytes:
        return self._invoke("serve_batch", wire)

    def batch_protocol_version(self) -> int:
        return self._invoke("batch_protocol_version")

    def shard_info(self):
        return self._invoke("shard_info")

    def load_info(self) -> dict:
        return self._invoke("load_info")

    def relay_transaction(self, raw_tx: bytes) -> bytes:
        return self._invoke("relay_transaction", raw_tx)

    def get_transaction_count(self, address: Address) -> int:
        return self._invoke("get_transaction_count", address)

    def serve_header(self, number: int) -> Optional[BlockHeader]:
        return self._invoke("serve_header", number)

    def serve_head_number(self) -> int:
        return self._invoke("serve_head_number")

    def serve_bootstrap(self, checkpoint_hash: bytes) -> Optional[BlockHeader]:
        return self._invoke("serve_bootstrap", checkpoint_hash)

    def serve_updates_range(self, start: int, count: int) -> list[BlockHeader]:
        return self._invoke("serve_updates_range", start, count)


def _call_size(call: _Call) -> int:
    size = 40  # envelope
    for arg in call.args:
        if isinstance(arg, (bytes, bytearray)):
            size += len(arg)
        elif isinstance(arg, Handshake):
            size += 20
        else:
            size += 32
    return size


def _reply_size(reply: _Reply) -> int:
    value = reply.value
    if isinstance(value, (bytes, bytearray)):
        return 40 + len(value)
    if isinstance(value, HandshakeConfirm):
        return 40 + 20 + 8 + 65
    if isinstance(value, OpenChannelReceipt):
        return 40 + 16 + 65
    if isinstance(value, BlockHeader):
        return 40 + len(value.encode())
    if isinstance(value, (list, tuple)) and value \
            and all(isinstance(v, BlockHeader) for v in value):
        return 40 + sum(len(v.encode()) for v in value)  # UpdatesByRange page
    return 72
