"""PARP over the simulated network.

Bridges the synchronous :class:`~repro.parp.client.ServerEndpoint` interface
to message passing: each endpoint call becomes a request event, the server
binding processes it on delivery, and the client facade drives the event
loop until the correlated reply lands (or a timeout passes — which is how
Algorithm 1's ``hsTimer`` and general strong-synchrony violations surface).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Optional

from ..chain.header import BlockHeader
from ..crypto.keys import Address
from ..parp.handshake import Handshake, HandshakeConfirm, OpenChannelReceipt
from ..parp.server import FullNodeServer, ServeError
from .network import SimNetwork

__all__ = ["EndpointTimeout", "SimServerBinding", "SimEndpoint"]

DEFAULT_TIMEOUT = 10.0


class EndpointTimeout(Exception):
    """No reply within the synchrony bound — the hsTimer fired."""


@dataclass
class _Call:
    request_id: int
    method: str
    args: tuple


@dataclass
class _Reply:
    request_id: int
    ok: bool
    value: Any


class SimServerBinding:
    """Network-facing wrapper around a :class:`FullNodeServer`."""

    #: endpoint methods a remote client may invoke
    _ALLOWED = frozenset({
        "handshake", "open_channel", "serve_request", "relay_transaction",
        "get_transaction_count", "serve_header", "serve_head_number",
        "serve_batch", "batch_protocol_version",
    })

    def __init__(self, network: SimNetwork, name: str,
                 server: FullNodeServer) -> None:
        self.network = network
        self.name = name
        self.server = server
        #: when True the node silently ignores traffic (crash/fail-stop tests)
        self.offline = False
        network.register(name, self)

    def on_message(self, src: str, payload: Any) -> None:
        if self.offline or not isinstance(payload, _Call):
            return
        if payload.method not in self._ALLOWED:
            reply = _Reply(payload.request_id, False,
                           f"unknown endpoint method {payload.method}")
        else:
            try:
                value = getattr(self.server, payload.method)(*payload.args)
                reply = _Reply(payload.request_id, True, value)
            except (ServeError, Exception) as exc:  # noqa: BLE001 — faithful RPC edge
                reply = _Reply(payload.request_id, False, str(exc))
        self.network.send(self.name, src, reply, size_bytes=_reply_size(reply))


class SimEndpoint:
    """Client-side endpoint facade (implements ``ServerEndpoint``)."""

    def __init__(self, network: SimNetwork, name: str, server_name: str,
                 server_address: Address,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.network = network
        self.name = name
        self.server_name = server_name
        self._address = server_address
        self.timeout = timeout
        self._ids = count(1)
        self._inbox: dict[int, _Reply] = {}
        network.register(name, self)

    @property
    def address(self) -> Address:
        return self._address

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, _Reply):
            self._inbox[payload.request_id] = payload

    # -- the synchronous facade ------------------------------------------- #

    def _invoke(self, method: str, *args: Any) -> Any:
        request_id = next(self._ids)
        call = _Call(request_id, method, args)
        self.network.send(self.name, self.server_name, call,
                          size_bytes=_call_size(call))
        arrived = self.network.run_while(
            lambda: request_id not in self._inbox, timeout=self.timeout,
        )
        if not arrived:
            raise EndpointTimeout(
                f"{method} to {self.server_name}: no reply within "
                f"{self.timeout}s of simulated time"
            )
        reply = self._inbox.pop(request_id)
        if not reply.ok:
            raise ServeError(str(reply.value))
        return reply.value

    # -- ServerEndpoint protocol -------------------------------------------- #

    def handshake(self, msg: Handshake) -> HandshakeConfirm:
        return self._invoke("handshake", msg)

    def open_channel(self, raw_tx: bytes) -> OpenChannelReceipt:
        return self._invoke("open_channel", raw_tx)

    def serve_request(self, wire: bytes) -> bytes:
        return self._invoke("serve_request", wire)

    def serve_batch(self, wire: bytes) -> bytes:
        return self._invoke("serve_batch", wire)

    def batch_protocol_version(self) -> int:
        return self._invoke("batch_protocol_version")

    def relay_transaction(self, raw_tx: bytes) -> bytes:
        return self._invoke("relay_transaction", raw_tx)

    def get_transaction_count(self, address: Address) -> int:
        return self._invoke("get_transaction_count", address)

    def serve_header(self, number: int) -> Optional[BlockHeader]:
        return self._invoke("serve_header", number)

    def serve_head_number(self) -> int:
        return self._invoke("serve_head_number")


def _call_size(call: _Call) -> int:
    size = 40  # envelope
    for arg in call.args:
        if isinstance(arg, (bytes, bytearray)):
            size += len(arg)
        elif isinstance(arg, Handshake):
            size += 20
        else:
            size += 32
    return size


def _reply_size(reply: _Reply) -> int:
    value = reply.value
    if isinstance(value, (bytes, bytearray)):
        return 40 + len(value)
    if isinstance(value, HandshakeConfirm):
        return 40 + 20 + 8 + 65
    if isinstance(value, OpenChannelReceipt):
        return 40 + 16 + 65
    if isinstance(value, BlockHeader):
        return 40 + len(value.encode())
    return 72
