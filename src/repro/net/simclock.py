"""Simulated time for the discrete-event network.

The paper assumes a strong synchrony model (§IV-D): messages between honest
parties arrive within a bounded delay.  A deterministic simulated clock lets
tests and benchmarks exercise timeouts (the handshake ``hsTimer`` of
Algorithm 1, liveness probe periods) without real sleeping.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotonically advancing simulated clock (seconds as float)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError("time cannot go backwards")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind the clock from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def __call__(self) -> float:
        """Clock objects are usable wherever a ``clock()`` callable is taken."""
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f})"
