"""Link latency models for the simulated network."""

from __future__ import annotations

import random
from typing import Optional, Protocol

__all__ = ["LatencyModel", "FixedLatency", "UniformLatency", "PairwiseLatency"]


class LatencyModel(Protocol):
    """Delay (in simulated seconds) for a message from ``src`` to ``dst``."""

    def delay(self, src: str, dst: str, size_bytes: int) -> float: ...


class FixedLatency:
    """Constant propagation delay plus optional per-byte transfer time."""

    def __init__(self, seconds: float = 0.01,
                 bytes_per_second: Optional[float] = None) -> None:
        self.seconds = seconds
        self.bytes_per_second = bytes_per_second

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        transfer = (size_bytes / self.bytes_per_second
                    if self.bytes_per_second else 0.0)
        return self.seconds + transfer


class UniformLatency:
    """Uniformly jittered delay in [low, high] (seeded, deterministic).

    Jitter is drawn from an independent RNG stream **per directed link**,
    each seeded from ``(seed, src, dst)``.  A single shared stream would
    make every link's delays depend on the global interleaving of sends —
    adding one unrelated message anywhere reshuffles every subsequent draw,
    so backoff/retry tests and open-loop benchmark runs would not reproduce.
    With per-link streams the n-th message on a given link always sees the
    same delay for a given seed, regardless of traffic elsewhere.
    """

    def __init__(self, low: float = 0.005, high: float = 0.05,
                 seed: int = 0) -> None:
        if low > high:
            raise ValueError("low latency bound exceeds high bound")
        self.low = low
        self.high = high
        self.seed = seed
        self._links: dict[tuple[str, str], random.Random] = {}

    def _link_rng(self, src: str, dst: str) -> random.Random:
        rng = self._links.get((src, dst))
        if rng is None:
            # string seeding is stable across processes and Python runs
            # (unlike hash(), which is salted per-interpreter)
            rng = random.Random(f"{self.seed}|{src}->{dst}")
            self._links[(src, dst)] = rng
        return rng

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        return self._link_rng(src, dst).uniform(self.low, self.high)


class PairwiseLatency:
    """Explicit per-link delays (e.g. a geo-distributed topology)."""

    def __init__(self, links: dict[tuple[str, str], float],
                 default: float = 0.05) -> None:
        self.links = dict(links)
        self.default = default

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        if (src, dst) in self.links:
            return self.links[(src, dst)]
        if (dst, src) in self.links:
            return self.links[(dst, src)]
        return self.default
