"""A deterministic discrete-event message network.

Nodes register under a name; ``send`` schedules delivery after the link
latency; ``run_until`` drains the event heap up to a simulated deadline.
Supports message loss (per-link or global drop rates) and partitions, which
the integration tests use to exercise PARP's timeout and fail-over paths.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Optional

from .latency import FixedLatency, LatencyModel
from .simclock import SimClock

__all__ = ["NetworkError", "SimNetwork", "NetworkStats", "LinkStats"]


class NetworkError(Exception):
    """Raised on misuse of the simulated network (unknown node, etc.)."""


@dataclass
class LinkStats:
    """Traffic counters for one directed (src, dst) link."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0


@dataclass
class NetworkStats:
    """Aggregate traffic counters, plus a per-link breakdown.

    The per-link counters are what lets the hedged-query bench price the
    *redundant* traffic of fan-out (requests sent to losing servers) rather
    than just its wall-clock win.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    links: dict[tuple[str, str], LinkStats] = field(default_factory=dict)

    def link(self, src: str, dst: str) -> LinkStats:
        """Counters for the directed link ``src → dst`` (created lazily)."""
        key = (src, dst)
        stats = self.links.get(key)
        if stats is None:
            stats = self.links[key] = LinkStats()
        return stats


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class SimNetwork:
    """The event loop + topology."""

    def __init__(self, latency: Optional[LatencyModel] = None,
                 clock: Optional[SimClock] = None,
                 drop_rate: float = 0.0, seed: int = 0) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.latency = latency if latency is not None else FixedLatency(0.01)
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self._nodes: dict[str, Any] = {}
        self._events: list[_Event] = []
        self._seq = count()
        self._partitioned: set[frozenset[str]] = set()
        self._isolated: set[str] = set()
        self.stats = NetworkStats()

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def register(self, name: str, node: Any) -> None:
        """Attach a node; it must expose ``on_message(src, payload)``."""
        if name in self._nodes:
            raise NetworkError(f"node name {name!r} already registered")
        self._nodes[name] = node

    def deregister(self, name: str) -> None:
        """Detach a node.  Traffic already in flight toward it is dropped at
        delivery time, and new sends to it simply count as dropped — to the
        rest of the network a deregistered node is an unreachable host, not
        a programming error."""
        self._nodes.pop(name, None)

    def node(self, name: str) -> Any:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def partition(self, a: str, b: str) -> None:
        """Sever the link between two nodes (both directions)."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def isolate(self, name: str) -> None:
        """Sever every link of ``name`` at once (node-level partition) —
        what a crashed or net-split server looks like to everybody else."""
        self._isolated.add(name)

    def rejoin(self, name: str) -> None:
        self._isolated.discard(name)

    def is_reachable(self, src: str, dst: str) -> bool:
        """Whether a message from ``src`` would currently reach ``dst``."""
        if src in self._isolated or dst in self._isolated:
            return False
        return frozenset((src, dst)) not in self._partitioned

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, src: str, dst: str, payload: Any,
             size_bytes: Optional[int] = None) -> None:
        """Schedule delivery of ``payload`` from ``src`` to ``dst``.

        An unknown (never-registered or deregistered) destination behaves
        like an unreachable host: the message is counted and dropped, so
        clients hit their timeout path instead of crashing mid-failover.
        """
        link = self.stats.link(src, dst)
        self.stats.messages_sent += 1
        link.sent += 1
        size = size_bytes if size_bytes is not None else _estimate_size(payload)
        self.stats.bytes_sent += size
        link.bytes_sent += size
        if (dst not in self._nodes
                or not self.is_reachable(src, dst)
                or (self.drop_rate and self._rng.random() < self.drop_rate)):
            self.stats.messages_dropped += 1
            link.dropped += 1
            return
        delay = self.latency.delay(src, dst, size)

        def deliver() -> None:
            node = self._nodes.get(dst)
            if node is None:  # deregistered while the message was in flight
                self.stats.messages_dropped += 1
                link.dropped += 1
                return
            self.stats.messages_delivered += 1
            link.delivered += 1
            node.on_message(src, payload)

        self.schedule(delay, deliver)

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise NetworkError("cannot schedule in the past")
        heapq.heappush(
            self._events,
            _Event(self.clock.now() + delay, next(self._seq), action),
        )

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #

    def run_until(self, deadline: float) -> None:
        """Process events with time <= deadline; advances the clock."""
        while self._events and self._events[0].time <= deadline:
            event = heapq.heappop(self._events)
            self.clock.advance_to(event.time)
            event.action()
        self.clock.advance_to(max(self.clock.now(), deadline))

    def run(self, max_events: int = 1_000_000) -> None:
        """Drain all pending events (bounded against runaway loops)."""
        processed = 0
        while self._events:
            event = heapq.heappop(self._events)
            self.clock.advance_to(event.time)
            event.action()
            processed += 1
            if processed >= max_events:
                raise NetworkError(f"exceeded {max_events} events; livelock?")

    def run_while(self, predicate: Callable[[], bool],
                  timeout: float = 60.0) -> bool:
        """Run while ``predicate()`` holds; returns False on sim-timeout."""
        deadline = self.clock.now() + timeout
        while predicate():
            if not self._events or self._events[0].time > deadline:
                self.clock.advance_to(deadline)
                return not predicate()
            event = heapq.heappop(self._events)
            self.clock.advance_to(event.time)
            event.action()
        return True

    @property
    def pending_events(self) -> int:
        return len(self._events)


def _estimate_size(payload: Any) -> int:
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if hasattr(payload, "wire_size"):
        return int(payload.wire_size)
    return 128  # envelope estimate for structured messages
