"""Traffic-share analysis for Table I (§II-B centralization study).

The pipeline mirrors the paper's: take per-dApp JSON-RPC call records,
map each call's endpoint to a provider, count *distinct dApps* per provider
(a dApp may use several providers), and express shares over the 383
frontend-RPC dApps.  Runs on real or synthetic record sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.dapp_traffic import PUBLISHED_SHARES, RpcCallRecord, TOTAL_RPC_DAPPS

__all__ = ["ProviderShare", "compute_traffic_shares", "compare_with_published"]


@dataclass(frozen=True)
class ProviderShare:
    """One provider's measured share."""

    provider: str
    dapps: int
    total_dapps: int
    share: float

    def format_paper_style(self) -> str:
        """Render like Table I: '182/383 (47.52%)'."""
        return f"{self.dapps}/{self.total_dapps} ({self.share * 100:.2f}%)"


def compute_traffic_shares(records: list[RpcCallRecord],
                           total_dapps: int = TOTAL_RPC_DAPPS) -> list[ProviderShare]:
    """Distinct-dApp counts per provider, sorted by descending share."""
    dapps_by_provider: dict[str, set[int]] = {}
    for record in records:
        dapps_by_provider.setdefault(record.provider, set()).add(record.dapp_id)
    shares = [
        ProviderShare(
            provider=provider,
            dapps=len(dapps),
            total_dapps=total_dapps,
            share=len(dapps) / total_dapps,
        )
        for provider, dapps in dapps_by_provider.items()
    ]
    return sorted(shares, key=lambda s: s.share, reverse=True)


def compare_with_published(shares: list[ProviderShare]) -> list[tuple[str, float, float, float]]:
    """(provider, measured %, published %, abs diff in points) rows."""
    rows = []
    published = {p: pct for p, (_, pct) in PUBLISHED_SHARES.items()}
    for share in shares:
        paper = published.get(share.provider)
        if paper is None:
            continue
        rows.append((
            share.provider,
            round(share.share * 100, 2),
            round(paper * 100, 2),
            round(abs(share.share - paper) * 100, 2),
        ))
    return rows
