"""Analyses behind the paper's motivation section (Table I)."""

from .providers import PROVIDER_PROFILES, ProviderProfile
from .traffic import ProviderShare, compare_with_published, compute_traffic_shares

__all__ = [
    "PROVIDER_PROFILES",
    "ProviderProfile",
    "ProviderShare",
    "compute_traffic_shares",
    "compare_with_published",
]
