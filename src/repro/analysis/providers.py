"""The node-provider feature matrix of Table I (§II-C survey).

The paper inspects five top providers' registration requirements, pricing,
and payment methods ("all the data was collected before December 2024").
This is cited survey data, reproduced as structured constants so the
Table I bench can render the matrix next to the measured traffic shares.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProviderProfile", "PROVIDER_PROFILES"]


@dataclass(frozen=True)
class ProviderProfile:
    """One provider row of Table I."""

    name: str
    free_public_no_signup: bool
    login_via_wallet: bool          # wallet-based identity supported
    signup_email: bool              # email required at sign-up
    signup_full_name: bool
    signup_org_name: bool
    call_based_pricing: bool
    plan_tiers: int
    free_usage: str                 # provider-defined free-tier metric
    pays_credit_card: bool
    pays_crypto: bool
    notes: str = ""


PROVIDER_PROFILES: dict[str, ProviderProfile] = {
    "infura": ProviderProfile(
        name="Infura", free_public_no_signup=False, login_via_wallet=False,
        signup_email=True, signup_full_name=True, signup_org_name=False,
        call_based_pricing=False, plan_tiers=5,
        free_usage="3 million credits (daily)",
        pays_credit_card=True, pays_crypto=False,
    ),
    "alchemy": ProviderProfile(
        name="Alchemy", free_public_no_signup=False, login_via_wallet=False,
        signup_email=True, signup_full_name=True, signup_org_name=False,
        call_based_pricing=True, plan_tiers=4,
        free_usage="300 million compute units (monthly)",
        pays_credit_card=True, pays_crypto=False,
    ),
    "ankr": ProviderProfile(
        name="Ankr", free_public_no_signup=True, login_via_wallet=True,
        signup_email=False, signup_full_name=False, signup_org_name=False,
        call_based_pricing=False, plan_tiers=4,
        free_usage="30 requests (per sec)",
        pays_credit_card=True, pays_crypto=True,
        notes="wallets must have prior activity to be supported",
    ),
    "quicknode": ProviderProfile(
        name="Quicknode", free_public_no_signup=False, login_via_wallet=False,
        signup_email=True, signup_full_name=True, signup_org_name=True,
        call_based_pricing=True, plan_tiers=5,
        free_usage="10 million API credits (monthly)",
        pays_credit_card=True, pays_crypto=False,
    ),
    "chainstack": ProviderProfile(
        name="Chainstack", free_public_no_signup=False, login_via_wallet=False,
        signup_email=True, signup_full_name=True, signup_org_name=True,
        call_based_pricing=True, plan_tiers=4,
        free_usage="3 million request units (monthly)",
        pays_credit_card=True, pays_crypto=True,
    ),
}
