"""Pure-Python Keccak-256, the hash function used throughout Ethereum.

Ethereum uses *original* Keccak (multi-rate padding byte ``0x01``), not the
NIST-standardized SHA3-256 (padding byte ``0x06``), so :mod:`hashlib` cannot be
used directly.  This module implements the Keccak-f[1600] permutation and the
sponge construction from scratch.

The implementation favours clarity but applies the standard CPython speed
tricks (flat 25-lane state, precomputed rho/pi schedules, local-variable
binding inside the permutation loop) so that hashing remains fast enough for
Merkle-Patricia-trie workloads of a few hundred transactions per block.

Example
-------
>>> keccak256(b"").hex()
'c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470'
"""

from __future__ import annotations

__all__ = ["keccak256", "Keccak256", "KECCAK_EMPTY", "KECCAK_EMPTY_RLP"]

_MASK64 = (1 << 64) - 1

_ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

# Rotation offsets for the rho step, indexed by flat lane index x + 5*y.
_ROTATIONS = (
    0, 1, 62, 28, 27,
    36, 44, 6, 55, 20,
    3, 10, 43, 25, 39,
    41, 45, 15, 21, 8,
    18, 2, 61, 56, 14,
)

# The pi step permutes lane (x, y) -> (y, 2x + 3y).  Precompute, for each
# destination lane index, which source lane feeds it after rho rotation.
_PI_SOURCE = [0] * 25
_PI_ROT = [0] * 25
for _x in range(5):
    for _y in range(5):
        _src = _x + 5 * _y
        _dst = _y + 5 * ((2 * _x + 3 * _y) % 5)
        _PI_SOURCE[_dst] = _src
        _PI_ROT[_dst] = _ROTATIONS[_src]
_PI_SOURCE = tuple(_PI_SOURCE)
_PI_ROT = tuple(_PI_ROT)

_RATE_BYTES = 136  # 1088-bit rate for Keccak-256 (capacity 512)


def _keccak_f1600(state: list[int]) -> None:
    """Apply the 24-round Keccak-f[1600] permutation to ``state`` in place.

    ``state`` is a flat list of 25 64-bit lanes, lane (x, y) at index x + 5y.
    """
    mask = _MASK64
    pi_source = _PI_SOURCE
    pi_rot = _PI_ROT
    for rc in _ROUND_CONSTANTS:
        # theta: column parities.
        c0 = state[0] ^ state[5] ^ state[10] ^ state[15] ^ state[20]
        c1 = state[1] ^ state[6] ^ state[11] ^ state[16] ^ state[21]
        c2 = state[2] ^ state[7] ^ state[12] ^ state[17] ^ state[22]
        c3 = state[3] ^ state[8] ^ state[13] ^ state[18] ^ state[23]
        c4 = state[4] ^ state[9] ^ state[14] ^ state[19] ^ state[24]
        d0 = c4 ^ (((c1 << 1) | (c1 >> 63)) & mask)
        d1 = c0 ^ (((c2 << 1) | (c2 >> 63)) & mask)
        d2 = c1 ^ (((c3 << 1) | (c3 >> 63)) & mask)
        d3 = c2 ^ (((c4 << 1) | (c4 >> 63)) & mask)
        d4 = c3 ^ (((c0 << 1) | (c0 >> 63)) & mask)
        for y in (0, 5, 10, 15, 20):
            state[y] ^= d0
            state[y + 1] ^= d1
            state[y + 2] ^= d2
            state[y + 3] ^= d3
            state[y + 4] ^= d4

        # rho + pi: rotate each lane and scatter into the permuted position.
        b = [0] * 25
        for dst in range(25):
            lane = state[pi_source[dst]]
            rot = pi_rot[dst]
            b[dst] = ((lane << rot) | (lane >> (64 - rot))) & mask if rot else lane

        # chi: non-linear row mixing.
        for y in (0, 5, 10, 15, 20):
            b0, b1, b2, b3, b4 = b[y], b[y + 1], b[y + 2], b[y + 3], b[y + 4]
            state[y] = b0 ^ (~b1 & b2)
            state[y + 1] = b1 ^ (~b2 & b3)
            state[y + 2] = b2 ^ (~b3 & b4)
            state[y + 3] = b3 ^ (~b4 & b0)
            state[y + 4] = b4 ^ (~b0 & b1)

        # iota: break symmetry.
        state[0] = (state[0] ^ rc) & mask


class Keccak256:
    """Incremental Keccak-256 hasher with a hashlib-like interface."""

    digest_size = 32
    block_size = _RATE_BYTES

    def __init__(self, data: bytes = b"") -> None:
        self._state = [0] * 25
        self._buffer = b""
        self._finalized: bytes | None = None
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Keccak256":
        """Absorb ``data``; may be called repeatedly before :meth:`digest`."""
        if self._finalized is not None:
            raise ValueError("cannot update a finalized Keccak256 instance")
        buf = self._buffer + data
        rate = _RATE_BYTES
        offset = 0
        length = len(buf)
        while length - offset >= rate:
            self._absorb_block(buf, offset)
            offset += rate
        self._buffer = buf[offset:]
        return self

    def _absorb_block(self, buf: bytes, offset: int) -> None:
        state = self._state
        for lane in range(17):  # 136 bytes / 8 bytes per lane
            start = offset + lane * 8
            state[lane] ^= int.from_bytes(buf[start:start + 8], "little")
        _keccak_f1600(state)

    def digest(self) -> bytes:
        """Return the 32-byte digest (idempotent)."""
        if self._finalized is None:
            padded = bytearray(_RATE_BYTES)
            padded[: len(self._buffer)] = self._buffer
            padded[len(self._buffer)] ^= 0x01  # Keccak domain padding
            padded[-1] ^= 0x80
            state = list(self._state)
            for lane in range(17):
                state[lane] ^= int.from_bytes(padded[lane * 8:lane * 8 + 8], "little")
            _keccak_f1600(state)
            out = b"".join(state[lane].to_bytes(8, "little") for lane in range(4))
            self._finalized = out
        return self._finalized

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "Keccak256":
        clone = Keccak256()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._finalized = self._finalized
        return clone


def keccak256(data: bytes) -> bytes:
    """Hash ``data`` with Keccak-256 and return the 32-byte digest."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"keccak256 expects bytes, got {type(data).__name__}")
    return Keccak256(bytes(data)).digest()


#: keccak256(b"") — hash of the empty string (Ethereum "empty code hash").
KECCAK_EMPTY = bytes.fromhex(
    "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
)

#: keccak256(rlp(b"")) == keccak256(b"\\x80") — the empty-trie root hash.
KECCAK_EMPTY_RLP = bytes.fromhex(
    "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
)
