"""Cryptographic substrate: Keccak-256, secp256k1, recoverable ECDSA, keys.

Everything PARP signs or hashes goes through this package; it reimplements the
Ethereum primitives from scratch (no external crypto dependencies).
"""

from .ecdsa import Signature, SignatureError, recover, sign, verify
from .keccak import KECCAK_EMPTY, KECCAK_EMPTY_RLP, Keccak256, keccak256
from .keys import Address, PrivateKey, PublicKey, recover_address

__all__ = [
    "keccak256",
    "Keccak256",
    "KECCAK_EMPTY",
    "KECCAK_EMPTY_RLP",
    "Signature",
    "SignatureError",
    "sign",
    "verify",
    "recover",
    "Address",
    "PrivateKey",
    "PublicKey",
    "recover_address",
]
