"""secp256k1 elliptic-curve arithmetic, implemented from scratch.

This is the curve used by Ethereum (and Bitcoin) for transaction and message
signatures.  We implement:

* field arithmetic modulo the curve prime ``P``,
* point addition/doubling in Jacobian coordinates (fast: no per-step field
  inversions),
* scalar multiplication (double-and-add for arbitrary points, a precomputed
  fixed-base table for the generator ``G`` so that signing — which always
  multiplies ``G`` — costs only point additions).

Only what ECDSA needs is exposed; this is not a general-purpose EC library.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "P", "N", "Gx", "Gy", "B",
    "Point", "INFINITY",
    "point_add", "point_mul", "generator_mul", "lift_x", "is_on_curve",
]

# Curve parameters: y^2 = x^3 + 7 over GF(P).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
Gx = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
Gy = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


class Point(NamedTuple):
    """An affine point on secp256k1.  ``None`` coordinates encode infinity."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None


INFINITY = Point(None, None)
G = Point(Gx, Gy)

# Jacobian points are (X, Y, Z) with affine x = X/Z^2, y = Y/Z^3.
_JacPoint = tuple[int, int, int]
_J_INFINITY: _JacPoint = (0, 1, 0)


def is_on_curve(point: Point) -> bool:
    """Return True iff ``point`` satisfies the curve equation (or is infinity)."""
    if point.is_infinity:
        return True
    x, y = point.x, point.y
    return (y * y - (x * x * x + B)) % P == 0


def _to_jacobian(point: Point) -> _JacPoint:
    if point.is_infinity:
        return _J_INFINITY
    return (point.x, point.y, 1)


def _from_jacobian(jac: _JacPoint) -> Point:
    x, y, z = jac
    if z == 0:
        return INFINITY
    z_inv = pow(z, P - 2, P)
    z_inv2 = (z_inv * z_inv) % P
    return Point((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _jacobian_double(point: _JacPoint) -> _JacPoint:
    x, y, z = point
    if z == 0 or y == 0:
        return _J_INFINITY
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x) % P  # a == 0, so no a*z^4 term
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _jacobian_add(p1: _JacPoint, p2: _JacPoint) -> _JacPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1sq = (z1 * z1) % P
    z2sq = (z2 * z2) % P
    u1 = (x1 * z2sq) % P
    u2 = (x2 * z1sq) % P
    s1 = (y1 * z2sq * z2) % P
    s2 = (y2 * z1sq * z1) % P
    if u1 == u2:
        if s1 != s2:
            return _J_INFINITY
        return _jacobian_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    hsq = (h * h) % P
    hcu = (hsq * h) % P
    u1hsq = (u1 * hsq) % P
    nx = (r * r - hcu - 2 * u1hsq) % P
    ny = (r * (u1hsq - nx) - s1 * hcu) % P
    nz = (h * z1 * z2) % P
    return (nx, ny, nz)


def point_add(p1: Point, p2: Point) -> Point:
    """Add two affine points."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p1), _to_jacobian(p2)))


def point_mul(scalar: int, point: Point) -> Point:
    """Multiply an arbitrary affine ``point`` by ``scalar`` (double-and-add)."""
    scalar %= N
    if scalar == 0 or point.is_infinity:
        return INFINITY
    result = _J_INFINITY
    addend = _to_jacobian(point)
    while scalar:
        if scalar & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        scalar >>= 1
    return _from_jacobian(result)


# Fixed-base table: _G_TABLE[i] = 2^i * G in Jacobian coordinates.  Signing
# multiplies G by a fresh nonce on every call; with this table the loop needs
# only ~128 point additions on average instead of 256 doublings + additions.
def _build_generator_table() -> list[_JacPoint]:
    table = []
    current = _to_jacobian(G)
    for _ in range(256):
        table.append(current)
        current = _jacobian_double(current)
    return table


_G_TABLE = _build_generator_table()


def generator_mul(scalar: int) -> Point:
    """Multiply the generator ``G`` by ``scalar`` using the fixed-base table."""
    scalar %= N
    if scalar == 0:
        return INFINITY
    result = _J_INFINITY
    bit = 0
    while scalar:
        if scalar & 1:
            result = _jacobian_add(result, _G_TABLE[bit])
        scalar >>= 1
        bit += 1
    return _from_jacobian(result)


def lift_x(x: int, odd_y: bool) -> Point | None:
    """Return the curve point with this ``x`` and the requested y-parity.

    Returns None when ``x`` is not the abscissa of any curve point (about half
    of all field elements).  Used by public-key recovery.
    """
    if not 0 <= x < P:
        return None
    y_sq = (pow(x, 3, P) + B) % P
    # P % 4 == 3, so a square root (if any) is y = y_sq^((P+1)/4).
    y = pow(y_sq, (P + 1) // 4, P)
    if (y * y) % P != y_sq:
        return None
    if (y & 1) != int(odd_y):
        y = P - y
    return Point(x, y)
