"""Recoverable ECDSA over secp256k1 with deterministic RFC-6979 nonces.

Ethereum signatures are 65 bytes: ``r`` (32) ‖ ``s`` (32) ‖ ``v`` (1), where
``v`` ∈ {0, 1} is the recovery id that lets a verifier recover the signer's
public key (and hence address) from the signature alone — this is what PARP's
on-chain fraud-detection module uses (``recover`` in Algorithm 2 of the
paper).

We enforce the low-``s`` rule (EIP-2): signatures with ``s > N/2`` are never
produced and are rejected on verification, which removes signature
malleability — important here because signed cumulative payment amounts act
as money.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import NamedTuple

from .secp256k1 import (
    INFINITY,
    N,
    Point,
    generator_mul,
    is_on_curve,
    lift_x,
    point_add,
    point_mul,
)

__all__ = ["Signature", "sign", "verify", "recover", "SignatureError"]

_HALF_N = N // 2


class SignatureError(ValueError):
    """Raised when a signature is structurally invalid."""


class Signature(NamedTuple):
    """A recoverable ECDSA signature (r, s, v) with v in {0, 1}."""

    r: int
    s: int
    v: int

    def to_bytes(self) -> bytes:
        """Serialize to the canonical 65-byte r ‖ s ‖ v layout."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big") + bytes([self.v])

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 65:
            raise SignatureError(f"signature must be 65 bytes, got {len(data)}")
        r = int.from_bytes(data[0:32], "big")
        s = int.from_bytes(data[32:64], "big")
        v = data[64]
        if v not in (0, 1):
            raise SignatureError(f"recovery id must be 0 or 1, got {v}")
        return cls(r, s, v)

    def validate(self) -> None:
        """Raise :class:`SignatureError` unless (r, s, v) are in range and low-s."""
        if not 1 <= self.r < N:
            raise SignatureError("signature r out of range")
        if not 1 <= self.s < N:
            raise SignatureError("signature s out of range")
        if self.s > _HALF_N:
            raise SignatureError("signature s is not low-s (malleable)")
        if self.v not in (0, 1):
            raise SignatureError("recovery id must be 0 or 1")


def _rfc6979_nonce(msg_hash: bytes, secret: int) -> int:
    """Derive the deterministic ECDSA nonce k per RFC 6979 (HMAC-SHA256)."""
    key = secret.to_bytes(32, "big")
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac.new(k, v + b"\x00" + key + msg_hash, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + key + msg_hash, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def sign(msg_hash: bytes, secret: int) -> Signature:
    """Sign a 32-byte message hash, returning a low-s recoverable signature."""
    if len(msg_hash) != 32:
        raise SignatureError(f"message hash must be 32 bytes, got {len(msg_hash)}")
    if not 1 <= secret < N:
        raise SignatureError("private key out of range")
    z = int.from_bytes(msg_hash, "big")
    while True:
        k = _rfc6979_nonce(msg_hash, secret)
        point = generator_mul(k)
        r = point.x % N
        if r == 0:
            msg_hash = hashlib.sha256(msg_hash).digest()  # retry with derived hash
            continue
        k_inv = pow(k, N - 2, N)
        s = (k_inv * (z + r * secret)) % N
        if s == 0:
            msg_hash = hashlib.sha256(msg_hash).digest()
            continue
        v = point.y & 1
        if s > _HALF_N:
            s = N - s
            v ^= 1
        return Signature(r, s, v)


def recover(msg_hash: bytes, signature: Signature) -> Point:
    """Recover the signer's public key from a recoverable signature.

    Mirrors the EVM ``ecrecover`` precompile used by the paper's Fraud
    Detection Module to authenticate request/response origin on-chain.
    """
    if len(msg_hash) != 32:
        raise SignatureError(f"message hash must be 32 bytes, got {len(msg_hash)}")
    signature.validate()
    r, s, v = signature
    # Reconstruct the ephemeral point R from r and the parity bit.  (Like the
    # EVM precompile we ignore the astronomically unlikely r + N < P case.)
    point_r = lift_x(r, odd_y=bool(v))
    if point_r is None:
        raise SignatureError("signature r does not correspond to a curve point")
    z = int.from_bytes(msg_hash, "big")
    r_inv = pow(r, N - 2, N)
    # Q = r^-1 * (s*R - z*G)
    s_r = point_mul(s, point_r)
    z_g = generator_mul(N - (z % N))
    public = point_mul(r_inv, point_add(s_r, z_g))
    if public.is_infinity or not is_on_curve(public):
        raise SignatureError("recovered point is not a valid public key")
    return public


def verify(msg_hash: bytes, signature: Signature, public_key: Point) -> bool:
    """Return True iff ``signature`` over ``msg_hash`` was made by ``public_key``."""
    try:
        signature.validate()
    except SignatureError:
        return False
    r, s, _ = signature
    z = int.from_bytes(msg_hash, "big")
    s_inv = pow(s, N - 2, N)
    u1 = (z * s_inv) % N
    u2 = (r * s_inv) % N
    point = point_add(generator_mul(u1), point_mul(u2, public_key))
    if point is INFINITY or point.is_infinity:
        return False
    return point.x % N == r
