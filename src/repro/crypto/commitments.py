"""Pedersen commitments over secp256k1 — the §VIII content-privacy sketch.

"Future extensions may employ cryptographic methods like homomorphic
encryption and commitments for content privacy."  A Pedersen commitment
``C = v·G + r·H`` lets a light client commit to request content (or payment
amounts) without revealing it, opening later if a dispute requires it.
``H`` is a nothing-up-my-sleeve point derived by hashing ``G`` to the curve,
so nobody knows ``log_G H`` and the commitment is binding; the blinding
factor ``r`` makes it hiding.  Commitments are additively homomorphic:
``commit(a) + commit(b) = commit(a + b)`` with added blindings — useful for
aggregating per-request fees without revealing the schedule.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from .keccak import keccak256
from .secp256k1 import N, Point, generator_mul, lift_x, point_add, point_mul

__all__ = ["PedersenCommitment", "commit", "H_POINT"]


def _derive_h() -> Point:
    """Hash-to-curve (try-and-increment) for the secondary generator H."""
    seed = keccak256(b"parp/pedersen/H/v1")
    counter = 0
    while True:
        candidate = keccak256(seed + counter.to_bytes(4, "big"))
        x = int.from_bytes(candidate, "big")
        point = lift_x(x % (2 ** 256), odd_y=bool(candidate[-1] & 1))
        if point is not None:
            return point
        counter += 1


H_POINT = _derive_h()


@dataclass(frozen=True)
class PedersenCommitment:
    """A commitment point with open/verify and homomorphic addition."""

    point: Point

    def to_bytes(self) -> bytes:
        if self.point.is_infinity:
            return b"\x00" * 33
        prefix = 0x03 if (self.point.y & 1) else 0x02
        return bytes([prefix]) + self.point.x.to_bytes(32, "big")

    def verify(self, value: int, blinding: int) -> bool:
        """Check that this commitment opens to (value, blinding)."""
        expected = point_add(
            generator_mul(value % N), point_mul(blinding % N, H_POINT)
        )
        return expected == self.point

    def __add__(self, other: "PedersenCommitment") -> "PedersenCommitment":
        """Homomorphic addition: commit(a,r) + commit(b,s) = commit(a+b, r+s)."""
        return PedersenCommitment(point_add(self.point, other.point))


def commit(value: int, blinding: int | None = None) -> tuple[PedersenCommitment, int]:
    """Commit to ``value``; returns (commitment, blinding factor)."""
    if blinding is None:
        blinding = secrets.randbelow(N - 1) + 1
    point = point_add(
        generator_mul(value % N), point_mul(blinding % N, H_POINT)
    )
    return PedersenCommitment(point), blinding
