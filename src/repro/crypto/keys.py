"""Key management and Ethereum-style addresses.

An address is the last 20 bytes of ``keccak256`` of the uncompressed public
key (without the 0x04 prefix byte) — identical to Ethereum, so the well-known
test vector holds:

>>> PrivateKey(1).address.hex_checksum()
'0x7E5F4552091A69125d5DfCb7b8C2659029395Bdf'
"""

from __future__ import annotations

import secrets

from . import ecdsa
from .ecdsa import Signature
from .keccak import keccak256
from .secp256k1 import N, Point, generator_mul

__all__ = ["Address", "PrivateKey", "PublicKey", "recover_address"]


class Address:
    """A 20-byte account address (value object, hashable, comparable)."""

    __slots__ = ("_raw",)

    def __init__(self, raw: bytes) -> None:
        if len(raw) != 20:
            raise ValueError(f"address must be 20 bytes, got {len(raw)}")
        self._raw = bytes(raw)

    @classmethod
    def from_hex(cls, text: str) -> "Address":
        text = text.removeprefix("0x")
        return cls(bytes.fromhex(text))

    @classmethod
    def zero(cls) -> "Address":
        return cls(b"\x00" * 20)

    def to_bytes(self) -> bytes:
        return self._raw

    def hex(self) -> str:
        return "0x" + self._raw.hex()

    def hex_checksum(self) -> str:
        """EIP-55 mixed-case checksum encoding."""
        plain = self._raw.hex()
        digest = keccak256(plain.encode("ascii")).hex()
        chars = [
            c.upper() if c.isalpha() and int(digest[i], 16) >= 8 else c
            for i, c in enumerate(plain)
        ]
        return "0x" + "".join(chars)

    def __bytes__(self) -> bytes:
        return self._raw

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Address):
            return self._raw == other._raw
        if isinstance(other, bytes):
            return self._raw == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._raw)

    def __repr__(self) -> str:
        return f"Address({self.hex()})"

    def __lt__(self, other: "Address") -> bool:
        return self._raw < other._raw


class PublicKey:
    """A secp256k1 public key with Ethereum address derivation."""

    __slots__ = ("_point",)

    def __init__(self, point: Point) -> None:
        if point.is_infinity:
            raise ValueError("public key cannot be the point at infinity")
        self._point = point

    @property
    def point(self) -> Point:
        return self._point

    def to_bytes(self) -> bytes:
        """Uncompressed SEC1 encoding: 0x04 ‖ X (32) ‖ Y (32)."""
        return b"\x04" + self._point.x.to_bytes(32, "big") + self._point.y.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        if len(data) != 65 or data[0] != 0x04:
            raise ValueError("expected 65-byte uncompressed SEC1 public key")
        x = int.from_bytes(data[1:33], "big")
        y = int.from_bytes(data[33:65], "big")
        return cls(Point(x, y))

    @property
    def address(self) -> Address:
        return Address(keccak256(self.to_bytes()[1:])[-20:])

    def verify(self, msg_hash: bytes, signature: Signature) -> bool:
        return ecdsa.verify(msg_hash, signature, self._point)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PublicKey):
            return self._point == other._point
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._point)

    def __repr__(self) -> str:
        return f"PublicKey(address={self.address.hex()})"


class PrivateKey:
    """A secp256k1 private key; derives its public key and address lazily."""

    __slots__ = ("_secret", "_public")

    def __init__(self, secret: int) -> None:
        if not 1 <= secret < N:
            raise ValueError("private key scalar out of range")
        self._secret = secret
        self._public: PublicKey | None = None

    @classmethod
    def generate(cls) -> "PrivateKey":
        return cls(secrets.randbelow(N - 1) + 1)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivateKey":
        if len(data) != 32:
            raise ValueError("private key must be 32 bytes")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "PrivateKey":
        """Derive a key deterministically from a seed (tests and examples)."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        scalar = int.from_bytes(keccak256(seed), "big") % (N - 1) + 1
        return cls(scalar)

    @property
    def secret(self) -> int:
        return self._secret

    def to_bytes(self) -> bytes:
        return self._secret.to_bytes(32, "big")

    @property
    def public_key(self) -> PublicKey:
        if self._public is None:
            self._public = PublicKey(generator_mul(self._secret))
        return self._public

    @property
    def address(self) -> Address:
        return self.public_key.address

    def sign(self, msg_hash: bytes) -> Signature:
        """Sign a 32-byte digest, producing a 65-byte recoverable signature."""
        return ecdsa.sign(msg_hash, self._secret)

    def __repr__(self) -> str:
        return f"PrivateKey(address={self.address.hex()})"


def recover_address(msg_hash: bytes, signature: Signature) -> Address:
    """Recover the signer's address — the Python analogue of ``ecrecover``."""
    point = ecdsa.recover(msg_hash, signature)
    return PublicKey(point).address
