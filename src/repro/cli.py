"""Command-line demos: ``parp-demo <scenario>``.

Thin wrappers over the example scripts so an installed package can show the
protocol working without cloning the repository.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _demo_quickstart(state_dir: str | None = None,
                     retain: str | None = None) -> int:
    from .chain import GenesisConfig, UnsignedTransaction
    from .contracts import DEPOSIT_MODULE_ADDRESS
    from .crypto import PrivateKey
    from .lightclient import Checkpoint, CheckpointSyncer, HeaderSyncer
    from .node import Devnet, FullNode
    from .parp import FullNodeServer, LightClientSession, MIN_FULL_NODE_DEPOSIT

    from .chain.chain import ChainError
    from .storage import RetentionPolicy, StoreError

    fn_key = PrivateKey.from_seed("demo:fn")
    lc_key = PrivateKey.from_seed("demo:lc")
    alice = PrivateKey.from_seed("demo:alice")
    try:
        retention = RetentionPolicy.parse(retain)
    except ValueError as exc:
        print(f"bad --retain value: {exc}", file=sys.stderr)
        return 2
    try:
        net = Devnet(GenesisConfig(allocations={
            fn_key.address: 100 * 10 ** 18,
            lc_key.address: 10 * 10 ** 18,
            alice.address: 2 * 10 ** 18,
        }), state_dir=state_dir, retention=retention)
    except (ChainError, StoreError) as exc:
        # a StoreError here is most often the paired-logs refusal: the
        # state dir holds only one of nodes.log/blocks.log
        print(f"cannot start the demo chain: {exc}", file=sys.stderr)
        return 1
    if state_dir is not None:
        print(f"full node state is disk-backed: {net.node_store.path} "
              f"(retention: {retention.describe()})")
        if net.node_store.opened_indexed:
            print("reopen used the root-index footer (no log scan)")
        if net.chain.reattached:
            print(f"reattached to persisted chain at height "
                  f"{net.chain.height} "
                  f"(head {net.chain.head.hash.hex()[:16]}…)")
    # deposit only once per operator: re-runs over the same --state-dir
    # reattach to a chain where the stake is already locked, and blindly
    # re-depositing would drain the demo account after a few runs
    staked = net.call_view(DEPOSIT_MODULE_ADDRESS, "is_eligible",
                           [fn_key.address])
    if not staked:
        net.execute(fn_key, DEPOSIT_MODULE_ADDRESS, "deposit",
                    value=MIN_FULL_NODE_DEPOSIT)
    server = FullNodeServer(FullNode(net.chain, key=fn_key))
    first = net.chain.first_retained_number
    if first > 0:
        # a pruned node no longer serves headers below its retention
        # window, so the client bootstraps from a trusted checkpoint at
        # the window's base (normally handed out of band — an explorer,
        # the operator's config) instead of walking up from genesis
        anchor = net.chain.get_block_by_number(first).header
        syncer = CheckpointSyncer([server], Checkpoint.of(anchor))
        print(f"pruned node serves heights {first}..{net.chain.height}; "
              f"light client checkpoint-syncs from block {first}")
    else:
        syncer = HeaderSyncer([server])
    session = LightClientSession(lc_key, server, syncer)
    alpha = session.connect(budget=10 ** 15)
    print(f"channel open: α = {alpha.hex()}")
    balance = session.get_balance(alice.address)
    print(f"verified balance of alice: {balance / 10**18:.2f} tokens")
    tx = UnsignedTransaction(
        # nonce read from (possibly reattached) state so the demo can be
        # re-run against the same --state-dir
        nonce=net.chain.state.nonce_of(alice.address),
        gas_price=10 ** 9, gas_limit=21_000,
        to=lc_key.address, value=123,
    ).sign(alice)
    block, index, tx_hash = session.send_raw_transaction(tx.encode())
    print(f"write included at block {block}, index {index} "
          f"(proof verified against the header)")
    print(f"spent {session.channel.spent} wei over "
          f"{session.channel.requests_sent} requests")
    if state_dir is not None:
        store = net.node_store
        if retention.prunes:
            report = net.chain.compact()
            print(f"compacted to the last {retention.k} roots: "
                  f"{report.bytes_before} → {report.bytes_after} bytes "
                  f"({report.live_nodes} live nodes, "
                  f"{len(report.pruned_roots)} roots pruned)")
        root = net.chain.head.header.state_root
        net.close()
        print(f"state persisted: {store.stats.batches_committed} commit "
              f"batches, {store.stats.bytes_appended} bytes appended; "
              f"reopen with root {root.hex()[:16]}…")
    return 0


def _demo_fraud() -> int:
    from .chain import GenesisConfig
    from .contracts import DEPOSIT_MODULE_ADDRESS, TREASURY_ADDRESS
    from .crypto import PrivateKey
    from .lightclient import HeaderSyncer
    from .node import Devnet, FullNode
    from .parp import (
        FraudDetected, LightClientSession, MIN_FULL_NODE_DEPOSIT, WitnessService,
    )
    from .parp.adversary import MaliciousFullNodeServer

    fn_key = PrivateKey.from_seed("demo:evil-fn")
    lc_key = PrivateKey.from_seed("demo:lc")
    wn_key = PrivateKey.from_seed("demo:witness")
    alice = PrivateKey.from_seed("demo:alice")
    net = Devnet(GenesisConfig(allocations={
        fn_key.address: 100 * 10 ** 18, lc_key.address: 10 * 10 ** 18,
        wn_key.address: 10 * 10 ** 18, alice.address: 2 * 10 ** 18,
    }))
    net.execute(fn_key, DEPOSIT_MODULE_ADDRESS, "deposit",
                value=MIN_FULL_NODE_DEPOSIT)
    evil = MaliciousFullNodeServer(
        FullNode(net.chain, key=fn_key), attack="inflate_balance",
    )
    witness_node = FullNode(net.chain, key=wn_key, name="witness")
    session = LightClientSession(
        lc_key, evil, HeaderSyncer([evil, witness_node]),
    )
    session.connect(budget=10 ** 15)
    print("querying a malicious full node that inflates balances…")
    try:
        session.get_balance(alice.address)
        print("ERROR: fraud went undetected")
        return 1
    except FraudDetected as exc:
        print(f"fraud detected by check: {exc.report.check}")
        witness = WitnessService(witness_node)
        before = net.balance_of(lc_key.address)
        witness.submit(exc.package)
        gained = net.balance_of(lc_key.address) - before
        print(f"fraud proof accepted on-chain; light client was awarded "
              f"{gained / 10**18:.1f} tokens of the slashed deposit")
        print(f"treasury pool now holds "
              f"{net.balance_of(TREASURY_ADDRESS) / 10**18:.1f} tokens")
    return 0


def _demo_gossip() -> int:
    from .chain import GenesisConfig
    from .crypto import PrivateKey
    from .gossip import GossipNode
    from .net import FixedLatency, SimEndpoint, SimNetwork, SimServerBinding
    from .node import Devnet
    from .parp import (
        FlatFeeSchedule, FullNodeServer, Marketplace, MarketplaceClient,
        ServerAdvertisement,
    )
    from .parp.adversary import MaliciousFullNodeServer
    from .parp.pricing import GWEI
    from .parp.reputation import EVENT_INVALID_RESPONSE

    operators = [PrivateKey.from_seed(f"demo:gossip:op{i}") for i in range(3)]
    lc_key = PrivateKey.from_seed("demo:gossip:lc")
    newcomer_key = PrivateKey.from_seed("demo:gossip:newcomer")
    alice = PrivateKey.from_seed("demo:gossip:alice")
    net = Devnet(GenesisConfig(allocations={
        **{op.address: 100 * 10 ** 18 for op in operators},
        lc_key.address: 100 * 10 ** 18,
        newcomer_key.address: 10 * 10 ** 18,
        alice.address: 2 * 10 ** 18,
    }))
    # the victim stakes registry collateral: unstaked reporters' gossip
    # carries no weight (Sybil resistance), staked reporters' does
    net.stake_full_node(lc_key)

    network = SimNetwork(latency=FixedLatency(0.02))
    servers = []
    marketplace = Marketplace()
    for i, op in enumerate(operators):
        cls = MaliciousFullNodeServer if i == 2 else FullNodeServer
        # the malicious server undercuts the honest ones: the tempting
        # cheapest is exactly the one a cold client would try first
        kwargs: dict = {"attack": "inflate_balance"} if i == 2 else {}
        kwargs["fee_schedule"] = FlatFeeSchedule(
            flat_price=(8 if i == 2 else 10) * GWEI)
        server = net.attach_server(op, name=f"srv-{i}", server_cls=cls,
                                   **kwargs)
        SimServerBinding(network, f"srv-{i}", server)
        endpoint = SimEndpoint(network, f"lc-{i}", f"srv-{i}",
                               server.address, timeout=2.0)
        marketplace.advertise(ServerAdvertisement.for_server(
            server, name=f"srv-{i}", endpoint=endpoint))
        servers.append(server)
    mesh = net.attach_gossip_mesh(network, servers)

    # an established client joins gossip: push heads + shared reputation
    client = MarketplaceClient(lc_key, marketplace, budget=10 ** 15,
                               clock=network.clock.now)
    client_gossip = GossipNode(network, "lc-gossip")
    client_gossip.add_peer(mesh[0].name)
    mesh[0].add_peer(client_gossip.name)
    client.join_gossip(client_gossip, stake_of=net.stake_of)
    client.headers.sync()           # trust bootstraps over pull, not gossip

    net.advance_blocks(1)           # every staked server announces the seal
    network.run()
    syncer = client.headers
    print(f"push propagation: head {syncer.chain.tip_number} reached the "
          f"client without polling (pushed={syncer.headers_pushed}, "
          f"pulled={syncer.headers_fetched})")

    # first-hand fraud detection becomes shared knowledge
    client.connect()
    try:
        for _ in range(10):
            client.get_balance(alice.address)
            if client.stats.frauds_detected:
                break
    except Exception:  # noqa: BLE001 — demo keeps going on any routing error
        pass
    client._share_event(servers[2].address, EVENT_INVALID_RESPONSE,
                        b"demo-evidence")
    network.run()
    print(f"victim client detected fraud on srv-2 and gossiped it "
          f"(events published={client.rep_share.stats.published})")

    # a brand-new client joins, hears the gossip, and never pays srv-2
    newcomer = MarketplaceClient(newcomer_key, marketplace, budget=10 ** 15,
                                 clock=network.clock.now)
    newcomer_gossip = GossipNode(network, "newcomer-gossip")
    newcomer_gossip.add_peer(mesh[1].name)
    mesh[1].add_peer(newcomer_gossip.name)
    newcomer.join_gossip(newcomer_gossip, stake_of=net.stake_of)
    client._share_event(servers[2].address, EVENT_INVALID_RESPONSE,
                        b"demo-evidence-2")
    network.run()
    merged = newcomer.rep_share.stats.merged
    ranked = [ad.label for ad in newcomer.eligible()]
    print(f"newcomer merged {merged} foreign event(s); ranking: {ranked}")
    print(f"srv-2 ranks last but is NOT banned "
          f"(banned={newcomer.reputation.is_banned(servers[2].address, network.clock.now())}) "
          "— gossip alone can never hard-ban")
    return 0


def _demo_providers() -> int:
    from .analysis import compute_traffic_shares
    from .workloads import generate_dataset

    shares = compute_traffic_shares(generate_dataset())
    print("provider traffic shares (synthetic dataset, Table I shape):")
    for share in shares:
        print(f"  {share.provider:12s} {share.format_paper_style()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="parp-demo",
        description="PARP reproduction demos (ICDCS 2025)",
    )
    parser.add_argument(
        "scenario", choices=["quickstart", "fraud", "gossip", "providers"],
        help="which demo to run",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="persist the full node's world state to DIR (append-only, "
             "crash-safe node store) instead of keeping it in memory",
    )
    parser.add_argument(
        "--retain", default=None, metavar="POLICY",
        help="retention policy for --state-dir: 'archive' (default, keep "
             "every historical root provable) or an integer K / 'last:K' "
             "(prune to the newest K state roots at compaction)",
    )
    args = parser.parse_args(argv)
    if args.retain is not None and args.state_dir is None:
        parser.error("--retain needs --state-dir (memory stores never prune)")
    if args.scenario == "quickstart":
        return _demo_quickstart(state_dir=args.state_dir, retain=args.retain)
    if args.state_dir is not None:
        parser.error("--state-dir is only supported by the quickstart demo")
    handlers = {
        "fraud": _demo_fraud,
        "gossip": _demo_gossip,
        "providers": _demo_providers,
    }
    return handlers[args.scenario]()


if __name__ == "__main__":
    sys.exit(main())
