"""Blockchain substrate: accounts, state, transactions, blocks, chain."""

from .account import Account
from .block import Block, build_receipt_trie, build_transaction_trie, index_key
from .chain import Blockchain, ChainError
from .genesis import GenesisConfig, make_genesis_block
from .header import BlockHeader
from .receipt import LogEntry, Receipt
from .state import InsufficientBalance, StateDB
from .transaction import Transaction, TransactionError, UnsignedTransaction

__all__ = [
    "Account",
    "Block",
    "BlockHeader",
    "Blockchain",
    "ChainError",
    "GenesisConfig",
    "InsufficientBalance",
    "LogEntry",
    "Receipt",
    "StateDB",
    "Transaction",
    "TransactionError",
    "UnsignedTransaction",
    "build_transaction_trie",
    "build_receipt_trie",
    "index_key",
    "make_genesis_block",
]
