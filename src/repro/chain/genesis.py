"""Genesis configuration: the devnet's block zero.

Mirrors a Geth ``genesis.json``: chain id, initial balance allocations (our
test accounts, the PARP module addresses' funding), gas limit, timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.keys import Address
from .block import Block
from .header import BlockHeader
from .state import StateDB
from ..trie.mpt import EMPTY_TRIE_ROOT

__all__ = ["GenesisConfig", "make_genesis_block"]

#: A recognizable parent hash for block 0.
GENESIS_PARENT_HASH = b"\x00" * 32

DEFAULT_GAS_LIMIT = 30_000_000


@dataclass(frozen=True)
class GenesisConfig:
    """Parameters for block zero."""

    chain_id: int = 1337
    allocations: dict[Address, int] = field(default_factory=dict)
    gas_limit: int = DEFAULT_GAS_LIMIT
    timestamp: int = 0
    extra_data: bytes = b"parp-devnet"

    def with_allocation(self, address: Address, balance: int) -> "GenesisConfig":
        merged = dict(self.allocations)
        merged[address] = balance
        return GenesisConfig(
            chain_id=self.chain_id,
            allocations=merged,
            gas_limit=self.gas_limit,
            timestamp=self.timestamp,
            extra_data=self.extra_data,
        )


def make_genesis_block(config: GenesisConfig, state: StateDB) -> Block:
    """Apply allocations to ``state`` and build the genesis block."""
    for address, balance in sorted(config.allocations.items()):
        if balance < 0:
            raise ValueError(f"negative genesis allocation for {address.hex()}")
        state.add_balance(address, balance)
    header = BlockHeader(
        parent_hash=GENESIS_PARENT_HASH,
        state_root=state.root_hash,
        transactions_root=EMPTY_TRIE_ROOT,
        receipts_root=EMPTY_TRIE_ROOT,
        number=0,
        timestamp=config.timestamp,
        gas_used=0,
        gas_limit=config.gas_limit,
        proposer=Address.zero(),
        extra_data=config.extra_data,
    )
    return Block(header=header, transactions=(), receipts=())
